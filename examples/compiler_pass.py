#!/usr/bin/env python3
"""A compiler-backend scheduling pass over a whole "module".

Simulates how a production compiler would use this library: schedule every
superblock of a module with the paper's compile-time-saving strategy —
run the cheap DHASY first, compare against a lower bound, and re-schedule
with Balance only when DHASY is not provably optimal (Section 6.2,
Table 4). Reports the expected dynamic-cycle improvement over a plain
Critical Path backend and how often the expensive pass was needed.

Run:  python examples/compiler_pass.py [machine] [scale]
"""

import sys
import time

from repro import BoundSuite, machine_by_name
from repro.schedulers import schedule
from repro.workloads import specint95_corpus


def schedule_module(corpus, machine):
    """DHASY-first / Balance-fallback pass. Returns per-block results."""
    results = []
    rescheduled = 0
    for sb in corpus:
        suite = BoundSuite(sb, machine, include_triplewise=False)
        bound = suite.compute().tightest
        s = schedule(sb, machine, "dhasy", validate=False)
        if s.wct > bound + 1e-9:
            s = schedule(sb, machine, "balance", suite=suite, validate=False)
            rescheduled += 1
        results.append((sb, s, bound))
    return results, rescheduled


def main() -> None:
    machine = machine_by_name(sys.argv[1] if len(sys.argv) > 1 else "FS4")
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else 120
    corpus = specint95_corpus(scale=scale, max_ops=100)
    print(f"module: {len(corpus)} superblocks, machine {machine.name}")

    t0 = time.perf_counter()
    results, rescheduled = schedule_module(corpus, machine)
    elapsed = time.perf_counter() - t0

    ours = sum(sb.exec_freq * s.wct for sb, s, _ in results)
    bound = sum(sb.exec_freq * b for sb, _, b in results)
    baseline = sum(
        sb.exec_freq * schedule(sb, machine, "cp", validate=False).wct
        for sb in corpus
    )
    optimal_blocks = sum(1 for _, s, b in results if s.wct <= b + 1e-9)

    print(f"\ncompile time: {elapsed:.2f}s "
          f"({1e3 * elapsed / len(corpus):.1f} ms/superblock)")
    print(f"Balance invoked on {rescheduled}/{len(corpus)} superblocks "
          f"({100 * rescheduled / len(corpus):.1f}%)")
    print(f"provably optimal schedules: {optimal_blocks}/{len(corpus)}")
    print(f"\nexpected dynamic cycles:")
    print(f"  lower bound        {bound:12.1f}")
    print(f"  this pass          {ours:12.1f}  "
          f"(+{100 * (ours / bound - 1):.2f}% over bound)")
    print(f"  Critical Path      {baseline:12.1f}  "
          f"(+{100 * (baseline / bound - 1):.2f}% over bound)")
    print(f"  speedup vs CP      {baseline / ours:12.4f}x")


if __name__ == "__main__":
    main()
