#!/usr/bin/env python3
"""The full compiler pipeline: CFG -> traces -> superblocks -> schedules.

Generates a profiled control-flow graph of register instructions, runs
trace selection (mutual-most-likely) and superblock formation with tail
duplication — the role of the paper's LEGO stage — and then bounds and
schedules every resulting superblock.

Run:  python examples/cfg_pipeline.py [seed] [segments]
"""

import sys

from repro import BoundSuite, FS6
from repro.cfg import form_superblocks, generate_cfg, select_traces
from repro.schedulers import schedule


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    segments = int(sys.argv[2]) if len(sys.argv) > 2 else 6
    cfg = generate_cfg("demo", seed=seed, segments=segments)
    print(f"CFG {cfg.name}: {len(cfg.blocks)} blocks")
    for block in cfg.blocks:
        succs = ", ".join(
            f"{e.dst}({cfg.edge_probability(e):.2f})" for e in cfg.succs(block.label)
        )
        print(f"  {block.label:5s} x{block.exec_count:<10g} "
              f"{len(block.instrs):2d} instrs -> {succs or 'exit'}")

    print("\ntraces (mutual most likely, threshold 0.5):")
    for trace in select_traces(cfg):
        print("  " + " -> ".join(trace.labels))

    print("\nsuperblocks (with duplicated tails):")
    machine = FS6
    total = bound_total = 0.0
    for sb in form_superblocks(cfg):
        suite = BoundSuite(sb, machine, include_triplewise=False)
        bound = suite.compute().tightest
        s = schedule(sb, machine, "balance", suite=suite)
        status = "at bound" if s.wct <= bound + 1e-9 else f"bound {bound:.3f}"
        print(f"  {sb.name:16s} ops={sb.num_operations:3d} "
              f"exits={sb.num_branches} freq={sb.exec_freq:10.1f} "
              f"WCT={s.wct:7.3f}  [{status}]")
        total += sb.exec_freq * s.wct
        bound_total += sb.exec_freq * bound

    print(f"\nmodule dynamic cycles on {machine.name}: {total:.1f} "
          f"(lower bound {bound_total:.1f}, "
          f"+{100 * (total / bound_total - 1):.2f}%)")


if __name__ == "__main__":
    main()
