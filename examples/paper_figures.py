#!/usr/bin/env python3
"""Walk through the paper's Figure 1-4 examples end to end.

Prints, for each figure: the graph summary, the per-branch bounds, every
heuristic's schedule, and — for Figure 4 — the Pairwise tradeoff curve and
the probability sweep of Observation 3.

Run:  python examples/paper_figures.py
"""

from repro import GP2, BoundSuite
from repro.ir.examples import PAPER_EXAMPLES, figure4
from repro.schedulers import schedule

HEURISTICS = ("cp", "sr", "gstar", "dhasy", "help", "balance", "optimal")


def show_figure(name: str) -> None:
    sb, machine = PAPER_EXAMPLES[name]
    suite = BoundSuite(sb, machine)
    bounds = suite.compute()
    print(f"\n=== {name}: {sb.num_operations} ops, exits {list(sb.branches)} "
          f"on {machine.name} ===")
    print(f"per-branch LC bounds: {bounds.branch_bounds['LC']}")
    print(f"tightest WCT bound:   {bounds.tightest:.4f}")
    for heuristic in HEURISTICS:
        s = schedule(sb, machine, heuristic)
        exits = {b: s.issue[b] for b in sb.branches}
        flag = "  *" if s.wct <= bounds.tightest + 1e-9 else ""
        print(f"  {heuristic:8s} WCT={s.wct:.4f}  exits@{exits}{flag}")


def observation3_sweep() -> None:
    print("\n=== Observation 3: Figure 4's probability sweep ===")
    base = figure4(0.5)
    suite = BoundSuite(base, GP2)
    pair = suite.compute().pair_bounds[(6, 18)]
    print("pairwise tradeoff curve (separation, side bound, final bound):")
    for pt in pair.curve:
        print(f"  l={pt.separation:2d}  side>={pt.x}  final>={pt.y}")
    print("\n P(side)   optimal schedule        Balance")
    for p10 in range(1, 10):
        p = p10 / 10
        sb = figure4(p)
        opt = schedule(sb, GP2, "optimal")
        bal = schedule(sb, GP2, "balance")
        print(
            f"   {p:.1f}     side@{opt.issue[6]} final@{opt.issue[18]} "
            f"wct={opt.wct:6.3f}   side@{bal.issue[6]} final@{bal.issue[18]} "
            f"wct={bal.wct:6.3f}"
        )


def main() -> None:
    for name in PAPER_EXAMPLES:
        show_figure(name)
    observation3_sweep()


if __name__ == "__main__":
    main()
