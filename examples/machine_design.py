#!/usr/bin/env python3
"""Architecture exploration: how much machine do SPECint95 superblocks need?

Sweeps the paper's six VLIW configurations plus two custom design points,
schedules a corpus with Balance on each, and reports expected dynamic
cycles, achieved-bound fraction, and the marginal benefit of each
widening step — the kind of question the paper's Table 3 answers for
scheduler quality, asked here for hardware sizing.

Run:  python examples/machine_design.py [scale]
"""

import sys

from repro import BoundSuite, MachineConfig, PAPER_MACHINES
from repro.schedulers import schedule
from repro.workloads import specint95_corpus

#: Two design points between the paper's FS4 and FS6/FS8.
CUSTOM = (
    MachineConfig(name="FS5-mem", units={"int": 1, "mem": 2, "float": 1, "branch": 1}),
    MachineConfig(name="FS5-int", units={"int": 2, "mem": 1, "float": 1, "branch": 1}),
)


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    corpus = specint95_corpus(scale=scale, max_ops=100)
    print(f"corpus: {len(corpus)} superblocks\n")
    print(f"{'machine':10s} {'units':28s} {'dyn cycles':>12s} "
          f"{'vs GP1':>8s} {'at-bound':>9s}")

    rows = []
    for machine in PAPER_MACHINES + CUSTOM:
        total = 0.0
        at_bound = 0
        for sb in corpus:
            suite = BoundSuite(sb, machine, include_triplewise=False)
            bound = suite.compute().tightest
            s = schedule(sb, machine, "balance", suite=suite, validate=False)
            total += sb.exec_freq * s.wct
            if s.wct <= bound + 1e-9:
                at_bound += 1
        rows.append((machine, total, at_bound))

    base = rows[0][1]
    for machine, total, at_bound in rows:
        units = ", ".join(f"{r}={c}" for r, c in sorted(machine.units.items()))
        print(
            f"{machine.name:10s} {units:28s} {total:12.1f} "
            f"{base / total:7.3f}x {100 * at_bound / len(corpus):8.1f}%"
        )

    print(
        "\nReading: the jump from 1-wide to 2-wide pays the most; beyond "
        "the FS6-class mix, extra units mostly idle on integer code "
        "(compare the at-bound column with the paper's 81/89/96% for "
        "FS4/FS6/FS8)."
    )


if __name__ == "__main__":
    main()
