#!/usr/bin/env python3
"""Anatomy of the lower bounds on one superblock.

Dissects a single (seeded) superblock: per-branch CP/Hu/RJ/LC values, the
resource-aware late times, the full Pairwise tradeoff curves, and where
each WCT bound comes from — a debugging/teaching companion to Section 4
of the paper.

Run:  python examples/bound_anatomy.py [benchmark] [index] [machine]
"""

import sys

from repro import BoundSuite, machine_by_name
from repro.workloads import generate_superblock, profile_by_name


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    index = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    machine = machine_by_name(sys.argv[3] if len(sys.argv) > 3 else "FS4")

    sb = generate_superblock(profile_by_name(bench), index, seed=1999)
    print(f"{sb.name}: {sb.num_operations} ops, exits {list(sb.branches)}, "
          f"machine {machine.name}")

    suite = BoundSuite(sb, machine)
    bounds = suite.compute()

    print("\nper-branch issue-cycle bounds:")
    print(f"{'branch':>8s} {'weight':>8s} {'CP':>4s} {'Hu':>4s} "
          f"{'RJ':>4s} {'LC':>4s}")
    for b in sb.branches:
        print(
            f"{b:8d} {sb.weights[b]:8.3f} "
            f"{bounds.branch_bounds['CP'][b]:4d} "
            f"{bounds.branch_bounds['Hu'][b]:4d} "
            f"{bounds.branch_bounds['RJ'][b]:4d} "
            f"{bounds.branch_bounds['LC'][b]:4d}"
        )

    print("\nresource-aware late times toward the final exit "
          "(ops where LateRC < dependence LateDC):")
    final = sb.last_branch
    dist = sb.graph.dist_to(final)
    rc = suite.early_rc
    tightened = 0
    for v, late in sorted(suite.late_rc[final].items()):
        dep_late = rc[final] - dist[v]
        if late < dep_late:
            print(f"  op {v:3d} ({sb.op(v).opcode.name:6s}): "
                  f"LateRC={late}  dependence-late={dep_late}")
            tightened += 1
    if not tightened:
        print("  (none: dependence lates are already exact here)")

    print("\npairwise tradeoff curves:")
    for (i, j), pb in bounds.pair_bounds.items():
        tag = "conflict-free" if pb.conflict_free else "TRADEOFF"
        print(f"  pair ({i:3d},{j:3d}) [{tag}]: best=({pb.x},{pb.y})")
        if not pb.conflict_free:
            for pt in pb.curve:
                print(f"      l={pt.separation:3d}: ({pt.x}, {pt.y})")

    print("\nWCT lower bounds:")
    for name, wct in bounds.wct.items():
        marker = "  <- tightest" if wct == bounds.tightest else ""
        print(f"  {name:3s} = {wct:.4f}{marker}")


if __name__ == "__main__":
    main()
