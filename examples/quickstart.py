#!/usr/bin/env python3
"""Quickstart: build a superblock, bound it, schedule it, inspect it.

Run:  python examples/quickstart.py
"""

from repro import GP2, BoundSuite, SuperblockBuilder
from repro.ir.dot import to_dot
from repro.schedulers import schedule


def main() -> None:
    # A small superblock: a side exit guarded by three compare-ish ops, a
    # loaded value feeding the fall-through exit.
    sb = (
        SuperblockBuilder("quickstart")
        .op("load")                      # 0: load a field
        .op("cmp", preds=[0])            # 1: test it
        .op("add")                       # 2: unrelated work
        .exit(0.3, preds=[1, 2])         # 3: side exit, taken 30%
        .op("load")                      # 4: second load
        .op("mul", preds=[4])            # 5: compute on it
        .last_exit(preds=[5])            # 6: fall-through exit, 70%
    )

    print(f"superblock {sb.name}: {sb.num_operations} ops, "
          f"{sb.num_branches} exits, weights {dict(sb.weights)}")

    # Lower bounds on the weighted completion time.
    bounds = BoundSuite(sb, GP2).compute()
    print("\nlower bounds (WCT):")
    for name, wct in bounds.wct.items():
        marker = "  <- tightest" if wct == bounds.tightest else ""
        print(f"  {name:3s} = {wct:.4f}{marker}")

    # Schedule with every heuristic and compare against the bound.
    print("\nschedules on GP2:")
    for heuristic in ("cp", "sr", "gstar", "dhasy", "help", "balance"):
        s = schedule(sb, GP2, heuristic)
        status = "optimal" if s.wct <= bounds.tightest + 1e-9 else "suboptimal"
        print(f"  {heuristic:8s} WCT={s.wct:.4f} length={s.length}  [{status}]")

    # Cycle-by-cycle view of the Balance schedule.
    s = schedule(sb, GP2, "balance")
    print("\nBalance schedule, cycle by cycle:")
    for row in s.as_rows(sb, GP2):
        print("  cycle " + row[0] + ": " + ", ".join(row[1:]))

    # Export the dependence graph for graphviz rendering.
    print("\nDOT graph (pipe into `dot -Tpng`):\n")
    print(to_dot(sb))


if __name__ == "__main__":
    main()
