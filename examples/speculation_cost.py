#!/usr/bin/env python3
"""What speculation costs: wasted issue slots and register pressure.

The paper optimizes expected cycles; this example surfaces the two costs
speculation trades for them. For each heuristic it

1. Monte-Carlo-executes the schedules (``repro.sim``) and confirms the
   measured mean cycles converge to the WCT;
2. reports the expected fraction of issued operations that executed in
   vain (control left before their result mattered);
3. reports the peak register pressure vs the source-order baseline.

Run:  python examples/speculation_cost.py [scale]
"""

import statistics
import sys

from repro import GP2
from repro.eval.regpressure import max_pressure, sequential_pressure
from repro.schedulers import schedule
from repro.sim import expected_speculation_waste, simulate
from repro.workloads import specint95_corpus

HEURISTICS = ("sr", "cp", "dhasy", "balance")


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    corpus = specint95_corpus(scale=scale, max_ops=60)
    print(f"corpus: {len(corpus)} superblocks on {GP2.name}\n")

    print(f"{'heuristic':10s} {'mean WCT':>9s} {'sim error':>10s} "
          f"{'waste%':>7s} {'pressure':>9s} {'vs seq':>7s}")
    seq_pressure = statistics.fmean(
        sequential_pressure(sb) for sb in corpus
    )
    for heuristic in HEURISTICS:
        wcts, errors, wastes, pressures = [], [], [], []
        for sb in corpus:
            s = schedule(sb, GP2, heuristic, validate=False)
            wcts.append(s.wct)
            wastes.append(expected_speculation_waste(sb, s))
            pressures.append(max_pressure(sb, s))
            if sb.num_branches > 1:
                stats = simulate(sb, GP2, s, runs=2000, seed=1)
                errors.append(stats.relative_error)
        print(
            f"{heuristic:10s} {statistics.fmean(wcts):9.3f} "
            f"{100 * statistics.fmean(errors):9.2f}% "
            f"{100 * statistics.fmean(wastes):6.2f}% "
            f"{statistics.fmean(pressures):9.2f} "
            f"{statistics.fmean(pressures) / seq_pressure:6.2f}x"
        )

    print(
        "\nReading: every heuristic's simulated cycles match its WCT "
        "(the objective is a true expectation); schedulers that hoist "
        "more aggressively pay in wasted issue slots and registers."
    )


if __name__ == "__main__":
    main()
