"""Bench trend analytics: history records, run comparison, trend rendering.

``python -m repro bench`` measures one commit; this module strings the
measurements into a trajectory. Three pieces:

* **History** — :func:`make_record` wraps a BENCH metrics payload (the
  ``{metric: {value, unit, seed}}`` shape ``save_metrics`` writes) in a
  schema-versioned record carrying the git SHA, a label (``full`` /
  ``quick``) and the bench config; :func:`append_record` appends it to
  ``benchmarks/BENCH_history.jsonl``. One JSONL line per run keeps the
  file merge-friendly and ``git log``-diffable.
* **Comparison** — :func:`compare_runs` computes per-metric deltas
  between two payloads with direction-aware regression checks: a
  throughput metric (unit ``.../s``) regresses when it *drops* more than
  the threshold, an elapsed metric (unit ``s``) when it *grows* more
  than the threshold (waived below :data:`MIN_GATED_SECONDS`, where
  timer noise dominates), and ratio metrics (unit ``x``) are
  informational by default — machines differ too much in core count for
  a portable gate. Exception: a ``...jobsN_speedup`` ratio *is* gated
  higher-is-better when both payloads record the same
  ``bench_usable_cores`` count and that count covers the metric's
  ``N`` workers — same-class hardware comparing a speedup it can
  actually express. Non-metric keys in the payload (the
  ``observability`` block) are ignored.
* **Trend** — :func:`render_trend` draws a sparkline per metric across
  the history so drift is visible at a glance in CI logs.

CLI front ends: ``bench`` appends to the history by default;
``bench --compare A.json B.json`` and ``bench --trend`` render the
analytics (nonzero exit on regression). See docs/performance.md.
"""

from __future__ import annotations

import json
import re
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: History record schema version (bump on breaking shape changes).
SCHEMA_VERSION = 1

_REPO_ROOT = Path(__file__).resolve().parents[3]

#: Default history file, relative to the repo root.
DEFAULT_HISTORY = _REPO_ROOT / "benchmarks" / "BENCH_history.jsonl"

#: Sparkline glyphs, lowest to highest.
_SPARK = "▁▂▃▄▅▆▇█"


def git_sha(short: bool = True) -> str | None:
    """Current commit SHA, or ``None`` outside a git checkout."""
    cmd = ["git", "rev-parse", "--short" if short else "--verify", "HEAD"]
    try:
        out = subprocess.run(
            cmd,
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return None
    return out or None


def metric_entries(payload: dict[str, Any]) -> dict[str, dict[str, Any]]:
    """The ``{value, unit}``-shaped entries of a BENCH payload.

    Filters out the ``observability`` block and any other non-metric
    keys, so every consumer below shares one definition of "metric".
    """
    return {
        name: entry
        for name, entry in payload.items()
        if isinstance(entry, dict) and "value" in entry and "unit" in entry
    }


# ---------------------------------------------------------------------------
# History
# ---------------------------------------------------------------------------
def make_record(
    payload: dict[str, Any],
    label: str = "full",
    config: dict[str, Any] | None = None,
    timestamp: float | None = None,
    sha: str | None = None,
) -> dict[str, Any]:
    """A schema-versioned history record for one bench run.

    ``payload`` is the BENCH JSON shape (metrics plus an optional
    ``observability`` block); counters from the observability block ride
    along so the history captures work volume, not just timings.
    """
    record: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "timestamp": round(
            time.time() if timestamp is None else timestamp, 3
        ),
        "git_sha": git_sha() if sha is None else sha,
        "label": label,
        "config": config or {},
        "metrics": metric_entries(payload),
    }
    observability = payload.get("observability")
    if isinstance(observability, dict) and observability.get("counters"):
        record["counters"] = observability["counters"]
    return record


def append_record(
    record: dict[str, Any], path: str | Path = DEFAULT_HISTORY
) -> Path:
    """Append one record to the history JSONL; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return target


def load_history(path: str | Path = DEFAULT_HISTORY) -> list[dict[str, Any]]:
    """Parse a history JSONL, oldest first; blank lines are skipped.

    Raises ``ValueError`` naming the offending line on malformed JSON or
    a record without the expected shape, so a corrupted history fails
    loudly instead of silently shortening the trend.
    """
    records: list[dict[str, Any]] = []
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON ({exc.msg})"
                ) from None
            if not isinstance(record, dict) or "metrics" not in record:
                raise ValueError(
                    f"{path}:{lineno}: not a bench history record "
                    "(missing 'metrics')"
                )
            records.append(record)
    return records


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------
@dataclass
class MetricDelta:
    """One metric's movement between a baseline and a current run."""

    name: str
    unit: str
    baseline: float
    current: float
    delta_percent: float  #: signed percent change of the raw value
    better: str  #: "higher" | "lower" | "info"
    regressed: bool


@dataclass
class Comparison:
    """compare_runs output: per-metric deltas plus bookkeeping."""

    deltas: list[MetricDelta] = field(default_factory=list)
    threshold: float = 0.20
    only_baseline: list[str] = field(default_factory=list)
    only_current: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _direction(unit: str) -> str:
    if unit.endswith("/s"):
        return "higher"
    if unit == "s":
        return "lower"
    return "info"  # ratios ("x") and anything unrecognized: no gate


#: Elapsed metrics where both sides sit under this many seconds are
#: informational: at that scale timer noise swamps any real change (the
#: pool dispatch overhead lives here).
MIN_GATED_SECONDS = 0.05

#: Speedup metrics carry their worker count in the name (jobs8 -> 8).
_SPEEDUP_JOBS = re.compile(r"jobs(\d+)_speedup$")


def _usable_cores(entries: dict[str, dict[str, Any]]) -> float | None:
    """The run's recorded ``bench_usable_cores``, if present and numeric."""
    entry = entries.get("bench_usable_cores")
    if entry is None:
        return None
    try:
        return float(entry["value"])
    except (KeyError, TypeError, ValueError):
        return None


def compare_runs(
    current: dict[str, Any],
    baseline: dict[str, Any],
    threshold: float = 0.20,
) -> Comparison:
    """Direction-aware per-metric deltas between two BENCH payloads.

    Accepts either raw BENCH JSON payloads or history records (the
    ``metrics`` sub-dict of a record works as-is since it round-trips
    the payload shape). Metrics present on only one side are listed, not
    compared.
    """
    cur = metric_entries(current)
    base = metric_entries(baseline)
    comparison = Comparison(
        threshold=threshold,
        only_baseline=sorted(set(base) - set(cur)),
        only_current=sorted(set(cur) - set(base)),
    )
    cores_cur = _usable_cores(cur)
    cores_base = _usable_cores(base)
    for name in sorted(set(base) & set(cur)):
        try:
            base_v = float(base[name]["value"])
            cur_v = float(cur[name]["value"])
        except (TypeError, ValueError):
            continue  # a non-numeric value cannot be gated or trended
        unit = str(base[name].get("unit", ""))
        better = _direction(unit)
        if unit == "x":
            jobs_n = _SPEEDUP_JOBS.search(name)
            if (
                jobs_n is not None
                and cores_cur is not None
                and cores_cur == cores_base
                and cores_cur >= int(jobs_n.group(1))
            ):
                better = "higher"
        elif better == "lower" and max(cur_v, base_v) < MIN_GATED_SECONDS:
            better = "info"
        if base_v > 0:
            delta = 100.0 * (cur_v - base_v) / base_v
        else:
            delta = 0.0
        regressed = False
        if base_v > 0 and better == "higher":
            regressed = cur_v / base_v < 1.0 - threshold
        elif base_v > 0 and better == "lower":
            regressed = cur_v / base_v > 1.0 + threshold
        comparison.deltas.append(
            MetricDelta(
                name=name,
                unit=unit,
                baseline=base_v,
                current=cur_v,
                delta_percent=round(delta, 1),
                better=better,
                regressed=regressed,
            )
        )
    return comparison


def render_comparison(comparison: Comparison) -> str:
    lines = [
        f"bench comparison (regression threshold "
        f"{100 * comparison.threshold:.0f}%):"
    ]
    if comparison.deltas:
        width = max(len(d.name) for d in comparison.deltas)
        lines.append(
            f"  {'metric':<{width}s}  {'baseline':>12s}  {'current':>12s}  "
            f"{'delta':>8s}"
        )
        for d in comparison.deltas:
            if d.regressed:
                verdict = "REGRESSED"
            elif d.better == "info":
                verdict = "(info)"
            else:
                verdict = "ok"
            lines.append(
                f"  {d.name:<{width}s}  {d.baseline:>12.4f}  "
                f"{d.current:>12.4f}  {d.delta_percent:>+7.1f}%  {verdict}"
            )
    for name in comparison.only_baseline:
        lines.append(f"  {name}: only in baseline (skipped)")
    for name in comparison.only_current:
        lines.append(f"  {name}: only in current (skipped)")
    if comparison.ok:
        lines.append("  no regressions")
    else:
        lines.append(
            f"  {len(comparison.regressions)} regression(s): "
            + ", ".join(d.name for d in comparison.regressions)
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Trend
# ---------------------------------------------------------------------------
def sparkline(values: list[float]) -> str:
    """Unicode sparkline of a numeric series (flat series render flat)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi - lo < 1e-12:
        return _SPARK[3] * len(values)
    scale = (len(_SPARK) - 1) / (hi - lo)
    return "".join(_SPARK[int((v - lo) * scale)] for v in values)


def metric_trend_lines(
    records: list[dict[str, Any]],
    names: tuple[str, ...],
    label: str | None = None,
) -> list[str]:
    """One ``name  sparkline  first -> last unit (+x%)`` line per metric.

    The shared trend body: :func:`render_trend` renders whole tables
    with it and ``bench --check`` failures quote the offending metric's
    single line for context. ``label`` filters records by run label.
    """
    if label is not None:
        records = [r for r in records if r.get("label") == label]
    width = max((len(n) for n in names), default=0)
    lines = []
    for name in names:
        series = [
            float(r["metrics"][name]["value"])
            for r in records
            if name in r.get("metrics", {})
        ]
        if not series:
            lines.append(f"  {name:<{width}s}  (no data)")
            continue
        unit = next(
            str(r["metrics"][name].get("unit", ""))
            for r in records
            if name in r.get("metrics", {})
        )
        first, last = series[0], series[-1]
        change = (
            f" ({100.0 * (last - first) / first:+.1f}%)" if first > 0 else ""
        )
        lines.append(
            f"  {name:<{width}s}  {sparkline(series)}  "
            f"{first:.4g} -> {last:.4g} {unit}{change}"
        )
    return lines


def render_trend(
    records: list[dict[str, Any]],
    metrics: tuple[str, ...] | None = None,
    label: str | None = None,
) -> str:
    """Per-metric sparkline trends across history records, oldest first.

    ``metrics`` restricts the table (default: every metric in the newest
    record); ``label`` filters records by their run label so ``quick``
    CI runs don't pollute a ``full`` trajectory (and vice versa).
    """
    if label is not None:
        records = [r for r in records if r.get("label") == label]
    if not records:
        return "bench trend: no matching history records"
    names = metrics or tuple(sorted(records[-1].get("metrics", {})))
    first_sha = records[0].get("git_sha") or "?"
    last_sha = records[-1].get("git_sha") or "?"
    suffix = f", label={label}" if label is not None else ""
    lines = [
        f"bench trend: {len(records)} record(s), "
        f"{first_sha} .. {last_sha}{suffix}"
    ]
    lines.extend(metric_trend_lines(records, names))
    return "\n".join(lines)
