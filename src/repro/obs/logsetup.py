"""Logging configuration for the ``repro`` package.

One helper, :func:`setup_logging`, configures the ``repro`` logger
hierarchy with a single stderr handler and a compact format. It is
idempotent (re-calling adjusts the level instead of stacking handlers)
and deprecation-free (no ``logging.warn``, no root-logger mutation), so
library users keep full control of their own root configuration.

The evaluation pipeline logs progress — per-table timings in
:mod:`repro.eval.report`, bench phases in :mod:`repro.perf.bench` — at
INFO on child loggers (``repro.eval.report``, ``repro.perf.bench``);
without :func:`setup_logging` those records vanish silently, exactly like
any other library logging.
"""

from __future__ import annotations

import logging
import sys
from typing import TextIO

#: Root of the package's logger hierarchy.
ROOT_LOGGER = "repro"

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"
_DATEFMT = "%H:%M:%S"


def setup_logging(
    level: int = logging.INFO,
    stream: TextIO | None = None,
) -> logging.Logger:
    """Configure the ``repro`` logger with one stream handler.

    Args:
        level: threshold for the ``repro`` hierarchy (default INFO).
        stream: destination (default ``sys.stderr``, resolved at call
            time so pytest's capture replacement is honored).

    Returns:
        The configured ``repro`` logger.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(level)
    target = stream if stream is not None else sys.stderr
    for handler in logger.handlers:
        if getattr(handler, "_repro_obs", False):
            try:
                handler.setStream(target)  # type: ignore[attr-defined]
            except ValueError:
                # setStream flushes the old stream first; swap directly
                # when that stream has been closed (e.g. a finished
                # pytest capture).
                handler.stream = target  # type: ignore[attr-defined]
            handler.setLevel(level)
            break
    else:
        handler = logging.StreamHandler(target)
        handler._repro_obs = True  # type: ignore[attr-defined]
        handler.setLevel(level)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATEFMT))
        logger.addHandler(handler)
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """A child logger under the ``repro`` hierarchy.

    ``name`` may be a module path (``repro.eval.report``) or a suffix
    (``eval.report``); both land under :data:`ROOT_LOGGER`.
    """
    if name == ROOT_LOGGER:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")
