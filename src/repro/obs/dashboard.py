"""Self-contained static HTML dashboard over the run ledger.

:func:`render_dashboard` turns a list of ledger run records into one
HTML string with **zero external references** — styles are inline,
charts are hand-built inline SVG (sparklines per command, a span
flamegraph from the newest record's ``span_paths``), and no script,
image, font, or stylesheet is fetched — so the file can be archived as
a CI artifact or mailed around and render identically anywhere.

Sections: latest-run header, run history (table + wall-time sparklines),
anomaly table (:mod:`repro.obs.anomaly` within-run and against-history
passes), per-block detail of the newest block-bearing run, span
flamegraph, and a bench history strip when ``bench`` runs are present.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Any

from repro.obs import anomaly as anomaly_mod
from repro.obs.ledger import block_gap, slow_exemplars

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1d2430;
       background: #fafbfc; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem;
     border-bottom: 1px solid #d8dee6; padding-bottom: .3rem; }
table { border-collapse: collapse; font-size: .82rem; width: 100%; }
th, td { text-align: left; padding: .25rem .6rem;
         border-bottom: 1px solid #e4e8ee; white-space: nowrap; }
th { color: #5a6678; font-weight: 600; }
td.num, th.num { text-align: right;
                 font-variant-numeric: tabular-nums; }
.mono { font-family: ui-monospace, 'SF Mono', Menlo, monospace; }
.muted { color: #8a93a3; }
.flag { color: #b3261e; font-weight: 600; }
.card { background: #fff; border: 1px solid #e4e8ee; border-radius: 8px;
        padding: 1rem 1.2rem; margin-top: .8rem; }
svg text { font-family: ui-monospace, Menlo, monospace; }
"""

_SPARK_W, _SPARK_H = 140, 26
_FLAME_W, _ROW_H = 1080, 22

_PALETTE = (
    "#4c78a8", "#f58518", "#54a24b", "#b279a2", "#e45756",
    "#72b7b2", "#eeca3b", "#9d755d", "#86b8e1", "#d67195",
)


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _color(name: str) -> str:
    return _PALETTE[sum(name.encode()) % len(_PALETTE)]


def _spark_svg(values: list[float], width: int = _SPARK_W) -> str:
    """An inline polyline sparkline (last point dotted)."""
    if not values:
        return ""
    if len(values) == 1:
        values = values * 2
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = width / (len(values) - 1)
    pad = 3
    points = " ".join(
        f"{i * step:.1f},{pad + (_SPARK_H - 2 * pad) * (1 - (v - lo) / span):.1f}"
        for i, v in enumerate(values)
    )
    last_x = (len(values) - 1) * step
    last_y = pad + (_SPARK_H - 2 * pad) * (1 - (values[-1] - lo) / span)
    return (
        f'<svg width="{width}" height="{_SPARK_H}" '
        f'viewBox="0 0 {width} {_SPARK_H}">'
        f'<polyline fill="none" stroke="#4c78a8" stroke-width="1.5" '
        f'points="{points}"/>'
        f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="2.5" '
        f'fill="#e45756"/></svg>'
    )


def _when(record: dict[str, Any]) -> str:
    from datetime import datetime

    try:
        stamp = datetime.fromtimestamp(float(record.get("timestamp", 0)))
    except (OSError, OverflowError, ValueError):
        return "?"
    return stamp.strftime("%Y-%m-%d %H:%M")


# ---------------------------------------------------------------------------
# Sections
# ---------------------------------------------------------------------------
def _header(records: list[dict[str, Any]], title: str) -> str:
    latest = records[-1]
    dispatch = latest.get("dispatch") or {}
    cache = latest.get("cache") or {}
    bits = [
        f"<h1>{_esc(title)}</h1>",
        '<div class="card"><table><tr>',
        f"<td>runs<br><b>{len(records)}</b></td>",
        f"<td>latest<br><b class=mono>{_esc(latest.get('run_id', '?'))}</b></td>",
        f"<td>command<br><b>{_esc(latest.get('command', '?'))}</b></td>",
        f"<td>when<br><b>{_esc(_when(latest))}</b></td>",
        f"<td>git<br><b class=mono>{_esc(latest.get('git_sha') or '?')}</b></td>",
        f"<td>wall<br><b>{float(latest.get('wall_seconds', 0)):.3f}s</b></td>",
        f"<td>blocks<br><b>{len(latest.get('blocks') or [])}</b></td>",
    ]
    if cache:
        bits.append(
            f"<td>cache hit rate<br><b>"
            f"{100 * cache.get('hit_rate', 0.0):.0f}%</b></td>"
        )
    if dispatch:
        bits.append(
            f"<td>dispatch<br><b>{_esc(dispatch.get('mode', '-'))}"
            f" ×{dispatch.get('jobs', 1)}</b></td>"
        )
    bits.append("</tr></table></div>")
    return "".join(bits)


def _history_section(records: list[dict[str, Any]]) -> str:
    rows = []
    for record in reversed(records[-20:]):
        dispatch = record.get("dispatch") or {}
        cache = record.get("cache") or {}
        rate = f"{100 * cache.get('hit_rate', 0.0):.0f}%" if cache else "–"
        rows.append(
            "<tr>"
            f"<td class=mono>{_esc(record.get('run_id', '?'))}</td>"
            f"<td>{_esc(record.get('command', '?'))}</td>"
            f"<td>{_esc(_when(record))}</td>"
            f"<td class=mono>{_esc(record.get('git_sha') or '?')}</td>"
            f"<td class=num>{float(record.get('wall_seconds', 0)):.3f}s</td>"
            f"<td class=num>{len(record.get('blocks') or [])}</td>"
            f"<td class=num>{rate}</td>"
            f"<td>{_esc(dispatch.get('mode', '–'))}</td>"
            "</tr>"
        )
    commands: dict[str, list[float]] = {}
    for record in records:
        commands.setdefault(str(record.get("command", "?")), []).append(
            float(record.get("wall_seconds", 0.0))
        )
    sparks = "".join(
        f"<tr><td>{_esc(cmd)}</td><td>{_spark_svg(walls)}</td>"
        f"<td class=num>{walls[-1]:.3f}s</td>"
        f"<td class='num muted'>×{len(walls)}</td></tr>"
        for cmd, walls in sorted(commands.items())
    )
    return (
        "<h2>Run history</h2><div class=card><table>"
        "<tr><th>run</th><th>command</th><th>when</th><th>git</th>"
        "<th class=num>wall</th><th class=num>blocks</th>"
        "<th class=num>cache</th><th>mode</th></tr>"
        + "".join(rows)
        + "</table></div>"
        + "<h2>Wall time per command</h2><div class=card><table>"
        "<tr><th>command</th><th>trend</th><th class=num>last</th>"
        "<th class=num>runs</th></tr>"
        + sparks
        + "</table></div>"
    )


def _anomaly_section(
    records: list[dict[str, Any]],
    target: dict[str, Any],
    z_threshold: float,
) -> str:
    found = anomaly_mod.find_anomalies(records, target, z_threshold)
    if not found:
        body = (
            '<p class=muted>No anomalies flagged for run '
            f"<span class=mono>{_esc(target.get('run_id', '?'))}</span>.</p>"
        )
    else:
        rows = "".join(
            "<tr>"
            f"<td class=flag>{_esc(a.kind)}</td>"
            f"<td>{_esc(a.scope)}</td>"
            f"<td class=mono>{_esc(a.subject)}</td>"
            f"<td class=num>{a.value:g}</td>"
            f"<td class=num>{a.baseline:g}</td>"
            f"<td class=num>{a.score:.2f}</td>"
            f"<td>{_esc(a.detail)}</td>"
            "</tr>"
            for a in found
        )
        body = (
            "<table><tr><th>kind</th><th>scope</th><th>subject</th>"
            "<th class=num>value</th><th class=num>baseline</th>"
            "<th class=num>score</th><th>detail</th></tr>"
            + rows
            + "</table>"
        )
    return (
        f"<h2>Anomalies (run "
        f"<span class=mono>{_esc(target.get('run_id', '?'))}</span>)</h2>"
        f"<div class=card>{body}</div>"
    )


def _blocks_section(target: dict[str, Any], top: int) -> str:
    blocks = target.get("blocks") or []
    if not blocks:
        return ""
    ordered = sorted(
        blocks, key=lambda row: block_gap(row) or 0.0, reverse=True
    )[:top]
    rows = []
    for row in ordered:
        wct = row.get("wct") or {}
        best = f"{min(wct.values()):.3f}" if wct else "–"
        gap = block_gap(row)
        hits = row.get("cache_hits")
        cache = f"{hits}/{row.get('cache_misses', 0)}" if hits is not None else "–"
        solve = row.get("solve_s")
        rows.append(
            "<tr>"
            f"<td class=mono>{_esc(row.get('sb', '?'))}</td>"
            f"<td>{_esc(row.get('machine') or '–')}</td>"
            f"<td class=num>{row.get('ops', 0)}</td>"
            f"<td class=num>{row.get('branches', 0)}</td>"
            f"<td class=num>{row.get('edges', 0)}</td>"
            f"<td class=num>{row.get('tightest', 0) or 0:.3f}</td>"
            f"<td class=num>{best}</td>"
            f"<td class=num>{gap if gap is not None else 0:.2f}%</td>"
            f"<td class=num>{f'{solve * 1e3:.2f}ms' if solve else '–'}</td>"
            f"<td class=num>{cache}</td>"
            "</tr>"
        )
    return (
        f"<h2>Blocks — top {len(ordered)} of {len(blocks)} by gap "
        f"(run <span class=mono>{_esc(target.get('run_id', '?'))}</span>)</h2>"
        "<div class=card><table>"
        "<tr><th>superblock</th><th>machine</th><th class=num>ops</th>"
        "<th class=num>br</th><th class=num>edges</th>"
        "<th class=num>tightest</th><th class=num>best wct</th>"
        "<th class=num>gap</th><th class=num>solve</th>"
        "<th class=num>cache h/m</th></tr>"
        + "".join(rows)
        + "</table></div>"
    )


def _flamegraph_section(target: dict[str, Any]) -> str:
    paths = target.get("span_paths") or []
    if not paths:
        return ""
    # Rebuild the span tree from semicolon-joined paths (icicle layout:
    # root row on top, children below, width proportional to total time).
    tree: dict[str, Any] = {"children": {}, "total": 0.0}
    for entry in paths:
        parts = str(entry.get("path", "")).split(";")
        node = tree
        for part in parts:
            node = node["children"].setdefault(
                part, {"children": {}, "total": 0.0}
            )
        node["total"] += float(entry.get("total_s", 0.0))

    def roll(node: dict[str, Any]) -> float:
        own = node["total"]
        node["total"] = max(
            own, sum(roll(child) for child in node["children"].values())
        )
        return node["total"]

    total = sum(roll(child) for child in tree["children"].values())
    if total <= 0:
        return ""
    rects: list[str] = []
    depth_max = [0]

    def paint(node: dict[str, Any], name: str, x: float, depth: int) -> None:
        width = _FLAME_W * node["total"] / total
        if width < 1.0:
            return
        depth_max[0] = max(depth_max[0], depth)
        y = depth * _ROW_H
        label = name if width > 8 * len(name) * 0.9 else (
            name[: max(1, int(width / 8))] if width > 16 else ""
        )
        rects.append(
            f'<g><rect x="{x:.1f}" y="{y}" width="{width:.1f}" '
            f'height="{_ROW_H - 2}" rx="2" fill="{_color(name)}" '
            f'fill-opacity="0.85">'
            f"<title>{_esc(name)} — {node['total']:.4f}s "
            f"({100 * node['total'] / total:.1f}%)</title></rect>"
            f'<text x="{x + 4:.1f}" y="{y + _ROW_H - 8}" font-size="11" '
            f'fill="#fff">{_esc(label)}</text></g>'
        )
        cx = x
        for child_name, child in sorted(
            node["children"].items(), key=lambda kv: -kv[1]["total"]
        ):
            paint(child, child_name, cx, depth + 1)
            cx += _FLAME_W * child["total"] / total

    x = 0.0
    for name, node in sorted(
        tree["children"].items(), key=lambda kv: -kv[1]["total"]
    ):
        paint(node, name, x, 0)
        x += _FLAME_W * node["total"] / total
    height = (depth_max[0] + 1) * _ROW_H
    return (
        f"<h2>Span flamegraph (run "
        f"<span class=mono>{_esc(target.get('run_id', '?'))}</span>, "
        f"{total:.3f}s attributed)</h2><div class=card>"
        f'<svg width="{_FLAME_W}" height="{height}" '
        f'viewBox="0 0 {_FLAME_W} {height}">'
        + "".join(rects)
        + "</svg></div>"
    )


def _service_section(records: list[dict[str, Any]]) -> str:
    """Service traffic: per-request latency trend plus slow exemplars."""
    serves = [r for r in records if r.get("command") == "serve"]
    if not serves:
        return ""
    walls = [float(r.get("wall_seconds", 0.0)) * 1000.0 for r in serves]
    ordered = sorted(walls)

    def pct(q: float) -> float:
        # Interpolated percentile (matches repro.service.loadgen, which
        # obs cannot import — the service layer sits above this one).
        position = q * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction

    stats = (
        f"<td>requests<br><b>{len(serves)}</b></td>"
        f"<td>p50<br><b>{pct(0.50):.1f} ms</b></td>"
        f"<td>p99<br><b>{pct(0.99):.1f} ms</b></td>"
        f"<td>max<br><b>{ordered[-1]:.1f} ms</b></td>"
        f"<td>latency trend<br>{_spark_svg(walls)}</td>"
    )
    parts = [
        f"<h2>Service traffic ({len(serves)} request(s))</h2>",
        f"<div class=card><table><tr>{stats}</tr></table></div>",
    ]
    exemplars = slow_exemplars(serves)
    if exemplars:
        rows = []
        for entry in exemplars[:10]:
            ex = entry["exemplar"]
            phases = ex.get("phases_ms") or {}
            rows.append(
                f"<tr><td class=mono>{_esc(str(ex.get('request_id', '?')))}"
                f"</td><td class=num>{ex.get('elapsed_ms', 0.0):.1f}</td>"
                f"<td class=num>{phases.get('eval', 0.0):.1f}</td>"
                f"<td class=num>{phases.get('queue', 0.0):.1f}</td>"
                f"<td>{_esc(str(ex.get('kind', '?')))}</td>"
                f"<td>{_esc(str(ex.get('machine', '?')))}</td>"
                f"<td class=num>{ex.get('blocks', 0)}</td>"
                f"<td class=mono>"
                f"{_esc(str(entry['record'].get('run_id', '?')))}</td></tr>"
            )
        parts.append(
            f"<h2>Slow requests ({len(exemplars)} exemplar(s))</h2>"
            "<div class=card><table>"
            "<tr><th>request</th><th class=num>elapsed ms</th>"
            "<th class=num>eval ms</th><th class=num>queue ms</th>"
            "<th>kind</th><th>machine</th><th class=num>blocks</th>"
            "<th>run</th></tr>" + "".join(rows) + "</table></div>"
        )
    return "".join(parts)


def _bench_section(records: list[dict[str, Any]]) -> str:
    benches = [
        r
        for r in records
        if r.get("command") == "bench"
        and isinstance((r.get("extra") or {}).get("bench"), dict)
    ]
    if not benches:
        return ""
    series: dict[str, list[float]] = {}
    for record in benches:
        for name, value in record["extra"]["bench"].items():
            if isinstance(value, (int, float)):
                series.setdefault(name, []).append(float(value))
    rows = "".join(
        f"<tr><td class=mono>{_esc(name)}</td>"
        f"<td>{_spark_svg(values)}</td>"
        f"<td class=num>{values[-1]:g}</td>"
        f"<td class='num muted'>×{len(values)}</td></tr>"
        for name, values in sorted(series.items())
    )
    return (
        f"<h2>Bench history ({len(benches)} run(s))</h2>"
        "<div class=card><table>"
        "<tr><th>metric</th><th>trend</th><th class=num>last</th>"
        "<th class=num>points</th></tr>"
        + rows
        + "</table></div>"
    )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------
def render_dashboard(
    records: list[dict[str, Any]],
    title: str = "repro run ledger",
    top: int = 15,
    z_threshold: float = anomaly_mod.DEFAULT_Z,
) -> str:
    """The full dashboard HTML for a ledger's records (oldest first)."""
    if not records:
        body = "<p class=muted>The ledger has no runs yet.</p>"
        return (
            "<!DOCTYPE html><html><head><meta charset='utf-8'>"
            f"<title>{_esc(title)}</title><style>{_STYLE}</style></head>"
            f"<body><h1>{_esc(title)}</h1>{body}</body></html>"
        )
    # Blocks/anomalies/flame target the newest run that recorded blocks
    # (an `obs`-only tail of runs would otherwise blank those sections).
    target = next(
        (r for r in reversed(records) if r.get("blocks")), records[-1]
    )
    sections = [
        _header(records, title),
        _history_section(records),
        _anomaly_section(records, target, z_threshold),
        _blocks_section(target, top),
        _flamegraph_section(target),
        _service_section(records),
        _bench_section(records),
    ]
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title><style>{_STYLE}</style></head><body>"
        + "".join(s for s in sections if s)
        + "</body></html>"
    )


def write_dashboard(
    records: list[dict[str, Any]],
    path: str | Path,
    title: str = "repro run ledger",
    top: int = 15,
    z_threshold: float = anomaly_mod.DEFAULT_Z,
) -> Path:
    """Render and write the dashboard; returns the output path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        render_dashboard(records, title=title, top=top, z_threshold=z_threshold)
    )
    return target
