"""Span tracer: monotonic-clock phase timing with near-zero disabled cost.

A :class:`Tracer` records *spans* — named, nested, timed phases — as plain
dicts suitable for JSONL export. Tracing follows the same opt-in
discipline as :class:`repro.bounds.instrumentation.Counters`: nothing is
recorded unless a tracer is installed, and the disabled path is a single
module-global read plus a reusable no-op context manager, so span sites
may live inside library code without a measurable cost when tracing is
off (tests/test_obs.py quantifies the contract).

Usage::

    tracer = Tracer()
    with install(tracer):
        run_evaluation()
    tracer.write_jsonl("spans.jsonl")

Library code marks phases with the module-level :func:`span` helper::

    with span("bounds.pairwise", superblock=sb.name):
        ...

Span sites are intentionally coarse (one per bound family / eval phase,
never inside inner loops); per-iteration statistics belong to
:class:`~repro.obs.metrics.MetricsRegistry` counters instead.

Worker processes do not inherit the parent's installed tracer through
:mod:`repro.perf.workers`; instead each work unit runs under a fresh
worker-side tracer whose completed events return with the result and are
folded back via :meth:`Tracer.merge_events` **in input order** — the
span-side mirror of the metrics-delta merge — so parallel runs produce
the same span inventory as serial ones (``origin="worker"`` attrs mark
the merged events).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any


class _NoopSpan:
    """Reusable do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


#: Singleton returned by :func:`span` when no tracer is installed.
NOOP_SPAN = _NoopSpan()


class Tracer:
    """Records nested, named, monotonic-clock-timed spans.

    Events are plain dicts (``{"event": "span", "name", "t0", "dur",
    "depth", "parent", ...attrs}``) with times in seconds relative to the
    tracer's creation, so a trace file is self-contained and diffable.
    """

    __slots__ = ("events", "_origin", "_stack", "_seq", "_context")

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []
        self._origin = time.perf_counter()
        self._stack: list[tuple[int, str]] = []  # open (id, name), innermost last
        self._seq = 0
        self._context: dict[str, Any] = {}

    @contextmanager
    def bind(self, **attrs: Any):
        """Stamp ``attrs`` onto every span recorded inside the ``with`` body.

        Context attributes flow to directly-recorded spans *and* to events
        folded in via :meth:`merge_events` — this is how a service request
        id reaches worker-side spans: the request handler binds
        ``request_id=...`` around evaluation, and when
        :func:`repro.perf.workers.corpus_map` merges each unit's events on
        the parent side, the bound context rides along. Explicit per-span
        attrs win over bound context on key collision. Binds nest; inner
        values shadow outer ones and the previous context is restored on
        exit.
        """
        previous = self._context
        self._context = {**previous, **attrs}
        try:
            yield self
        finally:
            self._context = previous

    @contextmanager
    def span(self, name: str, **attrs: Any):
        """Context manager timing one phase; nests via an explicit stack."""
        span_id = self._seq
        self._seq += 1
        parent = self._stack[-1][0] if self._stack else None
        depth = len(self._stack)
        # Snapshot the bound context at entry so a bind() exiting before
        # the span closes still stamps the attrs the span started under.
        context = self._context
        self._stack.append((span_id, name))
        t0 = time.perf_counter() - self._origin
        try:
            yield
        finally:
            dur = time.perf_counter() - self._origin - t0
            self._stack.pop()
            event: dict[str, Any] = {
                "event": "span",
                "id": span_id,
                "name": name,
                "t0": round(t0, 6),
                "dur": round(dur, 6),
                "depth": depth,
            }
            if parent is not None:
                event["parent"] = parent
            merged_attrs = {**context, **attrs} if context else attrs
            if merged_attrs:
                event["attrs"] = merged_attrs
            self.events.append(event)

    def open_names(self) -> tuple[str, ...]:
        """Names of the currently open spans, outermost first.

        Read by the sampling profiler (from another thread) to attribute
        stack samples to the active span; a tuple snapshot keeps the read
        safe against concurrent pushes and pops.
        """
        return tuple(name for _, name in self._stack)

    def elapsed(self) -> float:
        """Seconds since this tracer's origin (its creation time)."""
        return time.perf_counter() - self._origin

    def merge_events(self, events: list[dict[str, Any]], **attrs: Any) -> None:
        """Fold another tracer's completed events into this one.

        This is the span-side mirror of the metrics-delta merge: a worker
        process runs one unit under a fresh tracer and ships the finished
        events back; the parent calls ``merge_events`` per unit **in
        input order**. Ids are remapped into this tracer's sequence,
        times are rebased at the current elapsed time (relative order
        within the delta is preserved), nesting is grafted under the
        currently open span, and ``attrs`` (e.g. ``origin="worker"``,
        ``unit=i``) are stamped onto every merged event so exporters can
        place each unit on its own timeline track. Attributes bound via
        :meth:`bind` are stamped too (explicit ``attrs`` win), so merged
        worker spans inherit ambient request context such as
        ``request_id``.
        """
        if not events:
            return
        if self._context:
            attrs = {**self._context, **attrs}
        now = self.elapsed()
        base_depth = len(self._stack)
        graft_parent = self._stack[-1][0] if self._stack else None
        id_map: dict[int, int] = {}
        for e in sorted(events, key=lambda e: (e["t0"], -e.get("depth", 0))):
            new_id = self._seq
            self._seq += 1
            id_map[e["id"]] = new_id
            merged = dict(e)
            merged["id"] = new_id
            merged["t0"] = round(now + e["t0"], 6)
            merged["depth"] = e.get("depth", 0) + base_depth
            old_parent = e.get("parent")
            if old_parent is not None and old_parent in id_map:
                merged["parent"] = id_map[old_parent]
            elif graft_parent is not None:
                merged["parent"] = graft_parent
            else:
                merged.pop("parent", None)
            if attrs:
                merged["attrs"] = {**(e.get("attrs") or {}), **attrs}
            self.events.append(merged)

    def spans(self, prefix: str = "") -> list[dict[str, Any]]:
        """Completed spans, oldest first, optionally filtered by prefix."""
        ordered = sorted(self.events, key=lambda e: e["t0"])
        if not prefix:
            return ordered
        return [e for e in ordered if e["name"].startswith(prefix)]

    def total(self, name: str) -> float:
        """Summed duration of all spans with exactly this name."""
        return sum(e["dur"] for e in self.events if e["name"] == name)

    def write_jsonl(self, path: str | Path) -> None:
        with Path(path).open("w") as fh:
            for event in self.spans():
                fh.write(json.dumps(event, sort_keys=True) + "\n")


#: The installed tracer; ``None`` keeps every span site on the no-op path.
_TRACER: Tracer | None = None


def current() -> Tracer | None:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _TRACER


def span(name: str, **attrs: Any):
    """A span on the installed tracer, or the shared no-op when disabled."""
    tracer = _TRACER
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


@contextmanager
def install(tracer: Tracer | None):
    """Install ``tracer`` as the process-wide tracer for the ``with`` body.

    Installation nests: the previous tracer (usually ``None``) is restored
    on exit, so library code and tests can scope tracing tightly.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    try:
        yield tracer
    finally:
        _TRACER = previous


def render_spans(events: list[dict[str, Any]]) -> str:
    """Text timeline of span events: indentation mirrors nesting."""
    lines = ["span timeline (seconds since trace start):"]
    for e in sorted(events, key=lambda e: (e["t0"], e.get("depth", 0))):
        indent = "  " * int(e.get("depth", 0))
        attrs = e.get("attrs") or {}
        suffix = (
            " [" + ", ".join(f"{k}={v}" for k, v in sorted(attrs.items())) + "]"
            if attrs
            else ""
        )
        lines.append(
            f"  {e['t0']:>9.4f}s +{e['dur']:.4f}s {indent}{e['name']}{suffix}"
        )
    return "\n".join(lines)
