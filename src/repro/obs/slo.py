"""SLO tracking: rolling-window objectives and multi-window burn rates.

An :class:`Objective` states what "good" means for one dimension of
service behaviour — e.g. *99% of requests answer within 500 ms*
(``kind="latency"``) or *99.9% of requests succeed*
(``kind="availability"``). An :class:`SLOTracker` classifies every
finished request against each objective and maintains per-objective
good/bad tallies in coarse time-bucketed rings, so memory is bounded by
``window / resolution`` regardless of traffic volume.

The headline derived quantity is the **burn rate** (Google SRE workbook
style): the observed bad-request ratio divided by the error budget
``1 - target``. A burn rate of 1.0 means the service is spending its
error budget exactly as fast as the objective allows; 10.0 means ten
times too fast. Burn rates are computed over several windows at once
(default 5 m / 30 m / 1 h / 6 h) because the standard alerting recipe
pairs a short and a long window — the short one for responsiveness, the
long one to suppress blips.

Timestamps are explicit throughout (``record(..., t=...)``) with an
injectable clock as the default, so the same tracker replays a run
ledger offline (``python -m repro obs slo``) and tracks a live service
(:mod:`repro.service.app`) with identical arithmetic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

#: Multi-window burn-rate defaults (seconds): 5 m, 30 m, 1 h, 6 h.
DEFAULT_WINDOWS: tuple[float, ...] = (300.0, 1800.0, 3600.0, 21600.0)

#: Ring bucket width in seconds; rolling windows are quantized to this.
DEFAULT_RESOLUTION = 10.0


@dataclass(frozen=True)
class Objective:
    """One service-level objective.

    ``kind`` is ``"latency"`` (good = request succeeded *and* finished
    within ``threshold_s``) or ``"availability"`` (good = request
    succeeded). ``target`` is the good-request ratio promised, e.g.
    ``0.99``; the error budget is ``1 - target``.
    """

    name: str
    kind: str
    target: float
    threshold_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "availability"):
            raise ValueError(f"unknown objective kind: {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1): {self.target!r}")
        if self.kind == "latency" and self.threshold_s <= 0.0:
            raise ValueError("latency objectives need a positive threshold_s")

    def is_good(self, ok: bool, latency_s: float) -> bool:
        if self.kind == "availability":
            return ok
        return ok and latency_s <= self.threshold_s

    def describe(self) -> str:
        if self.kind == "latency":
            return (
                f"{self.target:.4g} of requests within "
                f"{self.threshold_s * 1000.0:.4g} ms"
            )
        return f"{self.target:.4g} of requests succeed"


def default_objectives(
    latency_target: float = 0.99,
    latency_threshold_s: float = 1.0,
    availability_target: float = 0.999,
) -> tuple[Objective, ...]:
    """The service's stock objectives: request latency and availability."""
    return (
        Objective(
            name="latency",
            kind="latency",
            target=latency_target,
            threshold_s=latency_threshold_s,
        ),
        Objective(
            name="availability",
            kind="availability",
            target=availability_target,
        ),
    )


def window_label(seconds: float) -> str:
    """Compact label for a window length: 300 -> ``5m``, 3600 -> ``1h``."""
    if seconds % 3600 == 0:
        return f"{int(seconds // 3600)}h"
    if seconds % 60 == 0:
        return f"{int(seconds // 60)}m"
    return f"{int(seconds)}s"


class SLOTracker:
    """Rolling good/bad tallies per objective with burn-rate queries.

    Each objective keeps one ring of ``(total, bad)`` pairs keyed by
    quantized time bucket; :meth:`record` classifies a request against
    every objective at once. Buckets older than the longest window are
    pruned on write, bounding memory at
    ``max(windows) / resolution`` buckets per objective.
    """

    def __init__(
        self,
        objectives: tuple[Objective, ...] | list[Objective] | None = None,
        windows: tuple[float, ...] = DEFAULT_WINDOWS,
        resolution: float = DEFAULT_RESOLUTION,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if not windows:
            raise ValueError("need at least one window")
        self.objectives: tuple[Objective, ...] = tuple(
            objectives if objectives is not None else default_objectives()
        )
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names: {names}")
        self.windows: tuple[float, ...] = tuple(sorted(windows))
        self.resolution = float(resolution)
        self._clock: Callable[[], float] = (
            clock if clock is not None else time.monotonic
        )
        # objective name -> bucket index -> [total, bad]
        self._rings: dict[str, dict[int, list[int]]] = {
            o.name: {} for o in self.objectives
        }
        self._last_t: float | None = None

    # -- recording -------------------------------------------------------
    def record(
        self, ok: bool, latency_s: float, t: float | None = None
    ) -> None:
        """Classify one finished request against every objective."""
        now = self._clock() if t is None else t
        self._last_t = now if self._last_t is None else max(self._last_t, now)
        bucket = int(now // self.resolution)
        horizon = bucket - int(self.windows[-1] // self.resolution) - 1
        for obj in self.objectives:
            ring = self._rings[obj.name]
            entry = ring.get(bucket)
            if entry is None:
                entry = ring[bucket] = [0, 0]
                for stale in [b for b in ring if b < horizon]:
                    del ring[stale]
            entry[0] += 1
            if not obj.is_good(ok, latency_s):
                entry[1] += 1

    # -- queries ---------------------------------------------------------
    def _now(self, t: float | None) -> float:
        # Live queries use the clock so idle windows age out; offline
        # replay passes explicit timestamps (typically `last_recorded`,
        # so a ledger read hours later reports the run's own windows).
        return self._clock() if t is None else t

    @property
    def last_recorded(self) -> float | None:
        """Newest timestamp seen by :meth:`record` (for replay queries)."""
        return self._last_t

    def tally(
        self, objective: str, window: float, t: float | None = None
    ) -> tuple[int, int]:
        """``(total, bad)`` over the trailing ``window`` seconds."""
        now = self._now(t)
        first = int((now - window) // self.resolution) + 1
        total = bad = 0
        for bucket, (n, b) in self._rings[objective].items():
            if bucket >= first:
                total += n
                bad += b
        return total, bad

    def burn_rate(
        self, objective: str, window: float, t: float | None = None
    ) -> float:
        """Bad-request ratio over ``window`` divided by the error budget.

        0.0 when the window saw no traffic (no news is not bad news).
        """
        obj = self._objective(objective)
        total, bad = self.tally(objective, window, t)
        if total == 0:
            return 0.0
        return (bad / total) / (1.0 - obj.target)

    def _objective(self, name: str) -> Objective:
        for obj in self.objectives:
            if obj.name == name:
                return obj
        raise KeyError(name)

    # -- export ----------------------------------------------------------
    def gauges(self, t: float | None = None) -> dict[str, float]:
        """Flat gauge dict for ``/metrics`` (merged at scrape time)."""
        out: dict[str, float] = {}
        for obj in self.objectives:
            out[f"slo.{obj.name}.target"] = obj.target
            for window in self.windows:
                label = window_label(window)
                total, bad = self.tally(obj.name, window, t)
                rate = (
                    (bad / total) / (1.0 - obj.target) if total else 0.0
                )
                out[f"slo.{obj.name}.burn_rate_{label}"] = round(rate, 6)
                out[f"slo.{obj.name}.requests_{label}"] = float(total)
        return out

    def render(self, t: float | None = None) -> str:
        """Text report: one objective per block, one line per window."""
        lines: list[str] = []
        for obj in self.objectives:
            lines.append(f"objective {obj.name}: {obj.describe()}")
            for window in self.windows:
                total, bad = self.tally(obj.name, window, t)
                rate = (
                    (bad / total) / (1.0 - obj.target) if total else 0.0
                )
                flag = "  <-- burning" if rate > 1.0 else ""
                lines.append(
                    f"  {window_label(window):>4s}: burn {rate:7.2f}   "
                    f"bad {bad}/{total}{flag}"
                )
        return "\n".join(lines) if lines else "(no objectives)"

    def as_dict(self, t: float | None = None) -> dict[str, Any]:
        """JSON-friendly summary (the ``obs slo --json`` payload)."""
        report: dict[str, Any] = {"windows": list(self.windows), "objectives": []}
        for obj in self.objectives:
            entry: dict[str, Any] = {
                "name": obj.name,
                "kind": obj.kind,
                "target": obj.target,
                "windows": {},
            }
            if obj.kind == "latency":
                entry["threshold_s"] = obj.threshold_s
            for window in self.windows:
                total, bad = self.tally(obj.name, window, t)
                rate = (
                    (bad / total) / (1.0 - obj.target) if total else 0.0
                )
                entry["windows"][window_label(window)] = {
                    "total": total,
                    "bad": bad,
                    "burn_rate": round(rate, 6),
                }
            report["objectives"].append(entry)
        return report
