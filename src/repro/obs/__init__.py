"""Observability layer: tracing, metrics, decision traces, and logging.

Four cooperating pieces, all opt-in and free when disabled:

* :mod:`repro.obs.trace` — a span tracer (``with trace.span("name")``)
  with monotonic-clock timing and nesting; the disabled path is a shared
  no-op context manager behind one module-global read.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, unifying the
  loop-trip :class:`~repro.bounds.instrumentation.Counters` with timers
  and gauges; picklable and mergeable so parallel workers' metrics
  aggregate deterministically back to the parent.
* :mod:`repro.obs.decision_trace` — :class:`DecisionRecorder`, the
  Balance scheduler's per-cycle decision log (dynamic Early/Late bounds,
  NeedEach/NeedOne, TakeEach/TakeOne, pairwise tradeoff justifications),
  exported as JSONL and rendered by ``python -m repro trace``.
* :mod:`repro.obs.logsetup` — :func:`setup_logging`, the package's one
  logging configuration helper.

See docs/observability.md for span names, the event schema, and a worked
Figure 2 walkthrough.
"""

from repro.obs.decision_trace import (
    DecisionRecorder,
    decision_trace_to_dot,
    load_jsonl,
    render_decision_trace,
)
from repro.obs.logsetup import get_logger, setup_logging
from repro.obs.metrics import (
    MetricsRegistry,
    active,
    active_counters,
    render_metrics,
)
from repro.obs.trace import Tracer, current, install, render_spans, span

__all__ = [
    "DecisionRecorder",
    "MetricsRegistry",
    "Tracer",
    "active",
    "active_counters",
    "current",
    "decision_trace_to_dot",
    "get_logger",
    "install",
    "load_jsonl",
    "render_decision_trace",
    "render_metrics",
    "render_spans",
    "setup_logging",
    "span",
]
