"""Observability layer: tracing, metrics, decision traces, and logging.

Ten cooperating pieces, all opt-in and free when disabled:

* :mod:`repro.obs.trace` — a span tracer (``with trace.span("name")``)
  with monotonic-clock timing and nesting; the disabled path is a shared
  no-op context manager behind one module-global read.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, unifying the
  loop-trip :class:`~repro.bounds.instrumentation.Counters` with timers
  and gauges; picklable and mergeable so parallel workers' metrics
  aggregate deterministically back to the parent.
* :mod:`repro.obs.decision_trace` — :class:`DecisionRecorder`, the
  Balance scheduler's per-cycle decision log (dynamic Early/Late bounds,
  NeedEach/NeedOne, TakeEach/TakeOne, pairwise tradeoff justifications),
  exported as JSONL and rendered by ``python -m repro trace``.
* :mod:`repro.obs.logsetup` — :func:`setup_logging`, the package's one
  logging configuration helper.
* :mod:`repro.obs.profile` — :class:`ProfileSession`, sampling/cProfile
  capture with per-span hotspot attribution (``python -m repro profile``).
* :mod:`repro.obs.export` — one-way bridges to standard tooling: span
  JSONL to Chrome trace-event JSON (Perfetto / ``chrome://tracing``),
  metrics dumps to Prometheus text exposition.
* :mod:`repro.obs.trend` — bench history records, direction-aware run
  comparison, and sparkline trend rendering
  (``python -m repro bench --compare/--trend``).
* :mod:`repro.obs.ledger` — schema-versioned JSONL run records (args,
  git SHA, spans, counters, cache/dispatch stats, per-block detail)
  appended by every CLI run (``--ledger`` / ``REPRO_LEDGER_DIR``) and
  queried by ``python -m repro obs``.
* :mod:`repro.obs.anomaly` — robust z-score outlier attribution over
  ledger records: loose-bound blocks, slow solves, wall/cache/
  utilization regressions against same-command history.
* :mod:`repro.obs.dashboard` — a self-contained static HTML dashboard
  (inline SVG sparklines + span flamegraph, per-block outlier tables,
  bench strip) via ``python -m repro obs dashboard``.

See docs/observability.md for span names, the event schema, and a worked
Figure 2 walkthrough.
"""

from repro.obs.anomaly import (
    Anomaly,
    block_anomalies,
    find_anomalies,
    history_anomalies,
    render_anomalies,
    robust_z_scores,
)
from repro.obs.dashboard import render_dashboard, write_dashboard
from repro.obs.decision_trace import (
    DecisionRecorder,
    decision_trace_to_dot,
    load_jsonl,
    render_decision_trace,
)
from repro.obs.export import (
    metrics_to_prometheus,
    spans_to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.ledger import (
    RunRecorder,
    active_recorder,
    append_run,
    installed,
    load_ledger,
    render_blocks,
    render_diff,
    render_summary,
    resolve_run,
)
from repro.obs.logsetup import get_logger, setup_logging
from repro.obs.metrics import (
    MetricsRegistry,
    active,
    active_counters,
    render_metrics,
)
from repro.obs.profile import ProfileConfig, ProfileReport, ProfileSession
from repro.obs.trace import Tracer, current, install, render_spans, span
from repro.obs.trend import (
    append_record,
    compare_runs,
    load_history,
    make_record,
    render_comparison,
    render_trend,
)

__all__ = [
    "Anomaly",
    "DecisionRecorder",
    "MetricsRegistry",
    "ProfileConfig",
    "ProfileReport",
    "ProfileSession",
    "RunRecorder",
    "Tracer",
    "active",
    "active_counters",
    "active_recorder",
    "append_record",
    "append_run",
    "block_anomalies",
    "compare_runs",
    "current",
    "decision_trace_to_dot",
    "find_anomalies",
    "get_logger",
    "history_anomalies",
    "install",
    "installed",
    "load_history",
    "load_jsonl",
    "load_ledger",
    "make_record",
    "metrics_to_prometheus",
    "render_anomalies",
    "render_blocks",
    "render_comparison",
    "render_dashboard",
    "render_decision_trace",
    "render_diff",
    "render_metrics",
    "render_spans",
    "render_summary",
    "render_trend",
    "resolve_run",
    "robust_z_scores",
    "setup_logging",
    "span",
    "spans_to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
