"""Exporters: span JSONL to Chrome trace-event JSON, metrics to Prometheus.

Two one-way bridges from the repo's native observability formats to
standard tooling:

* :func:`spans_to_chrome_trace` turns span events (the
  :class:`~repro.obs.trace.Tracer` JSONL schema) into the Chrome
  trace-event *JSON object format* — ``{"traceEvents": [...]}`` with
  complete (``"ph": "X"``) events — loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``. The main process
  gets one timeline track; every worker unit merged by
  :func:`repro.perf.workers.corpus_map` (``origin="worker"`` attrs) gets
  its own track, so parallel runs render as a complete per-unit
  timeline.
* :func:`metrics_to_prometheus` turns a serialized
  :class:`~repro.obs.metrics.MetricsRegistry` dump into the Prometheus
  text exposition format (version 0.0.4): counters become ``_total``
  counters, timers become ``_seconds_total`` / ``_calls_total`` pairs,
  gauges stay gauges, and streaming histograms become proper
  ``histogram`` families (cumulative ``_bucket{le=...}`` series plus
  ``_sum`` / ``_count``).

Both are pure functions over the already-written artifacts — exporting
never re-runs anything and never touches the hot path. The CLI front end
is ``python -m repro export {chrome-trace,prometheus} FILE``.

:func:`validate_chrome_trace` checks an exported document against the
trace-event schema (the subset this exporter emits); tests and the
``--validate`` CLI flag use it so a malformed export fails loudly here
rather than silently rendering an empty timeline in Perfetto.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any

from repro.obs.metrics import HIST_BUCKETS

#: Single logical process id for the whole run.
_PID = 1

#: Thread id of the orchestrating process's timeline track.
MAIN_TID = 1

#: Worker-unit tracks start here (tid = WORKER_TID_BASE + unit index).
WORKER_TID_BASE = 2


def _event_tid(event: dict[str, Any]) -> int:
    attrs = event.get("attrs") or {}
    if attrs.get("origin") == "worker":
        return WORKER_TID_BASE + int(attrs.get("unit", 0))
    return MAIN_TID


def spans_to_chrome_trace(
    events: list[dict[str, Any]], process_name: str = "repro"
) -> dict[str, Any]:
    """Convert span events into a Chrome trace-event JSON document.

    Non-span events (e.g. Balance decision events in a mixed trace file)
    are ignored; raises ``ValueError`` when no span events remain, so the
    caller can point at the decision-trace renderer instead.

    Times: the span schema records seconds relative to trace start;
    trace-event wants microseconds (``ts``/``dur``). Span attrs ride
    along in ``args``.
    """
    spans = [e for e in events if e.get("event") == "span"]
    if not spans:
        raise ValueError(
            "no span events to export (decision traces render with "
            "'python -m repro trace', not the Chrome exporter)"
        )
    trace_events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": MAIN_TID,
            "args": {"name": process_name},
        }
    ]
    named_tids: set[int] = set()
    body: list[dict[str, Any]] = []
    for e in sorted(spans, key=lambda e: (e["t0"], e.get("depth", 0))):
        tid = _event_tid(e)
        if tid not in named_tids:
            named_tids.add(tid)
            label = (
                "main"
                if tid == MAIN_TID
                else f"worker unit {tid - WORKER_TID_BASE}"
            )
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _PID,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
        args: dict[str, Any] = dict(e.get("attrs") or {})
        args["depth"] = e.get("depth", 0)
        body.append(
            {
                "name": e["name"],
                "cat": "span",
                "ph": "X",
                "ts": round(float(e["t0"]) * 1e6, 3),
                "dur": round(float(e["dur"]) * 1e6, 3),
                "pid": _PID,
                "tid": tid,
                "args": args,
            }
        )
    return {"traceEvents": trace_events + body, "displayTimeUnit": "ms"}


def validate_chrome_trace(doc: dict[str, Any]) -> list[str]:
    """Schema check for an exported document; returns the problems found.

    Covers the trace-event JSON object format subset this exporter
    emits: a ``traceEvents`` list whose entries carry ``ph``/``pid``;
    complete events additionally need a non-empty ``name`` and
    non-negative numeric ``ts``/``dur``. An empty list means valid.
    """
    problems: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    if not any(e.get("ph") == "X" for e in events if isinstance(e, dict)):
        problems.append("no complete ('ph': 'X') events")
    for idx, e in enumerate(events):
        if not isinstance(e, dict):
            problems.append(f"event {idx}: not an object")
            continue
        ph = e.get("ph")
        if ph not in ("X", "M", "B", "E", "i", "C"):
            problems.append(f"event {idx}: unknown phase {ph!r}")
        if not isinstance(e.get("pid"), int):
            problems.append(f"event {idx}: pid missing or not an int")
        if ph != "X":
            continue
        if not e.get("name"):
            problems.append(f"event {idx}: complete event without a name")
        for key in ("ts", "dur"):
            value = e.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(
                    f"event {idx}: {key} missing, non-numeric, or negative"
                )
        if not isinstance(e.get("tid"), int):
            problems.append(f"event {idx}: tid missing or not an int")
    return problems


def write_chrome_trace(doc: dict[str, Any], path: str | Path) -> None:
    with Path(path).open("w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------
_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(prefix: str, name: str) -> str:
    """Sanitize a dotted metric name into a legal Prometheus name."""
    cleaned = _NAME_RE.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"{prefix}_{cleaned}"


def metrics_to_prometheus(data: dict[str, Any], prefix: str = "repro") -> str:
    """Render a serialized registry in Prometheus text exposition format.

    ``data`` is the :meth:`MetricsRegistry.as_dict` shape (what
    ``--metrics-out`` writes): ``{"counters": {...}, "timers":
    {name: {"total_s", "count"}}, "gauges": {...}}``. Dots and other
    illegal characters in metric names become underscores; the original
    dotted name is preserved in a ``name`` label so nothing is lost to
    sanitization collisions.
    """
    lines: list[str] = []

    def emit(metric: str, kind: str, help_text: str, value: Any, raw: str) -> None:
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} {kind}")
        lines.append(f'{metric}{{name="{raw}"}} {value}')

    for name in sorted(data.get("counters", {})):
        emit(
            _metric_name(prefix, name) + "_total",
            "counter",
            f"repro counter {name}",
            data["counters"][name],
            name,
        )
    for name in sorted(data.get("timers", {})):
        entry = data["timers"][name]
        base = _metric_name(prefix, name)
        emit(
            base + "_seconds_total",
            "counter",
            f"repro timer {name} accumulated seconds",
            entry["total_s"],
            name,
        )
        emit(
            base + "_calls_total",
            "counter",
            f"repro timer {name} call count",
            entry["count"],
            name,
        )
    for name in sorted(data.get("gauges", {})):
        emit(
            _metric_name(prefix, name),
            "gauge",
            f"repro gauge {name}",
            data["gauges"][name],
            name,
        )
    for name in sorted(data.get("histograms", {})):
        entry = data["histograms"][name]
        base = _metric_name(prefix, name)
        lines.append(f"# HELP {base} repro histogram {name}")
        lines.append(f"# TYPE {base} histogram")
        cumulative = 0
        bounds = HIST_BUCKETS[: max(0, len(entry["buckets"]) - 1)]
        for bound, count in zip(bounds, entry["buckets"]):
            cumulative += count
            le = format(bound, "g")
            lines.append(
                f'{base}_bucket{{name="{name}",le="{le}"}} {cumulative}'
            )
        cumulative += entry["buckets"][-1] if entry["buckets"] else 0
        lines.append(f'{base}_bucket{{name="{name}",le="+Inf"}} {cumulative}')
        lines.append(f'{base}_sum{{name="{name}"}} {entry["sum"]}')
        lines.append(f'{base}_count{{name="{name}"}} {entry["count"]}')
    return "\n".join(lines) + ("\n" if lines else "")


#: One sample line: name, optional {labels}, numeric value.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\n]*\""  # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\n]*\")*\})?"  # more labels
    r" [0-9eE+.\-]+$"  # value
)


#: Histogram family sample suffixes and the base-family TYPE they imply.
_HIST_SUFFIXES = ("_bucket", "_sum", "_count")

_LE_RE = re.compile(r'le="([^"]*)"')


def _hist_base(metric: str, typed: dict[str, str]) -> str | None:
    """The histogram family a suffixed sample belongs to, if any."""
    for suffix in _HIST_SUFFIXES:
        if metric.endswith(suffix):
            base = metric[: -len(suffix)]
            if typed.get(base) == "histogram":
                return base
    return None


def validate_prometheus_text(text: str) -> list[str]:
    """Lint a text exposition (0.0.4) document; returns the problems found.

    Covers the subset :func:`metrics_to_prometheus` emits — ``# HELP`` /
    ``# TYPE`` comment pairs followed by labelled samples — plus the
    format's ground rules (legal names, numeric values, a ``TYPE``
    declared before its samples). ``histogram`` families are checked
    structurally: ``_bucket`` series must be cumulative (monotone
    non-decreasing in ``le`` order of appearance), end in a ``+Inf``
    bucket whose value equals the ``_count`` sample, and carry a
    ``_sum``. An empty list means valid; the service smoke test and CI's
    ``/metrics`` scrape both gate on it.
    """
    problems: list[str] = []
    typed: dict[str, str] = {}
    sampled = False
    # base family -> {"buckets": [(lineno, le, value)], "sum": ..., "count": ...}
    hists: dict[str, dict[str, Any]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                problems.append(f"line {lineno}: malformed TYPE comment")
            else:
                typed[parts[2]] = parts[3]
                if parts[3] == "histogram":
                    hists.setdefault(
                        parts[2], {"buckets": [], "sum": None, "count": None}
                    )
            continue
        if line.startswith("#"):
            if not line.startswith("# HELP "):
                problems.append(
                    f"line {lineno}: unknown comment (expect HELP/TYPE)"
                )
            continue
        if not _SAMPLE_RE.match(line):
            problems.append(f"line {lineno}: malformed sample {line!r}")
            continue
        sampled = True
        metric = re.split(r"[{ ]", line, maxsplit=1)[0]
        base = _hist_base(metric, typed)
        if base is not None:
            fam = hists[base]
            value = float(line.rsplit(" ", 1)[1])
            if metric.endswith("_bucket"):
                le_match = _LE_RE.search(line)
                if le_match is None:
                    problems.append(
                        f"line {lineno}: histogram bucket without an "
                        f"'le' label"
                    )
                    continue
                raw_le = le_match.group(1)
                le = float("inf") if raw_le == "+Inf" else float(raw_le)
                fam["buckets"].append((lineno, le, value))
            elif metric.endswith("_sum"):
                fam["sum"] = value
            else:
                fam["count"] = value
            continue
        if metric not in typed:
            problems.append(
                f"line {lineno}: sample {metric!r} has no preceding TYPE"
            )
    for base, fam in sorted(hists.items()):
        buckets = fam["buckets"]
        if not buckets:
            problems.append(f"histogram {base}: no _bucket samples")
            continue
        prev_le, prev_value = float("-inf"), float("-inf")
        for lineno, le, value in buckets:
            if le <= prev_le:
                problems.append(
                    f"line {lineno}: histogram {base} bucket le={le} not "
                    f"increasing"
                )
            if value < prev_value:
                problems.append(
                    f"line {lineno}: histogram {base} cumulative bucket "
                    f"count decreases ({value} < {prev_value})"
                )
            prev_le, prev_value = le, value
        if buckets[-1][1] != float("inf"):
            problems.append(f"histogram {base}: missing '+Inf' bucket")
        elif fam["count"] is None:
            problems.append(f"histogram {base}: missing _count sample")
        elif buckets[-1][2] != fam["count"]:
            problems.append(
                f"histogram {base}: '+Inf' bucket ({buckets[-1][2]}) != "
                f"_count ({fam['count']})"
            )
        if fam["sum"] is None:
            problems.append(f"histogram {base}: missing _sum sample")
    if not sampled and not problems:
        problems.append("no samples in exposition")
    return problems
