"""Unified metrics registry: counters, timers, and gauges.

:class:`MetricsRegistry` extends the loop-trip :class:`Counters` of
:mod:`repro.bounds.instrumentation` with accumulating timers and last-set
gauges, behind one picklable, mergeable object:

* **counters** — exact integer event counts (loop trips, decisions);
  these are deterministic and must be *identical* for serial and parallel
  evaluation of the same work (tests/test_parallel_eval.py).
* **timers** — accumulated wall-clock seconds plus call counts per name;
  useful for attribution, not for identity (wall time is never
  deterministic).
* **gauges** — last-written values (corpus sizes, configuration facts).
* **histograms** — bounded-memory streaming latency distributions over a
  fixed exponential bucket layout (:data:`HIST_BUCKETS`); exported as
  proper Prometheus ``histogram`` families and queried for approximate
  quantiles (p50/p99) without retaining per-observation samples.

Worker integration: :func:`repro.perf.workers.corpus_map` activates a
fresh registry around each work unit in worker processes, ships the
serialized delta back with the result, and merges the deltas into the
caller's registry **in input order** — so counters aggregate exactly as
they would have serially, fixing the historical silent loss of counters
under ``--jobs N``.

Activation: library kernels obtain the ambient registry with
:func:`active` / :func:`active_counters` instead of threading it through
every signature. The active registry is process-global (the evaluation
pipeline is single-threaded per process by design).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any

from repro.bounds.instrumentation import Counters

#: Fixed exponential bucket upper bounds in seconds: 0.5 ms doubling up to
#: ~262 s, plus an implicit ``+Inf`` overflow bucket. Twenty buckets at a
#: factor-2 ratio give ~±50% relative resolution across six decades of
#: latency — enough to separate a cache replay (sub-millisecond) from a
#: cold pool dispatch (seconds) with O(1) memory per histogram.
HIST_BUCKETS: tuple[float, ...] = tuple(0.0005 * (2.0**i) for i in range(20))


class Histogram:
    """Streaming histogram over the fixed :data:`HIST_BUCKETS` layout.

    Stores one cumulative-free count per bucket (the Prometheus exporter
    cumulates at render time), a running sum, and a total count — memory
    is constant regardless of observation volume. Mergeable like the rest
    of the registry: bucket layouts are process-wide constant, so merging
    is element-wise addition.
    """

    __slots__ = ("counts", "sum", "count")

    def __init__(self) -> None:
        # One slot per finite bucket plus the +Inf overflow slot.
        self.counts: list[int] = [0] * (len(HIST_BUCKETS) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        lo, hi = 0, len(HIST_BUCKETS)
        while lo < hi:  # first bucket with upper bound >= value
            mid = (lo + hi) // 2
            if value <= HIST_BUCKETS[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.sum += value
        self.count += 1

    def merge(self, other: "Histogram") -> None:
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.sum += other.sum
        self.count += other.count

    def quantile(self, q: float) -> float:
        """Approximate quantile via linear interpolation within a bucket.

        Returns 0.0 on an empty histogram. Observations that overflowed
        into ``+Inf`` report the largest finite bound (there is no upper
        edge to interpolate toward).
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cum = 0.0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cum + n >= rank:
                if i >= len(HIST_BUCKETS):
                    return HIST_BUCKETS[-1]
                lower = HIST_BUCKETS[i - 1] if i > 0 else 0.0
                upper = HIST_BUCKETS[i]
                frac = (rank - cum) / n
                return lower + (upper - lower) * frac
            cum += n
        return HIST_BUCKETS[-1]

    def as_dict(self) -> dict[str, Any]:
        return {
            "buckets": list(self.counts),
            "sum": round(self.sum, 6),
            "count": self.count,
        }

    def merge_dict(self, data: dict[str, Any]) -> None:
        buckets = data.get("buckets", [])
        for i, n in enumerate(buckets):
            if i < len(self.counts):
                self.counts[i] += n
        self.sum += data.get("sum", 0.0)
        self.count += data.get("count", 0)


class MetricsRegistry:
    """Mergeable counters + timers + gauges for one evaluation run."""

    __slots__ = ("counters", "_timers", "_gauges", "_histograms")

    def __init__(self) -> None:
        self.counters = Counters()
        self._timers: dict[str, list[float]] = {}  # name -> [total_s, count]
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- counters --------------------------------------------------------
    def add(self, name: str, amount: int = 1) -> None:
        self.counters.add(name, amount)

    # -- timers ----------------------------------------------------------
    @contextmanager
    def timer(self, name: str):
        """Accumulate the wall-clock duration of the ``with`` body."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - t0)

    def observe(self, name: str, seconds: float) -> None:
        entry = self._timers.get(name)
        if entry is None:
            self._timers[name] = [seconds, 1]
        else:
            entry[0] += seconds
            entry[1] += 1

    def timer_seconds(self, name: str) -> float:
        entry = self._timers.get(name)
        return entry[0] if entry else 0.0

    # -- gauges ----------------------------------------------------------
    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    # -- histograms ------------------------------------------------------
    def observe_hist(self, name: str, seconds: float) -> None:
        """Record one observation into the named streaming histogram."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(seconds)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    # -- aggregation -----------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (counters/timers sum;
        gauges: the merged-in value wins, matching input order)."""
        self.counters.merge(other.counters)
        for name, (total, count) in other._timers.items():
            entry = self._timers.get(name)
            if entry is None:
                self._timers[name] = [total, count]
            else:
                entry[0] += total
                entry[1] += count
        self._gauges.update(other._gauges)
        for name, hist in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = Histogram()
            mine.merge(hist)

    def merge_dict(self, data: dict[str, Any]) -> None:
        """Merge a serialized registry (the worker return path)."""
        for name, value in data.get("counters", {}).items():
            self.counters.add(name, value)
        for name, entry in data.get("timers", {}).items():
            self.observe(name, entry["total_s"])
            # observe() counted one call; correct to the recorded count.
            self._timers[name][1] += entry["count"] - 1
        self._gauges.update(data.get("gauges", {}))
        for name, entry in data.get("histograms", {}).items():
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.merge_dict(entry)

    def as_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "counters": self.counters.as_dict(),
            "timers": {
                name: {"total_s": round(total, 6), "count": count}
                for name, (total, count) in sorted(self._timers.items())
            },
            "gauges": dict(sorted(self._gauges.items())),
        }
        # Key emitted only when populated: pre-histogram serialized
        # registries (ledger records, cached worker deltas) keep their
        # exact shape, and merge_dict treats the missing key as empty.
        if self._histograms:
            data["histograms"] = {
                name: hist.as_dict()
                for name, hist in sorted(self._histograms.items())
            }
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MetricsRegistry":
        reg = cls()
        reg.merge_dict(data)
        return reg

    def save(self, path: str | Path) -> None:
        with Path(path).open("w") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        d = self.as_dict()
        return (
            f"MetricsRegistry({len(d['counters'])} counters, "
            f"{len(d['timers'])} timers, {len(d['gauges'])} gauges)"
        )

    # -- activation ------------------------------------------------------
    @contextmanager
    def activated(self):
        """Make this registry the ambient one for the ``with`` body."""
        _STACK.append(self)
        try:
            yield self
        finally:
            _STACK.pop()


#: Activation stack; the innermost activated registry is the ambient one.
_STACK: list[MetricsRegistry] = []


def active() -> MetricsRegistry | None:
    """The ambient registry, or ``None`` when metering is disabled."""
    return _STACK[-1] if _STACK else None


def active_counters() -> Counters | None:
    """The ambient registry's counters — the object bound algorithms and
    schedulers accept as their optional ``counters`` argument."""
    reg = active()
    return reg.counters if reg is not None else None


def render_metrics(data: dict[str, Any]) -> str:
    """Human-readable rendering of a serialized registry."""
    lines: list[str] = []
    counters = data.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}s} = {counters[name]}")
    timers = data.get("timers", {})
    if timers:
        lines.append("timers:")
        width = max(len(n) for n in timers)
        for name in sorted(timers):
            entry = timers[name]
            lines.append(
                f"  {name:<{width}s} = {entry['total_s']:.4f}s "
                f"over {entry['count']} calls"
            )
    gauges = data.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(n) for n in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}s} = {gauges[name]}")
    return "\n".join(lines) if lines else "(no metrics recorded)"
