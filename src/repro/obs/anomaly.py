"""Statistical anomaly attribution over ledger run records.

Two passes over :mod:`repro.obs.ledger` data:

* **within-run** (:func:`block_anomalies`) — which blocks of one run are
  outliers against their peers: loose bounds (best heuristic WCT far
  above the tightest bound, or the widest bound-family gap) and slow
  solves (attributed span seconds);
* **across-history** (:func:`history_anomalies`) — how one run compares
  to prior runs of the same command: wall-clock regressions, cold-cache
  regressions (hit rate well below the historical median), and low
  worker-pool utilization.

Outliers are scored with the modified z-score ``0.6745 * (x - median) /
MAD`` (Iglewicz & Hoaglin), which a single wild value cannot drag the
way a mean/stdev z-score can; when the MAD degenerates to ~0 the
population standard deviation stands in. Both passes are advisory: they
read records, never mutate them, and short histories yield no flags
rather than noisy ones.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any

from repro.obs.ledger import block_gap

#: Default modified-z threshold; 3.5 is the Iglewicz–Hoaglin convention.
DEFAULT_Z = 3.5

#: Minimum prior same-command runs before history comparisons fire.
MIN_HISTORY = 4

#: Absolute cache hit-rate drop below the historical median that flags.
CACHE_DROP = 0.2

#: Pool utilization below this fraction of the historical median flags.
UTILIZATION_FRACTION = 0.5

_NEAR_ZERO = 1e-12


@dataclass
class Anomaly:
    """One flagged outlier, within a run or against history."""

    kind: str  #: e.g. ``loose-bound``, ``slow-solve``, ``wall-regression``
    scope: str  #: ``"block"`` or ``"run"``
    run_id: str
    subject: str  #: block name (block scope) or command (run scope)
    value: float
    baseline: float  #: population median the value was judged against
    score: float  #: modified z-score (or ratio for threshold rules)
    detail: str = ""
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "scope": self.scope,
            "run_id": self.run_id,
            "subject": self.subject,
            "value": self.value,
            "baseline": self.baseline,
            "score": self.score,
            "detail": self.detail,
            **({"fields": self.fields} if self.fields else {}),
        }


def robust_z_scores(values: list[float]) -> list[float]:
    """Modified z-score per value; zeros when the spread degenerates."""
    if len(values) < 2:
        return [0.0] * len(values)
    med = statistics.median(values)
    mad = statistics.median(abs(v - med) for v in values)
    if mad > _NEAR_ZERO:
        return [0.6745 * (v - med) / mad for v in values]
    spread = statistics.pstdev(values)
    if spread > _NEAR_ZERO:
        return [(v - med) / spread for v in values]
    return [0.0] * len(values)


def _high_outliers(
    rows: list[tuple[str, float]], z_threshold: float
) -> list[tuple[str, float, float, float]]:
    """(subject, value, median, score) for high-side outliers only."""
    if len(rows) < 3:
        return []
    values = [v for _, v in rows]
    med = statistics.median(values)
    out = []
    for (subject, value), score in zip(rows, robust_z_scores(values)):
        if score > z_threshold:
            out.append((subject, value, med, score))
    return out


def block_anomalies(
    record: dict[str, Any], z_threshold: float = DEFAULT_Z
) -> list[Anomaly]:
    """Outlier blocks of one run: loose bounds and slow solves."""
    run_id = str(record.get("run_id", "?"))
    blocks = record.get("blocks") or []
    anomalies: list[Anomaly] = []

    def subject(row: dict[str, Any]) -> str:
        machine = row.get("machine")
        return f"{row.get('sb', '?')}@{machine}" if machine else str(
            row.get("sb", "?")
        )

    gap_rows = [
        (subject(row), gap)
        for row in blocks
        if (gap := block_gap(row)) is not None
    ]
    for name, value, med, score in _high_outliers(gap_rows, z_threshold):
        anomalies.append(
            Anomaly(
                kind="loose-bound",
                scope="block",
                run_id=run_id,
                subject=name,
                value=round(value, 4),
                baseline=round(med, 4),
                score=round(score, 2),
                detail=(
                    f"gap {value:.2f}% over the tightest bound vs "
                    f"run median {med:.2f}%"
                ),
            )
        )

    solve_rows = [
        (subject(row), float(row["solve_s"]))
        for row in blocks
        if row.get("solve_s") is not None
    ]
    for name, value, med, score in _high_outliers(solve_rows, z_threshold):
        anomalies.append(
            Anomaly(
                kind="slow-solve",
                scope="block",
                run_id=run_id,
                subject=name,
                value=round(value, 6),
                baseline=round(med, 6),
                score=round(score, 2),
                detail=(
                    f"solve {value * 1e3:.2f}ms vs run median "
                    f"{med * 1e3:.2f}ms"
                ),
            )
        )
    anomalies.sort(key=lambda a: -a.score)
    return anomalies


def history_anomalies(
    records: list[dict[str, Any]],
    target: dict[str, Any],
    z_threshold: float = DEFAULT_Z,
    min_records: int = MIN_HISTORY,
) -> list[Anomaly]:
    """How ``target`` compares to prior runs of the same command."""
    run_id = str(target.get("run_id", "?"))
    command = str(target.get("command", "?"))
    prior = [
        r
        for r in records
        if r.get("command") == command and r.get("run_id") != target.get("run_id")
    ]
    anomalies: list[Anomaly] = []
    if len(prior) < min_records:
        return anomalies

    walls = [float(r.get("wall_seconds", 0.0)) for r in prior]
    wall = float(target.get("wall_seconds", 0.0))
    scores = robust_z_scores(walls + [wall])
    if scores[-1] > z_threshold:
        med = statistics.median(walls)
        anomalies.append(
            Anomaly(
                kind="wall-regression",
                scope="run",
                run_id=run_id,
                subject=command,
                value=round(wall, 4),
                baseline=round(med, 4),
                score=round(scores[-1], 2),
                detail=(
                    f"wall {wall:.3f}s vs median {med:.3f}s over "
                    f"{len(prior)} prior {command} runs"
                ),
            )
        )

    rates = [
        r["cache"]["hit_rate"]
        for r in prior
        if isinstance(r.get("cache"), dict) and "hit_rate" in r["cache"]
    ]
    cache = target.get("cache")
    if len(rates) >= min_records and isinstance(cache, dict):
        rate = float(cache.get("hit_rate", 0.0))
        med = statistics.median(rates)
        if med - rate > CACHE_DROP:
            anomalies.append(
                Anomaly(
                    kind="cache-cold",
                    scope="run",
                    run_id=run_id,
                    subject=command,
                    value=round(rate, 4),
                    baseline=round(med, 4),
                    score=round(med - rate, 2),
                    detail=(
                        f"cache hit rate {100 * rate:.0f}% vs median "
                        f"{100 * med:.0f}% — cold or invalidated cache"
                    ),
                )
            )

    utils = [
        r["dispatch"]["utilization"]
        for r in prior
        if isinstance(r.get("dispatch"), dict)
        and r["dispatch"].get("mode") == "pool"
    ]
    dispatch = target.get("dispatch")
    if (
        len(utils) >= min_records
        and isinstance(dispatch, dict)
        and dispatch.get("mode") == "pool"
    ):
        util = float(dispatch.get("utilization", 0.0))
        med = statistics.median(utils)
        if med > _NEAR_ZERO and util < UTILIZATION_FRACTION * med:
            anomalies.append(
                Anomaly(
                    kind="low-utilization",
                    scope="run",
                    run_id=run_id,
                    subject=command,
                    value=round(util, 4),
                    baseline=round(med, 4),
                    score=round(util / med, 2),
                    detail=(
                        f"pool utilization {100 * util:.0f}% vs median "
                        f"{100 * med:.0f}% — workers mostly idle"
                    ),
                )
            )
    return anomalies


def find_anomalies(
    records: list[dict[str, Any]],
    run: dict[str, Any] | None = None,
    z_threshold: float = DEFAULT_Z,
) -> list[Anomaly]:
    """Both passes for one run (default: the newest record)."""
    if not records and run is None:
        return []
    target = run if run is not None else records[-1]
    out = block_anomalies(target, z_threshold)
    out.extend(history_anomalies(records, target, z_threshold))
    return out


def render_anomalies(anomalies: list[Anomaly]) -> str:
    """One line per anomaly, or an all-clear."""
    if not anomalies:
        return "no anomalies flagged"
    lines = [f"{len(anomalies)} anomal{'y' if len(anomalies) == 1 else 'ies'}:"]
    for a in anomalies:
        lines.append(
            f"  [{a.kind}] {a.subject}: {a.detail} (score {a.score:.2f})"
        )
    return "\n".join(lines)
