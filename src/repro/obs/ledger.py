"""Run ledger: schema-versioned JSONL records of every CLI run.

Every observed CLI command (schedule/bounds/tables/figure8/report/bench/
verify) can append one JSONL *run record* to a local ledger directory
(``--ledger DIR`` or the ``REPRO_LEDGER_DIR`` environment variable;
``--no-ledger`` opts out). A record captures everything needed to ask
"what did this run do, block by block, and how does that compare to
history":

* run identity — ``run_id``, timestamp, git SHA, command and argv;
* timing — total wall seconds plus per-span-name total/self times
  (:func:`repro.obs.profile.span_accounting`) and capped per-*path*
  aggregates the dashboard renders as a flamegraph;
* counters/timers/gauges from the ambient
  :class:`~repro.obs.metrics.MetricsRegistry` when one is active (the
  ledger never activates metering itself — counter instrumentation costs
  real time, and ledger overhead is gated below 5%);
* cache statistics (hit rate included) and the run's last
  :class:`~repro.perf.runner.DispatchStats`;
* a **per-unit block table**: one row per (superblock, machine) with
  op/branch/edge counts, each bound value and its gap to the tightest,
  per-heuristic WCT and makespan, attributed solve seconds, and cache
  hit/miss counts.

Bit-identity contract (the ``ledger`` verify oracle family enforces it):
the recorder only *reads* ambient state — results, counters, and span
inventories are identical with the ledger on or off.

Collection follows the ambient-scope idiom of :mod:`repro.obs.trace` and
:mod:`repro.cache`: the CLI installs a :class:`RunRecorder` via
:func:`installed`; the eval layer publishes block rows through
:func:`active_recorder` and stays decoupled otherwise.

Ingestion (:func:`load_ledger`) is hardened like ``trace.load_jsonl``:
truncated or corrupt lines raise ``ValueError`` naming ``path:lineno``,
records missing required keys fail loudly, and a record written by a
*newer* schema version is reported as skew instead of being half-parsed.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any

#: Run-record schema version (bump on breaking shape changes).
SCHEMA_VERSION = 1

#: Environment variable naming the default ledger directory.
LEDGER_ENV = "REPRO_LEDGER_DIR"

#: File name of the JSONL ledger inside the ledger directory.
LEDGER_FILENAME = "LEDGER.jsonl"

#: Keys every run record must carry (schema-independent identity core).
REQUIRED_KEYS = ("schema", "run_id", "timestamp", "command")

#: Per-path span aggregates kept per record (largest total time first).
MAX_SPAN_PATHS = 150

_RUN_SEQ = itertools.count()


def ledger_path(directory: str | Path) -> Path:
    """The JSONL file inside a ledger directory."""
    return Path(directory) / LEDGER_FILENAME


def args_payload(args: Any) -> dict[str, Any]:
    """JSON-safe subset of a parsed argparse namespace."""
    out: dict[str, Any] = {}
    for key, value in sorted(vars(args).items()):
        if isinstance(value, (bool, int, float, str)) or value is None:
            out[key] = value
        elif isinstance(value, (list, tuple)):
            out[key] = [v for v in value if isinstance(v, (bool, int, float, str))]
    return out


def bound_gaps(wct: dict[str, float], tightest: float) -> dict[str, float]:
    """Percentage gap of each bound below the tightest.

    Same formula as :meth:`SuperblockBounds.gap_percent`, so ledger rows
    reproduce the evaluation's numbers bit-for-bit.
    """
    if tightest <= 0:
        return {name: 0.0 for name in wct}
    return {
        name: 100.0 * (tightest - value) / tightest
        for name, value in wct.items()
    }


class RunRecorder:
    """Collects one CLI run's record; install via :func:`installed`.

    The recorder is passive until :meth:`finalize`: block rows and cache
    attributions accumulate in memory, and the record is assembled (and
    appended to ``directory`` when one is set) exactly once at scope end.
    """

    def __init__(
        self,
        command: str,
        argv: list[str] | None = None,
        args: dict[str, Any] | None = None,
        directory: str | Path | None = None,
    ) -> None:
        self.command = command
        self.argv = list(argv or [])
        self.args = dict(args or {})
        self.directory = Path(directory) if directory is not None else None
        self.run_id = (
            f"{int(time.time() * 1000):x}-{os.getpid():x}-{next(_RUN_SEQ):x}"
        )
        #: Free-form extras merged into the record under ``"extra"``
        #: (e.g. bench headline metrics, verify outcome).
        self.extra: dict[str, Any] = {}
        self.record: dict[str, Any] | None = None
        self.written_path: Path | None = None
        self._t0 = time.perf_counter()
        self._blocks: dict[tuple[str, str | None], dict[str, Any]] = {}
        self._unit_cache: dict[tuple[str, str | None], list[int]] = {}
        self._cache_stats: dict[str, Any] | None = None

    # -- collection ------------------------------------------------------
    def record_block(
        self, sb: str, machine: str | None = None, **fields: Any
    ) -> None:
        """Merge per-block facts into the (sb, machine) row.

        Dict-valued fields update key-wise (so bound values and WCTs from
        different emission sites coexist); scalars overwrite. ``gaps`` is
        derived from ``bounds`` + ``tightest`` when not given explicitly.
        """
        row = self._blocks.setdefault(
            (sb, machine), {"sb": sb, "machine": machine}
        )
        if (
            "gaps" not in fields
            and "bounds" in fields
            and fields.get("tightest") is not None
        ):
            fields["gaps"] = bound_gaps(fields["bounds"], fields["tightest"])
        for key, value in fields.items():
            if value is None:
                continue
            if isinstance(value, dict):
                row.setdefault(key, {}).update(value)
            else:
                row[key] = value

    def record_unit_cache(
        self, sb: str, machine: str | None, hit: bool
    ) -> None:
        """Count one parent-side cache lookup for a work unit."""
        entry = self._unit_cache.setdefault((sb, machine), [0, 0])
        entry[0 if hit else 1] += 1

    def attach_cache_stats(self, stats: dict[str, Any]) -> None:
        """Store the run's cache totals (the CLI cache scope calls this)."""
        self._cache_stats = dict(stats)

    # -- assembly --------------------------------------------------------
    def finalize(
        self,
        span_events: list[dict[str, Any]] | None = None,
        metrics: Any = None,
        counters: dict[str, int] | None = None,
        dispatch: Any = None,
    ) -> dict[str, Any]:
        """Assemble the run record; append it when a directory is set.

        ``metrics`` may be a :class:`MetricsRegistry` or an ``as_dict``
        payload; ``dispatch`` defaults to the process's last
        :class:`~repro.perf.runner.DispatchStats`.
        """
        from repro.obs.trend import git_sha

        wall = time.perf_counter() - self._t0
        metrics_dict: dict[str, Any] = {}
        if metrics is not None:
            metrics_dict = (
                metrics if isinstance(metrics, dict) else metrics.as_dict()
            )
        if counters and not metrics_dict.get("counters"):
            metrics_dict = dict(metrics_dict)
            metrics_dict["counters"] = dict(counters)
        if dispatch is None:
            from repro.perf.runner import last_dispatch_stats

            dispatch = last_dispatch_stats()
        record: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "run_id": self.run_id,
            "timestamp": round(time.time(), 3),
            "git_sha": git_sha(),
            "command": self.command,
            "argv": self.argv,
            "args": self.args,
            "wall_seconds": round(wall, 6),
            "counters": metrics_dict.get("counters", {}),
            "timers": metrics_dict.get("timers", {}),
            "gauges": metrics_dict.get("gauges", {}),
            "cache": self._cache_payload(),
            "dispatch": _dispatch_payload(dispatch),
            "blocks": self._block_rows(span_events or []),
        }
        if span_events:
            from repro.obs.profile import span_accounting

            record["spans"] = span_accounting(span_events)
            record["span_paths"] = _span_paths(span_events)
        if self.extra:
            record["extra"] = self.extra
        self.record = record
        if self.directory is not None:
            self.written_path = append_run(record, self.directory)
        return record

    def _cache_payload(self) -> dict[str, Any] | None:
        if self._cache_stats is None:
            return None
        payload = dict(self._cache_stats)
        looked = payload.get("hits", 0) + payload.get("misses", 0)
        payload["hit_rate"] = (
            round(payload.get("hits", 0) / looked, 4) if looked else 0.0
        )
        return payload

    def _block_rows(
        self, span_events: list[dict[str, Any]]
    ) -> list[dict[str, Any]]:
        solve = _block_solve_times(span_events)
        rows = []
        for key in sorted(
            self._blocks, key=lambda k: (k[0], k[1] or "")
        ):
            row = dict(self._blocks[key])
            sb, machine = key
            seconds = solve.get((sb, machine))
            if seconds is None:
                seconds = solve.get((sb, None))
            if seconds is not None and "solve_s" not in row:
                row["solve_s"] = round(seconds, 6)
            cache = self._unit_cache.get((sb, machine)) or self._unit_cache.get(
                (sb, None)
            )
            if cache is not None:
                row["cache_hits"], row["cache_misses"] = cache
            rows.append(row)
        return rows


# ---------------------------------------------------------------------------
# Span attribution helpers
# ---------------------------------------------------------------------------
def _block_solve_times(
    events: list[dict[str, Any]],
) -> dict[tuple[str, str | None], float]:
    """Solve seconds per (sb, machine) from sb-attributed span events.

    ``eval.*`` spans count directly; ``bounds.*`` spans count only when
    not nested under an ``eval.*`` span (the suite runs inside
    ``eval.bounds`` during scheduler evaluation — counting both would
    double the time).
    """
    by_id = {e["id"]: e for e in events if "id" in e}

    def under_eval(event: dict[str, Any]) -> bool:
        parent = event.get("parent")
        guard = 0
        while parent is not None and guard < 64:
            parent_event = by_id.get(parent)
            if parent_event is None:
                return False
            if parent_event["name"].startswith("eval."):
                return True
            parent = parent_event.get("parent")
            guard += 1
        return False

    out: dict[tuple[str, str | None], float] = {}
    for e in events:
        attrs = e.get("attrs") or {}
        sb = attrs.get("sb")
        if sb is None:
            continue
        name = e.get("name", "")
        if name.startswith("eval."):
            counted = True
        elif name.startswith("bounds."):
            counted = not under_eval(e)
        else:
            counted = False
        if not counted:
            continue
        key = (sb, attrs.get("machine"))
        out[key] = out.get(key, 0.0) + e["dur"]
    return out


def _span_paths(
    events: list[dict[str, Any]], cap: int = MAX_SPAN_PATHS
) -> list[dict[str, Any]]:
    """Aggregate span time by root-to-leaf name path (flamegraph input)."""
    by_id = {e["id"]: e for e in events if "id" in e}
    child_dur: dict[int, float] = {}
    for e in events:
        parent = e.get("parent")
        if parent is not None:
            child_dur[parent] = child_dur.get(parent, 0.0) + e["dur"]
    agg: dict[tuple[str, ...], list[float]] = {}
    for e in events:
        names: list[str] = []
        cursor: dict[str, Any] | None = e
        guard = 0
        while cursor is not None and guard < 64:
            names.append(cursor["name"])
            parent = cursor.get("parent")
            cursor = by_id.get(parent) if parent is not None else None
            guard += 1
        path = tuple(reversed(names))
        self_s = max(0.0, e["dur"] - child_dur.get(e.get("id", -1), 0.0))
        entry = agg.setdefault(path, [0.0, 0.0, 0])
        entry[0] += e["dur"]
        entry[1] += self_s
        entry[2] += 1
    rows = [
        {
            "path": ";".join(path),
            "total_s": round(total, 6),
            "self_s": round(self_s, 6),
            "count": count,
        }
        for path, (total, self_s, count) in agg.items()
    ]
    rows.sort(key=lambda r: (-r["total_s"], r["path"]))
    return rows[:cap]


def _dispatch_payload(stats: Any) -> dict[str, Any] | None:
    if stats is None:
        return None
    return {
        "mode": stats.mode,
        "jobs": stats.jobs,
        "units": stats.units,
        "batches": stats.batches,
        "payload_bytes": stats.payload_bytes,
        "wall_seconds": round(stats.wall_seconds, 6),
        "busy_seconds": round(stats.busy_seconds, 6),
        "pool_reused": stats.pool_reused,
        "cost_points": stats.cost_points,
        "overhead_seconds": round(stats.overhead_seconds, 6),
        "utilization": round(stats.utilization, 4),
    }


# ---------------------------------------------------------------------------
# Ambient recorder scope
# ---------------------------------------------------------------------------
_STACK: list[RunRecorder] = []


def active_recorder() -> RunRecorder | None:
    """The installed recorder, or ``None`` when the ledger is off."""
    return _STACK[-1] if _STACK else None


@contextmanager
def installed(recorder: RunRecorder):
    """Make ``recorder`` the ambient one for the ``with`` body (nests)."""
    _STACK.append(recorder)
    try:
        yield recorder
    finally:
        _STACK.pop()


# ---------------------------------------------------------------------------
# Persistence
# ---------------------------------------------------------------------------
def append_run(record: dict[str, Any], directory: str | Path) -> Path:
    """Append one record to the directory's ledger; returns the path."""
    target = ledger_path(directory)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return target


def load_ledger(path: str | Path) -> list[dict[str, Any]]:
    """Parse a ledger JSONL, oldest first; blank lines are skipped.

    Raises ``ValueError`` naming ``path:lineno`` on malformed JSON,
    non-object lines, records missing required keys, and records written
    by a newer schema than this code understands (version skew) — a
    damaged or future ledger fails loudly, never silently shortens.
    """
    source = Path(path)
    if source.is_dir():
        source = ledger_path(source)
    records: list[dict[str, Any]] = []
    with source.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{source}:{lineno}: not valid JSON ({exc.msg})"
                ) from None
            if not isinstance(record, dict):
                raise ValueError(
                    f"{source}:{lineno}: not a run record (not a JSON object)"
                )
            missing = [k for k in REQUIRED_KEYS if k not in record]
            if missing:
                raise ValueError(
                    f"{source}:{lineno}: not a run record "
                    f"(missing {', '.join(missing)})"
                )
            schema = record["schema"]
            if not isinstance(schema, int) or schema < 1:
                raise ValueError(
                    f"{source}:{lineno}: invalid schema version {schema!r}"
                )
            if schema > SCHEMA_VERSION:
                raise ValueError(
                    f"{source}:{lineno}: record schema {schema} is newer "
                    f"than this code supports ({SCHEMA_VERSION}) — "
                    "upgrade before reading this ledger"
                )
            records.append(record)
    return records


def resolve_run(records: list[dict[str, Any]], ref: str) -> dict[str, Any]:
    """A record by run-id (exact or unique prefix) or negative index.

    ``-1`` is the newest run, ``-2`` the one before, matching Python
    indexing; raises ``ValueError`` on unknown or ambiguous references.
    """
    if not records:
        raise ValueError("ledger has no runs")
    try:
        index = int(ref)
    except ValueError:
        index = None
    if index is not None:
        try:
            return records[index]
        except IndexError:
            raise ValueError(
                f"run index {ref} out of range ({len(records)} runs)"
            ) from None
    exact = [r for r in records if r.get("run_id") == ref]
    if exact:
        return exact[-1]
    prefixed = [r for r in records if str(r.get("run_id", "")).startswith(ref)]
    if len(prefixed) == 1:
        return prefixed[0]
    if len(prefixed) > 1:
        raise ValueError(
            f"run reference {ref!r} is ambiguous "
            f"({len(prefixed)} matching run ids)"
        )
    raise ValueError(f"no run matching {ref!r} in the ledger")


# ---------------------------------------------------------------------------
# Text renderers (the ``repro obs`` subcommands)
# ---------------------------------------------------------------------------
def block_gap(row: dict[str, Any]) -> float | None:
    """A block's looseness: best heuristic WCT's gap over the tightest
    bound when schedules were recorded, else the widest bound-family gap."""
    tightest = row.get("tightest")
    wct = row.get("wct") or {}
    if tightest and wct:
        best = min(wct.values())
        if tightest > 0:
            return 100.0 * (best - tightest) / tightest
    gaps = row.get("gaps") or {}
    if gaps:
        return max(gaps.values())
    return None


def _when(record: dict[str, Any]) -> str:
    from datetime import datetime

    try:
        stamp = datetime.fromtimestamp(float(record.get("timestamp", 0)))
    except (OSError, OverflowError, ValueError):
        return "?"
    return stamp.strftime("%Y-%m-%d %H:%M:%S")


def _cache_rate(record: dict[str, Any]) -> str:
    cache = record.get("cache")
    if not cache:
        return "-"
    return f"{100.0 * cache.get('hit_rate', 0.0):.0f}%"


def render_summary(records: list[dict[str, Any]], last: int = 10) -> str:
    """A table of the newest ``last`` runs, newest first."""
    lines = [f"ledger: {len(records)} run(s)"]
    width = max(
        (len(str(r.get("run_id", "?"))) for r in records[-last:]), default=6
    )
    header = (
        f"  {'run_id':<{width}s}  {'command':<9s}  {'when':<19s}  "
        f"{'sha':<8s}  {'wall':>8s}  {'blocks':>6s}  {'cache':>5s}  mode"
    )
    lines.append(header)
    for record in reversed(records[-last:]):
        dispatch = record.get("dispatch") or {}
        lines.append(
            f"  {str(record.get('run_id', '?')):<{width}s}"
            f"  {str(record.get('command', '?')):<9s}"
            f"  {_when(record):<19s}"
            f"  {str(record.get('git_sha') or '?'):<8s}"
            f"  {record.get('wall_seconds', 0.0):>7.3f}s"
            f"  {len(record.get('blocks') or []):>6d}"
            f"  {_cache_rate(record):>5s}"
            f"  {dispatch.get('mode', '-')}"
        )
    return "\n".join(lines)


#: Sort keys accepted by ``repro obs blocks --by``.
BLOCK_SORTS = ("gap", "solve", "ops")


def render_blocks(
    record: dict[str, Any], top: int = 10, by: str = "gap"
) -> str:
    """The per-block detail table of one run, worst-first."""
    blocks = record.get("blocks") or []
    if not blocks:
        return (
            f"run {record.get('run_id', '?')} "
            f"({record.get('command', '?')}) recorded no block rows"
        )
    if by == "solve":
        key = lambda row: row.get("solve_s") or 0.0  # noqa: E731
    elif by == "ops":
        key = lambda row: row.get("ops") or 0  # noqa: E731
    else:
        key = lambda row: block_gap(row) or 0.0  # noqa: E731
    ordered = sorted(blocks, key=key, reverse=True)[:top]
    width = max(len(str(row.get("sb", "?"))) for row in ordered)
    lines = [
        f"run {record.get('run_id', '?')} ({record.get('command', '?')}): "
        f"{len(blocks)} block row(s), top {len(ordered)} by {by}",
        f"  {'sb':<{width}s}  {'machine':<8s}  {'ops':>4s} {'br':>3s} "
        f"{'edges':>5s}  {'tightest':>9s}  {'gap%':>7s}  {'best wct':>9s}  "
        f"{'solve_s':>8s}  cache",
    ]
    for row in ordered:
        gap = block_gap(row)
        wct = row.get("wct") or {}
        best = f"{min(wct.values()):>9.4f}" if wct else f"{'-':>9s}"
        hits = row.get("cache_hits")
        cache = (
            f"{hits}/{row.get('cache_misses', 0)}" if hits is not None else "-"
        )
        solve = row.get("solve_s")
        solve_text = f"{solve:>8.4f}" if solve is not None else f"{'-':>8s}"
        lines.append(
            f"  {str(row.get('sb', '?')):<{width}s}"
            f"  {str(row.get('machine') or '-'):<8s}"
            f"  {row.get('ops', 0):>4d} {row.get('branches', 0):>3d} "
            f"{row.get('edges', 0):>5d}"
            f"  {row.get('tightest', 0.0) or 0.0:>9.4f}"
            f"  {gap if gap is not None else 0.0:>7.2f}"
            f"  {best}"
            f"  {solve_text}"
            f"  {cache}"
        )
    return "\n".join(lines)


def render_diff(a: dict[str, Any], b: dict[str, Any], top: int = 10) -> str:
    """Compare two run records: wall, counters, and per-block movement."""
    lines = [
        f"diff {a.get('run_id', '?')} ({a.get('command', '?')}, "
        f"{a.get('git_sha') or '?'}) -> {b.get('run_id', '?')} "
        f"({b.get('command', '?')}, {b.get('git_sha') or '?'})"
    ]
    wall_a = float(a.get("wall_seconds", 0.0))
    wall_b = float(b.get("wall_seconds", 0.0))
    change = f" ({100.0 * (wall_b - wall_a) / wall_a:+.1f}%)" if wall_a else ""
    lines.append(f"  wall: {wall_a:.3f}s -> {wall_b:.3f}s{change}")
    ca, cb = a.get("counters") or {}, b.get("counters") or {}
    moved = []
    for name in sorted(set(ca) | set(cb)):
        va, vb = ca.get(name, 0), cb.get(name, 0)
        if va != vb:
            moved.append((abs(vb - va), name, va, vb))
    if moved:
        moved.sort(reverse=True)
        lines.append(f"  counters changed: {len(moved)}")
        for _, name, va, vb in moved[:top]:
            lines.append(f"    {name}: {va} -> {vb} ({vb - va:+d})")
    elif ca or cb:
        lines.append("  counters identical")
    rows_a = {
        (r.get("sb"), r.get("machine")): r for r in a.get("blocks") or []
    }
    rows_b = {
        (r.get("sb"), r.get("machine")): r for r in b.get("blocks") or []
    }
    shared = sorted(set(rows_a) & set(rows_b), key=lambda k: (k[0], k[1] or ""))
    movers = []
    for key in shared:
        wct_a, wct_b = rows_a[key].get("wct") or {}, rows_b[key].get("wct") or {}
        common = set(wct_a) & set(wct_b)
        if not common:
            continue
        delta = max(abs(wct_b[h] - wct_a[h]) for h in common)
        if delta > 1e-9:
            movers.append((delta, key))
    only_a, only_b = len(rows_a) - len(shared), len(rows_b) - len(shared)
    lines.append(
        f"  blocks: {len(shared)} shared, {only_a} only in A, "
        f"{only_b} only in B, {len(movers)} with WCT movement"
    )
    movers.sort(reverse=True)
    for delta, (sb, machine) in movers[:top]:
        lines.append(f"    {sb}@{machine or '-'}: max |dWCT| = {delta:.4f}")
    return "\n".join(lines)


def slow_exemplars(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Tail-latency exemplars captured by the service, slowest first.

    Each entry pairs the exemplar (``extra.slow_request`` of a ``serve``
    record: request metadata, per-phase millisecond split, and — when the
    run was traced — the full Chrome trace document) with the run record
    that carried it, so callers can dig from the headline into spans and
    per-block detail.
    """
    found: list[dict[str, Any]] = []
    for record in records:
        exemplar = (record.get("extra") or {}).get("slow_request")
        if exemplar:
            found.append({"exemplar": exemplar, "record": record})
    found.sort(
        key=lambda e: e["exemplar"].get("elapsed_ms", 0.0), reverse=True
    )
    return found


def render_slowest(records: list[dict[str, Any]], top: int = 10) -> str:
    """The ``repro obs slowest`` table: worst requests, worst first."""
    exemplars = slow_exemplars(records)
    if not exemplars:
        return (
            "no slow-request exemplars in this ledger (is the service "
            "running with a slow threshold, and a ledger directory?)"
        )
    lines = [
        f"{len(exemplars)} slow-request exemplar(s), slowest first:",
        f"  {'request_id':<34s}  {'elapsed':>9s}  {'eval':>9s}  "
        f"{'queue':>9s}  {'kind':<8s}  {'machine':<8s}  {'blocks':>6s}  "
        f"{'run_id':<20s}  trace",
    ]
    for entry in exemplars[:top]:
        ex = entry["exemplar"]
        phases = ex.get("phases_ms") or {}
        lines.append(
            f"  {str(ex.get('request_id', '?')):<34s}"
            f"  {ex.get('elapsed_ms', 0.0):>7.1f}ms"
            f"  {phases.get('eval', 0.0):>7.1f}ms"
            f"  {phases.get('queue', 0.0):>7.1f}ms"
            f"  {str(ex.get('kind', '?')):<8s}"
            f"  {str(ex.get('machine', '?')):<8s}"
            f"  {ex.get('blocks', 0):>6d}"
            f"  {str(entry['record'].get('run_id', '?')):<20s}"
            f"  {'yes' if 'trace' in ex else '-'}"
        )
    if len(exemplars) > top:
        lines.append(f"  ... and {len(exemplars) - top} more")
    return "\n".join(lines)
