"""Balance decision-trace recorder: why a schedule came out the way it did.

The Balance scheduler (Section 5) makes per-cycle branch-tradeoff
decisions that are invisible in the final schedule: which dynamic
Early/Late bounds each branch carried, which ``NeedEach``/``NeedOne``
sets were derived, which compatible set (``TakeEach``/``TakeOne``) was
selected, and which Pairwise comparison justified delaying a branch. The
:class:`DecisionRecorder` captures exactly that, as a list of plain-dict
events suitable for JSONL export and post-hoc rendering (``python -m
repro trace FILE``).

Event schema (one JSON object per line; ``event`` discriminates):

* ``begin``   — ``superblock``, ``machine``, ``heuristic``, ``branches``,
  ``weights``.
* ``cycle``   — ``cycle``, ``branches``: per unscheduled branch its
  dynamic ``early`` bound, ``late`` map (op -> latest issue), ``need_each``
  set and ``need_one`` sets per resource class.
* ``selection`` — ``cycle``, the branch partition (``selected`` /
  ``delayed`` / ``delayed_ok`` / ``ignored``), the chosen compatible set
  (``take_each``, ``take_one`` per class), and the selection ``rank``.
* ``tradeoff`` — ``cycle``, ``branch``, ``against``, ``kind``
  (``delayedOK`` when the Pairwise bound proves the delay free, ``swap``
  when it blames an earlier-selected branch), and the pairwise ``bound``
  that justified it.
* ``issue``   — ``cycle``, ``op``, ``rclass``.
* ``end``     — ``wct``, ``length``, final per-branch issue cycles.

Recording is opt-in and structured like :class:`Counters`: every call
site guards with ``if recorder is not None``, so the disabled path costs
one comparison.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any


class DecisionRecorder:
    """Accumulates Balance decision events for one scheduling run."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    # -- event emitters (called from the Balance engine) ----------------
    def begin(self, sb, machine, heuristic: str) -> None:
        self.events.append(
            {
                "event": "begin",
                "superblock": sb.name,
                "machine": machine.name,
                "heuristic": heuristic,
                "branches": list(sb.branches),
                "weights": {str(b): sb.weights[b] for b in sb.branches},
            }
        )

    def cycle(self, cycle: int, needs: dict[int, Any]) -> None:
        """Snapshot the dynamic bounds of every unscheduled branch."""
        self.events.append(
            {
                "event": "cycle",
                "cycle": cycle,
                "branches": {
                    str(b): {
                        "early": info.early,
                        "late": {str(v): t for v, t in sorted(info.late.items())},
                        "need_each": sorted(info.need_each),
                        "need_one": {
                            r: sorted(members)
                            for r, members in sorted(info.need_one.items())
                        },
                    }
                    for b, info in sorted(needs.items())
                },
            }
        )

    def selection(self, cycle: int, sel) -> None:
        self.events.append(
            {
                "event": "selection",
                "cycle": cycle,
                "selected": list(sel.selected),
                "delayed": list(sel.delayed),
                "delayed_ok": sorted(sel.delayed_ok),
                "ignored": list(sel.ignored),
                "take_each": sorted(sel.take_each),
                "take_one": {
                    r: sorted(members)
                    for r, members in sorted(sel.take_one.items())
                },
                "rank": round(sel.rank, 6),
            }
        )
        for branch, against, kind, bound in getattr(sel, "tradeoffs", ()):
            self.events.append(
                {
                    "event": "tradeoff",
                    "cycle": cycle,
                    "branch": branch,
                    "against": against,
                    "kind": kind,
                    "bound": bound,
                }
            )

    def issue(self, cycle: int, op: int, rclass: str) -> None:
        self.events.append(
            {"event": "issue", "cycle": cycle, "op": op, "rclass": rclass}
        )

    def end(self, schedule) -> None:
        self.events.append(
            {
                "event": "end",
                "wct": schedule.wct,
                "length": schedule.length,
                "issue": {str(b): t for b, t in sorted(schedule.issue.items())},
            }
        )

    # -- persistence -----------------------------------------------------
    def write_jsonl(self, path: str | Path) -> None:
        with Path(path).open("w") as fh:
            for event in self.events:
                fh.write(json.dumps(event, sort_keys=True) + "\n")


def load_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Load a trace file (decision events and/or span events).

    Blank lines are skipped. A malformed line (truncated write, stray
    text) or a non-object line raises ``ValueError`` naming the line
    number, so a damaged trace fails with a pointer to the damage
    instead of a traceback deep inside a renderer.
    """
    events: list[dict[str, Any]] = []
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON ({exc.msg}) — "
                    "truncated or corrupted trace file?"
                ) from None
            if not isinstance(event, dict):
                raise ValueError(
                    f"{path}:{lineno}: expected a JSON object per line, "
                    f"got {type(event).__name__}"
                )
            events.append(event)
    return events


def _fmt_set(values: list[Any]) -> str:
    return "{" + ",".join(str(v) for v in values) + "}"


def render_decision_trace(events: list[dict[str, Any]]) -> str:
    """Text timeline of a Balance decision trace, grouped by cycle."""
    lines: list[str] = []
    for e in events:
        kind = e.get("event")
        if kind == "begin":
            weights = ", ".join(
                f"{b}:{w:.3f}" for b, w in sorted(
                    e["weights"].items(), key=lambda kv: int(kv[0])
                )
            )
            lines.append(
                f"{e['superblock']} on {e['machine']} with {e['heuristic']} "
                f"(branch weights {weights})"
            )
        elif kind == "cycle":
            lines.append(f"cycle {e['cycle']}:")
            for b, info in sorted(e["branches"].items(), key=lambda kv: int(kv[0])):
                needs = []
                if info["need_each"]:
                    needs.append(f"NeedEach={_fmt_set(info['need_each'])}")
                for r, members in info["need_one"].items():
                    needs.append(f"NeedOne[{r}]={_fmt_set(members)}")
                lines.append(
                    f"  branch {b}: Early={info['early']}"
                    + ("  " + " ".join(needs) if needs else "")
                )
        elif kind == "selection":
            parts = [f"selected={_fmt_set(e['selected'])}"]
            if e["delayed"]:
                parts.append(f"delayed={_fmt_set(e['delayed'])}")
            if e["delayed_ok"]:
                parts.append(f"delayedOK={_fmt_set(e['delayed_ok'])}")
            if e["ignored"]:
                parts.append(f"ignored={_fmt_set(e['ignored'])}")
            parts.append(f"TakeEach={_fmt_set(e['take_each'])}")
            for r, members in e["take_one"].items():
                parts.append(f"TakeOne[{r}]={_fmt_set(members)}")
            parts.append(f"rank={e['rank']:g}")
            lines.append("  select: " + " ".join(parts))
        elif kind == "tradeoff":
            lines.append(
                f"  tradeoff: branch {e['branch']} vs {e['against']} -> "
                f"{e['kind']} (pairwise bound {e['bound']})"
            )
        elif kind == "issue":
            lines.append(f"  issue op {e['op']} ({e['rclass']})")
        elif kind == "end":
            lines.append(
                f"done: WCT={e['wct']:.4f}, length={e['length']} cycles, "
                "issue "
                + ", ".join(
                    f"{b}@{t}"
                    for b, t in sorted(
                        e["issue"].items(), key=lambda kv: int(kv[0])
                    )
                )
            )
    return "\n".join(lines)


def decision_trace_to_dot(events: list[dict[str, Any]]) -> str:
    """DOT rendering: one cluster per cycle with its issues and selection.

    The selection ellipse carries the full branch partition (``sel`` /
    ``del`` / ``delOK`` / ``ign``); every ``tradeoff`` event becomes a
    note node attached to its cycle so the Pairwise justification for a
    delay is visible next to the decision it excused.
    """
    header = next((e for e in events if e.get("event") == "begin"), None)
    title = (
        f"{header['superblock']} / {header['machine']} / {header['heuristic']}"
        if header
        else "decision trace"
    )
    lines = [
        "digraph decision_trace {",
        "  rankdir=LR;",
        "  node [shape=box, fontsize=10];",
        f'  label="{title}";',
    ]
    cycles: dict[int, dict[str, Any]] = {}
    for e in events:
        c = e.get("cycle")
        if c is None:
            continue
        entry = cycles.setdefault(
            c, {"issues": [], "selections": [], "tradeoffs": []}
        )
        if e["event"] == "issue":
            entry["issues"].append(e)
        elif e["event"] == "selection":
            entry["selections"].append(e)
        elif e["event"] == "tradeoff":
            entry["tradeoffs"].append(e)
    previous = None
    for c in sorted(cycles):
        entry = cycles[c]
        anchor = f"cycle{c}"
        lines.append(f"  subgraph cluster_{c} {{")
        lines.append(f'    label="cycle {c}";')
        sel_bits = []
        for s in entry["selections"]:
            if s["selected"]:
                sel_bits.append("sel " + _fmt_set(s["selected"]))
            if s["delayed"]:
                sel_bits.append("del " + _fmt_set(s["delayed"]))
            if s.get("delayed_ok"):
                sel_bits.append("delOK " + _fmt_set(s["delayed_ok"]))
            if s.get("ignored"):
                sel_bits.append("ign " + _fmt_set(s["ignored"]))
        sel_label = "; ".join(dict.fromkeys(sel_bits)) or "no needs"
        lines.append(f'    {anchor} [label="{sel_label}", shape=ellipse];')
        for e in entry["issues"]:
            lines.append(
                f'    op{e["op"]} [label="op {e["op"]}\\n{e["rclass"]}"];'
            )
        for i, t in enumerate(entry["tradeoffs"]):
            node = f"tr{c}_{i}"
            lines.append(
                f'    {node} [label="branch {t["branch"]} vs {t["against"]}'
                f'\\n{t["kind"]} (bound {t["bound"]})", '
                "shape=note, fontsize=9];"
            )
            lines.append(
                f"    {anchor} -> {node} [style=dotted, arrowhead=none];"
            )
        lines.append("  }")
        if previous is not None:
            lines.append(f"  {previous} -> {anchor} [style=dashed];")
        previous = anchor
    lines.append("}")
    return "\n".join(lines)
