"""Profiling subsystem: per-span time accounting and function hotspots.

Spans (``repro.obs.trace``) say which *phase* the time went to; this
module answers "where did the time go *inside* a phase". A
:class:`ProfileSession` wraps any command in a root span, installs a
tracer, and runs one of two capture engines:

* ``sampling`` (default) — a background thread samples the command
  thread's Python stack every few milliseconds via
  ``sys._current_frames`` and attributes each sample to the innermost
  *open span* (:meth:`Tracer.open_names`), yielding a per-span hotspot
  table (top functions per ``bounds.pairwise``, ``eval.schedule``,
  ``cache.lookup``, …) with near-zero perturbation of the timed code.
* ``cprofile`` — the deterministic stdlib tracer; exact call counts and
  self/cumulative times, but one global function table (cProfile cannot
  be partitioned per span) and noticeably more overhead.

Either way the report also contains the **span accounting** table built
from the tracer alone: per span name the call count, total and *self*
time (total minus direct children), and the share of command wall time
attributed below the root span. Worker-origin spans (merged by
``corpus_map`` under ``--jobs N``) are tallied separately — their
durations are worker CPU time on another process's clock and would
double-count against the parent's wall clock.

The CLI front ends are ``python -m repro profile <command> ...`` and the
``--profile-out PATH`` shorthand on ``schedule``/``bounds``/``report``
(docs/observability.md has a worked example).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections import Counter, defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.trace import Tracer, install

#: Report schema version (bump on breaking JSON shape changes).
SCHEMA_VERSION = 1

ENGINES = ("sampling", "cprofile")


@dataclass
class ProfileConfig:
    """Knobs of one profiled run."""

    engine: str = "sampling"
    interval_s: float = 0.004  #: sampling period
    top: int = 5  #: functions shown per span (sampling) / overall rows

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown profile engine {self.engine!r}; choose from {ENGINES}"
            )
        if self.interval_s <= 0:
            raise ValueError("sampling interval must be positive")


def _short_path(path: str) -> str:
    """Compress an absolute source path to something readable in a table."""
    if "/repro/" in path:
        return "repro/" + path.rsplit("/repro/", 1)[1]
    if path.startswith("<"):  # builtins, frozen importlib
        return path
    return path.rsplit("/", 1)[-1]


def _frame_label(frame: Any) -> str:
    code = frame.f_code
    return f"{_short_path(code.co_filename)}:{code.co_name}"


class _SamplingCollector:
    """Background-thread stack sampler attributing samples to open spans."""

    engine = "sampling"

    def __init__(self, tracer: Tracer, interval_s: float) -> None:
        self._tracer = tracer
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._target_ident: int | None = None
        self.samples = 0
        self.span_samples: Counter[str] = Counter()
        self.by_span: dict[str, Counter[str]] = defaultdict(Counter)

    def start(self) -> None:
        self._target_ident = threading.get_ident()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            frame = sys._current_frames().get(self._target_ident)
            if frame is None:
                continue
            names = self._tracer.open_names()
            leaf = names[-1] if names else "<no span>"
            self.samples += 1
            self.span_samples[leaf] += 1
            self.by_span[leaf][_frame_label(frame)] += 1

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def hotspots(self, top: int) -> dict[str, Any]:
        by_span = []
        for span_name, count in self.span_samples.most_common():
            functions = [
                {
                    "where": where,
                    "samples": n,
                    "percent": round(100.0 * n / count, 1),
                }
                for where, n in self.by_span[span_name].most_common(top)
            ]
            by_span.append(
                {
                    "span": span_name,
                    "samples": count,
                    "percent": round(100.0 * count / max(self.samples, 1), 1),
                    "functions": functions,
                }
            )
        return {
            "engine": self.engine,
            "interval_ms": round(self.interval_s * 1e3, 3),
            "samples": self.samples,
            "by_span": by_span,
        }


class _CProfileCollector:
    """Deterministic capture via the stdlib cProfile tracer."""

    engine = "cprofile"

    #: Function rows kept in the JSON report (render shows fewer).
    MAX_ROWS = 40

    def __init__(self) -> None:
        import cProfile

        self._profile = cProfile.Profile()

    def start(self) -> None:
        self._profile.enable()

    def stop(self) -> None:
        self._profile.disable()

    def hotspots(self, top: int) -> dict[str, Any]:
        import pstats

        stats = pstats.Stats(self._profile)
        rows = []
        for (filename, line, func), (_cc, nc, tt, ct, _callers) in stats.stats.items():
            rows.append(
                {
                    "where": f"{_short_path(filename)}:{line}({func})",
                    "calls": nc,
                    "self_s": round(tt, 6),
                    "cum_s": round(ct, 6),
                }
            )
        rows.sort(key=lambda r: (-r["self_s"], r["where"]))
        return {"engine": self.engine, "functions": rows[: self.MAX_ROWS]}


def _make_collector(config: ProfileConfig, tracer: Tracer):
    if config.engine == "cprofile":
        return _CProfileCollector()
    return _SamplingCollector(tracer, config.interval_s)


# ---------------------------------------------------------------------------
# Span accounting
# ---------------------------------------------------------------------------
def span_accounting(events: list[dict[str, Any]]) -> dict[str, Any]:
    """Per-span-name time table from completed tracer events.

    Self time is a span's duration minus its direct children's durations
    — self times of the main-process spans therefore partition the root
    wall clock exactly. Worker-origin events (``origin="worker"`` attrs)
    are excluded from the partition (their durations live on worker
    clocks) and summarized separately.
    """
    main_events = []
    worker_total = 0.0
    worker_count = 0
    for e in events:
        if (e.get("attrs") or {}).get("origin") == "worker":
            worker_total += e["dur"]
            worker_count += 1
        else:
            main_events.append(e)
    children: dict[int, float] = defaultdict(float)
    for e in main_events:
        parent = e.get("parent")
        if parent is not None:
            children[parent] += e["dur"]
    per_name: dict[str, dict[str, float]] = {}
    wall = 0.0
    root_self = 0.0
    for e in main_events:
        self_s = max(0.0, e["dur"] - children.get(e["id"], 0.0))
        entry = per_name.setdefault(
            e["name"], {"calls": 0, "total_s": 0.0, "self_s": 0.0}
        )
        entry["calls"] += 1
        entry["total_s"] += e["dur"]
        entry["self_s"] += self_s
        if e.get("depth", 0) == 0:
            wall += e["dur"]
            root_self += self_s
    rows = [
        {
            "name": name,
            "calls": entry["calls"],
            "total_s": round(entry["total_s"], 6),
            "self_s": round(entry["self_s"], 6),
            "self_percent": round(100.0 * entry["self_s"] / wall, 1) if wall else 0.0,
            "total_percent": round(100.0 * entry["total_s"] / wall, 1) if wall else 0.0,
        }
        for name, entry in per_name.items()
    ]
    rows.sort(key=lambda r: (-r["self_s"], r["name"]))
    attributed = 100.0 * (wall - root_self) / wall if wall else 0.0
    return {
        "wall_s": round(wall, 6),
        "attributed_percent": round(attributed, 1),
        "spans": rows,
        "worker_spans": {
            "count": worker_count,
            "total_s": round(worker_total, 6),
        },
    }


# ---------------------------------------------------------------------------
# Session and report
# ---------------------------------------------------------------------------
@dataclass
class ProfileReport:
    """One profiled run: span accounting plus engine hotspots."""

    engine: str
    root: str
    wall_s: float
    attributed_percent: float
    spans: list[dict[str, Any]]
    worker_spans: dict[str, Any]
    hotspots: dict[str, Any]
    config: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "engine": self.engine,
            "root": self.root,
            "wall_s": self.wall_s,
            "attributed_percent": self.attributed_percent,
            "spans": self.spans,
            "worker_spans": self.worker_spans,
            "hotspots": self.hotspots,
            "config": self.config,
        }

    def save(self, path: str | Path) -> None:
        with Path(path).open("w") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def render(self, top: int = 5) -> str:
        lines = [
            f"profile ({self.engine}): {self.root} — wall {self.wall_s:.3f}s, "
            f"{self.attributed_percent:.1f}% attributed below the command span"
        ]
        if self.spans:
            width = max(len(r["name"]) for r in self.spans)
            lines.append(
                f"  {'span':<{width}s}  {'calls':>6s}  {'total':>9s}  "
                f"{'self':>9s}  {'%wall':>6s}"
            )
            for r in self.spans:
                lines.append(
                    f"  {r['name']:<{width}s}  {r['calls']:>6d}  "
                    f"{r['total_s']:>8.3f}s  {r['self_s']:>8.3f}s  "
                    f"{r['self_percent']:>6.1f}"
                )
        if self.worker_spans.get("count"):
            lines.append(
                f"  (+ {self.worker_spans['count']} worker spans, "
                f"{self.worker_spans['total_s']:.3f}s of worker CPU — "
                "on worker clocks, not counted against wall)"
            )
        lines.extend(self._render_hotspots(top))
        return "\n".join(lines)

    def _render_hotspots(self, top: int) -> list[str]:
        h = self.hotspots
        lines: list[str] = []
        if h.get("engine") == "sampling":
            lines.append(
                f"hotspots ({h['samples']} samples @ {h['interval_ms']:.1f}ms):"
            )
            if not h["samples"]:
                lines.append(
                    "  (no samples — the command finished within one "
                    "sampling interval)"
                )
            for entry in h.get("by_span", []):
                lines.append(
                    f"  {entry['span']} — {entry['percent']:.1f}% of samples"
                )
                for fn in entry["functions"][:top]:
                    lines.append(
                        f"      {fn['percent']:>5.1f}%  {fn['where']}"
                    )
        elif h.get("engine") == "cprofile":
            lines.append("hotspots (cProfile, by self time):")
            lines.append(
                f"  {'self':>9s}  {'cum':>9s}  {'calls':>8s}  function"
            )
            for fn in h.get("functions", [])[: max(top * 3, top)]:
                lines.append(
                    f"  {fn['self_s']:>8.4f}s  {fn['cum_s']:>8.4f}s  "
                    f"{fn['calls']:>8d}  {fn['where']}"
                )
        return lines


class ProfileSession:
    """Wraps one command in a root span plus a capture engine.

    Usage::

        session = ProfileSession(ProfileConfig(engine="sampling"))
        with session.capture("cmd.table1"):
            run_command(args)
        report = session.report()
        report.save("hotspots.json")

    ``capture`` installs the session's own tracer, so it must not be
    combined with ``--trace-out`` (two tracers cannot both receive the
    library's spans); the CLI rejects that combination up front.
    """

    def __init__(self, config: ProfileConfig | None = None) -> None:
        self.config = config or ProfileConfig()
        self.tracer = Tracer()
        self._collector = _make_collector(self.config, self.tracer)
        self._root: str | None = None
        self._elapsed: float | None = None

    @contextmanager
    def capture(self, root_name: str, **attrs: Any):
        """Run the ``with`` body under the root span and the engine."""
        self._root = root_name
        t0 = time.perf_counter()
        with install(self.tracer):
            self._collector.start()
            try:
                with self.tracer.span(root_name, **attrs):
                    yield self
            finally:
                self._collector.stop()
                self._elapsed = time.perf_counter() - t0

    def report(self) -> ProfileReport:
        if self._root is None:
            raise RuntimeError("report() before capture() completed")
        accounting = span_accounting(self.tracer.spans())
        return ProfileReport(
            engine=self.config.engine,
            root=self._root,
            wall_s=accounting["wall_s"],
            attributed_percent=accounting["attributed_percent"],
            spans=accounting["spans"],
            worker_spans=accounting["worker_spans"],
            hotspots=self._collector.hotspots(self.config.top),
            config={
                "engine": self.config.engine,
                "interval_ms": round(self.config.interval_s * 1e3, 3),
                "top": self.config.top,
            },
        )
