"""repro: reproduction of "Balance Scheduling: Weighting Branch Tradeoffs
in Superblocks" (Eichenberger & Meleis, MICRO 1999).

The package implements the paper's two contributions plus every substrate
they need:

* :mod:`repro.bounds` — superblock WCT lower bounds (CP, Hu, RJ, LC,
  Pairwise, Triplewise).
* :mod:`repro.core` — the Balance scheduling heuristic.
* :mod:`repro.schedulers` — baseline heuristics (CP, SR, G*, DHASY, Help,
  Best) and an optimal branch-and-bound scheduler.
* :mod:`repro.ir` / :mod:`repro.machine` — superblock IR and VLIW machine
  models.
* :mod:`repro.workloads` — synthetic SPECint95-like corpus generation.
* :mod:`repro.cfg` — CFG substrate: trace selection and superblock
  formation with tail duplication.
* :mod:`repro.eval` — harnesses regenerating every paper table and figure.
* :mod:`repro.sim` — Monte Carlo execution of scheduled superblocks.

Quickstart::

    from repro import SuperblockBuilder, GP2, BoundSuite, schedule

    sb = (SuperblockBuilder("demo")
          .op("add").op("add").op("add")
          .exit(0.3, preds=[0, 1, 2])
          .op("load").op("add", preds=[4])
          .last_exit(preds=[5]))
    bounds = BoundSuite(sb, GP2).compute()
    result = schedule(sb, GP2, "balance")
    print(result.wct, bounds.tightest)
"""

from repro.bounds import BoundSuite, Counters, SuperblockBounds
from repro.ir import (
    DependenceGraph,
    OpClass,
    Opcode,
    Operation,
    Superblock,
    SuperblockBuilder,
)
from repro.machine import (
    FS4,
    FS6,
    FS8,
    GP1,
    GP2,
    GP4,
    PAPER_MACHINES,
    MachineConfig,
    machine_by_name,
)

__version__ = "1.0.0"

__all__ = [
    "FS4",
    "FS6",
    "FS8",
    "GP1",
    "GP2",
    "GP4",
    "PAPER_MACHINES",
    "BoundSuite",
    "Counters",
    "DependenceGraph",
    "MachineConfig",
    "OpClass",
    "Opcode",
    "Operation",
    "Superblock",
    "SuperblockBounds",
    "SuperblockBuilder",
    "__version__",
    "machine_by_name",
    "schedule",
]


def schedule(sb, machine, heuristic="balance", **kwargs):
    """Schedule a superblock with a named heuristic; see
    :func:`repro.schedulers.schedule`."""
    from repro.schedulers import schedule as _schedule

    return _schedule(sb, machine, heuristic, **kwargs)
