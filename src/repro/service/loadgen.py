"""Synthetic load harness for the scheduling service.

``python -m repro loadgen`` drives a running ``repro serve`` (or
self-hosts one on an ephemeral port when no ``--url`` is given) with a
zipf-skewed request stream drawn from the seeded SPECint95-shaped corpus
generator. The zipf skew is the point: a handful of hot batches repeat
often — exactly the traffic shape a warm content-addressed cache is for
— so the run measures the *service* (latency percentiles, throughput,
failure count) and the *cache* (warm hit-rate) in one pass.

The report lands in ``benchmarks/BENCH_history.jsonl`` through the
existing trend machinery (:mod:`repro.obs.trend`), under the ``loadgen``
label: throughput carries unit ``req/s`` so history gating treats it
higher-is-better; latency percentiles (``ms``) and hit-rate (``ratio``)
ride along as informational series.
"""

from __future__ import annotations

import itertools
import json
import random
import tempfile
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any

from repro.ir.serialize import superblock_to_dict
from repro.service import protocol

#: Default machine rotation for generated request templates.
DEFAULT_MACHINES = ("GP2", "FS4")


@dataclass
class LoadgenConfig:
    """One load run's knobs (CLI flags map onto this 1:1)."""

    requests: int = 200
    concurrency: int = 4
    zipf: float = 1.1  #: skew exponent; higher = hotter hot set
    seed: int = 1999
    url: str | None = None  #: target server; None self-hosts one
    templates: int = 24  #: distinct request bodies in the rotation
    scale: int = 48  #: corpus size the templates draw blocks from
    max_ops: int = 64
    machines: tuple[str, ...] = DEFAULT_MACHINES
    jobs: int = 1  #: worker-pool width of the self-hosted server
    cache_dir: str | None = None  #: cache of the self-hosted server
    ledger_dir: str | None = None  #: ledger of the self-hosted server
    #: slow-exemplar threshold of the self-hosted server (None = its
    #: default); `0` forces an exemplar for every request.
    slow_threshold_ms: float | None = None
    timeout_s: float = 60.0


@dataclass
class LoadReport:
    """Aggregate outcome of one load run."""

    requests: int
    failed: int
    elapsed_s: float
    throughput_rps: float
    latency_ms: dict[str, float]
    hit_rate: float
    hits: int
    misses: int
    statuses: dict[str, int]
    #: Latency samples behind the percentiles (transport failures record
    #: no latency, so this can undercut ``requests``) — reported so a
    #: small-n p99 reads with appropriate suspicion.
    samples: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "failed": self.failed,
            "elapsed_s": round(self.elapsed_s, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "latency_ms": self.latency_ms,
            "samples": self.samples,
            "hit_rate": round(self.hit_rate, 6),
            "hits": self.hits,
            "misses": self.misses,
            "statuses": self.statuses,
            "errors": self.errors,
        }

    def render(self) -> str:
        lat = self.latency_ms
        lines = [
            f"loadgen: {self.requests} requests, {self.failed} failed, "
            f"{self.elapsed_s:.2f}s "
            f"({self.throughput_rps:.1f} req/s)",
            f"  latency ms: p50={lat['p50']:.1f} p90={lat['p90']:.1f} "
            f"p99={lat['p99']:.1f} mean={lat['mean']:.1f} "
            f"(n={self.samples})",
            f"  cache: hit_rate={self.hit_rate:.3f} "
            f"(hits={self.hits} misses={self.misses})",
            "  statuses: "
            + ", ".join(
                f"{code}={count}"
                for code, count in sorted(self.statuses.items())
            ),
        ]
        for error in self.errors:
            lines.append(f"  error: {error}")
        return "\n".join(lines)

    def history_payload(self) -> dict[str, Any]:
        """BENCH-shaped metrics for the trend history.

        ``req/s`` is the gated (higher-is-better) series; the latency
        percentiles and hit-rate are informational units by design —
        absolute latency varies too much across runner hardware for a
        portable gate, while a throughput *collapse* is worth catching.
        """
        return {
            "loadgen_throughput": {
                "value": round(self.throughput_rps, 2),
                "unit": "req/s",
            },
            "loadgen_p50_latency": {
                "value": self.latency_ms["p50"],
                "unit": "ms",
            },
            "loadgen_p99_latency": {
                "value": self.latency_ms["p99"],
                "unit": "ms",
            },
            "loadgen_hit_rate": {
                "value": round(self.hit_rate, 6),
                "unit": "ratio",
            },
            "loadgen_failed": {"value": self.failed, "unit": "requests"},
        }


def percentile(sorted_values: list[float], q: float) -> float:
    """Linearly-interpolated percentile (``q`` in [0, 1]) of sorted values.

    The previous nearest-rank estimator (:func:`percentile_nearest`)
    silently reported the sample *maximum* as p99 for any run under ~50
    samples — a 200-request smoke run's p99 was really p99.5-ish and a
    20-request run's was the single worst outlier. Linear interpolation
    between the two straddling order statistics (numpy's default, and
    what most load tools report) degrades gracefully instead; the sample
    count rides along in the report so small-n percentiles read with the
    right suspicion either way.
    """
    if not sorted_values:
        return 0.0
    position = q * (len(sorted_values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = position - lower
    return (
        sorted_values[lower] * (1.0 - fraction)
        + sorted_values[upper] * fraction
    )


def percentile_nearest(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile — the pre-interpolation behavior, kept so
    the regression test can pin exactly what changed (p99 == max on
    small samples)."""
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1,
        max(0, int(round(q * (len(sorted_values) - 1)))),
    )
    return sorted_values[rank]


def zipf_weights(n: int, s: float) -> list[float]:
    """Zipf popularity weights: item ``k`` (1-based) gets ``1 / k**s``."""
    if n <= 0:
        raise ValueError("need at least one item")
    return [1.0 / (rank**s) for rank in range(1, n + 1)]


def build_templates(config: LoadgenConfig) -> list[dict[str, Any]]:
    """Distinct request bodies the zipf stream draws from.

    Templates rotate machine, kind and batch size over blocks of the
    seeded corpus, so a run exercises both request kinds and several
    batch shapes while repeats stay bit-identical (the cache contract).
    """
    from repro.workloads.corpus import specint95_corpus

    corpus = specint95_corpus(
        scale=max(8, config.scale), seed=config.seed, max_ops=config.max_ops
    )
    blocks = [superblock_to_dict(sb) for sb in corpus.superblocks]
    rng = random.Random(config.seed)
    templates: list[dict[str, Any]] = []
    for index in range(config.templates):
        machine = config.machines[index % len(config.machines)]
        kind = "schedule" if index % 3 else "bounds"
        batch = 1 + rng.randrange(3)
        start = rng.randrange(len(blocks))
        chosen = [
            blocks[(start + offset) % len(blocks)] for offset in range(batch)
        ]
        body: dict[str, Any] = {
            "kind": kind,
            "machine": machine,
            "blocks": chosen,
        }
        if kind == "schedule":
            body["heuristics"] = list(protocol.DEFAULT_HEURISTICS)
        templates.append(body)
    return templates


@dataclass
class _WorkerTally:
    """One worker thread's outcomes (merged after the run)."""

    latencies_ms: list[float] = field(default_factory=list)
    statuses: dict[str, int] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    failed: int = 0
    errors: list[str] = field(default_factory=list)


def _post_batch(
    url: str, body: bytes, timeout_s: float
) -> tuple[int, dict[str, Any]]:
    request = urllib.request.Request(
        f"{url}/v1/batch",
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        # Protocol errors still carry a structured JSON body.
        return exc.code, json.loads(exc.read())


def _drain(
    url: str,
    stream: list[bytes],
    cursor: "itertools.count[int]",
    tally: _WorkerTally,
    timeout_s: float,
) -> None:
    for index in cursor:
        if index >= len(stream):
            return
        t0 = time.perf_counter()
        try:
            status, payload = _post_batch(url, stream[index], timeout_s)
        except Exception as exc:  # noqa: BLE001 - any transport failure
            tally.failed += 1
            if len(tally.errors) < 10:
                tally.errors.append(f"request {index}: {exc}")
            tally.statuses["transport-error"] = (
                tally.statuses.get("transport-error", 0) + 1
            )
            continue
        tally.latencies_ms.append(1000.0 * (time.perf_counter() - t0))
        tally.statuses[str(status)] = tally.statuses.get(str(status), 0) + 1
        if status != 200:
            tally.failed += 1
            if len(tally.errors) < 10:
                error = payload.get("error", {})
                tally.errors.append(
                    f"request {index}: {status} "
                    f"{error.get('code')}: {error.get('message')}"
                )
            continue
        cache = payload.get("cache") or {}
        tally.hits += int(cache.get("hits", 0))
        tally.hits += int(cache.get("memory_hits", 0))
        tally.misses += int(cache.get("misses", 0))


def run_against(url: str, config: LoadgenConfig) -> LoadReport:
    """Fire the zipf stream at ``url`` and aggregate the outcome."""
    templates = build_templates(config)
    weights = zipf_weights(len(templates), config.zipf)
    rng = random.Random(config.seed + 1)
    stream = [
        json.dumps(body).encode("utf-8")
        for body in rng.choices(templates, weights=weights, k=config.requests)
    ]
    cursor = itertools.count()
    tallies = [_WorkerTally() for _ in range(max(1, config.concurrency))]
    threads = [
        threading.Thread(
            target=_drain,
            args=(url, stream, cursor, tally, config.timeout_s),
            name=f"loadgen-{i}",
            daemon=True,
        )
        for i, tally in enumerate(tallies)
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0

    latencies = sorted(
        ms for tally in tallies for ms in tally.latencies_ms
    )
    statuses: dict[str, int] = {}
    errors: list[str] = []
    hits = misses = failed = 0
    for tally in tallies:
        failed += tally.failed
        hits += tally.hits
        misses += tally.misses
        for code, count in tally.statuses.items():
            statuses[code] = statuses.get(code, 0) + count
        errors.extend(tally.errors)
    looked = hits + misses
    return LoadReport(
        requests=config.requests,
        failed=failed,
        elapsed_s=elapsed,
        throughput_rps=config.requests / elapsed if elapsed > 0 else 0.0,
        latency_ms={
            "p50": round(percentile(latencies, 0.50), 3),
            "p90": round(percentile(latencies, 0.90), 3),
            "p99": round(percentile(latencies, 0.99), 3),
            "mean": round(
                sum(latencies) / len(latencies) if latencies else 0.0, 3
            ),
        },
        samples=len(latencies),
        hit_rate=hits / looked if looked else 0.0,
        hits=hits,
        misses=misses,
        statuses=statuses,
        errors=errors[:10],
    )


def run_loadgen(config: LoadgenConfig) -> LoadReport:
    """Run one load pass; self-hosts a server when no URL is configured.

    The self-hosted server always gets a result cache (a temporary one
    unless ``cache_dir`` says otherwise) — a load run without a cache
    cannot measure the warm-path at all.
    """
    if config.url is not None:
        return run_against(config.url.rstrip("/"), config)

    from repro.service.app import ServiceConfig
    from repro.service.server import ServiceServer

    with tempfile.TemporaryDirectory(prefix="repro-loadgen-") as tmp:
        service_config = ServiceConfig(
            port=0,
            jobs=config.jobs,
            cache_dir=config.cache_dir or tmp,
            ledger_dir=config.ledger_dir,
        )
        if config.slow_threshold_ms is not None:
            service_config.slow_threshold_ms = config.slow_threshold_ms
        server = ServiceServer(service_config)
        server.start()
        try:
            return run_against(server.url, config)
        finally:
            server.stop()
