"""Scheduler-as-a-service: batch HTTP API over the evaluation library.

The production loop the ROADMAP asks for: ``python -m repro serve``
boots a dependency-free stdlib HTTP/JSON server whose batch requests
fan out through the persistent worker pool (:mod:`repro.perf`), answer
warm from the content-addressed cache (:mod:`repro.cache`) under the
library's bit-identity contract, and land in the run ledger
(:mod:`repro.obs.ledger`) so the observability dashboard covers service
traffic unchanged. ``python -m repro loadgen`` is the matching load
harness: zipf-skewed synthetic traffic, p50/p99/throughput/hit-rate
reporting into the bench trend history.

Layering:

* :mod:`repro.service.protocol` — wire schemas, validation, error codes;
* :mod:`repro.service.app` — the HTTP-free service core (state, locks,
  evaluation, crash retry, live metrics);
* :mod:`repro.service.server` — the stdlib HTTP front end;
* :mod:`repro.service.loadgen` — the synthetic load generator.

The ``service`` verify family (``python -m repro verify --family
service``) pins the central contract: HTTP batch responses are
bit-identical — results *and* reported counters — to direct library
calls, cold and warm.
"""

from repro.service.app import SchedulerService, ServiceConfig
from repro.service.loadgen import (
    LoadgenConfig,
    LoadReport,
    run_against,
    run_loadgen,
)
from repro.service.protocol import (
    DEFAULT_HEURISTICS,
    DEFAULT_MAX_BLOCKS,
    DEFAULT_MAX_BODY_BYTES,
    PROTOCOL_VERSION,
    BatchRequest,
    ProtocolError,
    error_payload,
    parse_batch_request,
    result_payload,
)
from repro.service.server import ServiceServer

__all__ = [
    "BatchRequest",
    "DEFAULT_HEURISTICS",
    "DEFAULT_MAX_BLOCKS",
    "DEFAULT_MAX_BODY_BYTES",
    "LoadReport",
    "LoadgenConfig",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SchedulerService",
    "ServiceConfig",
    "ServiceServer",
    "error_payload",
    "parse_batch_request",
    "result_payload",
    "run_against",
    "run_loadgen",
]
