"""Wire protocol for the scheduling service: schemas, validation, errors.

One request shape (``POST /v1/batch``)::

    {
      "kind": "schedule" | "bounds",
      "machine": "GP2" | {"name": ..., "units": {...}, "occupancy": {...}},
      "blocks": [<superblock JSON>, ...],
      "heuristics": ["dhasy", "balance"],
      "include_triplewise": false,
      "trace": false
    }

Superblocks use the :mod:`repro.ir.serialize` JSON round-trip format
verbatim; machines are either a built-in configuration name or the
:func:`repro.verify.generators.machine_to_dict` shape, so anything a
verify finding or a corpus file records can be posted as-is. The
response reports, per block, every lower bound plus the WCT *and*
makespan of each requested heuristic (the bicriteria view), the merged
trip counters, and the request's cache hit/miss delta — all of it
bit-identical to the equivalent direct library call (the ``service``
verify family pins this).

Additive response fields (still ``PROTOCOL_VERSION`` 1, clients that
ignore unknown keys are unaffected): every response — success or error —
carries ``request_id`` (the sanitized inbound ``X-Request-Id`` or a
minted ``req-...``, also echoed as a response header), and successful
responses carry ``server_timing``, the per-phase millisecond split
(``parse`` / ``queue`` / ``eval`` / ``serialize``) that the
``Server-Timing`` response header mirrors.

Every client-side mistake maps to a :class:`ProtocolError` carrying a
kebab-case machine-readable ``code`` and an HTTP status; the server
renders these as structured JSON errors — a malformed request never
produces a stack trace or kills the server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.ir.serialize import superblock_from_dict
from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig, machine_by_name

#: Response/request schema version (bump on breaking shape changes).
PROTOCOL_VERSION = 1

#: Request kinds: ``schedule`` runs bounds + the requested heuristics,
#: ``bounds`` runs the bound suite only.
KINDS = ("schedule", "bounds")

#: Heuristics evaluated when a schedule request names none.
DEFAULT_HEURISTICS = ("dhasy", "balance")

#: Per-request block cap (server-configurable; protects the worker pool).
DEFAULT_MAX_BLOCKS = 64

#: Request body cap in bytes (server-configurable).
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024


class ProtocolError(Exception):
    """A client-side protocol violation, mapped to a structured error.

    ``code`` is stable and machine-readable (``bad-json``,
    ``unknown-machine``, ``batch-too-large``, ...); ``status`` is the
    HTTP status the server answers with.
    """

    def __init__(self, code: str, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.code = code
        self.status = status


def error_payload(code: str, message: str) -> dict[str, Any]:
    """The structured error body every non-2xx response carries."""
    return {
        "schema_version": PROTOCOL_VERSION,
        "error": {"code": code, "message": message},
    }


@dataclass(frozen=True)
class BatchRequest:
    """A validated batch request, ready for evaluation."""

    kind: str
    machine: MachineConfig
    superblocks: tuple[Superblock, ...]
    heuristics: tuple[str, ...]
    include_triplewise: bool
    trace: bool


def parse_machine(value: Any) -> MachineConfig:
    """A machine from its request encoding (name or dict)."""
    if isinstance(value, str):
        try:
            return machine_by_name(value)
        except KeyError as exc:
            raise ProtocolError("unknown-machine", str(exc)) from None
    if isinstance(value, dict):
        from repro.verify.generators import machine_from_dict

        try:
            return machine_from_dict(value)
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                "bad-machine", f"machine payload is invalid: {exc}"
            ) from None
    raise ProtocolError(
        "bad-machine",
        "machine must be a configuration name or a machine object "
        "(see docs/service.md)",
    )


def _parse_heuristics(value: Any) -> tuple[str, ...]:
    from repro.schedulers.base import get_scheduler

    if value is None:
        return DEFAULT_HEURISTICS
    if not isinstance(value, list) or not all(
        isinstance(h, str) for h in value
    ):
        raise ProtocolError(
            "bad-heuristics", "heuristics must be a list of scheduler names"
        )
    if not value:
        raise ProtocolError(
            "bad-heuristics",
            "heuristics is empty — omit it for the default set, or use "
            "kind 'bounds' for a bounds-only request",
        )
    for name in value:
        try:
            get_scheduler(name)
        except KeyError as exc:
            raise ProtocolError("unknown-heuristic", str(exc)) from None
    return tuple(value)


def _parse_blocks(value: Any, max_blocks: int) -> tuple[Superblock, ...]:
    if not isinstance(value, list) or not value:
        raise ProtocolError(
            "bad-blocks", "blocks must be a non-empty list of superblocks"
        )
    if len(value) > max_blocks:
        raise ProtocolError(
            "batch-too-large",
            f"batch has {len(value)} blocks; this server accepts at most "
            f"{max_blocks} per request — split the batch",
            status=413,
        )
    blocks: list[Superblock] = []
    for index, entry in enumerate(value):
        if not isinstance(entry, dict):
            raise ProtocolError(
                "bad-superblock", f"blocks[{index}] is not an object"
            )
        try:
            blocks.append(superblock_from_dict(entry, validate=True))
        except Exception as exc:  # noqa: BLE001 - any decode/validate failure
            raise ProtocolError(
                "bad-superblock", f"blocks[{index}] is invalid: {exc}"
            ) from None
    return tuple(blocks)


def parse_batch_request(
    data: Any, max_blocks: int = DEFAULT_MAX_BLOCKS
) -> BatchRequest:
    """Validate a decoded request body into a :class:`BatchRequest`.

    Raises :class:`ProtocolError` on the first violation; the error's
    ``code``/``status`` drive the HTTP response.
    """
    if not isinstance(data, dict):
        raise ProtocolError(
            "bad-request", "request body must be a JSON object"
        )
    unknown = sorted(
        set(data)
        - {"kind", "machine", "blocks", "heuristics", "include_triplewise",
           "trace"}
    )
    if unknown:
        raise ProtocolError(
            "unknown-field",
            f"unknown request field(s): {', '.join(unknown)}",
        )
    kind = data.get("kind", "schedule")
    if kind not in KINDS:
        raise ProtocolError(
            "unknown-kind",
            f"kind {kind!r} is not one of {', '.join(KINDS)}",
        )
    if "machine" not in data:
        raise ProtocolError("bad-request", "request is missing 'machine'")
    machine = parse_machine(data["machine"])
    blocks = _parse_blocks(data.get("blocks"), max_blocks)
    heuristics: tuple[str, ...] = ()
    if kind == "schedule":
        heuristics = _parse_heuristics(data.get("heuristics"))
    include_triplewise = data.get("include_triplewise", False)
    trace = data.get("trace", False)
    for flag, value in (
        ("include_triplewise", include_triplewise), ("trace", trace)
    ):
        if not isinstance(value, bool):
            raise ProtocolError("bad-request", f"{flag} must be a boolean")
    return BatchRequest(
        kind=kind,
        machine=machine,
        superblocks=blocks,
        heuristics=heuristics,
        include_triplewise=include_triplewise,
        trace=trace,
    )


def result_payload(result: Any) -> dict[str, Any]:
    """The per-block response entry for one ``SuperblockResult``.

    Reports the tightest bound, every bound family's value, and — for
    schedule requests — each heuristic's WCT *and* makespan (the
    bicriteria pair). Exactly this shape, computed from a direct
    :func:`repro.eval.sched_eval.evaluate_corpus` call, is what the
    ``service`` verify family compares HTTP responses against.
    """
    return {
        "name": result.name,
        "tightest": result.tightest_bound,
        "bounds": dict(result.bound_wct),
        "wct": dict(result.heuristic_wct),
        "makespan": dict(result.stats.get("makespan", {})),
    }
