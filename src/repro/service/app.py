"""The scheduling service core: state, evaluation, live metrics.

:class:`SchedulerService` is the HTTP-free heart of ``repro serve``. One
instance owns:

* the **content-addressed result cache** (:mod:`repro.cache`) — warm
  requests are answered from it under the same bit-identity contract the
  library enforces (uncached == cold == warm, results and counters);
* the **persistent worker pool** (:mod:`repro.perf`) — batches fan out
  through :func:`repro.eval.sched_eval.evaluate_corpus` with the
  configured ``--jobs``, reusing warm workers across requests;
* the **run ledger** (:mod:`repro.obs.ledger`) — every request appends a
  ``serve`` run record (per-block detail, span attribution, cache and
  dispatch stats), so ``python -m repro obs dashboard`` works on service
  traffic unchanged;
* the **live metrics registry** — per-request kernel counters merge into
  it after each request plus ``service.*`` counters/timers, rendered by
  ``GET /metrics`` in Prometheus text exposition via
  :func:`repro.obs.export.metrics_to_prometheus`.

Concurrency model: HTTP handling is multi-threaded (health and metrics
stay responsive under load) but evaluation is serialized by a lock —
the library's ambient-state stacks (cache, recorder, tracer, metrics)
are process-global, and batch-level parallelism is the worker pool's
job, not the request threads'. A worker killed mid-batch surfaces as
:class:`~repro.perf.runner.WorkerCrashError`; the service retries the
batch once on fresh workers (the pool-eviction recovery path) before
answering 503, so a single crash never fails a request.

Request-scoped observability (this layer's additions on top of the
aggregate metrics):

* every call gets a **request id** — an inbound ``X-Request-Id`` header
  (sanitized) or a minted ``req-......`` — bound onto the request's
  tracer so every span, *including worker-side spans merged back by the
  pool*, carries ``request_id`` and the full span tree reassembles from
  a mixed trace;
* request latency and the per-phase split (parse / queue-behind-lock /
  eval / serialize) stream into bounded-memory **histograms** on the
  live registry, exported as Prometheus ``histogram`` families and
  echoed to the client as a ``Server-Timing`` header + response block;
* an :class:`~repro.obs.slo.SLOTracker` classifies every response
  against latency/availability objectives and surfaces multi-window
  burn rates in ``/metrics``;
* requests slower than ``slow_threshold_ms`` persist a **tail-latency
  exemplar** (Chrome trace + phase split + metadata) into their ledger
  record, listed by ``python -m repro obs slowest``; ``/debug/requests``
  exposes the in-flight table and recent/slow ring buffers.
"""

from __future__ import annotations

import itertools
import json
import logging
import re
import threading
import time
from collections import deque
from contextlib import ExitStack
from dataclasses import dataclass
from typing import Any

from repro import cache as result_cache
from repro.cache.store import ResultCache
from repro.obs import ledger as ledger_mod
from repro.obs import trace as trace_mod
from repro.obs.export import metrics_to_prometheus, spans_to_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOTracker, default_objectives
from repro.perf.runner import WorkerCrashError, reset_dispatch_stats
from repro.service import protocol

logger = logging.getLogger("repro.service")

#: Attempts per batch: the original run plus one retry on a worker crash
#: (the pool was evicted; the retry spawns fresh workers).
_MAX_ATTEMPTS = 2

#: Characters allowed in a client-supplied request id; the rest become
#: ``-`` so header junk cannot leak into logs, ledger records or traces.
_RID_UNSAFE_RE = re.compile(r"[^A-Za-z0-9._\-]")

#: Longest accepted client-supplied request id.
_RID_MAX_LEN = 128

#: The request phases timed for Server-Timing and the phase histograms.
PHASES = ("parse", "queue", "eval", "serialize")

#: Ring sizes for /debug/requests.
_RECENT_RING = 64
_SLOW_RING = 32


@dataclass
class ServiceConfig:
    """One server's configuration (CLI flags map onto this 1:1)."""

    host: str = "127.0.0.1"
    port: int = 8131
    jobs: int = 1
    cache_dir: str | None = None
    ledger_dir: str | None = None
    max_blocks: int = protocol.DEFAULT_MAX_BLOCKS
    max_body_bytes: int = protocol.DEFAULT_MAX_BODY_BYTES
    #: Requests at least this slow persist a tail-latency exemplar into
    #: their ledger record. ``0`` captures every request (CI uses this to
    #: force an exemplar); negative disables capture.
    slow_threshold_ms: float = 1000.0
    #: SLO objectives: good = answered within the latency threshold /
    #: answered without a 5xx. ``repro obs slo`` replays the same
    #: objectives offline from the ledger.
    slo_latency_ms: float = 1000.0
    slo_latency_target: float = 0.99
    slo_availability_target: float = 0.999


@dataclass
class _EvalOutcome:
    """What one successful :meth:`SchedulerService._evaluate` produced."""

    summary: Any
    registry: MetricsRegistry
    tracer: trace_mod.Tracer | None
    recorder: ledger_mod.RunRecorder | None
    cache_delta: dict[str, Any] | None
    eval_seconds: float


class SchedulerService:
    """Evaluates batch requests against the library, with shared state."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.cache: ResultCache | None = (
            ResultCache(config.cache_dir) if config.cache_dir else None
        )
        #: Live registry behind ``GET /metrics``: service counters plus
        #: the merged kernel counters of every request served.
        self.registry = MetricsRegistry()
        #: SLO burn-rate tracking over every finished request; queried at
        #: scrape time under the registry lock.
        self.slo = SLOTracker(
            default_objectives(
                latency_target=config.slo_latency_target,
                latency_threshold_s=config.slo_latency_ms / 1000.0,
                availability_target=config.slo_availability_target,
            )
        )
        self.started_at = time.time()
        self._clock0 = time.perf_counter()
        self._eval_lock = threading.Lock()
        self._registry_lock = threading.Lock()
        self._request_seq = itertools.count(1)
        #: /debug/requests state: in-flight table plus recent/slow rings.
        self._debug_lock = threading.Lock()
        self._inflight: dict[str, dict[str, Any]] = {}
        self._recent: deque[dict[str, Any]] = deque(maxlen=_RECENT_RING)
        self._slow: deque[dict[str, Any]] = deque(maxlen=_SLOW_RING)

    # -- live metrics ----------------------------------------------------
    def note(self, counter: str, amount: int = 1) -> None:
        """Bump a service counter on the live registry (thread-safe)."""
        with self._registry_lock:
            self.registry.add(counter, amount)

    def _absorb(
        self, registry: MetricsRegistry, request: protocol.BatchRequest,
        elapsed: float,
    ) -> None:
        """Fold one served request's registry + accounting into the live one."""
        with self._registry_lock:
            self.registry.merge(registry)
            self.registry.add("service.requests")
            self.registry.add(f"service.requests.{request.kind}")
            self.registry.add("service.blocks", len(request.superblocks))
            self.registry.observe("service.request_seconds", elapsed)

    def uptime_s(self) -> float:
        return time.perf_counter() - self._clock0

    def health(self) -> dict[str, Any]:
        """The ``GET /healthz`` body."""
        with self._registry_lock:
            counters = self.registry.counters.as_dict()
        return {
            "status": "ok",
            "uptime_s": round(self.uptime_s(), 3),
            "requests": counters.get("service.requests", 0),
            "jobs": self.config.jobs,
            "cache": self.config.cache_dir is not None,
            "ledger": self.config.ledger_dir is not None,
        }

    def metrics_text(self) -> str:
        """The ``GET /metrics`` body: Prometheus text exposition 0.0.4.

        A snapshot of the live registry plus scrape-time gauges (uptime,
        cache lifetime totals, SLO burn rates). Gauges — not counter
        adds — for the cache stats, so scraping never double-counts.
        """
        with self._registry_lock:
            data = self.registry.as_dict()
            slo_gauges = self.slo.gauges()
        gauges = data["gauges"]
        gauges.update(slo_gauges)
        gauges["service.uptime_seconds"] = round(self.uptime_s(), 3)
        if self.cache is not None:
            for event, amount in self.cache.stats.as_dict().items():
                gauges[f"service.cache.{event}"] = float(amount)
            gauges["service.cache.hit_rate"] = round(
                self.cache.stats.hit_rate, 6
            )
        return metrics_to_prometheus(data, prefix="repro")

    # -- request ids and debug state -------------------------------------
    def _mint_request_id(self, supplied: str | None) -> str:
        """An inbound ``X-Request-Id`` (sanitized) or a fresh ``req-...``."""
        if supplied:
            cleaned = _RID_UNSAFE_RE.sub("-", supplied.strip())[:_RID_MAX_LEN]
            if cleaned:
                return cleaned
        return f"req-{next(self._request_seq):06x}"

    def debug_requests(self) -> dict[str, Any]:
        """The ``GET /debug/requests`` body: in-flight + recent + slow.

        Reads only the debug rings (never the eval lock), so it stays
        responsive while a batch computes — which is exactly when you
        want to see what is in flight.
        """
        now = time.time()
        with self._debug_lock:
            in_flight = [
                {**entry, "age_s": round(now - entry["started_at"], 3)}
                for entry in self._inflight.values()
            ]
            recent = [dict(entry) for entry in self._recent]
            slow = [dict(entry) for entry in self._slow]
        return {
            "schema_version": protocol.PROTOCOL_VERSION,
            "in_flight": in_flight,
            "recent": recent,
            "slow": slow,
            "slow_threshold_ms": self.config.slow_threshold_ms,
        }

    def _is_slow(self, total_s: float) -> bool:
        threshold = self.config.slow_threshold_ms
        return threshold >= 0.0 and total_s * 1000.0 >= threshold

    # -- batch evaluation ------------------------------------------------
    def handle_batch(
        self, raw: bytes, request_id: str | None = None
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        """Decode, validate and evaluate one batch body.

        Returns ``(http_status, response_payload, response_headers)``.
        Every failure mode maps to a structured error body — never a
        traceback, never a dead server. ``request_id`` is the client's
        ``X-Request-Id`` header (or ``None`` to mint one); the resolved
        id is echoed in the payload and the ``X-Request-Id`` header on
        success *and* error paths, and the phase split rides back as a
        ``Server-Timing`` header plus a ``server_timing`` payload block.
        """
        t_start = time.perf_counter()
        rid = self._mint_request_id(request_id)
        phases = dict.fromkeys(PHASES, 0.0)
        inflight: dict[str, Any] = {
            "request_id": rid,
            "started_at": round(time.time(), 3),
        }
        with self._debug_lock:
            self._inflight[rid] = inflight
        status = 500
        payload: dict[str, Any]
        request: protocol.BatchRequest | None = None
        outcome: _EvalOutcome | None = None
        try:
            try:
                t0 = time.perf_counter()
                try:
                    data = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, ValueError) as exc:
                    raise protocol.ProtocolError(
                        "bad-json", f"request body is not valid JSON: {exc}"
                    ) from None
                request = protocol.parse_batch_request(
                    data, max_blocks=self.config.max_blocks
                )
                phases["parse"] = time.perf_counter() - t0
                with self._debug_lock:
                    inflight.update(
                        kind=request.kind,
                        machine=request.machine.name,
                        blocks=len(request.superblocks),
                    )
                t0 = time.perf_counter()
                with self._eval_lock:
                    phases["queue"] = time.perf_counter() - t0
                    outcome = self._evaluate(request, rid)
                phases["eval"] = outcome.eval_seconds
                t0 = time.perf_counter()
                payload = self._serialize(outcome, request, rid)
                phases["serialize"] = time.perf_counter() - t0
                status = 200
            except protocol.ProtocolError as exc:
                self.note(f"service.errors.{exc.code}")
                status = exc.status
                payload = protocol.error_payload(exc.code, str(exc))
            except WorkerCrashError as exc:
                # Both attempts lost their workers; the pool is evicted,
                # so the *next* request starts clean.
                logger.error("batch failed after worker-crash retry: %s", exc)
                self.note("service.errors.worker-crash")
                status = 503
                payload = protocol.error_payload(
                    "worker-crash",
                    "a worker process died twice while evaluating this "
                    "batch; the pool was recycled — retry the request",
                )
            except Exception:
                logger.exception("batch request failed")
                self.note("service.errors.internal")
                status = 500
                payload = protocol.error_payload(
                    "internal", "internal error; see the server log"
                )
            total = time.perf_counter() - t_start
            if status == 200 and outcome is not None and request is not None:
                self._finalize_run(outcome, request, rid, phases, total, status)
                self._absorb(outcome.registry, request, outcome.eval_seconds)
            payload["request_id"] = rid
            phases_ms = {
                name: round(seconds * 1000.0, 3)
                for name, seconds in phases.items()
            }
            if status == 200:
                payload["server_timing"] = phases_ms
            headers = {
                "X-Request-Id": rid,
                "Server-Timing": ", ".join(
                    f"{name};dur={phases_ms[name]}" for name in PHASES
                ),
            }
            return status, payload, headers
        finally:
            total = time.perf_counter() - t_start
            with self._registry_lock:
                self.registry.observe_hist("service.request_seconds", total)
                for name, seconds in phases.items():
                    self.registry.observe_hist(
                        f"service.phase.{name}_seconds", seconds
                    )
                # 4xx responses were answered correctly — only 5xx (and
                # an escaping exception, which left status at 500) spend
                # availability budget.
                self.slo.record(ok=status < 500, latency_s=total)
            finished = {
                **inflight,
                "status": status,
                "elapsed_ms": round(total * 1000.0, 3),
                "phases_ms": {
                    name: round(seconds * 1000.0, 3)
                    for name, seconds in phases.items()
                },
            }
            with self._debug_lock:
                self._inflight.pop(rid, None)
                self._recent.appendleft(finished)
                if self._is_slow(total):
                    self._slow.appendleft(finished)

    def _serialize(
        self,
        outcome: _EvalOutcome,
        request: protocol.BatchRequest,
        rid: str,
    ) -> dict[str, Any]:
        """Build the success payload from an evaluation outcome."""
        payload: dict[str, Any] = {
            "schema_version": protocol.PROTOCOL_VERSION,
            "request_id": rid,
            "kind": request.kind,
            "machine": request.machine.name,
            "results": [
                protocol.result_payload(r) for r in outcome.summary.results
            ],
            "counters": outcome.registry.as_dict()["counters"],
            "cache": outcome.cache_delta,
            "elapsed_s": round(outcome.eval_seconds, 6),
        }
        if request.trace and outcome.tracer is not None:
            payload["trace"] = spans_to_chrome_trace(
                outcome.tracer.spans(), process_name="repro-serve"
            )
        return payload

    def _finalize_run(
        self,
        outcome: _EvalOutcome,
        request: protocol.BatchRequest,
        rid: str,
        phases: dict[str, float],
        total_s: float,
        status: int,
    ) -> None:
        """Attach the slow-request exemplar (if any) and write the ledger
        record. Deferred out of ``_evaluate`` so the exemplar can see the
        request's *total* latency including parse/queue/serialize."""
        recorder = outcome.recorder
        if recorder is None:
            return
        if self._is_slow(total_s):
            exemplar: dict[str, Any] = {
                "request_id": rid,
                "status": status,
                "kind": request.kind,
                "machine": request.machine.name,
                "blocks": len(request.superblocks),
                "elapsed_ms": round(total_s * 1000.0, 3),
                "threshold_ms": self.config.slow_threshold_ms,
                "phases_ms": {
                    name: round(seconds * 1000.0, 3)
                    for name, seconds in phases.items()
                },
            }
            if outcome.tracer is not None:
                exemplar["trace"] = spans_to_chrome_trace(
                    outcome.tracer.spans(), process_name="repro-serve"
                )
            recorder.extra["slow_request"] = exemplar
            self.note("service.slow_requests")
        if outcome.cache_delta is not None:
            recorder.attach_cache_stats(outcome.cache_delta)
        recorder.finalize(
            span_events=(
                outcome.tracer.spans() if outcome.tracer is not None else None
            ),
            metrics=outcome.registry,
        )

    def _evaluate(
        self, request: protocol.BatchRequest, rid: str
    ) -> _EvalOutcome:
        """Run one validated batch; must hold ``_eval_lock``.

        Each attempt starts from scratch (fresh registry, tracer and
        recorder) so a worker-crash retry cannot double-count anything.
        The request id is bound onto the tracer, so every span recorded
        during evaluation — including worker-side spans merged back by
        :func:`repro.perf.workers.corpus_map` — carries ``request_id``.
        """
        from repro.eval.sched_eval import evaluate_corpus
        from repro.workloads.corpus import Corpus

        blocks = list(request.superblocks)
        corpus = Corpus(name="service-batch", superblocks=blocks)
        for attempt in range(1, _MAX_ATTEMPTS + 1):
            registry = MetricsRegistry()
            tracer = (
                trace_mod.Tracer()
                if request.trace or self.config.ledger_dir is not None
                else None
            )
            recorder = (
                ledger_mod.RunRecorder(
                    "serve",
                    args={
                        "request_id": rid,
                        "kind": request.kind,
                        "machine": request.machine.name,
                        "blocks": len(blocks),
                        "heuristics": list(request.heuristics),
                        "include_triplewise": request.include_triplewise,
                        "jobs": self.config.jobs,
                    },
                    directory=self.config.ledger_dir,
                )
                if self.config.ledger_dir is not None
                else None
            )
            stats_before = (
                self.cache.stats.as_dict() if self.cache is not None else None
            )
            reset_dispatch_stats()
            t0 = time.perf_counter()
            try:
                with ExitStack() as stack:
                    if tracer is not None:
                        stack.enter_context(trace_mod.install(tracer))
                        stack.enter_context(tracer.bind(request_id=rid))
                    if self.cache is not None:
                        stack.enter_context(result_cache.install(self.cache))
                    if recorder is not None:
                        stack.enter_context(ledger_mod.installed(recorder))
                    with trace_mod.span(
                        "service.batch",
                        kind=request.kind,
                        machine=request.machine.name,
                        blocks=len(blocks),
                    ):
                        summary = evaluate_corpus(
                            corpus,
                            request.machine,
                            heuristics=request.heuristics,
                            include_triplewise=request.include_triplewise,
                            jobs=self.config.jobs,
                            metrics=registry,
                        )
            except WorkerCrashError:
                if attempt >= _MAX_ATTEMPTS:
                    raise
                logger.warning(
                    "worker crashed mid-batch; pool evicted — retrying "
                    "the batch on fresh workers"
                )
                self.note("service.worker_crash_retries")
                continue
            elapsed = time.perf_counter() - t0
            break
        return _EvalOutcome(
            summary=summary,
            registry=registry,
            tracer=tracer,
            recorder=recorder,
            cache_delta=self._cache_delta(stats_before),
            eval_seconds=elapsed,
        )

    def _cache_delta(
        self, before: dict[str, Any] | None
    ) -> dict[str, Any] | None:
        """This request's cache activity (lifetime totals minus ``before``)."""
        if before is None or self.cache is None:
            return None
        after = self.cache.stats.as_dict()
        delta = {
            key: int(after.get(key, 0)) - int(before.get(key, 0))
            for key in ("hits", "misses", "writes", "memory_hits")
        }
        looked = delta["hits"] + delta["misses"]
        delta["hit_rate"] = (
            round(delta["hits"] / looked, 6) if looked else 0.0
        )
        return delta
