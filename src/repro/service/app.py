"""The scheduling service core: state, evaluation, live metrics.

:class:`SchedulerService` is the HTTP-free heart of ``repro serve``. One
instance owns:

* the **content-addressed result cache** (:mod:`repro.cache`) — warm
  requests are answered from it under the same bit-identity contract the
  library enforces (uncached == cold == warm, results and counters);
* the **persistent worker pool** (:mod:`repro.perf`) — batches fan out
  through :func:`repro.eval.sched_eval.evaluate_corpus` with the
  configured ``--jobs``, reusing warm workers across requests;
* the **run ledger** (:mod:`repro.obs.ledger`) — every request appends a
  ``serve`` run record (per-block detail, span attribution, cache and
  dispatch stats), so ``python -m repro obs dashboard`` works on service
  traffic unchanged;
* the **live metrics registry** — per-request kernel counters merge into
  it after each request plus ``service.*`` counters/timers, rendered by
  ``GET /metrics`` in Prometheus text exposition via
  :func:`repro.obs.export.metrics_to_prometheus`.

Concurrency model: HTTP handling is multi-threaded (health and metrics
stay responsive under load) but evaluation is serialized by a lock —
the library's ambient-state stacks (cache, recorder, tracer, metrics)
are process-global, and batch-level parallelism is the worker pool's
job, not the request threads'. A worker killed mid-batch surfaces as
:class:`~repro.perf.runner.WorkerCrashError`; the service retries the
batch once on fresh workers (the pool-eviction recovery path) before
answering 503, so a single crash never fails a request.
"""

from __future__ import annotations

import itertools
import json
import logging
import threading
import time
from contextlib import ExitStack
from dataclasses import dataclass
from typing import Any

from repro import cache as result_cache
from repro.cache.store import ResultCache
from repro.obs import ledger as ledger_mod
from repro.obs import trace as trace_mod
from repro.obs.export import metrics_to_prometheus, spans_to_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.perf.runner import WorkerCrashError, reset_dispatch_stats
from repro.service import protocol

logger = logging.getLogger("repro.service")

#: Attempts per batch: the original run plus one retry on a worker crash
#: (the pool was evicted; the retry spawns fresh workers).
_MAX_ATTEMPTS = 2


@dataclass
class ServiceConfig:
    """One server's configuration (CLI flags map onto this 1:1)."""

    host: str = "127.0.0.1"
    port: int = 8131
    jobs: int = 1
    cache_dir: str | None = None
    ledger_dir: str | None = None
    max_blocks: int = protocol.DEFAULT_MAX_BLOCKS
    max_body_bytes: int = protocol.DEFAULT_MAX_BODY_BYTES


class SchedulerService:
    """Evaluates batch requests against the library, with shared state."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.cache: ResultCache | None = (
            ResultCache(config.cache_dir) if config.cache_dir else None
        )
        #: Live registry behind ``GET /metrics``: service counters plus
        #: the merged kernel counters of every request served.
        self.registry = MetricsRegistry()
        self.started_at = time.time()
        self._clock0 = time.perf_counter()
        self._eval_lock = threading.Lock()
        self._registry_lock = threading.Lock()
        self._request_seq = itertools.count(1)

    # -- live metrics ----------------------------------------------------
    def note(self, counter: str, amount: int = 1) -> None:
        """Bump a service counter on the live registry (thread-safe)."""
        with self._registry_lock:
            self.registry.add(counter, amount)

    def _absorb(
        self, registry: MetricsRegistry, request: protocol.BatchRequest,
        elapsed: float,
    ) -> None:
        """Fold one served request's registry + accounting into the live one."""
        with self._registry_lock:
            self.registry.merge(registry)
            self.registry.add("service.requests")
            self.registry.add(f"service.requests.{request.kind}")
            self.registry.add("service.blocks", len(request.superblocks))
            self.registry.observe("service.request_seconds", elapsed)

    def uptime_s(self) -> float:
        return time.perf_counter() - self._clock0

    def health(self) -> dict[str, Any]:
        """The ``GET /healthz`` body."""
        with self._registry_lock:
            counters = self.registry.counters.as_dict()
        return {
            "status": "ok",
            "uptime_s": round(self.uptime_s(), 3),
            "requests": counters.get("service.requests", 0),
            "jobs": self.config.jobs,
            "cache": self.config.cache_dir is not None,
            "ledger": self.config.ledger_dir is not None,
        }

    def metrics_text(self) -> str:
        """The ``GET /metrics`` body: Prometheus text exposition 0.0.4.

        A snapshot of the live registry plus scrape-time gauges (uptime,
        cache lifetime totals). Gauges — not counter adds — for the cache
        stats, so scraping never double-counts.
        """
        with self._registry_lock:
            data = self.registry.as_dict()
        gauges = data["gauges"]
        gauges["service.uptime_seconds"] = round(self.uptime_s(), 3)
        if self.cache is not None:
            for event, amount in self.cache.stats.as_dict().items():
                gauges[f"service.cache.{event}"] = float(amount)
            gauges["service.cache.hit_rate"] = round(
                self.cache.stats.hit_rate, 6
            )
        return metrics_to_prometheus(data, prefix="repro")

    # -- batch evaluation ------------------------------------------------
    def handle_batch(self, raw: bytes) -> tuple[int, dict[str, Any]]:
        """Decode, validate and evaluate one batch body.

        Returns ``(http_status, response_payload)``. Every failure mode
        maps to a structured error body — never a traceback, never a
        dead server.
        """
        try:
            try:
                data = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise protocol.ProtocolError(
                    "bad-json", f"request body is not valid JSON: {exc}"
                ) from None
            request = protocol.parse_batch_request(
                data, max_blocks=self.config.max_blocks
            )
            with self._eval_lock:
                payload, registry, elapsed = self._evaluate(request)
        except protocol.ProtocolError as exc:
            self.note(f"service.errors.{exc.code}")
            return exc.status, protocol.error_payload(exc.code, str(exc))
        except WorkerCrashError as exc:
            # Both attempts lost their workers; the pool is evicted, so
            # the *next* request starts clean.
            logger.error("batch failed after worker-crash retry: %s", exc)
            self.note("service.errors.worker-crash")
            return 503, protocol.error_payload(
                "worker-crash",
                "a worker process died twice while evaluating this batch; "
                "the pool was recycled — retry the request",
            )
        except Exception:
            logger.exception("batch request failed")
            self.note("service.errors.internal")
            return 500, protocol.error_payload(
                "internal", "internal error; see the server log"
            )
        self._absorb(registry, request, elapsed)
        return 200, payload

    def _evaluate(
        self, request: protocol.BatchRequest
    ) -> tuple[dict[str, Any], MetricsRegistry, float]:
        """Run one validated batch; must hold ``_eval_lock``.

        Each attempt starts from scratch (fresh registry, tracer and
        recorder) so a worker-crash retry cannot double-count anything.
        """
        from repro.eval.sched_eval import evaluate_corpus
        from repro.workloads.corpus import Corpus

        blocks = list(request.superblocks)
        corpus = Corpus(name="service-batch", superblocks=blocks)
        for attempt in range(1, _MAX_ATTEMPTS + 1):
            registry = MetricsRegistry()
            tracer = (
                trace_mod.Tracer()
                if request.trace or self.config.ledger_dir is not None
                else None
            )
            recorder = (
                ledger_mod.RunRecorder(
                    "serve",
                    args={
                        "kind": request.kind,
                        "machine": request.machine.name,
                        "blocks": len(blocks),
                        "heuristics": list(request.heuristics),
                        "include_triplewise": request.include_triplewise,
                        "jobs": self.config.jobs,
                    },
                    directory=self.config.ledger_dir,
                )
                if self.config.ledger_dir is not None
                else None
            )
            stats_before = (
                self.cache.stats.as_dict() if self.cache is not None else None
            )
            reset_dispatch_stats()
            t0 = time.perf_counter()
            try:
                with ExitStack() as stack:
                    if tracer is not None:
                        stack.enter_context(trace_mod.install(tracer))
                    if self.cache is not None:
                        stack.enter_context(result_cache.install(self.cache))
                    if recorder is not None:
                        stack.enter_context(ledger_mod.installed(recorder))
                    with trace_mod.span(
                        "service.batch",
                        kind=request.kind,
                        machine=request.machine.name,
                        blocks=len(blocks),
                    ):
                        summary = evaluate_corpus(
                            corpus,
                            request.machine,
                            heuristics=request.heuristics,
                            include_triplewise=request.include_triplewise,
                            jobs=self.config.jobs,
                            metrics=registry,
                        )
            except WorkerCrashError:
                if attempt >= _MAX_ATTEMPTS:
                    raise
                logger.warning(
                    "worker crashed mid-batch; pool evicted — retrying "
                    "the batch on fresh workers"
                )
                self.note("service.worker_crash_retries")
                continue
            elapsed = time.perf_counter() - t0
            break
        cache_delta = self._cache_delta(stats_before)
        request_id = f"req-{next(self._request_seq):06x}"
        if recorder is not None:
            if cache_delta is not None:
                recorder.attach_cache_stats(cache_delta)
            recorder.finalize(
                span_events=tracer.spans() if tracer is not None else None,
                metrics=registry,
            )
            request_id = recorder.run_id
        payload: dict[str, Any] = {
            "schema_version": protocol.PROTOCOL_VERSION,
            "request_id": request_id,
            "kind": request.kind,
            "machine": request.machine.name,
            "results": [
                protocol.result_payload(r) for r in summary.results
            ],
            "counters": registry.as_dict()["counters"],
            "cache": cache_delta,
            "elapsed_s": round(elapsed, 6),
        }
        if request.trace and tracer is not None:
            payload["trace"] = spans_to_chrome_trace(
                tracer.spans(), process_name="repro-serve"
            )
        return payload, registry, elapsed

    def _cache_delta(
        self, before: dict[str, Any] | None
    ) -> dict[str, Any] | None:
        """This request's cache activity (lifetime totals minus ``before``)."""
        if before is None or self.cache is None:
            return None
        after = self.cache.stats.as_dict()
        delta = {
            key: int(after.get(key, 0)) - int(before.get(key, 0))
            for key in ("hits", "misses", "writes", "memory_hits")
        }
        looked = delta["hits"] + delta["misses"]
        delta["hit_rate"] = (
            round(delta["hits"] / looked, 6) if looked else 0.0
        )
        return delta
