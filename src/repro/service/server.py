"""Stdlib HTTP front end for :class:`~repro.service.app.SchedulerService`.

Endpoints:

* ``GET /healthz`` — liveness/readiness JSON (never blocks on evaluation).
* ``GET /metrics`` — Prometheus text exposition 0.0.4 from the live
  registry (latency histograms and SLO burn-rate gauges included).
* ``GET /debug/requests`` — in-flight, recent and slow request rings
  (never blocks on evaluation).
* ``POST /v1/batch`` — batch schedule/bounds evaluation (see
  :mod:`repro.service.protocol`). An inbound ``X-Request-Id`` header is
  honored (sanitized) and echoed back; responses carry a
  ``Server-Timing`` header with the parse/queue/eval/serialize split.

Built on :class:`http.server.ThreadingHTTPServer` — dependency-free,
keep-alive capable (HTTP/1.1 with explicit ``Content-Length``), one
thread per connection. Request threads only ever *parse and reply*;
evaluation is serialized inside the service (see
:mod:`repro.service.app`), so health and metrics stay responsive while
a batch computes.

Robustness contract (pinned by ``tests/test_service.py``): malformed
input of any kind answers a structured JSON error, an unexpected
exception answers a generic 500 (the traceback goes to the log, never
the wire), and a client that disconnects mid-request is counted
(``service.client_disconnects``) without disturbing the server.
"""

from __future__ import annotations

import json
import logging
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import urlsplit

from repro import __version__
from repro.service import protocol
from repro.service.app import SchedulerService, ServiceConfig

logger = logging.getLogger("repro.service")

#: Content type of the ``/metrics`` exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Errors raised by a peer vanishing mid-read or mid-write.
_DISCONNECT_ERRORS = (
    BrokenPipeError,
    ConnectionResetError,
    ConnectionAbortedError,
    socket.timeout,
    TimeoutError,
)


class _ServiceHTTPServer(ThreadingHTTPServer):
    """Threading server carrying the service instance for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self, address: tuple[str, int], service: SchedulerService
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"
    #: Socket timeout: a stalled peer releases its thread instead of
    #: holding it forever.
    timeout = 60.0

    @property
    def service(self) -> SchedulerService:
        server: Any = self.server
        return server.service

    # BaseHTTPRequestHandler logs to stderr by default; route to logging
    # so a busy server does not spam the console the CLI runs in.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)

    # -- response helpers ------------------------------------------------
    def _send_bytes(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except _DISCONNECT_ERRORS:
            self.service.note("service.client_disconnects")
            self.close_connection = True

    def _send_json(
        self,
        status: int,
        payload: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        self._send_bytes(
            status,
            json.dumps(payload).encode("utf-8"),
            "application/json",
            headers=headers,
        )

    def _send_error_payload(
        self, status: int, code: str, message: str
    ) -> None:
        self.service.note(f"service.errors.{code}")
        self._send_json(status, protocol.error_payload(code, message))

    # -- request routing -------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        try:
            path = urlsplit(self.path).path
            if path == "/healthz":
                self._send_json(200, self.service.health())
            elif path == "/metrics":
                self._send_bytes(
                    200,
                    self.service.metrics_text().encode("utf-8"),
                    PROMETHEUS_CONTENT_TYPE,
                )
            elif path == "/debug/requests":
                self._send_json(200, self.service.debug_requests())
            elif path == "/v1/batch":
                self._send_error_payload(
                    405, "method-not-allowed",
                    "/v1/batch accepts POST only",
                )
            else:
                self._send_error_payload(
                    404, "not-found",
                    f"unknown path {path!r}; endpoints: /healthz, /metrics, "
                    "/debug/requests, POST /v1/batch",
                )
        except Exception:
            self._internal_error()

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        try:
            path = urlsplit(self.path).path
            if path != "/v1/batch":
                self._send_error_payload(
                    404, "not-found",
                    f"unknown path {path!r}; POST goes to /v1/batch",
                )
                return
            raw_length = self.headers.get("Content-Length")
            try:
                length = int(raw_length or "")
            except ValueError:
                self._send_error_payload(
                    411, "length-required",
                    "POST /v1/batch needs a numeric Content-Length header",
                )
                self.close_connection = True
                return
            if length > self.service.config.max_body_bytes:
                # Refuse before reading: an oversize body is never
                # buffered, and the connection drops so the unread
                # remainder cannot poison keep-alive framing.
                self._send_error_payload(
                    413, "body-too-large",
                    f"request body of {length} bytes exceeds this "
                    f"server's limit of "
                    f"{self.service.config.max_body_bytes} bytes",
                )
                self.close_connection = True
                return
            try:
                body = self.rfile.read(length)
            except _DISCONNECT_ERRORS:
                self.service.note("service.client_disconnects")
                self.close_connection = True
                return
            if len(body) < length:
                # The peer hung up mid-upload. Answer a structured error
                # on the off chance it is still listening; either way the
                # server carries on.
                self.service.note("service.client_disconnects")
                self._send_error_payload(
                    400, "truncated-body",
                    f"request body ended after {len(body)} of {length} "
                    "bytes",
                )
                self.close_connection = True
                return
            status, payload, headers = self.service.handle_batch(
                body, request_id=self.headers.get("X-Request-Id")
            )
            self._send_json(status, payload, headers=headers)
        except Exception:
            self._internal_error()

    def _internal_error(self) -> None:
        """Last-ditch handler: log the traceback, answer a clean 500."""
        logger.exception("unhandled error serving %s", self.path)
        try:
            self._send_json(
                500,
                protocol.error_payload(
                    "internal", "internal error; see the server log"
                ),
            )
        except Exception:
            self.close_connection = True


class ServiceServer:
    """Owns one bound HTTP server over a :class:`SchedulerService`.

    ``start()`` binds (resolving ``port=0`` to a real ephemeral port) and
    serves from a daemon thread — the mode tests, the load generator and
    the verify oracle use. The CLI instead calls ``bind()`` then the
    blocking ``serve_forever()``.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        service: SchedulerService | None = None,
    ) -> None:
        self.service = service or SchedulerService(config or ServiceConfig())
        self._httpd: _ServiceHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------
    def bind(self) -> "ServiceServer":
        """Bind the listening socket (idempotent)."""
        if self._httpd is None:
            config = self.service.config
            self._httpd = _ServiceHTTPServer(
                (config.host, config.port), self.service
            )
        return self

    def start(self) -> "ServiceServer":
        """Bind and serve from a background daemon thread."""
        self.bind()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever,
                name="repro-serve",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve until :meth:`stop` (or KeyboardInterrupt in the CLI)."""
        self.bind()
        assert self._httpd is not None
        self._httpd.serve_forever(poll_interval=0.2)

    def stop(self) -> None:
        """Shut down the listener and release the port (idempotent)."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    # -- addressing ------------------------------------------------------
    @property
    def host(self) -> str:
        assert self._httpd is not None, "server is not bound"
        return str(self._httpd.server_address[0])

    @property
    def port(self) -> int:
        assert self._httpd is not None, "server is not bound"
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        """Base URL of the bound server (e.g. ``http://127.0.0.1:8131``)."""
        return f"http://{self.host}:{self.port}"
