"""Worker-process plumbing for parallel corpus evaluation.

The expensive parts of shipping work to another process are the corpus
and the per-unit IPC, so both are amortized:

* The corpus crosses the process boundary **once per pool**, as one
  array-packed buffer (:mod:`repro.perf.pack`) decoded by the pool
  initializer (:func:`init_worker`) — no pickled object graphs, no JSON
  parse. The pool itself is persistent (:mod:`repro.perf.runner`):
  consecutive ``corpus_map`` calls against the same corpus and job count
  reuse the same warm workers within a CLI invocation.
* Work units reference superblocks by corpus index and travel in
  contiguous **batches** sized by the cost model
  (:func:`repro.perf.runner.plan_batches`), each batch returning its
  results, counter deltas and span events in one message.

:func:`corpus_map` is the single entry point the eval layer uses. Its
serial path calls the kernel directly on the in-memory superblocks —
zero (de)serialization, zero overhead versus the pre-parallel code — and
the break-even guard (:func:`repro.perf.runner.should_fan_out`) routes
small runs there even when ``jobs > 1``, because paper-size corpora
finish before a pool earns its keep. Both paths run the *same kernel
function* on semantically identical inputs, which is what makes serial
and parallel results bit-identical.

Metrics aggregation: pass ``metrics=`` a
:class:`~repro.obs.metrics.MetricsRegistry` and every work unit runs with
an *active* registry (see :func:`repro.obs.metrics.active`) whose
contents flow back to the caller. Serially the caller's registry is
activated directly; in workers each unit runs under a fresh registry
whose serialized delta travels back in its batch and is merged **in
input order**, unit by unit — counters are additive, so serial and
parallel aggregation are identical (historically, worker-side counters
were silently dropped).

Span aggregation mirrors the metrics fix: when a tracer is installed in
the parent (or passed explicitly as ``spans=``), each parallel work unit
runs under a fresh worker-side :class:`~repro.obs.trace.Tracer` whose
completed events return with the result; the parent merges them — again
in input order — via :meth:`~repro.obs.trace.Tracer.merge_events`, so
serial and parallel runs record the same span inventory (names and
counts; wall-clock values naturally differ). Merged events carry
``origin="worker"`` and ``unit=<input index>`` attrs — plus whatever
context the parent tracer has bound via
:meth:`~repro.obs.trace.Tracer.bind`: the merge happens parent-side, so
ambient request context (e.g. the service's ``request_id``) stamps onto
worker spans without any per-unit plumbing here. With a result
cache active, hits replay stored *metric* deltas but not spans — a warm
hit does no kernel work, so there is no time to account for; only the
misses contribute worker spans.

A worker that dies mid-batch (signal, OOM kill) surfaces as
:class:`repro.perf.runner.WorkerCrashError` — never a hang, never a
silent serial retry.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from collections.abc import Callable, Sequence
from typing import Any

from repro import cache as result_cache
from repro.ir.superblock import Superblock
from repro.obs import ledger, trace
from repro.obs.metrics import MetricsRegistry
from repro.perf.runner import (
    DispatchStats,
    acquire_pool,
    effective_jobs,
    kernel_cost_weight,
    plan_batches,
    record_dispatch,
    should_fan_out,
    unit_cost_points,
)

#: Per-process corpus, installed by :func:`init_worker`.
_WORKER_SUPERBLOCKS: list[Superblock] = []


def corpus_payload(superblocks: Sequence[Superblock]) -> bytes:
    """Serialize superblocks for transfer to worker processes.

    The packed form (:func:`repro.perf.pack.pack_corpus`): deterministic
    bytes, so its hash doubles as the pool-reuse fingerprint.
    """
    from repro.perf.pack import pack_corpus

    return pack_corpus(superblocks)


def init_worker(payload: bytes, parent_pid: int | None = None) -> None:
    """Process-pool initializer: rebuild the corpus in this worker.

    In a *forked* worker the parent's ambient result cache must be
    dropped: lookups and write-backs happen in the parent (only misses
    are fanned out), so worker-side cache traffic would be duplicated
    work with skewed accounting. The parent pid distinguishes a real
    worker from an inline call in the parent process itself.
    """
    from repro.perf.pack import unpack_corpus

    global _WORKER_SUPERBLOCKS
    _WORKER_SUPERBLOCKS = unpack_corpus(payload)
    if parent_pid is not None and os.getpid() != parent_pid:
        result_cache.deactivate()


def _run_unit(unit: tuple[Callable[..., Any], int, tuple[Any, ...]]) -> Any:
    """Worker-side dispatcher: resolve the superblock index and call."""
    kernel, sb_index, extras = unit
    return kernel(_WORKER_SUPERBLOCKS[sb_index], *extras)


def _run_unit_metered(
    unit: tuple[Callable[..., Any], int, tuple[Any, ...]],
) -> tuple[Any, dict[str, Any]]:
    """Like :func:`_run_unit`, but captures this unit's metrics delta.

    The unit runs under a fresh active :class:`MetricsRegistry`; its
    serialized contents travel back with the result so the parent can
    merge them in input order (see :func:`corpus_map`).
    """
    kernel, sb_index, extras = unit
    registry = MetricsRegistry()
    with registry.activated():
        result = kernel(_WORKER_SUPERBLOCKS[sb_index], *extras)
    return result, registry.as_dict()


def _run_unit_observed(
    unit: tuple[Callable[..., Any], int, tuple[Any, ...]],
) -> tuple[Any, dict[str, Any], list[dict[str, Any]]]:
    """Like :func:`_run_unit_metered`, but also captures the unit's spans.

    A fresh worker-side :class:`~repro.obs.trace.Tracer` is installed for
    the duration of the unit; its completed events travel back with the
    result so the parent can fold them into its own tracer in input order
    (:meth:`~repro.obs.trace.Tracer.merge_events`).
    """
    kernel, sb_index, extras = unit
    registry = MetricsRegistry()
    tracer = trace.Tracer()
    with trace.install(tracer), registry.activated():
        result = kernel(_WORKER_SUPERBLOCKS[sb_index], *extras)
    return result, registry.as_dict(), tracer.spans()


#: Worker-side per-unit drivers, keyed by batch mode.
_UNIT_DRIVERS = {
    "plain": _run_unit,
    "metered": _run_unit_metered,
    "observed": _run_unit_observed,
}


def _run_batch(
    payload: tuple[Callable[..., Any], list[tuple[int, tuple[Any, ...]]], str],
) -> tuple[list[Any], float]:
    """Worker-side batch driver: evaluate units in order, timing the batch.

    Returns the per-unit outputs (shape set by the mode) plus the
    batch's worker-side compute seconds, which the parent aggregates
    into the utilization/overhead dispatch stats.
    """
    kernel, units, mode = payload
    run = _UNIT_DRIVERS[mode]
    t0 = time.perf_counter()
    out = [run((kernel, sb_index, extras)) for sb_index, extras in units]
    return out, time.perf_counter() - t0


def is_picklable(obj: Any) -> bool:
    """True when ``obj`` survives pickling (process-pool transferable)."""
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


def _plan_dispatch(
    kernel: Callable[..., Any],
    superblocks: Sequence[Superblock],
    units: Sequence[tuple[int, tuple[Any, ...]]],
    jobs: int | None,
) -> tuple[bool, int, str, float]:
    """Go/no-go fan-out decision: ``(fan_out, jobs, reason, points)``.

    ``reason`` becomes the :class:`DispatchStats` mode when the decision
    is serial; the estimated work (kernel weight x structural points per
    unit) is compared against the break-even threshold.
    """
    jobs_n = effective_jobs(jobs)
    if jobs_n <= 1 or len(units) <= 1:
        return False, jobs_n, "serial", 0.0
    total = kernel_cost_weight(kernel) * sum(
        unit_cost_points(superblocks[i]) for i, _ in units
    )
    if not all(is_picklable(extras) for _, extras in units):
        return False, jobs_n, "serial-unpicklable", total
    if not should_fan_out(jobs_n, total):
        return False, jobs_n, "serial-fallback", total
    return True, jobs_n, "pool", total


def _pool_map_units(
    kernel: Callable[..., Any],
    superblocks: Sequence[Superblock],
    units: Sequence[tuple[int, tuple[Any, ...]]],
    jobs: int,
    chunk_size: int | None,
    mode: str,
    cost_points: float,
) -> list[Any] | None:
    """Fan units out over the persistent pool; ``None`` = pool unavailable.

    The per-unit outputs come back flattened in input order. A mid-batch
    worker death propagates as :class:`WorkerCrashError`; only pool
    *creation* failures (sandboxes without process support) return
    ``None`` so the caller can run serially.
    """
    t0 = time.perf_counter()
    payload = corpus_payload(superblocks)
    fingerprint = hashlib.sha1(payload).hexdigest()
    costs = [unit_cost_points(superblocks[i]) for i, _ in units]
    spans = plan_batches(costs, jobs, chunk_size)
    batches = [
        (kernel, [units[k] for k in range(start, end)], mode)
        for start, end in spans
    ]
    try:
        pool, reused = acquire_pool(
            jobs, fingerprint, init_worker, (payload, os.getpid())
        )
        returns = pool.run_batches(_run_batch, batches)
    except (OSError, ValueError, ImportError):
        record_dispatch(
            DispatchStats(
                mode="serial-pool-unavailable",
                jobs=jobs,
                units=len(units),
                cost_points=cost_points,
            )
        )
        return None
    flat: list[Any] = []
    busy = 0.0
    for batch_out, batch_seconds in returns:
        flat.extend(batch_out)
        busy += batch_seconds
    record_dispatch(
        DispatchStats(
            mode="pool",
            jobs=jobs,
            units=len(units),
            batches=len(batches),
            payload_bytes=len(payload),
            wall_seconds=time.perf_counter() - t0,
            busy_seconds=busy,
            pool_reused=reused,
            cost_points=cost_points,
        )
    )
    return flat


def _unit_cache_key(
    kernel: Callable[..., Any], sb: Superblock, extras: tuple[Any, ...]
) -> str | None:
    """Content-addressed key for one work unit, or ``None`` if uncacheable.

    Only kernels that opted in via :func:`repro.cache.kernel_version` are
    cached (timing kernels must never be), and only when every extra has
    a canonical form — a lambda in the extras disables caching for the
    unit, never correctness.
    """
    version = getattr(kernel, "__cache_version__", None)
    if version is None:
        return None
    try:
        return result_cache.cache_key(
            f"kernel:{kernel.__module__}.{kernel.__qualname__}",
            version,
            [
                result_cache.superblock_identity_digest(sb),
                result_cache.canonical_value(list(extras)),
            ],
        )
    except result_cache.Unkeyable:
        return None


def corpus_map(
    kernel: Callable[..., Any],
    superblocks: Sequence[Superblock],
    units: Sequence[tuple[int, tuple[Any, ...]]],
    jobs: int | None = None,
    chunk_size: int | None = None,
    metrics: MetricsRegistry | None = None,
    spans: "trace.Tracer | None" = None,
) -> list[Any]:
    """Evaluate ``kernel(superblocks[i], *extras)`` for every unit.

    Args:
        kernel: a picklable module-level function taking a superblock
            first; anything unpicklable in ``extras`` silently forces the
            serial path (correct, just not parallel).
        units: ``(superblock_index, extras)`` pairs; results come back in
            this order regardless of worker completion order.
        jobs: worker processes (``None``/``1`` serial, ``0`` = all CPUs).
            Even with ``jobs > 1`` a run whose estimated work is below
            the dispatch break-even executes serially (see
            :func:`repro.perf.runner.should_fan_out`).
        metrics: optional registry made *active* for every unit; in the
            parallel path each unit's per-worker delta merges into it in
            input order, so totals match the serial path exactly.
        spans: tracer collecting every unit's spans; defaults to the
            installed tracer (:func:`repro.obs.trace.current`), so CLI
            ``--trace-out`` runs get complete timelines under any
            ``--jobs N`` without threading a tracer through every
            signature. Parallel units run under worker-side tracers whose
            events merge back in input order with ``origin="worker"`` /
            ``unit=i`` attrs; serial units record into the tracer
            directly. Span *inventories* (names and counts) are identical
            for any job count.

    With an ambient result cache installed (:func:`repro.cache.install`)
    and a cache-versioned kernel, lookups happen here in the parent, only
    the misses are fanned out (or computed inline), and the missing
    entries — each one ``(result, metrics delta)`` — are written back in
    input order, so the returned list and the merged metrics counters are
    bit-identical to an uncached or serial run. Cache hits replay metric
    deltas but never spans (a hit does no kernel work).
    """
    tracer = spans if spans is not None else trace.current()
    cache = result_cache.active()
    if cache is not None:
        keyed = _corpus_map_cached(
            cache, kernel, superblocks, units, jobs, chunk_size, metrics, tracer
        )
        if keyed is not None:
            return keyed
    return _corpus_map_uncached(
        kernel, superblocks, units, jobs, chunk_size, metrics, tracer
    )


def _serial_span_scope(tracer: "trace.Tracer | None"):
    """Context manager making ``tracer`` current for inline units.

    When the tracer *is* already the installed one (the CLI case), spans
    record into it without help; re-installing is still harmless because
    installation nests. ``None`` yields a no-op scope.
    """
    from contextlib import nullcontext

    if tracer is None or tracer is trace.current():
        return nullcontext()
    return trace.install(tracer)


def _corpus_map_uncached(
    kernel: Callable[..., Any],
    superblocks: Sequence[Superblock],
    units: Sequence[tuple[int, tuple[Any, ...]]],
    jobs: int | None,
    chunk_size: int | None,
    metrics: MetricsRegistry | None,
    tracer: "trace.Tracer | None" = None,
) -> list[Any]:
    """The uncached evaluation path, byte-identical to its history."""
    fan_out, jobs_n, reason, points = _plan_dispatch(
        kernel, superblocks, units, jobs
    )
    if fan_out:
        if metrics is None and tracer is None:
            mode = "plain"
        elif tracer is None:
            mode = "metered"
        else:
            mode = "observed"
        flat = _pool_map_units(
            kernel, superblocks, units, jobs_n, chunk_size, mode, points
        )
        if flat is not None:
            if mode == "plain":
                return flat
            if mode == "metered":
                results = []
                for result, delta in flat:
                    metrics.merge_dict(delta)
                    results.append(result)
                return results
            results = []
            for idx, (result, delta, span_events) in enumerate(flat):
                if metrics is not None:
                    metrics.merge_dict(delta)
                tracer.merge_events(span_events, origin="worker", unit=idx)
                results.append(result)
            return results
    else:
        record_dispatch(
            DispatchStats(
                mode=reason, jobs=jobs_n, units=len(units), cost_points=points
            )
        )
    with _serial_span_scope(tracer):
        if metrics is None:
            return [kernel(superblocks[i], *extras) for i, extras in units]
        with metrics.activated():
            return [kernel(superblocks[i], *extras) for i, extras in units]


def _corpus_map_cached(
    cache: "result_cache.ResultCache",
    kernel: Callable[..., Any],
    superblocks: Sequence[Superblock],
    units: Sequence[tuple[int, tuple[Any, ...]]],
    jobs: int | None,
    chunk_size: int | None,
    metrics: MetricsRegistry | None,
    tracer: "trace.Tracer | None" = None,
) -> list[Any] | None:
    """Cache-aware fan-out; ``None`` when no unit is cacheable.

    Every miss runs *metered* (a fresh registry per unit) so its counter
    delta can be stored with the result; a later hit replays the stored
    delta, keeping warm-run metrics counters identical to cold ones.
    Spans (when a tracer is collecting) come from the misses only.
    """
    keys = [_unit_cache_key(kernel, superblocks[i], extras) for i, extras in units]
    if all(key is None for key in keys):
        return None
    hits: dict[int, tuple[Any, dict[str, Any]]] = {}
    with trace.span("cache.lookup", kernel=kernel.__qualname__, units=len(units)):
        for idx, key in enumerate(keys):
            if key is None:
                continue
            hit, value = cache.get(key)
            if hit:
                hits[idx] = value
    recorder = ledger.active_recorder()
    if recorder is not None:
        for idx, key in enumerate(keys):
            if key is None:
                continue
            i, extras = units[idx]
            machine = extras[0] if extras else None
            recorder.record_unit_cache(
                superblocks[i].name,
                getattr(machine, "name", None),
                idx in hits,
            )
    miss_indices = [idx for idx in range(len(units)) if idx not in hits]
    miss_pairs = _compute_metered(
        kernel,
        superblocks,
        [units[idx] for idx in miss_indices],
        jobs,
        chunk_size,
        tracer,
        unit_ids=miss_indices,
    )
    computed = dict(zip(miss_indices, miss_pairs))
    # Assemble results, merge metric deltas, and write back the misses —
    # all in input order, exactly like the serial path.
    results: list[Any] = []
    for idx in range(len(units)):
        if idx in hits:
            result, delta = hits[idx]
        else:
            result, delta = computed[idx]
            if keys[idx] is not None:
                cache.put(keys[idx], (result, delta))
        if metrics is not None:
            metrics.merge_dict(delta)
        results.append(result)
    return results


def _compute_metered(
    kernel: Callable[..., Any],
    superblocks: Sequence[Superblock],
    units: Sequence[tuple[int, tuple[Any, ...]]],
    jobs: int | None,
    chunk_size: int | None,
    tracer: "trace.Tracer | None" = None,
    unit_ids: Sequence[int] | None = None,
) -> list[tuple[Any, dict[str, Any]]]:
    """Evaluate units, each returning ``(result, metrics delta)``.

    With a ``tracer``, every unit's spans are collected too — merged from
    worker deltas in input order (parallel) or recorded directly
    (inline). ``unit_ids`` label merged worker events with the caller's
    original unit indices (the cached path computes misses only).
    """
    if not units:
        return []
    fan_out, jobs_n, reason, points = _plan_dispatch(
        kernel, superblocks, units, jobs
    )
    if fan_out:
        mode = "metered" if tracer is None else "observed"
        flat = _pool_map_units(
            kernel, superblocks, units, jobs_n, chunk_size, mode, points
        )
        if flat is not None:
            if tracer is None:
                return flat
            out = []
            for pos, (result, delta, span_events) in enumerate(flat):
                unit_id = unit_ids[pos] if unit_ids is not None else pos
                tracer.merge_events(span_events, origin="worker", unit=unit_id)
                out.append((result, delta))
            return out
    else:
        record_dispatch(
            DispatchStats(
                mode=reason, jobs=jobs_n, units=len(units), cost_points=points
            )
        )
    # Inline path: evaluate against the in-memory corpus directly (the
    # worker-side dispatcher resolves indices against the worker globals,
    # which are not populated in the parent).
    out = []
    with _serial_span_scope(tracer):
        for i, extras in units:
            registry = MetricsRegistry()
            with registry.activated():
                result = kernel(superblocks[i], *extras)
            out.append((result, registry.as_dict()))
    return out
