"""Worker-process plumbing for parallel corpus evaluation.

The expensive part of shipping a work unit to another process is the
superblock itself, so the corpus is transferred **once per worker** via
the process-pool initializer (:func:`init_worker`), using the stable
JSON form from :mod:`repro.ir.serialize`. Work units then reference
superblocks by corpus index and carry only small picklable extras
(machine configs, flag tuples).

:func:`corpus_map` is the single entry point the eval layer uses. Its
serial path calls the kernel directly on the in-memory superblocks —
zero (de)serialization, zero overhead versus the pre-parallel code — and
its parallel path reconstructs each superblock in the workers. Both
paths run the *same kernel function* on semantically identical inputs,
which is what makes serial and parallel results bit-identical.

Metrics aggregation: pass ``metrics=`` a
:class:`~repro.obs.metrics.MetricsRegistry` and every work unit runs with
an *active* registry (see :func:`repro.obs.metrics.active`) whose
contents flow back to the caller. Serially the caller's registry is
activated directly; in workers each unit runs under a fresh registry
whose serialized delta returns with the result and is merged **in input
order** — counters are additive, so serial and parallel aggregation are
identical (historically, worker-side counters were silently dropped).
"""

from __future__ import annotations

import pickle
from collections.abc import Callable, Sequence
from typing import Any

from repro.ir.superblock import Superblock
from repro.obs.metrics import MetricsRegistry
from repro.perf.runner import ParallelRunner

#: Per-process corpus, installed by :func:`init_worker`.
_WORKER_SUPERBLOCKS: list[Superblock] = []


def corpus_payload(superblocks: Sequence[Superblock]) -> list[dict[str, Any]]:
    """Serialize superblocks for transfer to worker processes."""
    from repro.ir.serialize import superblock_to_dict

    return [superblock_to_dict(sb) for sb in superblocks]


def init_worker(payload: list[dict[str, Any]]) -> None:
    """Process-pool initializer: rebuild the corpus in this worker."""
    from repro.ir.serialize import superblock_from_dict

    global _WORKER_SUPERBLOCKS
    _WORKER_SUPERBLOCKS = [
        superblock_from_dict(entry, validate=False) for entry in payload
    ]


def _run_unit(unit: tuple[Callable[..., Any], int, tuple[Any, ...]]) -> Any:
    """Worker-side dispatcher: resolve the superblock index and call."""
    kernel, sb_index, extras = unit
    return kernel(_WORKER_SUPERBLOCKS[sb_index], *extras)


def _run_unit_metered(
    unit: tuple[Callable[..., Any], int, tuple[Any, ...]],
) -> tuple[Any, dict[str, Any]]:
    """Like :func:`_run_unit`, but captures this unit's metrics delta.

    The unit runs under a fresh active :class:`MetricsRegistry`; its
    serialized contents travel back with the result so the parent can
    merge them in input order (see :func:`corpus_map`).
    """
    kernel, sb_index, extras = unit
    registry = MetricsRegistry()
    with registry.activated():
        result = kernel(_WORKER_SUPERBLOCKS[sb_index], *extras)
    return result, registry.as_dict()


def is_picklable(obj: Any) -> bool:
    """True when ``obj`` survives pickling (process-pool transferable)."""
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


def corpus_map(
    kernel: Callable[..., Any],
    superblocks: Sequence[Superblock],
    units: Sequence[tuple[int, tuple[Any, ...]]],
    jobs: int | None = None,
    chunk_size: int | None = None,
    metrics: MetricsRegistry | None = None,
) -> list[Any]:
    """Evaluate ``kernel(superblocks[i], *extras)`` for every unit.

    Args:
        kernel: a picklable module-level function taking a superblock
            first; anything unpicklable in ``extras`` silently forces the
            serial path (correct, just not parallel).
        units: ``(superblock_index, extras)`` pairs; results come back in
            this order regardless of worker completion order.
        jobs: worker processes (``None``/``1`` serial, ``0`` = all CPUs).
        metrics: optional registry made *active* for every unit; in the
            parallel path each unit's per-worker delta merges into it in
            input order, so totals match the serial path exactly.
    """
    runner = ParallelRunner(jobs, chunk_size=chunk_size)
    if runner.parallel and len(units) > 1:
        if all(is_picklable(extras) for _, extras in units):
            parallel = ParallelRunner(
                jobs,
                chunk_size=chunk_size,
                initializer=init_worker,
                initargs=(corpus_payload(superblocks),),
            )
            tagged = [(kernel, i, extras) for i, extras in units]
            if metrics is None:
                return parallel.map(_run_unit, tagged)
            pairs = parallel.map(_run_unit_metered, tagged)
            results = []
            for result, delta in pairs:
                metrics.merge_dict(delta)
                results.append(result)
            return results
    if metrics is None:
        return [kernel(superblocks[i], *extras) for i, extras in units]
    with metrics.activated():
        return [kernel(superblocks[i], *extras) for i, extras in units]
