"""Performance layer: parallel corpus evaluation and benchmarking.

The evaluation pipeline (Tables 1-7, Figure 8) is embarrassingly parallel
over (superblock, machine) work units, but a naive ``multiprocessing.map``
would (a) ship unpicklable lambdas, (b) return results in completion
order, and (c) pay a per-unit serialization tax. This package provides:

* :class:`repro.perf.runner.ParallelRunner` — chunked process-pool
  fan-out with input-order (deterministic) result assembly and a serial
  fallback that bypasses every (de)serialization step, so ``jobs=1``
  costs nothing over the plain loop.
* :mod:`repro.perf.workers` — worker-process bootstrap: the corpus is
  serialized once per worker (via :mod:`repro.ir.serialize`) and work
  units reference superblocks by index.
* :mod:`repro.perf.bench` — the perf smoke harness behind
  ``python -m repro bench`` and ``benchmarks/perf_smoke.py``.

Every eval entry point accepts ``jobs`` and routes through
:func:`corpus_map`; results are bit-identical between serial and
parallel paths (guaranteed by tests/test_parallel_eval.py).
"""

from __future__ import annotations

from repro.perf.runner import ParallelRunner, effective_jobs
from repro.perf.workers import corpus_map

__all__ = ["ParallelRunner", "corpus_map", "effective_jobs"]
