"""Performance layer: parallel corpus evaluation and benchmarking.

The evaluation pipeline (Tables 1-7, Figure 8) is embarrassingly parallel
over (superblock, machine) work units, but a naive ``multiprocessing.map``
would (a) ship unpicklable lambdas, (b) return results in completion
order, and (c) pay a per-unit serialization tax. This package provides:

* :mod:`repro.perf.pack` — array-packed binary codec for superblocks and
  machine configs: workers receive one flat buffer per corpus instead of
  pickled object graphs, with an exact round-trip for everything the
  bounds/schedulers read.
* :class:`repro.perf.runner.WorkerPool` — a persistent, fork-started
  process pool bound to a packed corpus and reused across consecutive
  ``corpus_map`` calls; work travels in cost-model-sized batches
  (:func:`repro.perf.runner.plan_batches`). A break-even guard
  (:func:`repro.perf.runner.should_fan_out`) routes paper-size runs to
  the serial path so ``--jobs N`` never loses to ``jobs=1``.
* :class:`repro.perf.runner.ParallelRunner` — the legacy fork-per-map
  engine, still used for generic item mapping (simulation runs).
* :mod:`repro.perf.workers` — worker bootstrap and the
  :func:`~repro.perf.workers.corpus_map` entry point.
* :mod:`repro.perf.bench` — the perf smoke harness behind
  ``python -m repro bench`` and ``benchmarks/perf_smoke.py``.

Every eval entry point accepts ``jobs`` and routes through
:func:`corpus_map`; results are bit-identical between serial and
parallel paths (guaranteed by tests/test_parallel_eval.py).
"""

from __future__ import annotations

from repro.perf.runner import (
    DispatchStats,
    ParallelRunner,
    WorkerCrashError,
    WorkerPool,
    effective_jobs,
    force_parallel,
    last_dispatch_stats,
    shutdown_pools,
)
from repro.perf.workers import corpus_map

__all__ = [
    "DispatchStats",
    "ParallelRunner",
    "WorkerCrashError",
    "WorkerPool",
    "corpus_map",
    "effective_jobs",
    "force_parallel",
    "last_dispatch_stats",
    "shutdown_pools",
]
