"""Perf smoke harness: tracked metrics for the hot paths of the pipeline.

Times the primitives that dominate the paper's evaluation — Rim & Jain
relaxation solves and Pairwise tradeoff bounds — plus end-to-end Table 1
and Table 3 builds on a pinned seeded corpus, and the parallel scaling of
Table 1 across worker counts. Results are written as ``BENCH_1.json``
with the schema ``{metric: {value, unit, seed}}`` so future changes have
a committed trajectory to compare against.

Entry points:

* ``python -m repro bench`` (see :mod:`repro.cli`),
* ``benchmarks/perf_smoke.py`` (standalone script),
* :func:`run_bench` / :func:`compare_metrics` for tests.

Regression gate: :func:`compare_metrics` fails a run when any *headline*
metric is more than ``tolerance`` (default 20%) worse than the committed
baseline. Throughput metrics (unit ``.../s``) must not drop; elapsed
metrics (unit ``s``) must not grow. Parallel-scaling metrics get
*absolute floors* instead (:func:`check_speedup_floors`): a relative
gate can't compare speedups across machines with different core counts,
so each floor is waived below the core count whose parallelism it
claims to exploit (``bench_usable_cores`` records the host's count).

Two scaling scans run:

* the **paper-size** corpus with the break-even guard active — here the
  guard routes ``jobs=2`` serially, so ``table1_jobs2_speedup`` ~ 1.0
  by construction (the satellite guarantee that ``--jobs`` never loses);
* a **scaled** corpus with the guard bypassed
  (:func:`repro.perf.runner.force_parallel`) — this measures the
  persistent pool itself and produces ``table1_jobs8_speedup`` plus the
  pack/dispatch overhead metrics.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.logsetup import get_logger

log = get_logger("perf.bench")

#: Pinned bench corpus; changing any of these invalidates the baseline.
BENCH_SEED = 1999
BENCH_SCALE = 32
BENCH_MAX_OPS = 64

#: Metrics the regression gate enforces.
HEADLINE_METRICS = (
    "rj_solves_per_sec",
    "pairwise_bounds_per_sec",
    "table1_seconds",
    "table3_seconds",
)

#: Default location of the committed baseline, relative to the repo root.
DEFAULT_BASELINE = Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_1.json"


@dataclass
class BenchConfig:
    """Knobs of one bench run (defaults = the pinned configuration)."""

    seed: int = BENCH_SEED
    scale: int = BENCH_SCALE
    max_ops: int = BENCH_MAX_OPS
    repeats: int = 3  #: timing repetitions; best-of-N is reported
    #: Paper-size scan, break-even guard active (jobs=2 must not lose).
    jobs_scan: tuple[int, ...] = (1, 2)
    #: Corpus scale and worker counts of the pool scan (guard bypassed).
    #: Must not share a >1 entry with ``jobs_scan`` — speedup metric
    #: names would collide.
    scaled_scale: int = 128
    scaled_jobs: tuple[int, ...] = (1, 8)
    include_scaling: bool = True

    @classmethod
    def quick(cls) -> "BenchConfig":
        """Reduced configuration for tests and CI smoke runs."""
        return cls(
            scale=12, max_ops=32, repeats=1, jobs_scan=(1, 2),
            scaled_scale=40,
        )


@dataclass
class BenchResult:
    """Metrics plus free-form notes from one run."""

    metrics: dict[str, dict[str, Any]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    #: Serialized MetricsRegistry (counters/timers/gauges) from one extra
    #: *untimed* Table 1 build — loop-trip context for the timed numbers.
    #: Never part of the regression gate.
    observability: dict[str, Any] = field(default_factory=dict)

    def add(self, name: str, value: float, unit: str, seed: int) -> None:
        self.metrics[name] = {
            "value": round(float(value), 4), "unit": unit, "seed": seed
        }


def _best_of(repeats: int, fn, clock=time.process_time) -> float:
    """Smallest elapsed time of ``repeats`` calls (noise-resistant).

    Gated metrics measure *CPU* time by default: on shared hosts,
    co-tenant interference inflates wall-clock by 30%+ between runs while
    process time stays stable, and every gated code path is pure
    single-process compute. Pass ``clock=time.perf_counter`` for
    wall-clock (parallel scaling, where other processes do the work).
    """
    best = float("inf")
    for _ in range(repeats):
        t0 = clock()
        fn()
        elapsed = clock() - t0
        if elapsed < best:
            best = elapsed
    return best


def _interleaved_scan(
    jobs_values: tuple[int, ...], fn, repeats: int
) -> dict[int, float]:
    """Best-of wall-clock per jobs value, rounds interleaved across values.

    A sequential best-of per point lets slow drift inside the process
    (allocator growth, GC pressure) systematically penalize whichever
    point is measured last — visible as a ~3-5% phantom slowdown between
    two identical code paths. Interleaving the rounds (jobs A, jobs B,
    jobs A, ...) exposes every point to the same drift. Wall-clock,
    because worker processes burn CPU the parent's process-time clock
    never sees; a ``gc.collect()`` before each timing keeps collection
    pauses out of the measured window.
    """
    import gc

    best: dict[int, float] = {jobs: float("inf") for jobs in jobs_values}
    for _ in range(repeats):
        for jobs in jobs_values:
            gc.collect()
            t0 = time.perf_counter()
            fn(jobs)
            elapsed = time.perf_counter() - t0
            if elapsed < best[jobs]:
                best[jobs] = elapsed
    return best


#: Minimum timed window for throughput metrics. Sub-10ms measurements
#: swing by 30%+ even on CPU-time clocks; the inner loop is repeated
#: until one measurement spans at least this long.
MIN_TIMED_WINDOW = 0.25


def _best_rate(repeats: int, fn, work_per_call: int) -> float:
    """Best observed rate (work units per CPU-second) over ``repeats``.

    ``fn`` is repeated within each timed window until the window exceeds
    :data:`MIN_TIMED_WINDOW`, sized from a calibration call.
    """
    t0 = time.process_time()
    fn()  # warm-up doubles as calibration
    calibration = time.process_time() - t0
    inner = max(1, math.ceil(MIN_TIMED_WINDOW / max(calibration, 1e-9)))
    best = float("inf")
    for _ in range(repeats):
        t0 = time.process_time()
        for _ in range(inner):
            fn()
        elapsed = time.process_time() - t0
        if elapsed < best:
            best = elapsed
    return work_per_call * inner / best


def _bench_corpus(config: BenchConfig):
    from repro.workloads.corpus import specint95_corpus

    return specint95_corpus(
        scale=config.scale, seed=config.seed, max_ops=config.max_ops
    )


def _time_rj_solves(corpus, machines, repeats: int) -> float:
    """Rim & Jain branch-bound solves per second."""
    from repro.bounds.branch_rj import rj_branch_bounds

    solves = sum(len(sb.branches) for sb in corpus) * len(machines)

    def run() -> None:
        for machine in machines:
            for sb in corpus:
                rj_branch_bounds(sb, machine)

    return _best_rate(repeats, run, solves)


def _time_pairwise(corpus, machines, repeats: int) -> float:
    """Full Pairwise tradeoff bounds (all kept pairs) per second."""
    from repro.bounds.superblock_bounds import BoundSuite

    def run() -> int:
        count = 0
        for machine in machines:
            for sb in corpus:
                suite = BoundSuite(sb, machine, include_triplewise=False)
                count += len(suite.pair_bounds)
        return count

    pair_count = run()  # pre-warm so calibration sees steady state
    return _best_rate(repeats, run, pair_count)


def run_bench(config: BenchConfig | None = None) -> BenchResult:
    """Run the full smoke suite and return its metrics."""
    from repro.eval.tables import table1, table3
    from repro.machine.machine import FS4, GP2

    config = config or BenchConfig()
    result = BenchResult()
    seed = config.seed
    corpus = _bench_corpus(config)
    machines = (GP2, FS4)
    result.notes.append(
        f"corpus scale={config.scale} seed={seed} max_ops={config.max_ops}, "
        f"machines={'+'.join(m.name for m in machines)}"
    )

    log.info("bench corpus ready (%d superblocks)", len(list(corpus)))
    result.add(
        "rj_solves_per_sec",
        _time_rj_solves(corpus, machines, config.repeats),
        "solves/s",
        seed,
    )
    log.info("rj hot path timed")
    result.add(
        "pairwise_bounds_per_sec",
        _time_pairwise(corpus, machines, config.repeats),
        "bounds/s",
        seed,
    )
    log.info("pairwise hot path timed")

    t1_seconds = _best_of(
        config.repeats,
        lambda: table1(corpus, (GP2,), (FS4,), include_triplewise=True),
    )
    result.add("table1_seconds", t1_seconds, "s", seed)
    t3_seconds = _best_of(
        config.repeats,
        lambda: table3(
            corpus, machines, include_triplewise=False
        ),
    )
    result.add("table3_seconds", t3_seconds, "s", seed)

    dispatch_stats = None
    if config.include_scaling:
        from repro.perf.runner import (
            effective_jobs, force_parallel, last_dispatch_stats,
        )
        from repro.perf.workers import corpus_payload
        from repro.workloads.corpus import specint95_corpus

        result.add("bench_usable_cores", effective_jobs(0), "cores", seed)

        # Paper-size scan, break-even guard active: the guard routes
        # these runs serially, so jobs=2 tracks jobs=1 by construction.
        # Speedups are relative to the jobs=1 scan point (same warm
        # state), not the cold table1_seconds measurement above.
        scan_times = _interleaved_scan(
            config.jobs_scan,
            lambda jobs: table1(
                corpus, (GP2,), (FS4,), include_triplewise=True, jobs=jobs
            ),
            config.repeats,
        )
        scan_base = scan_times[config.jobs_scan[0]]
        for jobs in config.jobs_scan:
            result.add(
                f"table1_jobs{jobs}_seconds", scan_times[jobs], "s", seed
            )
            if jobs > 1:
                result.add(
                    f"table1_jobs{jobs}_speedup",
                    scan_base / scan_times[jobs],
                    "x",
                    seed,
                )

        # Scaled scan, guard bypassed: exercises the persistent pool on
        # a corpus large enough to amortize dispatch. The jobs=8 point
        # is the headline speedup; its floor only applies on hosts with
        # >= 8 usable cores (see check_speedup_floors).
        scaled = specint95_corpus(
            scale=config.scaled_scale, seed=seed, max_ops=config.max_ops
        )
        scaled_blocks = list(scaled)
        result.notes.append(
            f"scaled corpus scale={config.scaled_scale} "
            f"({len(scaled_blocks)} superblocks), pool scan bypasses the "
            "break-even guard"
        )
        result.add(
            "pack_bytes_per_unit",
            len(corpus_payload(scaled_blocks)) / max(1, len(scaled_blocks)),
            "bytes",
            seed,
        )
        with force_parallel():
            scaled_times = _interleaved_scan(
                config.scaled_jobs,
                lambda jobs: table1(
                    scaled, (GP2,), (FS4,), include_triplewise=True,
                    jobs=jobs,
                ),
                config.repeats,
            )
        scaled_base = scaled_times[config.scaled_jobs[0]]
        for jobs in config.scaled_jobs:
            result.add(
                f"table1_scaled_jobs{jobs}_seconds", scaled_times[jobs],
                "s", seed,
            )
            if jobs > 1:
                result.add(
                    f"table1_jobs{jobs}_speedup",
                    scaled_base / scaled_times[jobs],
                    "x",
                    seed,
                )
        # Pool accounting from the last dispatch of the scan (a pool
        # dispatch whenever scaled_jobs ends on a >1 worker count).
        dispatch_stats = last_dispatch_stats()
        if dispatch_stats is not None and dispatch_stats.mode == "pool":
            result.add(
                "pool_dispatch_overhead_seconds",
                dispatch_stats.overhead_seconds,
                "s",
                seed,
            )
            result.add(
                "worker_utilization", dispatch_stats.utilization, "frac", seed
            )

    # One extra *untimed* Table 1 build with metering on: the counters
    # give the timed numbers their work-volume context. Kept out of the
    # timed runs above so metering can never skew the gated metrics.
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.gauge("corpus_superblocks", len(list(corpus)))
    if dispatch_stats is not None and dispatch_stats.mode == "pool":
        registry.gauge("pool.payload_bytes", dispatch_stats.payload_bytes)
        registry.gauge("pool.batches", dispatch_stats.batches)
        registry.gauge("pool.units", dispatch_stats.units)
        registry.gauge(
            "pool.dispatch_overhead_s",
            round(dispatch_stats.overhead_seconds, 4),
        )
        registry.gauge(
            "pool.worker_utilization", round(dispatch_stats.utilization, 4)
        )
    with registry.timer("table1_metered"):
        table1(corpus, (GP2,), (FS4,), include_triplewise=True,
               metrics=registry)
    result.observability = registry.as_dict()
    return result


# ---------------------------------------------------------------------------
# Baseline comparison
# ---------------------------------------------------------------------------
def compare_metrics(
    current: dict[str, dict[str, Any]],
    baseline: dict[str, dict[str, Any]],
    tolerance: float = 0.20,
    headline: tuple[str, ...] = HEADLINE_METRICS,
) -> list[str]:
    """Regression report: one line per headline metric that got worse.

    A throughput metric (unit ending in ``/s``) regresses when it drops
    more than ``tolerance`` below the baseline; an elapsed metric (unit
    ``s``) when it grows more than ``tolerance`` above it. Returns an
    empty list when everything is within bounds.
    """
    failures: list[str] = []
    for name in headline:
        base = baseline.get(name)
        cur = current.get(name)
        if base is None or cur is None:
            continue
        base_v, cur_v = float(base["value"]), float(cur["value"])
        if base_v <= 0:
            continue
        unit = str(base.get("unit", ""))
        if unit.endswith("/s"):
            ratio = cur_v / base_v
            if ratio < 1.0 - tolerance:
                failures.append(
                    f"{name}: {cur_v:.1f} {unit} is {100 * (1 - ratio):.1f}% "
                    f"below baseline {base_v:.1f}"
                )
        else:
            ratio = cur_v / base_v
            if ratio > 1.0 + tolerance:
                failures.append(
                    f"{name}: {cur_v:.3f} {unit} is {100 * (ratio - 1):.1f}% "
                    f"above baseline {base_v:.3f}"
                )
    return failures


#: Absolute floors for the scaling metrics: (metric, required usable
#: cores, floor). Relative comparison can't gate speedups across hosts
#: with different core counts, so each floor only applies when the host
#: has the parallelism the metric claims to exploit. The jobs=2 floor
#: applies everywhere: the break-even guard routes the paper-size jobs=2
#: run through the identical serial path, so the ratio is ~1.0 on any
#: machine (0.9 absorbs timer noise).
SPEEDUP_FLOORS = (
    ("table1_jobs2_speedup", 1, 0.9),
    ("table1_jobs8_speedup", 8, 3.0),
    # 10x the PR-7 python-path baseline (26005.15 solves/s in
    # benchmarks/BENCH_1.json), delivered by the numpy RJ kernel
    # (repro.kernels.rj_numpy). Applies on any host: under
    # REPRO_KERNEL=python the gate correctly reports the reference
    # oracle as below the accelerated floor.
    ("rj_solves_per_sec", 1, 260051.0),
)


def check_speedup_floors(
    metrics: dict[str, dict[str, Any]],
    cores: float | None = None,
    floors: tuple[tuple[str, int, float], ...] = SPEEDUP_FLOORS,
) -> list[str]:
    """One failure line per scaling metric below its absolute floor.

    ``cores`` defaults to the ``bench_usable_cores`` metric recorded in
    the payload (falling back to the live host count); floors whose
    required core count exceeds it are waived — a 3x jobs=8 target is
    meaningless on a 1-core container.
    """
    if cores is None:
        entry = metrics.get("bench_usable_cores")
        if entry is not None:
            cores = float(entry["value"])
        else:
            from repro.perf.runner import effective_jobs

            cores = float(effective_jobs(0))
    failures: list[str] = []
    for name, min_cores, floor in floors:
        entry = metrics.get(name)
        if entry is None or cores < min_cores:
            continue
        value = float(entry["value"])
        if value < floor:
            unit = entry.get("unit", "x")
            failures.append(
                f"{name}: {value:.2f} {unit} is below the {floor:.1f} "
                f"{unit} floor ({cores:.0f} usable cores)"
            )
    return failures


def render_metrics(result: BenchResult) -> str:
    lines = ["perf smoke metrics:"]
    for note in result.notes:
        lines.append(f"  # {note}")
    width = max((len(n) for n in result.metrics), default=0)
    for name, entry in result.metrics.items():
        mark = "  *" if name in HEADLINE_METRICS else ""
        lines.append(
            f"  {name:<{width}s} = {entry['value']:>12.4f} {entry['unit']}{mark}"
        )
    if any(n in HEADLINE_METRICS for n in result.metrics):
        lines.append("  (* = gated against the committed baseline)")
    return "\n".join(lines)


def load_baseline(path: str | Path) -> dict[str, dict[str, Any]]:
    with Path(path).open() as fh:
        return json.load(fh)


def save_metrics(result: BenchResult, path: str | Path) -> None:
    """Write the BENCH JSON: headline metrics plus, when collected, an
    ``observability`` block (ignored by :func:`compare_metrics`, which
    only reads :data:`HEADLINE_METRICS` names)."""
    payload: dict[str, Any] = dict(result.metrics)
    if result.observability:
        payload["observability"] = result.observability
    with Path(path).open("w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


# ---------------------------------------------------------------------------
# Standalone entry point (benchmarks/perf_smoke.py)
# ---------------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="perf_smoke",
        description="Balance-scheduling perf smoke suite",
    )
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    parser.add_argument("--scale", type=int, default=BENCH_SCALE)
    parser.add_argument("--max-ops", type=int, default=BENCH_MAX_OPS)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick", action="store_true", help="reduced CI configuration"
    )
    parser.add_argument(
        "--no-scaling", action="store_true", help="skip the --jobs scaling scan"
    )
    parser.add_argument("--out", help="write metrics JSON to this path")
    parser.add_argument(
        "--check",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        help="compare against a baseline JSON (default: committed BENCH_1.json)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed fractional regression for headline metrics",
    )
    args = parser.parse_args(argv)

    from repro.obs.logsetup import setup_logging

    setup_logging()
    if args.quick:
        config = BenchConfig.quick()
    else:
        config = BenchConfig(
            seed=args.seed,
            scale=args.scale,
            max_ops=args.max_ops,
            repeats=args.repeats,
        )
    if args.no_scaling:
        config.include_scaling = False

    result = run_bench(config)
    print(render_metrics(result))
    if args.out:
        save_metrics(result, args.out)
        log.info("metrics written to %s", args.out)
    if args.check:
        failures = compare_metrics(
            result.metrics, load_baseline(args.check), args.tolerance
        ) + check_speedup_floors(result.metrics)
        if failures:
            log.error("PERF REGRESSION vs %s:", args.check)
            for line in failures:
                log.error("  %s", line)
            return 1
        log.info(
            "all headline metrics within %.0f%% of %s",
            100 * args.tolerance, args.check,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
