"""Array-packed binary codec for worker transfer.

The parallel engine's dominant cost used to be serialization: pickling
(or JSON-encoding) a full ``Superblock`` object graph per worker spawn
means re-tokenizing dicts, strings and per-op objects on the other side.
This module flattens a superblock into a handful of typed arrays — one
``u8`` opcode index per op, one ``u16`` block id per op, three parallel
edge arrays — plus a tiny embedded opcode name table, so a worker can
rebuild the corpus with straight ``array.frombytes`` reads instead of a
parse.

Round-trip contract: ``unpack_superblock(pack_superblock(sb))`` is equal
to ``sb`` for **everything the bounds and schedulers read** — name,
source, exec_freq, every operation's (index, opcode, exit_prob, block,
name) and every dependence edge with its latency. ``Operation.metadata``
and ``Superblock.attrs`` are presentation-only and excluded, exactly as
in the JSON form (:mod:`repro.ir.serialize`). The ``pack`` verify family
and tests/test_pack.py enforce the contract property-style.

Scope: the packed bytes travel parent -> forked worker on the same host
within one process tree, so the encoding uses **native** byte order and
``array`` item sizes. It is not an interchange format; the stable
cross-version form remains the JSON one.
"""

from __future__ import annotations

import struct
from array import array
from collections.abc import Sequence

from repro.ir.depgraph import DependenceGraph
from repro.ir.operation import OPCODES, OpClass, Operation, opcode
from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig

#: Layout version; decoders reject anything else.
PACK_VERSION = 1

_U8_MAX = 0xFF
_U16_MAX = 0xFFFF
_U32_MAX = 0xFFFFFFFF

#: Stable OpClass order used by the machine encoding.
_OP_CLASSES: tuple[OpClass, ...] = tuple(OpClass)


class PackError(ValueError):
    """A value does not fit (or match) the packed encoding."""


# ---------------------------------------------------------------------------
# Byte-stream helpers
# ---------------------------------------------------------------------------
class _Writer:
    __slots__ = ("_parts",)

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def _scalar(self, fmt: str, value: int | float, limit: int | None) -> None:
        if limit is not None and not 0 <= value <= limit:
            raise PackError(f"value {value} out of range for {fmt!r} field")
        self._parts.append(struct.pack(fmt, value))

    def u8(self, value: int) -> None:
        self._scalar("=B", value, _U8_MAX)

    def u16(self, value: int) -> None:
        self._scalar("=H", value, _U16_MAX)

    def u32(self, value: int) -> None:
        self._scalar("=I", value, _U32_MAX)

    def f64(self, value: float) -> None:
        self._scalar("=d", value, None)

    def text(self, value: str) -> None:
        data = value.encode("utf-8")
        self.u16(len(data))
        self._parts.append(data)

    def blob(self, data: bytes) -> None:
        self.u32(len(data))
        self._parts.append(data)

    def raw(self, data: bytes) -> None:
        self._parts.append(data)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class _Reader:
    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _scalar(self, fmt: str, size: int):
        try:
            value = struct.unpack_from(fmt, self._data, self._pos)[0]
        except struct.error:
            raise PackError(
                f"truncated packed payload: scalar {fmt!r} at offset "
                f"{self._pos} past end ({len(self._data)} bytes)"
            ) from None
        self._pos += size
        return value

    def u8(self) -> int:
        return self._scalar("=B", 1)

    def u16(self) -> int:
        return self._scalar("=H", 2)

    def u32(self) -> int:
        return self._scalar("=I", 4)

    def f64(self) -> float:
        return self._scalar("=d", 8)

    def text(self) -> str:
        return self.raw(self.u16()).decode("utf-8")

    def blob(self) -> bytes:
        return self.raw(self.u32())

    def raw(self, size: int) -> bytes:
        end = self._pos + size
        if end > len(self._data):
            raise PackError(
                f"truncated packed payload: need {end} bytes, have {len(self._data)}"
            )
        chunk = self._data[self._pos : end]
        self._pos = end
        return chunk

    def typed(self, typecode: str, count: int) -> array:
        out = array(typecode)
        out.frombytes(self.raw(count * out.itemsize))
        return out


# ---------------------------------------------------------------------------
# Superblocks
# ---------------------------------------------------------------------------
def pack_superblock(sb: Superblock) -> bytes:
    """Flatten one superblock into the packed byte form."""
    graph = sb.graph
    n_ops = graph.num_operations
    if n_ops > _U16_MAX:
        raise PackError(f"superblock {sb.name!r} has {n_ops} ops (u16 limit)")
    w = _Writer()
    w.u16(PACK_VERSION)
    w.text(sb.name)
    w.text(sb.source)
    w.f64(sb.exec_freq)
    w.u16(n_ops)

    # Opcode table in first-use order; ops store a u8 index into it. The
    # decoder resolves names through the catalog, so an opcode that is
    # *named* like a catalog entry but differs in class/latency would
    # silently decode wrong — refuse it here instead.
    table: dict[str, int] = {}
    codes = array("B")
    blocks = array("H")
    exit_probs = array("d")
    named: list[tuple[int, str]] = []
    for op in sb.operations:
        cname = op.opcode.name
        if OPCODES.get(cname) != op.opcode:
            raise PackError(
                f"operation {op.index} of {sb.name!r} uses opcode {cname!r} "
                "which is not the catalog opcode; the packed form stores "
                "opcode names only"
            )
        idx = table.setdefault(cname, len(table))
        codes.append(idx)
        if op.block > _U16_MAX:
            raise PackError(f"op {op.index} block id {op.block} exceeds u16")
        blocks.append(op.block)
        if op.is_branch:
            exit_probs.append(op.exit_prob)
        if op.name:
            named.append((op.index, op.name))
    w.u8(len(table))
    for cname in table:
        w.text(cname)
    w.raw(codes.tobytes())
    w.raw(blocks.tobytes())
    w.u16(len(exit_probs))
    w.raw(exit_probs.tobytes())
    w.u16(len(named))
    for op_index, label in named:
        w.u16(op_index)
        w.text(label)

    srcs = array("H")
    dsts = array("H")
    lats = array("I")
    for src, dst, lat in graph.edges():
        srcs.append(src)
        dsts.append(dst)
        if lat > _U32_MAX:
            raise PackError(f"edge ({src},{dst}) latency {lat} exceeds u32")
        lats.append(lat)
    w.u32(len(srcs))
    w.raw(srcs.tobytes())
    w.raw(dsts.tobytes())
    w.raw(lats.tobytes())
    return w.getvalue()


def unpack_superblock(data: bytes) -> Superblock:
    """Rebuild a superblock from :func:`pack_superblock` bytes.

    Uses the public :class:`DependenceGraph` construction API, so edge
    deduplication and validation semantics are identical to the JSON
    deserializer's.
    """
    r = _Reader(data)
    version = r.u16()
    if version != PACK_VERSION:
        raise PackError(f"packed version {version} != supported {PACK_VERSION}")
    name = r.text()
    source = r.text()
    exec_freq = r.f64()
    n_ops = r.u16()
    table = [opcode(r.text()) for _ in range(r.u8())]
    codes = r.typed("B", n_ops)
    blocks = r.typed("H", n_ops)
    exit_probs = iter(r.typed("d", r.u16()))
    names = {}
    for _ in range(r.u16()):
        op_index = r.u16()
        names[op_index] = r.text()

    graph = DependenceGraph()
    for i in range(n_ops):
        code = table[codes[i]]
        is_branch = code.op_class is OpClass.BRANCH
        graph.add_operation(
            Operation(
                index=i,
                opcode=code,
                exit_prob=next(exit_probs) if is_branch else 0.0,
                block=blocks[i],
                name=names.get(i, ""),
            )
        )
    n_edges = r.u32()
    srcs = r.typed("H", n_edges)
    dsts = r.typed("H", n_edges)
    lats = r.typed("I", n_edges)
    for k in range(n_edges):
        graph.add_edge(srcs[k], dsts[k], lats[k])
    graph.freeze()
    return Superblock(name=name, graph=graph, exec_freq=exec_freq, source=source)


def pack_corpus(superblocks: Sequence[Superblock]) -> bytes:
    """Pack an ordered corpus as length-prefixed superblock blocks."""
    w = _Writer()
    w.u16(PACK_VERSION)
    w.u32(len(superblocks))
    for sb in superblocks:
        w.blob(pack_superblock(sb))
    return w.getvalue()


def unpack_corpus(data: bytes) -> list[Superblock]:
    """Rebuild a corpus packed by :func:`pack_corpus`, preserving order."""
    r = _Reader(data)
    version = r.u16()
    if version != PACK_VERSION:
        raise PackError(f"packed version {version} != supported {PACK_VERSION}")
    return [unpack_superblock(r.blob()) for _ in range(r.u32())]


# ---------------------------------------------------------------------------
# Machines
# ---------------------------------------------------------------------------
def pack_machine(machine: MachineConfig) -> bytes:
    """Flatten a machine config (units, class map, occupancy)."""
    w = _Writer()
    w.u16(PACK_VERSION)
    w.text(machine.name)
    w.u8(len(machine.units))
    for rclass, count in machine.units.items():
        w.text(rclass)
        w.u16(count)
    w.u8(len(machine.class_map))
    for op_class, rclass in machine.class_map.items():
        w.u8(_OP_CLASSES.index(op_class))
        w.text(rclass)
    w.u8(len(machine.occupancy))
    for op_name, occ in machine.occupancy.items():
        w.text(op_name)
        w.u16(occ)
    return w.getvalue()


def unpack_machine(data: bytes) -> MachineConfig:
    """Rebuild a machine config from :func:`pack_machine` bytes."""
    r = _Reader(data)
    version = r.u16()
    if version != PACK_VERSION:
        raise PackError(f"packed version {version} != supported {PACK_VERSION}")
    name = r.text()
    units = {r.text(): r.u16() for _ in range(r.u8())}
    class_map = {_OP_CLASSES[r.u8()]: r.text() for _ in range(r.u8())}
    occupancy = {r.text(): r.u16() for _ in range(r.u8())}
    return MachineConfig(
        name=name, units=units, class_map=class_map, occupancy=occupancy
    )


# ---------------------------------------------------------------------------
# Round-trip equality
# ---------------------------------------------------------------------------
def superblocks_equal(a: Superblock, b: Superblock) -> bool:
    """Structural equality over everything the bounds/schedulers read.

    Dataclass ``==`` on :class:`Superblock` compares the graphs by object
    identity (``DependenceGraph`` defines no ``__eq__``), so round-trip
    checks need a field-wise walk: metadata-excluded operations, then the
    edge list with latencies.
    """
    if a.name != b.name or a.source != b.source or a.exec_freq != b.exec_freq:
        return False
    if a.graph.num_operations != b.graph.num_operations:
        return False
    if any(x != y for x, y in zip(a.operations, b.operations)):
        return False
    return sorted(a.graph.edges()) == sorted(b.graph.edges())
