"""Parallel execution engines with deterministic result ordering.

Two engines live here:

* :class:`WorkerPool` — the persistent engine behind
  :func:`repro.perf.workers.corpus_map`. One long-lived, fork-started
  ``ProcessPoolExecutor`` is bound to a packed corpus payload
  (:mod:`repro.perf.pack`) and cached module-wide, so consecutive
  ``corpus_map`` calls within a CLI invocation reuse the same warm
  workers instead of paying spawn + corpus decode per call. Work is
  submitted as contiguous *batches* sized by a cost model
  (:func:`plan_batches`), amortizing IPC per batch rather than per unit.
* :class:`ParallelRunner` — the original fork-per-map engine, kept for
  generic item mapping (e.g. :mod:`repro.sim` runs) where no corpus is
  shared and pool persistence buys nothing.

The break-even guard (:func:`should_fan_out`) estimates corpus work in
abstract points (:func:`unit_cost_points`) and falls back to the serial
path when a run is too small to repay dispatch overhead — ``--jobs N``
on a paper-size quick run must never lose to serial. Set the
``REPRO_PAR_BREAK_EVEN`` environment variable to override the threshold
(``0`` disables the guard) or use :func:`force_parallel` in benchmarks
and tests that measure the pool itself.

Every dispatch records a :class:`DispatchStats` snapshot (mode, payload
bytes, batch count, worker-busy seconds) retrievable via
:func:`last_dispatch_stats`; the bench harness turns these into the
``pool_dispatch_overhead_seconds`` / ``worker_utilization`` metrics.
Stats live outside the metrics registries on purpose: recording them
into caller registries would break the serial==parallel counter
bit-identity contract.
"""

from __future__ import annotations

import atexit
import os
import threading
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ir.superblock import Superblock

#: Chunks submitted per worker; >1 smooths load imbalance between chunks.
_CHUNKS_PER_WORKER = 4

#: Estimated work points below which fan-out costs more than it saves.
#: Calibrated on the bench corpus: one point is roughly one op-branch
#: visit in the bounds pipeline (~20ns of kernel work), so the default
#: corresponds to a few hundred milliseconds of serial compute — about
#: what pool spawn + corpus transfer + result IPC costs to amortize.
DEFAULT_BREAK_EVEN_POINTS = 16_000

#: Environment override for the break-even threshold (``0`` disables).
BREAK_EVEN_ENV = "REPRO_PAR_BREAK_EVEN"


def effective_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value.

    ``None`` and ``1`` mean serial; ``0`` or negative means "one worker
    per available CPU" (scheduling affinity respected when exposed).
    """
    if jobs is None:
        return 1
    if jobs <= 0:
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            return os.cpu_count() or 1
    return jobs


# ---------------------------------------------------------------------------
# Cost model and break-even guard
# ---------------------------------------------------------------------------
def parallel_cost_weight(weight: float) -> Callable[[Callable], Callable]:
    """Decorator marking a kernel's cost relative to a bounds-only unit.

    The break-even guard multiplies a corpus's structural work points by
    this weight; kernels that also run schedulers or per-bound timing
    loops are several times heavier than a single bound sweep.
    """

    def mark(fn: Callable) -> Callable:
        fn.__parallel_cost_weight__ = float(weight)
        return fn

    return mark


def kernel_cost_weight(kernel: Callable) -> float:
    """The kernel's declared cost weight (default 1.0)."""
    return float(getattr(kernel, "__parallel_cost_weight__", 1.0))


def unit_cost_points(sb: "Superblock") -> int:
    """Structural work estimate for one work unit on ``sb``.

    The bounds pipeline is dominated by per-branch subgraph sweeps
    (``ops * branches``-ish) plus edge walks, so
    ``ops * (branches + 2) + edges`` tracks relative unit cost well
    enough for a go/no-go decision — it does not need to be exact.
    """
    graph = sb.graph
    return graph.num_operations * (sb.num_branches + 2) + graph.num_edges


def break_even_points() -> float:
    """Active break-even threshold (env-overridable)."""
    raw = os.environ.get(BREAK_EVEN_ENV)
    if raw is not None:
        try:
            return float(raw)
        except ValueError:
            pass
    return DEFAULT_BREAK_EVEN_POINTS


_FORCE_PARALLEL = threading.local()


@contextmanager
def force_parallel():
    """Context: bypass the break-even guard (bench/tests measure the pool)."""
    previous = getattr(_FORCE_PARALLEL, "on", False)
    _FORCE_PARALLEL.on = True
    try:
        yield
    finally:
        _FORCE_PARALLEL.on = previous


def parallelism_forced() -> bool:
    return bool(getattr(_FORCE_PARALLEL, "on", False))


def should_fan_out(jobs: int, total_points: float) -> bool:
    """Whether ``total_points`` of work repays fan-out across ``jobs``.

    Besides the break-even threshold, a host with a single usable core
    never fans out: with no second core to run a worker, dispatch is
    pure overhead regardless of how much work there is. Both checks are
    bypassed by :func:`force_parallel` or ``REPRO_PAR_BREAK_EVEN=0``.
    """
    if jobs <= 1:
        return False
    if parallelism_forced():
        return True
    threshold = break_even_points()
    if threshold <= 0:
        return True  # guard explicitly disabled
    if effective_jobs(0) <= 1:
        return False
    return total_points >= threshold


def plan_batches(
    costs: Sequence[float], workers: int, chunk_size: int | None = None
) -> list[tuple[int, int]]:
    """Split unit indices into contiguous ``[start, end)`` batches.

    With an explicit ``chunk_size`` the batches are fixed-size (the
    legacy knob). Otherwise units are accumulated until a batch holds
    ~``total / (workers * _CHUNKS_PER_WORKER)`` points, so heavy units
    land in small batches and light ones amortize their IPC — several
    batches per worker keep the tail balanced. Batching affects only
    scheduling: results are reassembled per unit in input order.
    """
    n = len(costs)
    if n == 0:
        return []
    if chunk_size is not None:
        size = max(1, chunk_size)
        return [(i, min(i + size, n)) for i in range(0, n, size)]
    target = sum(costs) / max(1, workers * _CHUNKS_PER_WORKER)
    batches: list[tuple[int, int]] = []
    start = 0
    acc = 0.0
    for idx, cost in enumerate(costs):
        acc += cost
        if acc >= target and idx + 1 < n:
            batches.append((start, idx + 1))
            start = idx + 1
            acc = 0.0
    batches.append((start, n))
    return batches


# ---------------------------------------------------------------------------
# Dispatch stats
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DispatchStats:
    """Snapshot of one ``corpus_map`` dispatch decision and its cost.

    ``mode`` is one of ``"pool"`` (fanned out), ``"serial"`` (jobs<=1 or
    a single unit), ``"serial-fallback"`` (parallel requested, break-even
    guard declined), ``"serial-unpicklable"`` (extras can't cross the
    process boundary) or ``"serial-pool-unavailable"`` (the host refused
    a process pool).
    """

    mode: str
    jobs: int = 1
    units: int = 0
    batches: int = 0
    payload_bytes: int = 0
    wall_seconds: float = 0.0
    busy_seconds: float = 0.0  #: summed worker-side batch compute time
    pool_reused: bool = False
    cost_points: float = 0.0

    @property
    def overhead_seconds(self) -> float:
        """Wall time not covered by perfectly-parallel worker compute."""
        return max(0.0, self.wall_seconds - self.busy_seconds / max(1, self.jobs))

    @property
    def utilization(self) -> float:
        """Fraction of worker wall capacity spent computing (0..1)."""
        capacity = self.jobs * self.wall_seconds
        if capacity <= 0.0:
            return 0.0
        return min(1.0, self.busy_seconds / capacity)


_LAST_DISPATCH: DispatchStats | None = None


def record_dispatch(stats: DispatchStats) -> None:
    """Publish the most recent dispatch snapshot (workers.py calls this)."""
    global _LAST_DISPATCH
    _LAST_DISPATCH = stats


def last_dispatch_stats() -> DispatchStats | None:
    """The most recent ``corpus_map`` dispatch snapshot, if any."""
    return _LAST_DISPATCH


def reset_dispatch_stats() -> None:
    """Clear the last-dispatch snapshot.

    CLI commands call this at observation-scope entry so one process
    running several commands (tests, the ``obs`` tooling) never
    attributes a previous command's dispatch to the current record.
    """
    global _LAST_DISPATCH
    _LAST_DISPATCH = None


def publish_dispatch_stats(registry: Any, stats: DispatchStats | None = None) -> None:
    """Surface dispatch stats as gauges on a metrics registry.

    Gauges — not counters — so serial==parallel counter bit-identity is
    untouched: counter payloads stay comparable across ``--jobs`` while
    ``--metrics-out`` and the Prometheus exporter still see the last
    dispatch (``dispatch.mode.<mode>`` is 1.0 for the mode taken).
    ``registry`` is duck-typed on ``gauge(name, value)``.
    """
    if stats is None:
        stats = last_dispatch_stats()
    if stats is None or registry is None:
        return
    registry.gauge("dispatch.jobs", float(stats.jobs))
    registry.gauge("dispatch.units", float(stats.units))
    registry.gauge("dispatch.batches", float(stats.batches))
    registry.gauge("dispatch.payload_bytes", float(stats.payload_bytes))
    registry.gauge("dispatch.wall_seconds", stats.wall_seconds)
    registry.gauge("dispatch.busy_seconds", stats.busy_seconds)
    registry.gauge("dispatch.overhead_seconds", stats.overhead_seconds)
    registry.gauge("dispatch.utilization", stats.utilization)
    registry.gauge("dispatch.pool_reused", 1.0 if stats.pool_reused else 0.0)
    registry.gauge(f"dispatch.mode.{stats.mode}", 1.0)


# ---------------------------------------------------------------------------
# Persistent worker pool
# ---------------------------------------------------------------------------
class WorkerCrashError(RuntimeError):
    """A pool worker died mid-batch (signal, OOM kill, ``os._exit``).

    The pool is torn down before this is raised, so a retry gets fresh
    workers; running with ``jobs=1`` isolates the failing unit.
    """


def _mp_context(start_method: str | None):
    import multiprocessing as mp

    if start_method is not None:
        return mp.get_context(start_method)
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return None


class WorkerPool:
    """A long-lived process pool bound to one initialized corpus payload.

    Workers run ``initializer(*initargs)`` once at spawn (decoding the
    packed corpus into worker globals) and then serve batches for as many
    ``corpus_map`` calls as arrive while the pool stays cached — spawn
    and corpus transfer are paid once per (jobs, corpus) pair, not per
    call.
    """

    def __init__(
        self,
        jobs: int,
        fingerprint: str,
        initializer: Callable[..., None],
        initargs: tuple[Any, ...] = (),
        start_method: str | None = None,
    ) -> None:
        self.jobs = jobs
        self.fingerprint = fingerprint
        self.maps_served = 0
        self._executor = ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=_mp_context(start_method),
            initializer=initializer,
            initargs=initargs,
        )

    def run_batches(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> list[Any]:
        """Evaluate ``fn(payload)`` for every batch payload, in order.

        Batches complete in any order; results are reassembled by
        submission index. A dead worker surfaces as
        :class:`WorkerCrashError` after the pool is evicted and shut
        down — the parent never hangs on a broken pool.
        """
        results: list[Any] = [None] * len(payloads)
        try:
            pending = {
                self._executor.submit(fn, payload): idx
                for idx, payload in enumerate(payloads)
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    results[pending.pop(future)] = future.result()
        except BrokenProcessPool as exc:
            discard_pool(self)
            raise WorkerCrashError(
                f"a worker process died while evaluating a batch "
                f"(pool of {self.jobs}); the pool was shut down — retry "
                "re-spawns workers, jobs=1 isolates the failing unit"
            ) from exc
        self.maps_served += 1
        return results

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)


_POOL: WorkerPool | None = None


def acquire_pool(
    jobs: int,
    fingerprint: str,
    initializer: Callable[..., None],
    initargs: tuple[Any, ...] = (),
) -> tuple[WorkerPool, bool]:
    """The cached pool for ``(jobs, fingerprint)``, spawning on miss.

    A single slot is cached: eval pipelines map the same corpus many
    times in a row, so the most-recent pool is the one that gets reuse.
    Returns ``(pool, reused)``.
    """
    global _POOL
    if (
        _POOL is not None
        and _POOL.jobs == jobs
        and _POOL.fingerprint == fingerprint
    ):
        return _POOL, True
    shutdown_pools()
    _POOL = WorkerPool(jobs, fingerprint, initializer, initargs)
    return _POOL, False


def discard_pool(pool: WorkerPool) -> None:
    """Evict (and close) a pool after a worker crash."""
    global _POOL
    if _POOL is pool:
        _POOL = None
    pool.close()


def shutdown_pools() -> None:
    """Close the cached worker pool, if any (idempotent; atexit hook)."""
    global _POOL
    if _POOL is not None:
        _POOL.close()
        _POOL = None


atexit.register(shutdown_pools)


# ---------------------------------------------------------------------------
# Legacy fork-per-map engine
# ---------------------------------------------------------------------------
def _run_chunk(fn: Callable[[Any], Any], chunk: list[Any]) -> list[Any]:
    """Worker-side driver: evaluate one chunk, preserving its order."""
    return [fn(item) for item in chunk]


def _chunked(items: Sequence[Any], size: int) -> list[list[Any]]:
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


class ParallelRunner:
    """Maps a function over work units with optional process-pool fan-out.

    This is the fork-per-map engine: a fresh pool per ``map`` call. The
    corpus pipeline uses the persistent :class:`WorkerPool` instead;
    this class remains for generic item mapping (e.g. simulation runs)
    where there is no shared corpus to keep workers warm for.

    Args:
        jobs: worker processes; ``None``/``1`` = serial, ``0`` = all CPUs.
        chunk_size: items per submitted chunk; defaults to splitting the
            work into ``jobs * 4`` chunks.
        initializer / initargs: run once in every worker process before
            any chunk (and once inline for the serial path), used to
            deserialize shared state such as the corpus.
        start_method: multiprocessing start method; defaults to ``fork``
            where available (cheap on Linux) and the platform default
            elsewhere.
    """

    def __init__(
        self,
        jobs: int | None = None,
        *,
        chunk_size: int | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
        start_method: str | None = None,
    ) -> None:
        self.jobs = effective_jobs(jobs)
        self.chunk_size = chunk_size
        self.initializer = initializer
        self.initargs = initargs
        self.start_method = start_method

    @property
    def parallel(self) -> bool:
        return self.jobs > 1

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to every item; results are in input order."""
        work = list(items)
        if not self.parallel or len(work) <= 1:
            return self._map_serial(fn, work)
        try:
            return self._map_parallel(fn, work)
        except (OSError, ValueError, ImportError):
            # Process pools can be unavailable in sandboxed or
            # resource-limited environments; the answer must not be.
            return self._map_serial(fn, work)

    def _map_serial(self, fn: Callable[[Any], Any], work: list[Any]) -> list[Any]:
        if self.initializer is not None:
            self.initializer(*self.initargs)
        return [fn(item) for item in work]

    def _map_parallel(self, fn: Callable[[Any], Any], work: list[Any]) -> list[Any]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(work) // (self.jobs * _CHUNKS_PER_WORKER)))
        chunks = _chunked(work, size)
        workers = min(self.jobs, len(chunks))
        results: list[list[Any] | None] = [None] * len(chunks)
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_mp_context(self.start_method),
            initializer=self.initializer,
            initargs=self.initargs,
        ) as pool:
            pending = {
                pool.submit(_run_chunk, fn, chunk): idx
                for idx, chunk in enumerate(chunks)
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    results[pending.pop(future)] = future.result()
        out: list[Any] = []
        for part in results:
            assert part is not None
            out.extend(part)
        return out
