"""Process-pool fan-out with deterministic result ordering.

:class:`ParallelRunner` is deliberately small: it maps a picklable
module-level function over a list of items, chunking the items to
amortize inter-process overhead, and reassembles results **in input
order** no matter which worker finished first. ``jobs <= 1`` (or a tiny
item count, or an unavailable process pool) degrades to a plain inline
loop, so callers never need a second code path.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any

#: Chunks submitted per worker; >1 smooths load imbalance between chunks.
_CHUNKS_PER_WORKER = 4


def effective_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value.

    ``None`` and ``1`` mean serial; ``0`` or negative means "one worker
    per available CPU" (scheduling affinity respected when exposed).
    """
    if jobs is None:
        return 1
    if jobs <= 0:
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            return os.cpu_count() or 1
    return jobs


def _run_chunk(fn: Callable[[Any], Any], chunk: list[Any]) -> list[Any]:
    """Worker-side driver: evaluate one chunk, preserving its order."""
    return [fn(item) for item in chunk]


def _chunked(items: Sequence[Any], size: int) -> list[list[Any]]:
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


class ParallelRunner:
    """Maps a function over work units with optional process-pool fan-out.

    Args:
        jobs: worker processes; ``None``/``1`` = serial, ``0`` = all CPUs.
        chunk_size: items per submitted chunk; defaults to splitting the
            work into ``jobs * 4`` chunks.
        initializer / initargs: run once in every worker process before
            any chunk (and once inline for the serial path), used to
            deserialize shared state such as the corpus.
        start_method: multiprocessing start method; defaults to ``fork``
            where available (cheap on Linux) and the platform default
            elsewhere.
    """

    def __init__(
        self,
        jobs: int | None = None,
        *,
        chunk_size: int | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
        start_method: str | None = None,
    ) -> None:
        self.jobs = effective_jobs(jobs)
        self.chunk_size = chunk_size
        self.initializer = initializer
        self.initargs = initargs
        self.start_method = start_method

    @property
    def parallel(self) -> bool:
        return self.jobs > 1

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to every item; results are in input order."""
        work = list(items)
        if not self.parallel or len(work) <= 1:
            return self._map_serial(fn, work)
        try:
            return self._map_parallel(fn, work)
        except (OSError, ValueError, ImportError):
            # Process pools can be unavailable in sandboxed or
            # resource-limited environments; the answer must not be.
            return self._map_serial(fn, work)

    def _map_serial(self, fn: Callable[[Any], Any], work: list[Any]) -> list[Any]:
        if self.initializer is not None:
            self.initializer(*self.initargs)
        return [fn(item) for item in work]

    def _mp_context(self):
        import multiprocessing as mp

        if self.start_method is not None:
            return mp.get_context(self.start_method)
        if "fork" in mp.get_all_start_methods():
            return mp.get_context("fork")
        return None

    def _map_parallel(self, fn: Callable[[Any], Any], work: list[Any]) -> list[Any]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(work) // (self.jobs * _CHUNKS_PER_WORKER)))
        chunks = _chunked(work, size)
        workers = min(self.jobs, len(chunks))
        results: list[list[Any] | None] = [None] * len(chunks)
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=self._mp_context(),
            initializer=self.initializer,
            initargs=self.initargs,
        ) as pool:
            pending = {
                pool.submit(_run_chunk, fn, chunk): idx
                for idx, chunk in enumerate(chunks)
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    results[pending.pop(future)] = future.result()
        out: list[Any] = []
        for part in results:
            assert part is not None
            out.extend(part)
        return out
