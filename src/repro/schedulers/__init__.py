"""Superblock schedulers: the paper's baselines plus Balance and Best.

Named heuristics (use with :func:`schedule`):

* ``cp`` — Critical Path (longest dependence chain first).
* ``sr`` — Successive Retirement (first block first).
* ``gstar`` — G*: selective retirement of critical branches.
* ``dhasy`` — Dependence Height and Speculative Yield.
* ``help`` — Speculative-Hedge-style help scoring.
* ``balance`` — the paper's Balance heuristic (see :mod:`repro.core`).
* ``best`` — best-of-127 envelope (6 primaries + 121 priority blends).
* ``optimal`` — branch-and-bound optimum (small superblocks only).
"""

from repro.schedulers.base import (
    get_scheduler,
    register,
    schedule,
    scheduler_names,
)
from repro.schedulers.best import PRIMARY_HEURISTICS
from repro.schedulers.list_scheduler import list_schedule
from repro.schedulers.optimal import SearchBudgetExceeded
from repro.schedulers.priorities import (
    blend_grid,
    blend_priority,
    cp_priority,
    dhasy_priority,
    heights,
    sr_priority,
)
from repro.schedulers.schedule import (
    Schedule,
    ScheduleError,
    make_schedule,
    validate_schedule,
)
from repro.schedulers.visualize import gantt, unit_streams

__all__ = [
    "PRIMARY_HEURISTICS",
    "Schedule",
    "ScheduleError",
    "SearchBudgetExceeded",
    "blend_grid",
    "gantt",
    "unit_streams",
    "blend_priority",
    "cp_priority",
    "dhasy_priority",
    "get_scheduler",
    "heights",
    "list_schedule",
    "make_schedule",
    "register",
    "schedule",
    "scheduler_names",
    "sr_priority",
    "validate_schedule",
]
