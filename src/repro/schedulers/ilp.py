"""Exact superblock scheduling as a time-indexed integer linear program.

An independent optimal scheduler used to cross-validate the
branch-and-bound search (and the lower bounds): binary variables
``x[v, t]`` select the issue cycle of every operation within a horizon
``T`` derived from a heuristic schedule.

    minimize    sum_b w_b * (sum_t t * x[b, t] + l_br)
    subject to  sum_t x[v, t] = 1                         (each op issues)
                sum_t t*x[v,t] - sum_t t*x[u,t] >= lat    (dependences)
                sum_{v in class r} sum_{tau in (t-occ_v, t]} x[v, tau]
                    <= units_r   for every cycle t        (resources)

Unlike the branch-and-bound scheduler, the resource rows model blocking
(non-pipelined) units directly, so this is also the exact reference for
machines with occupancy > 1. Solved with scipy's HiGHS MILP backend;
problems above a size guard are rejected (time-indexed ILPs grow as
``V * T``).
"""

from __future__ import annotations

from repro import cache as result_cache
from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig
from repro.schedulers.base import register
from repro.schedulers.schedule import Schedule, make_schedule

#: Cache version of the ILP solver; bump when the formulation changes.
ILP_CACHE_VERSION = 1


class IlpSizeExceeded(RuntimeError):
    """The time-indexed formulation would be too large to solve."""


def _serial_horizon(sb: Superblock, machine: MachineConfig) -> int:
    """A horizon provably admitting a WCT-optimal schedule."""
    graph = sb.graph
    total = 0
    for v in range(graph.num_operations):
        out = max((lat for _dst, lat in graph.succs(v)), default=0)
        total += max(machine.occupancy_of(graph.op(v)), out, 1)
    return total


@register("ilp")
def ilp_schedule(
    sb: Superblock,
    machine: MachineConfig,
    horizon: int | None = None,
    max_variables: int = 20_000,
    validate: bool = True,
) -> Schedule:
    """Provably optimal schedule via a time-indexed MILP.

    Args:
        horizon: schedule-length upper bound; defaults to the serial
            bound ``sum_v max(occ(v), max outgoing latency, 1)``. A
            heuristic schedule's *length* is NOT a sound default: the
            WCT optimum may be longer than any makespan-greedy schedule
            (it can delay a low-weight final jump to issue high-weight
            branches earlier). The serial bound is sound because any
            schedule left-compacts without raising a branch's issue
            cycle, and in a compacted schedule every cycle before an
            op's issue lies in some other op's ``max(occ, lat)`` window.
        max_variables: guard on ``V * T``.
    """
    import numpy as np
    from scipy import sparse
    from scipy.optimize import Bounds, LinearConstraint, milp

    graph = sb.graph
    n = graph.num_operations
    if horizon is None:
        horizon = _serial_horizon(sb, machine)
    T = horizon
    early = graph.early_dc()
    if n * T > max_variables:
        raise IlpSizeExceeded(
            f"{sb.name}: {n} ops x {T} cycles = {n * T} variables exceeds "
            f"the {max_variables} guard"
        )

    cache = result_cache.active()
    if cache is not None:
        # The horizon is folded into the key (it bounds the search space),
        # so an explicit-horizon call never reuses a default-horizon entry.
        key = result_cache.cache_key(
            "ilp",
            ILP_CACHE_VERSION,
            [
                result_cache.superblock_digest(sb),
                result_cache.machine_digest(machine),
                T,
            ],
        )
        hit, value = cache.get(key)
        if hit:
            issue, stats = value
            return make_schedule(
                sb, machine, "ilp", issue, stats=dict(stats), validate=validate
            )

    # Variable layout: x[v, t] -> v * T + t.
    def var(v: int, t: int) -> int:
        return v * T + t

    nvars = n * T
    rows, cols, vals = [], [], []
    lb, ub = [], []
    row = 0

    def add_row(entries: list[tuple[int, float]], lo: float, hi: float) -> None:
        nonlocal row
        for c, a in entries:
            rows.append(row)
            cols.append(c)
            vals.append(a)
        lb.append(lo)
        ub.append(hi)
        row += 1

    # Assignment rows: each op issues exactly once, no earlier than its
    # dependence-only earliest cycle (cheap variable elimination).
    var_upper = np.ones(nvars)
    for v in range(n):
        add_row([(var(v, t), 1.0) for t in range(T)], 1.0, 1.0)
        for t in range(min(early[v], T)):
            var_upper[var(v, t)] = 0.0

    # Dependence rows: issue(dst) - issue(src) >= lat.
    for src, dst, lat in graph.edges():
        entries = [(var(dst, t), float(t)) for t in range(T)]
        entries += [(var(src, t), -float(t)) for t in range(T)]
        add_row(entries, float(lat), float("inf"))

    # Resource rows: per class and cycle, occupancy-weighted usage.
    by_class: dict[str, list[int]] = {}
    for v in range(n):
        by_class.setdefault(machine.resource_of(graph.op(v)), []).append(v)
    for rclass, ops in by_class.items():
        units = machine.units_of(rclass)
        for t in range(T):
            entries = []
            for v in ops:
                occ = machine.occupancy_of(graph.op(v))
                for tau in range(max(0, t - occ + 1), t + 1):
                    entries.append((var(v, tau), 1.0))
            if len(entries) > units:
                add_row(entries, 0.0, float(units))

    # Objective: weighted branch issue cycles.
    c = np.zeros(nvars)
    for b, w in sb.weights.items():
        for t in range(T):
            c[var(b, t)] = w * t

    constraints = LinearConstraint(
        sparse.csr_matrix(
            (vals, (rows, cols)), shape=(row, nvars)
        ),
        lb,
        ub,
    )
    result = milp(
        c,
        constraints=constraints,
        integrality=np.ones(nvars),
        bounds=Bounds(np.zeros(nvars), var_upper),
    )
    if not result.success:  # pragma: no cover - horizon always admits one
        raise RuntimeError(f"MILP failed on {sb.name}: {result.message}")

    x = np.asarray(result.x).round().astype(int)
    issue = {}
    for v in range(n):
        ts = [t for t in range(T) if x[var(v, t)] == 1]
        assert len(ts) == 1, f"op {v} assigned {ts}"
        issue[v] = ts[0]
    if cache is not None:
        cache.put(key, (issue, {"horizon": T}))
    return make_schedule(
        sb, machine, "ilp", issue, stats={"horizon": T}, validate=validate
    )
