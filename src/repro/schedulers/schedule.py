"""Schedules and their validation.

A :class:`Schedule` assigns an issue cycle to every operation of a
superblock. Its quality metric is the weighted completion time (WCT); its
feasibility is checked against dependences and the machine's per-cycle
resource capacity by :func:`validate_schedule`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig


class ScheduleError(ValueError):
    """Raised when a schedule violates dependence or resource constraints."""


@dataclass(frozen=True)
class Schedule:
    """A complete assignment of issue cycles for one superblock.

    Attributes:
        superblock: name of the scheduled superblock.
        machine: name of the machine configuration.
        heuristic: name of the scheduler that produced it.
        issue: issue cycle per operation index.
        wct: weighted completion time (cached at construction).
    """

    superblock: str
    machine: str
    heuristic: str
    issue: dict[int, int]
    wct: float
    stats: dict = field(default_factory=dict, compare=False)

    @property
    def length(self) -> int:
        """Total schedule length in cycles (last issue + 1)."""
        return max(self.issue.values()) + 1 if self.issue else 0

    def branch_cycles(self, sb: Superblock) -> dict[int, int]:
        return {b: self.issue[b] for b in sb.branches}

    def as_rows(self, sb: Superblock, machine: MachineConfig) -> list[list[str]]:
        """Cycle-by-cycle rendering for examples and debugging."""
        by_cycle: dict[int, list[int]] = defaultdict(list)
        for v, t in self.issue.items():
            by_cycle[t].append(v)
        rows = []
        for t in range(self.length):
            ops = sorted(by_cycle.get(t, []))
            rows.append([str(t)] + [str(sb.op(v)) for v in ops])
        return rows


def make_schedule(
    sb: Superblock,
    machine: MachineConfig,
    heuristic: str,
    issue: dict[int, int],
    stats: dict | None = None,
    validate: bool = True,
) -> Schedule:
    """Build a :class:`Schedule`, computing its WCT and validating it."""
    schedule = Schedule(
        superblock=sb.name,
        machine=machine.name,
        heuristic=heuristic,
        issue=dict(issue),
        wct=sb.weighted_completion_time({b: issue[b] for b in sb.branches}),
        stats=stats or {},
    )
    if validate:
        validate_schedule(sb, machine, schedule)
    return schedule


def validate_schedule(
    sb: Superblock, machine: MachineConfig, schedule: Schedule
) -> None:
    """Check completeness, dependences, branch legality, and resources.

    Beyond dependence latencies and per-cycle resource/occupancy capacity
    (on pipelined and blocking machines alike), this enforces two
    superblock-specific legality rules that dependence edges alone do not
    imply for hand-built schedules:

    * **branch order** — exits must issue in program order, separated by
      at least the branch latency (branches can never be reordered);
    * **liveness past the last exit** — control definitively leaves the
      superblock at ``issue[last] + l_br``; an operation issued at or
      after that cycle executes on no path, so its value is dead on every
      exit it is live past.

    Raises:
        ScheduleError: on the first violated constraint.
    """
    issue = schedule.issue
    n = sb.graph.num_operations
    missing = [v for v in range(n) if v not in issue]
    if missing:
        raise ScheduleError(f"operations {missing} are not scheduled")
    extra = [v for v in issue if not 0 <= v < n]
    if extra:
        raise ScheduleError(f"unknown operations {extra} in schedule")
    for v, t in issue.items():
        if t < 0:
            raise ScheduleError(f"operation {v} issues at negative cycle {t}")
    for src, dst, lat in sb.graph.edges():
        if issue[dst] < issue[src] + lat:
            raise ScheduleError(
                f"dependence violated: op {dst} at cycle {issue[dst]} but "
                f"op {src} (latency {lat}) issues at cycle {issue[src]}"
            )
    l_br = sb.branch_latency
    for prev, nxt in zip(sb.branches, sb.branches[1:]):
        if issue[nxt] < issue[prev] + l_br:
            raise ScheduleError(
                f"branch order violated: exit {nxt} at cycle {issue[nxt]} "
                f"does not follow exit {prev} (cycle {issue[prev]}) by the "
                f"branch latency {l_br}"
            )
    leave_at = issue[sb.last_branch] + l_br
    for v, t in issue.items():
        if v != sb.last_branch and t >= leave_at:
            raise ScheduleError(
                f"op {v} issues at cycle {t}, but control leaves the "
                f"superblock at cycle {leave_at} (last exit "
                f"{sb.last_branch} + branch latency {l_br}); the op would "
                "execute on no path"
            )
    demand: dict[tuple[int, str], int] = defaultdict(int)
    for v, t in issue.items():
        op = sb.op(v)
        rclass = machine.resource_of(op)
        for k in range(machine.occupancy_of(op)):
            demand[(t + k, rclass)] += 1
    for (t, rclass), used in demand.items():
        cap = machine.units_of(rclass)
        if used > cap:
            raise ScheduleError(
                f"cycle {t} uses {used} {rclass!r} units but machine "
                f"{machine.name} has only {cap}"
            )
