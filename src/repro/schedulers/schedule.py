"""Schedules and their validation.

A :class:`Schedule` assigns an issue cycle to every operation of a
superblock. Its quality metric is the weighted completion time (WCT); its
feasibility is checked against dependences and the machine's per-cycle
resource capacity by :func:`validate_schedule`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig


class ScheduleError(ValueError):
    """Raised when a schedule violates dependence or resource constraints."""


@dataclass(frozen=True)
class Schedule:
    """A complete assignment of issue cycles for one superblock.

    Attributes:
        superblock: name of the scheduled superblock.
        machine: name of the machine configuration.
        heuristic: name of the scheduler that produced it.
        issue: issue cycle per operation index.
        wct: weighted completion time (cached at construction).
    """

    superblock: str
    machine: str
    heuristic: str
    issue: dict[int, int]
    wct: float
    stats: dict = field(default_factory=dict, compare=False)

    @property
    def length(self) -> int:
        """Total schedule length in cycles (last issue + 1)."""
        return max(self.issue.values()) + 1 if self.issue else 0

    def branch_cycles(self, sb: Superblock) -> dict[int, int]:
        return {b: self.issue[b] for b in sb.branches}

    def as_rows(self, sb: Superblock, machine: MachineConfig) -> list[list[str]]:
        """Cycle-by-cycle rendering for examples and debugging."""
        by_cycle: dict[int, list[int]] = defaultdict(list)
        for v, t in self.issue.items():
            by_cycle[t].append(v)
        rows = []
        for t in range(self.length):
            ops = sorted(by_cycle.get(t, []))
            rows.append([str(t)] + [str(sb.op(v)) for v in ops])
        return rows


def make_schedule(
    sb: Superblock,
    machine: MachineConfig,
    heuristic: str,
    issue: dict[int, int],
    stats: dict | None = None,
    validate: bool = True,
) -> Schedule:
    """Build a :class:`Schedule`, computing its WCT and validating it."""
    schedule = Schedule(
        superblock=sb.name,
        machine=machine.name,
        heuristic=heuristic,
        issue=dict(issue),
        wct=sb.weighted_completion_time({b: issue[b] for b in sb.branches}),
        stats=stats or {},
    )
    if validate:
        validate_schedule(sb, machine, schedule)
    return schedule


def validate_schedule(
    sb: Superblock, machine: MachineConfig, schedule: Schedule
) -> None:
    """Check completeness, dependences, and resource capacity.

    Raises:
        ScheduleError: on the first violated constraint.
    """
    issue = schedule.issue
    n = sb.graph.num_operations
    missing = [v for v in range(n) if v not in issue]
    if missing:
        raise ScheduleError(f"operations {missing} are not scheduled")
    for v, t in issue.items():
        if t < 0:
            raise ScheduleError(f"operation {v} issues at negative cycle {t}")
    for src, dst, lat in sb.graph.edges():
        if issue[dst] < issue[src] + lat:
            raise ScheduleError(
                f"dependence violated: op {dst} at cycle {issue[dst]} but "
                f"op {src} (latency {lat}) issues at cycle {issue[src]}"
            )
    demand: dict[tuple[int, str], int] = defaultdict(int)
    for v, t in issue.items():
        op = sb.op(v)
        rclass = machine.resource_of(op)
        for k in range(machine.occupancy_of(op)):
            demand[(t + k, rclass)] += 1
    for (t, rclass), used in demand.items():
        cap = machine.units_of(rclass)
        if used > cap:
            raise ScheduleError(
                f"cycle {t} uses {used} {rclass!r} units but machine "
                f"{machine.name} has only {cap}"
            )
