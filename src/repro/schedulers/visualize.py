"""ASCII visualization of schedules.

:func:`gantt` renders a schedule as a per-functional-unit-class timeline —
one row per resource class, one column per cycle — with exits marked, so
schedules can be eyeballed in a terminal or embedded in reports:

    cycle   0    1    2    3
    gp      n0   n2   br3  n5
    gp      n1   n4   .    br6
    exits:  branch 3 @2 (p=0.30), branch 6 @3 (p=0.70)
"""

from __future__ import annotations

from collections import defaultdict

from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig
from repro.schedulers.schedule import Schedule


def gantt(sb: Superblock, machine: MachineConfig, schedule: Schedule) -> str:
    """Render ``schedule`` as an ASCII Gantt chart."""
    length = schedule.length
    # Assign each op to a concrete unit lane of its class (greedy first-fit
    # over the occupancy window; feasible because the validator passed).
    lanes: dict[str, list[list[str | None]]] = {
        rclass: [[None] * max(length, 1) for _ in range(machine.units_of(rclass))]
        for rclass in machine.resource_classes
    }
    for v in sorted(schedule.issue, key=lambda u: (schedule.issue[u], u)):
        op = sb.op(v)
        rclass = machine.resource_of(op)
        occ = machine.occupancy_of(op)
        t = schedule.issue[v]
        for lane in lanes[rclass]:
            window = range(t, min(t + occ, len(lane)))
            if all(lane[c] is None for c in window):
                label = f"br{v}" if op.is_branch else op.label
                for k, c in enumerate(window):
                    lane[c] = label if k == 0 else "~" + label
                break
        else:  # pragma: no cover - unreachable for validated schedules
            raise ValueError(f"no free {rclass!r} lane for op {v}")

    width = max(
        [5]
        + [len(cell) for rows in lanes.values() for lane in rows for cell in lane if cell]
    )
    header = "cycle  " + " ".join(str(t).ljust(width) for t in range(length))
    lines = [header]
    for rclass in machine.resource_classes:
        for lane in lanes[rclass]:
            cells = " ".join((cell or ".").ljust(width) for cell in lane)
            lines.append(f"{rclass:6s} {cells}")
    exits = ", ".join(
        f"branch {b} @{schedule.issue[b]} (p={sb.weights[b]:.2f})"
        for b in sb.branches
    )
    lines.append(f"exits: {exits}")
    lines.append(f"WCT = {schedule.wct:.4f} ({schedule.heuristic} on {machine.name})")
    return "\n".join(lines)


def unit_streams(
    sb: Superblock, machine: MachineConfig, schedule: Schedule
) -> dict[str, list[tuple[int, int]]]:
    """Per-resource-class issue streams: ``(cycle, op index)`` pairs."""
    streams: dict[str, list[tuple[int, int]]] = defaultdict(list)
    for v, t in sorted(schedule.issue.items(), key=lambda kv: (kv[1], kv[0])):
        streams[machine.resource_of(sb.op(v))].append((t, v))
    return dict(streams)
