"""The adaptive scheduler: DHASY first, Balance only when provably needed.

Table 4 of the paper observes that compile time can be saved by scheduling
with the cheap DHASY heuristic, comparing the result against a lower
bound, and invoking the expensive Balance heuristic only when DHASY is not
provably optimal. This module packages that strategy as a registered
scheduler, so it can be compared and benchmarked like any other.
"""

from __future__ import annotations

from repro.bounds.superblock_bounds import BoundSuite
from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig
from repro.schedulers.base import register
from repro.schedulers.dhasy import dhasy_schedule
from repro.schedulers.schedule import Schedule


@register("adaptive")
def adaptive_schedule(
    sb: Superblock,
    machine: MachineConfig,
    suite: BoundSuite | None = None,
    validate: bool = True,
) -> Schedule:
    """DHASY-first / Balance-fallback scheduling.

    Returns the DHASY schedule when it meets the tightest bound computed
    by the (pairwise-level) bound suite; otherwise re-schedules with
    Balance and returns the better of the two.
    """
    from repro.core.balance import balance

    if suite is None:
        suite = BoundSuite(sb, machine, include_triplewise=False)
    bound = suite.compute().tightest
    cheap = dhasy_schedule(sb, machine, validate=validate)
    if cheap.wct <= bound + 1e-9:
        return Schedule(
            superblock=cheap.superblock,
            machine=cheap.machine,
            heuristic="adaptive",
            issue=cheap.issue,
            wct=cheap.wct,
            stats={"fallback": False},
        )
    expensive = balance(sb, machine, suite=suite, validate=validate)
    winner = expensive if expensive.wct <= cheap.wct else cheap
    return Schedule(
        superblock=winner.superblock,
        machine=winner.machine,
        heuristic="adaptive",
        issue=winner.issue,
        wct=winner.wct,
        stats={"fallback": True, "winner": winner.heuristic},
    )
