"""Successive Retirement scheduler: retire exits in program order.

Operations of the first block get the highest priority, then the second
block, and so on; Critical Path breaks ties within a block. Biased toward
the *first* exit; strongest on narrow machines where resources dominate
(Section 2 of the paper).
"""

from __future__ import annotations

from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig
from repro.schedulers.base import register
from repro.schedulers.list_scheduler import list_schedule
from repro.schedulers.priorities import sr_priority
from repro.schedulers.schedule import Schedule


@register("sr")
def sr_schedule(
    sb: Superblock, machine: MachineConfig, validate: bool = True
) -> Schedule:
    """List schedule by (home block, dependence height)."""
    return list_schedule(sb, machine, sr_priority(sb), "sr", validate)
