"""The G* scheduler (Deitrich & Hwu's G heuristic family, ref [8]).

G* finds middle ground between Critical Path and Successive Retirement by
applying retirement only to *critical* branches:

1. For every remaining branch ``b``, list-schedule the dependence subgraph
   rooted at ``b`` alone (secondary heuristic: Critical Path) and record
   the cycle in which ``b`` completes.
2. ``rank(b) = completion cycle / cumulative exit probability`` (the sum of
   the exit probabilities of ``b`` and all preceding branches).
3. The branch with the smallest rank is critical: its subgraph is assigned
   the next priority tier and removed; recurse on the rest.

The final schedule is a list schedule with priority (tier, dependence
height). In Figure 1 of the paper only the last branch is critical, so G*
degenerates to Critical Path there.
"""

from __future__ import annotations

from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig
from repro.machine.reservation import ReservationTable
from repro.schedulers.base import register
from repro.schedulers.list_scheduler import list_schedule
from repro.schedulers.priorities import heights
from repro.schedulers.schedule import Schedule


def _subset_completion(
    sb: Superblock,
    machine: MachineConfig,
    nodes: list[int],
    sink: int,
    priority,
) -> int:
    """Cycle in which ``sink`` issues when ``nodes`` alone are list-scheduled.

    Edges from operations outside ``nodes`` are ignored (they belong to
    previously retired tiers, treated as already executed). ``priority``
    is the secondary heuristic's per-op priority vector.
    """
    graph = sb.graph
    node_set = set(nodes)
    preds_left = {
        v: sum(1 for u, _ in graph.preds(v) if u in node_set) for v in nodes
    }
    ready_at = {v: 0 for v in nodes}
    table = ReservationTable(machine)
    unplaced = set(nodes)

    def key(v: int):
        p = priority[v]
        if isinstance(p, tuple):
            return tuple(-x for x in p) + (v,)
        return (-p, v)

    released = sorted((v for v in nodes if preds_left[v] == 0), key=key)
    cycle = 0
    issue: dict[int, int] = {}
    while unplaced:
        progress = False
        next_round: list[int] = []
        for v in released:
            if ready_at[v] > cycle:
                next_round.append(v)
                continue
            op = graph.op(v)
            rclass = machine.resource_of(op)
            occ = machine.occupancy_of(op)
            if not table.can_place(cycle, rclass, occ):
                next_round.append(v)
                continue
            table.place(cycle, rclass, occ)
            issue[v] = cycle
            unplaced.discard(v)
            progress = True
            for w, lat in graph.succs(v):
                if w in node_set:
                    preds_left[w] -= 1
                    ready_at[w] = max(ready_at[w], cycle + lat)
                    if preds_left[w] == 0:
                        next_round.append(w)
        released = sorted(next_round, key=key)
        if unplaced:
            cycle += 1
    return issue[sink]


def _secondary_priority(sb: Superblock, secondary: str):
    """Per-op priority vector of the secondary heuristic."""
    from repro.schedulers.priorities import (
        cp_priority,
        dhasy_priority,
        sr_priority,
    )

    factories = {
        "cp": cp_priority,
        "sr": sr_priority,
        "dhasy": dhasy_priority,
    }
    try:
        return factories[secondary](sb)
    except KeyError:
        known = ", ".join(sorted(factories))
        raise ValueError(
            f"unknown G* secondary heuristic {secondary!r}; known: {known}"
        ) from None


def gstar_tiers(
    sb: Superblock, machine: MachineConfig, secondary: str = "cp"
) -> list[int]:
    """Priority tier of every operation (0 = most critical, issues first).

    Args:
        secondary: heuristic used to schedule each branch's subgraph when
            ranking branches (the paper evaluates G* with Critical Path).
    """
    graph = sb.graph
    priority = _secondary_priority(sb, secondary)
    n = graph.num_operations
    tier = [0] * n
    remaining = set(range(n))
    remaining_branches = list(sb.branches)
    level = 0
    while remaining_branches:
        best_branch = None
        best_rank = None
        for b in remaining_branches:
            nodes = [
                v for v in graph.ancestors(b) if v in remaining
            ] + [b]
            completion = _subset_completion(sb, machine, sorted(nodes), b, priority)
            cumw = sb.cumulative_weight(b)
            rank = completion / cumw if cumw > 0 else float("inf")
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_branch = b
        assert best_branch is not None
        retired = {
            v for v in graph.ancestors(best_branch) if v in remaining
        } | {best_branch}
        for v in retired:
            tier[v] = level
        remaining -= retired
        remaining_branches = [b for b in remaining_branches if b in remaining]
        level += 1
    for v in remaining:  # operations preceding no branch, if any
        tier[v] = level
    return tier


@register("gstar")
def gstar_schedule(
    sb: Superblock,
    machine: MachineConfig,
    secondary: str = "cp",
    validate: bool = True,
) -> Schedule:
    """List schedule by (G* tier, dependence height).

    Args:
        secondary: the heuristic ranking branches during tier extraction
            ("cp" — the paper's choice — "sr", or "dhasy").
    """
    tier = gstar_tiers(sb, machine, secondary)
    height = heights(sb)
    priority = [(-tier[v], height[v]) for v in range(sb.num_operations)]
    name = "gstar" if secondary == "cp" else f"gstar[{secondary}]"
    return list_schedule(sb, machine, priority, name, validate)
