"""Critical Path scheduler: longest dependence chain first.

Biased toward the *last* exit of a superblock; strongest on wide machines
where resources rarely constrain (Section 2 of the paper).
"""

from __future__ import annotations

from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig
from repro.schedulers.base import register
from repro.schedulers.list_scheduler import list_schedule
from repro.schedulers.priorities import cp_priority
from repro.schedulers.schedule import Schedule


@register("cp")
def cp_schedule(
    sb: Superblock, machine: MachineConfig, validate: bool = True
) -> Schedule:
    """List schedule by dependence height."""
    return list_schedule(sb, machine, cp_priority(sb), "cp", validate)
