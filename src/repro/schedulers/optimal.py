"""Optimal superblock scheduling by branch and bound.

Exhaustively explores per-cycle issue sets (restricted to *maximal* sets —
with single-cycle unit occupancy there is always an optimal schedule whose
issue set cannot be extended by any ready operation) with lower-bound
pruning. Exponential in the worst case: intended for the small graphs used
in tests, for validating the "schedule meets the bound => optimal" logic,
and for the paper-example analyses (Figure 4's probability sweep).

Raises :class:`SearchBudgetExceeded` when the node budget runs out, so
callers can fall back to heuristics.
"""

from __future__ import annotations

import itertools
from collections import defaultdict

from repro import cache as result_cache
from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig
from repro.schedulers.base import register
from repro.schedulers.schedule import Schedule, make_schedule

#: Cache version of the branch-and-bound search; bump when the search
#: order, pruning, or seeding changes (any of them can change which of
#: several optimal schedules is returned).
BNB_CACHE_VERSION = 1


class SearchBudgetExceeded(RuntimeError):
    """The branch-and-bound search exceeded its node budget."""


class _Search:
    def __init__(
        self, sb: Superblock, machine: MachineConfig, budget: int
    ) -> None:
        self.sb = sb
        self.graph = sb.graph
        self.machine = machine
        self.budget = budget
        self.nodes_visited = 0
        self.n = sb.num_operations
        self.weights = sb.weights
        self.l_br = sb.branch_latency
        self.rclass = [
            machine.resource_of(sb.op(v)) for v in range(self.n)
        ]
        self.best_wct = float("inf")
        self.best_issue: dict[int, int] | None = None
        # Unscheduled predecessor counts and readiness times.
        self.preds_left = [len(self.graph.preds(v)) for v in range(self.n)]
        self.ready_at = [0] * self.n
        self.issue: dict[int, int] = {}
        # Per-branch: bitmask of predecessors by resource class for the
        # packing lower bound.
        self.branch_pred_count: dict[int, dict[str, int]] = {}
        for b in sb.branches:
            counts: dict[str, int] = defaultdict(int)
            for v in self.graph.ancestors(b):
                counts[self.rclass[v]] += 1
            self.branch_pred_count[b] = dict(counts)

    def seed(self, schedules: list[Schedule]) -> None:
        for s in schedules:
            if s.wct < self.best_wct:
                self.best_wct = s.wct
                self.best_issue = dict(s.issue)

    # -- lower bound on remaining WCT ---------------------------------
    def _lower_bound(self, cycle: int) -> float:
        """Valid WCT lower bound for the current partial schedule."""
        # Dependence-only earliest times given current placements.
        est = [0] * self.n
        for v in range(self.n):
            if v in self.issue:
                est[v] = self.issue[v]
                continue
            e = cycle
            for u, lat in self.graph.preds(v):
                cand = est[u] + lat
                if cand > e:
                    e = cand
            est[v] = e
        total = 0.0
        for b, w in self.weights.items():
            if b in self.issue:
                total += w * (self.issue[b] + self.l_br)
                continue
            lb = est[b]
            # Packing bound: unscheduled predecessors of b occupy at least
            # ceil(count / units) cycles starting at the current cycle, and
            # every producer latency is >= 1.
            for rc, _total_count in self.branch_pred_count[b].items():
                count = sum(
                    1
                    for v in self.graph.ancestors(b)
                    if v not in self.issue and self.rclass[v] == rc
                )
                if count:
                    units = self.machine.units_of(rc)
                    packed = cycle + -(-count // units)
                    if packed > lb:
                        lb = packed
            total += w * (lb + self.l_br)
        return total

    # -- search ---------------------------------------------------------
    def run(self) -> None:
        self._dfs(0)

    def _dfs(self, cycle: int) -> None:
        self.nodes_visited += 1
        if self.nodes_visited > self.budget:
            raise SearchBudgetExceeded(
                f"optimal search exceeded {self.budget} nodes on "
                f"{self.sb.name!r}"
            )
        if len(self.issue) == self.n:
            wct = sum(
                w * (self.issue[b] + self.l_br) for b, w in self.weights.items()
            )
            if wct < self.best_wct:
                self.best_wct = wct
                self.best_issue = dict(self.issue)
            return
        if self._lower_bound(cycle) >= self.best_wct:
            return

        ready_by_class: dict[str, list[int]] = defaultdict(list)
        min_future_ready = None
        for v in range(self.n):
            if v in self.issue or self.preds_left[v] > 0:
                continue
            if self.ready_at[v] <= cycle:
                ready_by_class[self.rclass[v]].append(v)
            elif min_future_ready is None or self.ready_at[v] < min_future_ready:
                min_future_ready = self.ready_at[v]

        if not ready_by_class:
            # Nothing issues this cycle: jump to the next readiness time.
            assert min_future_ready is not None
            self._dfs(min_future_ready)
            return

        # Enumerate maximal issue sets: per class, every combination of
        # min(units, #ready) ready operations.
        per_class_choices = []
        for rc, ops in sorted(ready_by_class.items()):
            take = min(self.machine.units_of(rc), len(ops))
            per_class_choices.append(
                [list(c) for c in itertools.combinations(ops, take)]
            )
        for combo in itertools.product(*per_class_choices):
            chosen = [v for group in combo for v in group]
            self._place(chosen, cycle)
            self._dfs(cycle + 1)
            self._unplace(chosen)

    def _place(self, ops: list[int], cycle: int) -> None:
        for v in ops:
            self.issue[v] = cycle
            for w, lat in self.graph.succs(v):
                self.preds_left[w] -= 1
                t = cycle + lat
                if t > self.ready_at[w]:
                    self.ready_at[w] = t

    def _unplace(self, ops: list[int]) -> None:
        for v in ops:
            del self.issue[v]
            for w, _lat in self.graph.succs(v):
                self.preds_left[w] += 1
        # ready_at entries of successors may now be stale (too large), but
        # they are recomputed lazily: stale values are only possible for
        # ops with preds_left > 0 after the undo... they are not: undoing
        # restores preds_left, and ready_at is re-derived below.
        self._rebuild_ready()

    def _rebuild_ready(self) -> None:
        for v in range(self.n):
            if v in self.issue:
                continue
            t = 0
            for u, lat in self.graph.preds(v):
                if u in self.issue:
                    cand = self.issue[u] + lat
                    if cand > t:
                        t = cand
            self.ready_at[v] = t


@register("optimal")
def optimal_schedule(
    sb: Superblock,
    machine: MachineConfig,
    budget: int = 2_000_000,
    validate: bool = True,
) -> Schedule:
    """Provably optimal schedule via branch and bound.

    Args:
        budget: maximum number of search nodes before
            :class:`SearchBudgetExceeded` is raised.
    """
    from repro.schedulers.critical_path import cp_schedule
    from repro.schedulers.dhasy import dhasy_schedule
    from repro.schedulers.successive_retirement import sr_schedule

    if not machine.fully_pipelined:
        raise ValueError(
            "the branch-and-bound optimal scheduler supports fully "
            "pipelined machines only; model blocking units by expanding "
            "operations into chains (Section 4.1) before calling it"
        )
    cache = result_cache.active()
    key = None
    if cache is not None:
        # The budget is part of the key: a search that completed within a
        # large budget must not satisfy a call with a smaller one (which
        # would have raised SearchBudgetExceeded when computed fresh).
        key = result_cache.cache_key(
            "bnb",
            BNB_CACHE_VERSION,
            [
                result_cache.superblock_digest(sb),
                result_cache.machine_digest(machine),
                budget,
            ],
        )
        hit, value = cache.get(key)
        if hit:
            issue, stats = value
            return make_schedule(
                sb, machine, "optimal", issue,
                stats=dict(stats), validate=validate,
            )
    search = _Search(sb, machine, budget)
    search.seed(
        [
            cp_schedule(sb, machine, validate=False),
            sr_schedule(sb, machine, validate=False),
            dhasy_schedule(sb, machine, validate=False),
        ]
    )
    search.run()
    assert search.best_issue is not None
    if cache is not None and key is not None:
        cache.put(
            key, (search.best_issue, {"nodes": search.nodes_visited})
        )
    return make_schedule(
        sb,
        machine,
        "optimal",
        search.best_issue,
        stats={"nodes": search.nodes_visited},
        validate=validate,
    )
