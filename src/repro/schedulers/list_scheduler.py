"""Generic cycle-driven list scheduler.

Classic operation: maintain the set of *ready* operations (all predecessors
issued and latencies elapsed); each cycle, issue ready operations in
descending priority order while functional units of their class remain;
advance to the next cycle when nothing more fits.

All static-priority heuristics (CP, SR, DHASY, G*, the Best blends) are
this scheduler with a different priority vector.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig
from repro.machine.reservation import ReservationTable
from repro.schedulers.schedule import Schedule, make_schedule


def list_schedule(
    sb: Superblock,
    machine: MachineConfig,
    priority: Sequence,
    heuristic: str = "list",
    validate: bool = True,
) -> Schedule:
    """Schedule ``sb`` on ``machine`` with a static priority vector.

    Args:
        priority: one comparable value per operation; larger issues first.
            Ties break toward the smaller operation index.
    """
    graph = sb.graph
    n = graph.num_operations
    issue: dict[int, int] = {}
    table = ReservationTable(machine)
    unscheduled_preds = [len(graph.preds(v)) for v in range(n)]
    ready_at = [0] * n  # earliest cycle once all preds are issued

    # Heap of (-priority, index) for ops whose preds are all issued;
    # an op is *ready* at a cycle when ready_at <= cycle.
    released: list[tuple] = []
    for v in range(n):
        if unscheduled_preds[v] == 0:
            heapq.heappush(released, (_key(priority[v]), v))

    pending: list[tuple] = []  # released but not yet ready ops, re-queued
    cycle = 0
    remaining = n
    while remaining:
        # Collect ops ready this cycle, best priority first.
        progress = False
        skipped: list[tuple] = []
        while released:
            key, v = heapq.heappop(released)
            if ready_at[v] > cycle:
                pending.append((key, v))
                continue
            op = graph.op(v)
            rclass = machine.resource_of(op)
            occ = machine.occupancy_of(op)
            if not table.can_place(cycle, rclass, occ):
                skipped.append((key, v))
                continue
            table.place(cycle, rclass, occ)
            issue[v] = cycle
            remaining -= 1
            progress = True
            for w, lat in graph.succs(v):
                unscheduled_preds[w] -= 1
                t = cycle + lat
                if t > ready_at[w]:
                    ready_at[w] = t
                if unscheduled_preds[w] == 0:
                    if ready_at[w] <= cycle:
                        heapq.heappush(released, (_key(priority[w]), w))
                    else:
                        pending.append((_key(priority[w]), w))
        for item in skipped:
            heapq.heappush(released, item)
        # Advance to the next cycle; ops released earlier become ready.
        cycle += 1
        if pending:
            still: list[tuple] = []
            for key, v in pending:
                if ready_at[v] <= cycle:
                    heapq.heappush(released, (key, v))
                else:
                    still.append((key, v))
            pending = still
        if not progress and not released and pending:
            # Jump straight to the next release time to avoid idle spins.
            nxt = min(ready_at[v] for _k, v in pending)
            if nxt > cycle:
                cycle = nxt
                still = []
                for key, v in pending:
                    if ready_at[v] <= cycle:
                        heapq.heappush(released, (key, v))
                    else:
                        still.append((key, v))
                pending = still
    return make_schedule(sb, machine, heuristic, issue, validate=validate)


def _key(priority) -> tuple:
    """Min-heap key for descending priority; tuples and scalars both work."""
    if isinstance(priority, tuple):
        return tuple(-p for p in priority)
    return (-priority,)
