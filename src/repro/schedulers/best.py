"""The Best envelope: lowest-WCT schedule out of 127 candidates.

Per Section 6.2 of the paper, Best keeps the cheapest schedule found by

* the six primary heuristics (SR, CP, G*, DHASY, Help, Balance), and
* 121 list-scheduler runs over a cross product of the CP, SR, and DHASY
  priority functions (see :func:`repro.schedulers.priorities.blend_grid`).

Best is a near-oracle reference, not a practical compiler heuristic; the
paper uses it to show how close Balance alone gets.
"""

from __future__ import annotations

from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig
from repro.schedulers.base import get_scheduler, register
from repro.schedulers.list_scheduler import list_schedule
from repro.schedulers.priorities import blend_grid, blend_priority
from repro.schedulers.schedule import Schedule

#: The primary heuristics Best draws from, in the paper's order.
PRIMARY_HEURISTICS = ("sr", "cp", "gstar", "dhasy", "help", "balance")


@register("best")
def best_schedule(
    sb: Superblock,
    machine: MachineConfig,
    include_primaries: bool = True,
    validate: bool = True,
) -> Schedule:
    """Best-of-127 schedule (6 primaries + 121 priority blends)."""
    candidates: list[Schedule] = []
    if include_primaries:
        for name in PRIMARY_HEURISTICS:
            candidates.append(
                get_scheduler(name)(sb, machine, validate=False)
            )
    for a, b, c in blend_grid():
        priority = blend_priority(sb, a, b, c)
        candidates.append(
            list_schedule(
                sb, machine, priority, f"blend({a:g},{b:g},{c:g})", validate=False
            )
        )
    winner = min(candidates, key=lambda s: (s.wct, s.length))
    return Schedule(
        superblock=winner.superblock,
        machine=winner.machine,
        heuristic="best",
        issue=winner.issue,
        wct=winner.wct,
        stats={"winner": winner.heuristic, "candidates": len(candidates)},
    )
