"""Scheduler registry and the top-level :func:`schedule` dispatch."""

from __future__ import annotations

from collections.abc import Callable

from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig
from repro.schedulers.schedule import Schedule

#: A scheduler: (superblock, machine, **kwargs) -> Schedule.
SchedulerFn = Callable[..., Schedule]

_REGISTRY: dict[str, SchedulerFn] = {}


def register(name: str) -> Callable[[SchedulerFn], SchedulerFn]:
    """Decorator: register a scheduler function under ``name``."""

    def deco(fn: SchedulerFn) -> SchedulerFn:
        key = name.lower()
        if key in _REGISTRY:
            raise ValueError(f"scheduler {name!r} already registered")
        _REGISTRY[key] = fn
        return fn

    return deco


def scheduler_names() -> list[str]:
    """All registered scheduler names."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_scheduler(name: str) -> SchedulerFn:
    _ensure_loaded()
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown scheduler {name!r}; known schedulers: {known}"
        ) from None


def schedule(
    sb: Superblock, machine: MachineConfig, heuristic: str = "balance", **kwargs
) -> Schedule:
    """Schedule ``sb`` on ``machine`` with the named heuristic.

    Known heuristics: ``cp``, ``sr``, ``gstar``, ``dhasy``, ``help``,
    ``balance``, ``best``, ``optimal`` (see :func:`scheduler_names`).
    """
    return get_scheduler(heuristic)(sb, machine, **kwargs)


def _ensure_loaded() -> None:
    """Import all scheduler modules so their registrations run."""
    from repro import core  # noqa: F401  (registers balance/help variants)
    from repro.schedulers import (  # noqa: F401
        adaptive,
        best,
        critical_path,
        dhasy,
        gstar,
        ilp,
        optimal,
        successive_retirement,
    )
