"""Static priority functions for list scheduling.

Each function returns one priority value per operation; the generic list
scheduler picks ready operations by *descending* priority (ties broken by
ascending operation index, i.e. program order). Priorities may be numbers
or tuples.

* :func:`cp_priority` — dependence height: start of the longest chain
  first (the classic Critical Path heuristic).
* :func:`sr_priority` — Successive Retirement: earlier home block first,
  Critical Path within a block.
* :func:`dhasy_priority` — Dependence Height and Speculative Yield:
  exit-probability-weighted slack sum,
  ``sum_b w_b * (CP + 1 - LateDC_b[v])``.
* :func:`blend_priority` — normalized convex blend of the three, used by
  the Best-of-127 envelope.
"""

from __future__ import annotations

from repro.ir.superblock import Superblock


def heights(sb: Superblock) -> list[int]:
    """Dependence height of every op: longest latency path to any sink."""
    graph = sb.graph
    n = graph.num_operations
    h = [0] * n
    for v in range(n - 1, -1, -1):
        best = 0
        for w, lat in graph.succs(v):
            cand = h[w] + lat
            if cand > best:
                best = cand
        h[v] = best
    return h


def cp_priority(sb: Superblock) -> list[int]:
    """Critical Path: higher dependence height first."""
    return heights(sb)


def sr_priority(sb: Superblock) -> list[tuple[int, int]]:
    """Successive Retirement: first block first, Critical Path within."""
    h = heights(sb)
    blocks = sb.home_blocks
    return [(-blocks[v], h[v]) for v in range(sb.num_operations)]


def dhasy_priority(sb: Superblock) -> list[float]:
    """DHASY: sum over reachable branches of ``w_b * (CP + 1 - LateDC_b[v])``.

    ``LateDC_b[v] = EarlyDC[b] - dist(v, b)``; operations on the critical
    path of a heavy branch get the largest priority.
    """
    graph = sb.graph
    early = graph.early_dc()
    cp = max(early) if early else 0
    n = graph.num_operations
    prio = [0.0] * n
    for b in sb.branches:
        w = sb.weights[b]
        dist = graph.dist_to(b)
        for v in range(n):
            if dist[v] >= 0:
                late = early[b] - dist[v]
                prio[v] += w * (cp + 1 - late)
    return prio


def _normalize(values: list[float]) -> list[float]:
    top = max(values, default=0.0)
    if top <= 0:
        return [0.0] * len(values)
    return [v / top for v in values]


def blend_priority(
    sb: Superblock, a_cp: float, b_sr: float, c_dhasy: float
) -> list[float]:
    """Convex blend of normalized CP, SR, and DHASY priorities.

    The SR component is scalarized as ``(#blocks - home_block)`` before
    normalization so that earlier blocks score higher.
    """
    n = sb.num_operations
    cp_n = _normalize([float(p) for p in cp_priority(sb)])
    nblocks = sb.num_branches
    sr_scalar = [float(nblocks - sb.home_blocks[v]) for v in range(n)]
    sr_n = _normalize(sr_scalar)
    dh_n = _normalize(dhasy_priority(sb))
    return [
        a_cp * cp_n[v] + b_sr * sr_n[v] + c_dhasy * dh_n[v] for v in range(n)
    ]


def blend_grid(steps: int = 10) -> list[tuple[float, float, float]]:
    """The Best heuristic's 121-point blend grid.

    The paper invokes a list scheduler for a "three dimensional cross
    product of the CP, SR, and DHASY priority functions" 121 times; the
    exact grid is unspecified, so we use the 11x11 grid over the CP and SR
    weights with the DHASY weight fixed at 1 (blends are scale invariant
    in the remaining ratio) — 121 combinations.
    """
    return [
        (a / steps, b / steps, 1.0)
        for a in range(steps + 1)
        for b in range(steps + 1)
    ]
