"""DHASY scheduler: Dependence Height and Speculative Yield.

Extends Critical Path to superblocks by weighting each branch's critical
path with its exit probability: the priority of an operation is
``sum_b w_b * (CP + 1 - LateDC_b[v])`` over its successor branches
(Bringmann's formulation, refs [1, 13] of the paper). Works well across
machine widths but can delay infrequent side exits when resources are
constraining (Figure 1d).
"""

from __future__ import annotations

from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig
from repro.schedulers.base import register
from repro.schedulers.list_scheduler import list_schedule
from repro.schedulers.priorities import dhasy_priority
from repro.schedulers.schedule import Schedule


@register("dhasy")
def dhasy_schedule(
    sb: Superblock, machine: MachineConfig, validate: bool = True
) -> Schedule:
    """List schedule by probability-weighted dependence slack."""
    return list_schedule(sb, machine, dhasy_priority(sb), "dhasy", validate)
