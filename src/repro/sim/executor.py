"""Dynamic execution of scheduled superblocks.

The paper's objective — weighted completion time — is the *expectation* of
the dynamic cycle count over the exit distribution. This simulator makes
that concrete: it executes a schedule cycle by cycle, samples the taken
exit from the profile, and counts the cycles until control leaves — so

* Monte Carlo means converge to the schedule's WCT (a strong end-to-end
  check of the whole pipeline), and
* speculation costs become measurable: operations issued before the taken
  exit that were *not* needed by it executed in vain (the speculation
  waste the paper's machines absorb in hardware).

Branch mispredictions, cache misses and page faults are factored out,
exactly as in Section 6 of the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig
from repro.schedulers.schedule import Schedule


@dataclass(frozen=True)
class RunResult:
    """One dynamic execution of a scheduled superblock."""

    exit_branch: int
    cycles: int
    ops_issued: int
    ops_wasted: int

    @property
    def waste_fraction(self) -> float:
        return self.ops_wasted / self.ops_issued if self.ops_issued else 0.0


@dataclass
class SimStats:
    """Aggregate over many runs."""

    runs: int
    mean_cycles: float
    expected_wct: float
    exit_counts: dict[int, int] = field(default_factory=dict)
    mean_waste_fraction: float = 0.0

    @property
    def relative_error(self) -> float:
        """|simulated mean - WCT| / WCT."""
        if self.expected_wct == 0:
            return 0.0
        return abs(self.mean_cycles - self.expected_wct) / self.expected_wct


def run_once(
    sb: Superblock,
    machine: MachineConfig,
    schedule: Schedule,
    rng: random.Random,
) -> RunResult:
    """Execute the schedule once with a sampled exit.

    The earliest branch whose sampled outcome is "taken" ends execution at
    its completion (issue + branch latency); every operation issued
    strictly before that cycle has entered the pipeline, and those that
    are not ancestors of the taken exit were speculated in vain.
    """
    taken = _sample_exit(sb, rng)
    leave_at = schedule.issue[taken] + sb.branch_latency
    needed = set(sb.graph.ancestors(taken)) | {taken}
    issued = [v for v, t in schedule.issue.items() if t < leave_at]
    wasted = [v for v in issued if v not in needed]
    return RunResult(
        exit_branch=taken,
        cycles=leave_at,
        ops_issued=len(issued),
        ops_wasted=len(wasted),
    )


def _sample_exit(sb: Superblock, rng: random.Random) -> int:
    """Sample the taken exit from the profile's exit distribution."""
    roll = rng.random()
    acc = 0.0
    for b in sb.branches:
        acc += sb.weights[b]
        if roll < acc:
            return b
    return sb.last_branch  # numerical remainder


#: Runs per RNG substream. Chunking is a property of the *workload*, not
#: of the worker count: chunk ``c`` always draws from
#: ``random.Random(f"sim/{name}/{seed}/{c}")``, so the aggregate is
#: bit-identical for any ``jobs`` value and reproducible across reruns.
CHUNK_RUNS = 512

#: Worker-process state installed by :func:`_sim_init` (fork-safe: plain
#: module globals, set before any chunk executes).
_WORK: tuple[Superblock, MachineConfig, Schedule, int] | None = None


def _chunk_stats(
    sb: Superblock,
    machine: MachineConfig,
    schedule: Schedule,
    seed: int,
    chunk: int,
    runs: int,
) -> tuple[int, float, dict[int, int]]:
    """Statistics of one substream: (total cycles, total waste, exits)."""
    rng = random.Random(f"sim/{sb.name}/{seed}/{chunk}")
    total_cycles = 0
    total_waste = 0.0
    exit_counts: dict[int, int] = {}
    for _ in range(runs):
        result = run_once(sb, machine, schedule, rng)
        total_cycles += result.cycles
        total_waste += result.waste_fraction
        exit_counts[result.exit_branch] = (
            exit_counts.get(result.exit_branch, 0) + 1
        )
    return total_cycles, total_waste, exit_counts


def _sim_init(
    sb: Superblock, machine: MachineConfig, schedule: Schedule, seed: int
) -> None:
    global _WORK
    _WORK = (sb, machine, schedule, seed)


def _sim_chunk(item: tuple[int, int]) -> tuple[int, float, dict[int, int]]:
    assert _WORK is not None
    sb, machine, schedule, seed = _WORK
    chunk, runs = item
    return _chunk_stats(sb, machine, schedule, seed, chunk, runs)


def simulate(
    sb: Superblock,
    machine: MachineConfig,
    schedule: Schedule,
    runs: int = 1000,
    seed: int = 0,
    jobs: int = 1,
) -> SimStats:
    """Monte Carlo execution; the mean cycle count estimates the WCT.

    Args:
        jobs: worker processes for the run fan-out (``1`` = serial,
            ``0`` = all CPUs). Every chunk of :data:`CHUNK_RUNS` runs uses
            its own seeded substream, so the statistics are identical for
            any ``jobs`` value.
    """
    if runs <= 0:
        raise ValueError("need at least one run")
    chunks = [
        (c, min(CHUNK_RUNS, runs - c * CHUNK_RUNS))
        for c in range(-(-runs // CHUNK_RUNS))
    ]
    if jobs == 1 or len(chunks) <= 1:
        parts = [
            _chunk_stats(sb, machine, schedule, seed, c, n) for c, n in chunks
        ]
    else:
        from repro.perf.runner import ParallelRunner

        runner = ParallelRunner(
            jobs, initializer=_sim_init, initargs=(sb, machine, schedule, seed)
        )
        parts = runner.map(_sim_chunk, chunks)
    total_cycles = 0
    total_waste = 0.0
    exit_counts: dict[int, int] = {b: 0 for b in sb.branches}
    for cycles, waste, exits in parts:
        total_cycles += cycles
        total_waste += waste
        for b, count in exits.items():
            exit_counts[b] += count
    return SimStats(
        runs=runs,
        mean_cycles=total_cycles / runs,
        expected_wct=schedule.wct,
        exit_counts=exit_counts,
        mean_waste_fraction=total_waste / runs,
    )


def exact_sim_moments(sb: Superblock, schedule: Schedule) -> tuple[float, float]:
    """Exact ``(mean, variance)`` of the dynamic cycle count.

    The cycle count of one run is a deterministic function of the sampled
    exit (``issue[b] + l_br``), so both moments are closed-form over the
    exit distribution. The mean *is* the WCT; the variance feeds the
    confidence interval of the sim-vs-static verification oracle.
    """
    mean = 0.0
    second = 0.0
    for b, w in sb.weights.items():
        cycles = schedule.issue[b] + sb.branch_latency
        mean += w * cycles
        second += w * cycles * cycles
    return mean, max(0.0, second - mean * mean)


def expected_speculation_waste(sb: Superblock, schedule: Schedule) -> float:
    """Closed-form expected fraction of issued ops that were speculated in
    vain (no sampling): sum over exits of w_b * waste(b)."""
    total = 0.0
    for b, w in sb.weights.items():
        leave_at = schedule.issue[b] + sb.branch_latency
        needed = set(sb.graph.ancestors(b)) | {b}
        issued = [v for v, t in schedule.issue.items() if t < leave_at]
        if issued:
            wasted = sum(1 for v in issued if v not in needed)
            total += w * (wasted / len(issued))
    return total
