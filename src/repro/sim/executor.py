"""Dynamic execution of scheduled superblocks.

The paper's objective — weighted completion time — is the *expectation* of
the dynamic cycle count over the exit distribution. This simulator makes
that concrete: it executes a schedule cycle by cycle, samples the taken
exit from the profile, and counts the cycles until control leaves — so

* Monte Carlo means converge to the schedule's WCT (a strong end-to-end
  check of the whole pipeline), and
* speculation costs become measurable: operations issued before the taken
  exit that were *not* needed by it executed in vain (the speculation
  waste the paper's machines absorb in hardware).

Branch mispredictions, cache misses and page faults are factored out,
exactly as in Section 6 of the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig
from repro.schedulers.schedule import Schedule


@dataclass(frozen=True)
class RunResult:
    """One dynamic execution of a scheduled superblock."""

    exit_branch: int
    cycles: int
    ops_issued: int
    ops_wasted: int

    @property
    def waste_fraction(self) -> float:
        return self.ops_wasted / self.ops_issued if self.ops_issued else 0.0


@dataclass
class SimStats:
    """Aggregate over many runs."""

    runs: int
    mean_cycles: float
    expected_wct: float
    exit_counts: dict[int, int] = field(default_factory=dict)
    mean_waste_fraction: float = 0.0

    @property
    def relative_error(self) -> float:
        """|simulated mean - WCT| / WCT."""
        if self.expected_wct == 0:
            return 0.0
        return abs(self.mean_cycles - self.expected_wct) / self.expected_wct


def run_once(
    sb: Superblock,
    machine: MachineConfig,
    schedule: Schedule,
    rng: random.Random,
) -> RunResult:
    """Execute the schedule once with a sampled exit.

    The earliest branch whose sampled outcome is "taken" ends execution at
    its completion (issue + branch latency); every operation issued
    strictly before that cycle has entered the pipeline, and those that
    are not ancestors of the taken exit were speculated in vain.
    """
    taken = _sample_exit(sb, rng)
    leave_at = schedule.issue[taken] + sb.branch_latency
    needed = set(sb.graph.ancestors(taken)) | {taken}
    issued = [v for v, t in schedule.issue.items() if t < leave_at]
    wasted = [v for v in issued if v not in needed]
    return RunResult(
        exit_branch=taken,
        cycles=leave_at,
        ops_issued=len(issued),
        ops_wasted=len(wasted),
    )


def _sample_exit(sb: Superblock, rng: random.Random) -> int:
    """Sample the taken exit from the profile's exit distribution."""
    roll = rng.random()
    acc = 0.0
    for b in sb.branches:
        acc += sb.weights[b]
        if roll < acc:
            return b
    return sb.last_branch  # numerical remainder


def simulate(
    sb: Superblock,
    machine: MachineConfig,
    schedule: Schedule,
    runs: int = 1000,
    seed: int = 0,
) -> SimStats:
    """Monte Carlo execution; the mean cycle count estimates the WCT."""
    if runs <= 0:
        raise ValueError("need at least one run")
    rng = random.Random(f"sim/{sb.name}/{seed}")
    total_cycles = 0
    total_waste = 0.0
    exit_counts: dict[int, int] = {b: 0 for b in sb.branches}
    for _ in range(runs):
        result = run_once(sb, machine, schedule, rng)
        total_cycles += result.cycles
        total_waste += result.waste_fraction
        exit_counts[result.exit_branch] += 1
    return SimStats(
        runs=runs,
        mean_cycles=total_cycles / runs,
        expected_wct=schedule.wct,
        exit_counts=exit_counts,
        mean_waste_fraction=total_waste / runs,
    )


def expected_speculation_waste(sb: Superblock, schedule: Schedule) -> float:
    """Closed-form expected fraction of issued ops that were speculated in
    vain (no sampling): sum over exits of w_b * waste(b)."""
    total = 0.0
    for b, w in sb.weights.items():
        leave_at = schedule.issue[b] + sb.branch_latency
        needed = set(sb.graph.ancestors(b)) | {b}
        issued = [v for v, t in schedule.issue.items() if t < leave_at]
        if issued:
            wasted = sum(1 for v in issued if v not in needed)
            total += w * (wasted / len(issued))
    return total
