"""Dynamic execution simulation of scheduled superblocks."""

from repro.sim.executor import (
    RunResult,
    SimStats,
    exact_sim_moments,
    expected_speculation_waste,
    run_once,
    simulate,
)

__all__ = [
    "RunResult",
    "SimStats",
    "exact_sim_moments",
    "expected_speculation_waste",
    "run_once",
    "simulate",
]
