"""Dynamic execution simulation of scheduled superblocks."""

from repro.sim.executor import (
    RunResult,
    SimStats,
    expected_speculation_waste,
    run_once,
    simulate,
)

__all__ = [
    "RunResult",
    "SimStats",
    "expected_speculation_waste",
    "run_once",
    "simulate",
]
