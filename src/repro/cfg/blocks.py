"""Control-flow graphs over register instructions.

The paper's superblocks come out of a compiler mid-end (IMPACT -> Elcor ->
LEGO): basic blocks of register instructions, edge profiles, trace
selection, and superblock formation with tail duplication. This package
implements that substrate so the scheduler inputs can be derived the same
way instead of being synthesized directly.

An :class:`Instr` is a three-address register instruction
(``dest = opcode(srcs...)``); loads and stores additionally reference an
abstract memory region, which drives the conservative memory-ordering
edges during dependence construction. A :class:`BasicBlock` is a straight
sequence of instructions; a :class:`CFG` adds profile-weighted edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.operation import Opcode, opcode


@dataclass(frozen=True)
class Instr:
    """A register instruction: ``dest = opcode(srcs)``.

    Attributes:
        op: the opcode (from the shared catalog; never a branch — control
            flow lives on the block, not in the instruction list).
        dest: defined virtual register, or ``None`` (stores define none).
        srcs: consumed virtual registers.
        region: abstract memory region for loads/stores (aliasing model:
            same region => ordered; different regions => independent).
    """

    op: Opcode
    dest: str | None = None
    srcs: tuple[str, ...] = ()
    region: str | None = None

    def __post_init__(self) -> None:
        if self.op.op_class.value == "branch":
            raise ValueError("branches are block terminators, not instructions")
        if self.op.name == "store" and self.dest is not None:
            raise ValueError("stores define no register")
        if self.op.name in ("load", "store") and self.region is None:
            raise ValueError(f"{self.op.name} needs a memory region")

    @property
    def is_load(self) -> bool:
        return self.op.name == "load"

    @property
    def is_store(self) -> bool:
        return self.op.name == "store"

    def __str__(self) -> str:
        dst = f"{self.dest} = " if self.dest else ""
        mem = f" @{self.region}" if self.region else ""
        return f"{dst}{self.op.name}({', '.join(self.srcs)}){mem}"


def instr(op_name: str, dest: str | None = None, srcs=(), region=None) -> Instr:
    """Convenience constructor resolving the opcode by name."""
    return Instr(op=opcode(op_name), dest=dest, srcs=tuple(srcs), region=region)


@dataclass
class BasicBlock:
    """A basic block: label, instructions, and profile count."""

    label: str
    instrs: list[Instr] = field(default_factory=list)
    exec_count: float = 0.0

    @property
    def defs(self) -> set[str]:
        return {i.dest for i in self.instrs if i.dest}

    @property
    def upward_exposed_uses(self) -> set[str]:
        """Registers read before any local definition (approx. liveness)."""
        seen_defs: set[str] = set()
        uses: set[str] = set()
        for i in self.instrs:
            uses.update(s for s in i.srcs if s not in seen_defs)
            if i.dest:
                seen_defs.add(i.dest)
        return uses

    def __len__(self) -> int:
        return len(self.instrs)


@dataclass(frozen=True)
class Edge:
    """A profiled CFG edge: ``src`` branches/falls through to ``dst``."""

    src: str
    dst: str
    count: float

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"edge {self.src}->{self.dst} has negative count")


class CFG:
    """A control-flow graph with profile-weighted edges."""

    def __init__(self, name: str = "cfg") -> None:
        self.name = name
        self._blocks: dict[str, BasicBlock] = {}
        self._succs: dict[str, list[Edge]] = {}
        self._preds: dict[str, list[Edge]] = {}
        self.entry: str | None = None

    # -- construction ---------------------------------------------------
    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.label in self._blocks:
            raise ValueError(f"duplicate block label {block.label!r}")
        self._blocks[block.label] = block
        self._succs[block.label] = []
        self._preds[block.label] = []
        if self.entry is None:
            self.entry = block.label
        return block

    def add_edge(self, src: str, dst: str, count: float) -> Edge:
        for label in (src, dst):
            if label not in self._blocks:
                raise KeyError(f"unknown block {label!r}")
        edge = Edge(src=src, dst=dst, count=count)
        self._succs[src].append(edge)
        self._preds[dst].append(edge)
        return edge

    # -- queries ----------------------------------------------------------
    @property
    def blocks(self) -> list[BasicBlock]:
        return list(self._blocks.values())

    @property
    def labels(self) -> list[str]:
        return list(self._blocks)

    def block(self, label: str) -> BasicBlock:
        return self._blocks[label]

    def succs(self, label: str) -> list[Edge]:
        return self._succs[label]

    def preds(self, label: str) -> list[Edge]:
        return self._preds[label]

    def edge_probability(self, edge: Edge) -> float:
        """Probability of taking ``edge`` when its source executes."""
        total = sum(e.count for e in self._succs[edge.src])
        return edge.count / total if total > 0 else 0.0

    def hottest_successor(self, label: str) -> Edge | None:
        edges = self._succs[label]
        if not edges:
            return None
        return max(edges, key=lambda e: (e.count, e.dst))

    def hottest_predecessor(self, label: str) -> Edge | None:
        edges = self._preds[label]
        if not edges:
            return None
        return max(edges, key=lambda e: (e.count, e.src))

    def validate(self) -> None:
        """Profile-consistency sanity checks."""
        if self.entry is None:
            raise ValueError("CFG has no blocks")
        for label, block in self._blocks.items():
            out = sum(e.count for e in self._succs[label])
            if self._succs[label] and out > block.exec_count * 1.001 + 1e-6:
                raise ValueError(
                    f"block {label!r}: outgoing edge counts {out} exceed "
                    f"execution count {block.exec_count}"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        edges = sum(len(v) for v in self._succs.values())
        return f"CFG({self.name!r}, blocks={len(self._blocks)}, edges={edges})"
