"""Seeded synthetic CFG generation.

Produces structured, profile-annotated control-flow graphs of register
instructions — the input the formation pass turns into superblocks. A
function is a sequence of *segments*:

* a straight basic block;
* an if-diamond (condition block, biased then/else arms, join);
* a loop (header executed ``iters`` times per entry, with a back edge and
  one exit).

Profile counts are derived analytically from the segment structure, so
``CFG.validate`` always passes and trace selection sees realistic biased
branches and hot loop bodies.
"""

from __future__ import annotations

import itertools
import random

from repro.cfg.blocks import CFG, BasicBlock, Instr, instr

#: Memory regions used by generated loads/stores.
_REGIONS = ("heap", "stack", "glob")

_ALU = ["add", "add", "sub", "and", "or", "shl", "cmp", "mov", "mul"]


class _RegPool:
    """Virtual register namespace with recency-biased selection."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._counter = itertools.count()
        self.live: list[str] = [f"a{i}" for i in range(4)]  # arguments

    def fresh(self) -> str:
        reg = f"v{next(self._counter)}"
        self.live.append(reg)
        if len(self.live) > 24:
            self.live.pop(0)
        return reg

    def pick(self) -> str:
        # Prefer recent values.
        idx = min(
            len(self.live) - 1,
            int(self._rng.expovariate(0.35)),
        )
        return self.live[-1 - idx]


def _gen_instrs(rng: random.Random, pool: _RegPool, count: int) -> list[Instr]:
    out: list[Instr] = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.22:
            out.append(
                instr("load", dest=pool.fresh(), srcs=[pool.pick()],
                      region=rng.choice(_REGIONS))
            )
        elif roll < 0.30:
            out.append(
                instr("store", srcs=[pool.pick(), pool.pick()],
                      region=rng.choice(_REGIONS))
            )
        else:
            op = rng.choice(_ALU)
            nsrcs = 1 if op == "mov" else 2
            out.append(
                instr(op, dest=pool.fresh(),
                      srcs=[pool.pick() for _ in range(nsrcs)])
            )
    return out


def generate_cfg(
    name: str,
    seed: int = 0,
    segments: int = 5,
    mean_block_len: float = 5.0,
    entry_count: float = 1000.0,
) -> CFG:
    """Generate one structured, profiled CFG.

    Args:
        segments: number of straight/diamond/loop segments chained after
            the entry block.
    """
    rng = random.Random(f"cfg/{name}/{seed}")
    pool = _RegPool(rng)
    cfg = CFG(name=name)
    counter = itertools.count()

    def new_block(count: float, length: int | None = None) -> BasicBlock:
        n = length if length is not None else max(
            1, int(rng.expovariate(1.0 / mean_block_len)) + 1
        )
        block = BasicBlock(
            label=f"b{next(counter)}",
            instrs=_gen_instrs(rng, pool, n),
            exec_count=round(count, 6),
        )
        return cfg.add_block(block)

    current = new_block(entry_count)
    count = entry_count
    for _ in range(segments):
        kind = rng.choices(
            ("straight", "diamond", "loop"), weights=(0.45, 0.35, 0.2)
        )[0]
        if kind == "straight":
            nxt = new_block(count)
            cfg.add_edge(current.label, nxt.label, count)
            current = nxt
        elif kind == "diamond":
            p = rng.choice((0.85, 0.7, 0.6, 0.95))
            then_blk = new_block(count * p)
            else_blk = new_block(count * (1 - p))
            join = new_block(count)
            cfg.add_edge(current.label, then_blk.label, count * p)
            cfg.add_edge(current.label, else_blk.label, count * (1 - p))
            cfg.add_edge(then_blk.label, join.label, count * p)
            cfg.add_edge(else_blk.label, join.label, count * (1 - p))
            current = join
        else:  # loop
            iters = rng.choice((2, 4, 8, 16))
            body = new_block(count * iters)
            after = new_block(count)
            cfg.add_edge(current.label, body.label, count)
            cfg.add_edge(body.label, body.label, count * (iters - 1))
            cfg.add_edge(body.label, after.label, count)
            current = after
    cfg.validate()
    return cfg
