"""CFG substrate: basic blocks, traces, and superblock formation.

This package plays the role of the paper's LEGO formation stage: profiled
control-flow graphs of register instructions are turned into the
superblocks the bounds and schedulers consume.

Pipeline::

    cfg = generate_cfg("f", seed=1)          # or build a CFG by hand
    traces = select_traces(cfg)              # mutual-most-likely selection
    superblocks = form_superblocks(cfg)      # + tail duplication
"""

from repro.cfg.blocks import CFG, BasicBlock, Edge, Instr, instr
from repro.cfg.formation import form_superblock, form_superblocks
from repro.cfg.gencfg import generate_cfg
from repro.cfg.trace import Trace, select_traces

__all__ = [
    "CFG",
    "BasicBlock",
    "Edge",
    "Instr",
    "Trace",
    "form_superblock",
    "form_superblocks",
    "generate_cfg",
    "instr",
    "select_traces",
]
