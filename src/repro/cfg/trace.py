"""Profile-driven trace selection (Chang & Hwu's mutual-most-likely rule).

A *trace* is a sequence of basic blocks that tend to execute in order.
Selection (the classic superblock-formation front half):

1. pick the hottest block not yet in any trace as the seed;
2. grow forward: follow the most likely successor edge if (a) its branch
   probability is at least ``min_prob``, (b) the target is not in a trace
   already, (c) the target's most likely predecessor is the current block
   (the *mutual most likely* condition), and (d) the edge is not a loop
   back edge (the target does not precede the seed in this trace);
3. repeat until every block is in some trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.blocks import CFG


@dataclass(frozen=True)
class Trace:
    """A selected trace: ordered block labels."""

    labels: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.labels)

    def __iter__(self):
        return iter(self.labels)


def select_traces(cfg: CFG, min_prob: float = 0.5) -> list[Trace]:
    """Partition the CFG's blocks into traces.

    Args:
        min_prob: minimum branch probability for the trace to keep growing
            through an edge (the classic threshold is 0.5: grow only along
            the likely direction).
    """
    if not 0.0 < min_prob <= 1.0:
        raise ValueError("min_prob must be in (0, 1]")
    taken: set[str] = set()
    traces: list[Trace] = []
    remaining = sorted(
        cfg.blocks, key=lambda b: (-b.exec_count, b.label)
    )
    for seed in remaining:
        if seed.label in taken:
            continue
        labels = [seed.label]
        taken.add(seed.label)
        current = seed.label
        while True:
            edge = cfg.hottest_successor(current)
            if edge is None:
                break
            if cfg.edge_probability(edge) < min_prob:
                break
            if edge.dst in taken or edge.dst in labels:
                break  # already consumed, or a loop back edge
            back = cfg.hottest_predecessor(edge.dst)
            if back is None or back.src != current:
                break  # not mutually most likely
            labels.append(edge.dst)
            taken.add(edge.dst)
            current = edge.dst
        traces.append(Trace(labels=tuple(labels)))
    return traces
