"""Superblock formation: traces -> schedulable superblocks.

The back half of classic superblock formation (Hwu et al.): a selected
trace becomes a single-entry multi-exit region; side entrances into the
middle of the trace are removed by *tail duplication*, which this module
models by also emitting the duplicated suffixes as their own (cooler)
superblocks.

Dependence construction from the register instructions:

* **data edges** — def-use chains over virtual registers (the producing
  instruction's latency);
* **memory edges** — conservative ordering within an abstract region:
  store->load, store->store, and load->store;
* **control/exit edges** — each block's side exit consumes the block's
  final definition (the "condition"), plus every definition that is live
  into the off-trace successor (one-level upward-exposed-use liveness);
* **speculation constraints** — stores never move above a preceding side
  exit (an edge from the exit to the store); loads and ALU operations are
  freely speculated upward, as in general-speculation superblock models;
* dangling values are treated as live-out at the final exit, so every
  operation reaches some exit.

Exit probabilities come from the edge profile: the probability of reaching
block *i* of the trace decays with each on-trace branch probability, and
block *i*'s exit takes the difference.
"""

from __future__ import annotations

from repro.cfg.blocks import CFG
from repro.cfg.trace import Trace, select_traces
from repro.ir.builder import SuperblockBuilder
from repro.ir.superblock import Superblock

#: Traces whose entry executes fewer times than this produce no superblock.
MIN_EXEC_COUNT = 1e-9


def form_superblock(
    cfg: CFG, trace: Trace, name: str, exec_count: float | None = None
) -> Superblock | None:
    """Build one superblock from a trace.

    Args:
        exec_count: entry count override (used for duplicated tails);
            defaults to the profile count of the trace's first block.

    Returns ``None`` for never-executed traces.
    """
    first = cfg.block(trace.labels[0])
    entry_count = first.exec_count if exec_count is None else exec_count
    if entry_count <= MIN_EXEC_COUNT:
        return None

    reach = _reach_probabilities(cfg, trace)
    builder = SuperblockBuilder(
        name, exec_freq=entry_count, source=f"cfg:{cfg.name}"
    )

    last_def: dict[str, int] = {}       # register -> defining op index
    last_store: dict[str, int] = {}     # region -> last store op index
    loads_since_store: dict[str, list[int]] = {}  # region -> loads after it
    last_exit_idx: int | None = None
    consumed: set[int] = set()          # ops with at least one consumer

    def add_instr(ins) -> int:
        preds: dict[int, int] = {}
        for reg in ins.srcs:
            src = last_def.get(reg)
            if src is not None:
                preds[src] = builder._graph.op(src).latency  # noqa: SLF001
        if ins.is_load or ins.is_store:
            region = ins.region
            store = last_store.get(region)
            if store is not None:
                preds[store] = max(preds.get(store, 0), 1)
            if ins.is_store:
                for load in loads_since_store.get(region, []):
                    preds[load] = max(preds.get(load, 0), 1)
                # A store is not speculated above the preceding side exit.
                if last_exit_idx is not None:
                    preds[last_exit_idx] = max(preds.get(last_exit_idx, 0), 1)
        idx = builder.next_index
        builder.op(ins.op, preds=preds or None)
        consumed.update(preds)
        if ins.dest:
            last_def[ins.dest] = idx
        if ins.is_store:
            last_store[ins.region] = idx
            loads_since_store[ins.region] = []
        elif ins.is_load:
            loads_since_store.setdefault(ins.region, []).append(idx)
        return idx

    labels = trace.labels
    for pos, label in enumerate(labels):
        block = cfg.block(label)
        block_defs: list[int] = []
        for ins in block.instrs:
            idx = add_instr(ins)
            if ins.dest:
                block_defs.append(idx)
        is_last = pos == len(labels) - 1
        if is_last:
            exit_preds = _final_exit_preds(builder, consumed)
            p_exit = round(reach[pos], 9)
            return builder.last_exit(prob=p_exit, preds=exit_preds)
        if len(cfg.succs(label)) == 1:
            # Unconditional fall-through: the blocks merge, no exit branch.
            continue
        exit_preds = set()
        if block_defs:
            exit_preds.add(block_defs[-1])  # the branch condition
        # Live-out values at this exit: definitions the off-trace
        # successors read before writing.
        live = _off_trace_uses(cfg, labels, pos)
        for reg in live:
            src = last_def.get(reg)
            if src is not None:
                exit_preds.add(src)
        p_exit = round(reach[pos] - reach[pos + 1], 9)
        idx = builder.next_index
        builder.exit(max(0.0, p_exit), preds=sorted(exit_preds) or None)
        consumed.update(exit_preds)
        last_exit_idx = idx
    raise AssertionError("unreachable: the final block returns")


def _reach_probabilities(cfg: CFG, trace: Trace) -> list[float]:
    """Probability of reaching each trace block from the trace entry."""
    reach = [1.0]
    for src, dst in zip(trace.labels, trace.labels[1:]):
        edge = next(e for e in cfg.succs(src) if e.dst == dst)
        reach.append(reach[-1] * cfg.edge_probability(edge))
    return reach


def _off_trace_uses(cfg: CFG, labels: tuple[str, ...], pos: int) -> set[str]:
    """Upward-exposed uses of the off-trace successors of block ``pos``."""
    on_trace_next = labels[pos + 1]
    uses: set[str] = set()
    for edge in cfg.succs(labels[pos]):
        if edge.dst != on_trace_next:
            uses |= cfg.block(edge.dst).upward_exposed_uses
    return uses


def _final_exit_preds(builder: SuperblockBuilder, consumed: set[int]) -> list[int]:
    """Everything not consumed by anyone is live-out at the final exit."""
    graph = builder._graph  # noqa: SLF001 - formation is an IR-layer friend
    return [
        v for v in range(graph.num_operations) if not graph.succs(v)
    ]


def form_superblocks(
    cfg: CFG,
    min_prob: float = 0.5,
    tail_duplicate: bool = True,
) -> list[Superblock]:
    """Full formation pass: select traces, form superblocks, duplicate tails.

    Tail duplication: when control enters the middle of a trace from
    off-trace, the original compiler duplicates the remainder of the trace
    so the superblock keeps its single entry. We emit each such duplicated
    suffix as an additional superblock whose execution count is the
    side-entrance inflow.
    """
    cfg.validate()
    superblocks: list[Superblock] = []
    for t_idx, trace in enumerate(select_traces(cfg, min_prob)):
        sb = form_superblock(cfg, trace, f"{cfg.name}.t{t_idx}")
        if sb is not None:
            superblocks.append(sb)
        if not tail_duplicate:
            continue
        trace_set = set(trace.labels)
        for pos in range(1, len(trace.labels)):
            label = trace.labels[pos]
            inflow = sum(
                e.count
                for e in cfg.preds(label)
                if e.src != trace.labels[pos - 1] and e.src not in trace_set
            )
            if inflow <= MIN_EXEC_COUNT:
                continue
            suffix = Trace(labels=trace.labels[pos:])
            dup = form_superblock(
                cfg,
                suffix,
                f"{cfg.name}.t{t_idx}.dup{pos}",
                exec_count=inflow,
            )
            if dup is not None:
                superblocks.append(dup)
    return superblocks
