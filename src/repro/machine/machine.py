"""VLIW machine configurations.

The paper evaluates six fully pipelined configurations (Section 6):

* **GP1, GP2, GP4** — 1, 2, and 4 *general purpose* units; every operation
  (including branches) may issue on any unit.
* **FS4, FS6, FS8** — fully *specialized* units with the mixes
  ``(#int, #mem, #float, #branch)`` of ``(1,1,1,1)``, ``(2,2,1,1)`` and
  ``(3,2,2,1)``.

Latencies live on the opcodes (see :mod:`repro.ir.operation`): unit latency
everywhere except ``load`` (2), ``fmul`` (3) and ``fdiv`` (9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.operation import OpClass, Operation
from repro.machine.resources import (
    GENERAL_PURPOSE,
    ResourceVector,
    default_class_map,
)


@dataclass(frozen=True)
class MachineConfig:
    """A machine: unit counts per resource class and an op-class mapping.

    Attributes:
        name: configuration identifier (``"GP2"``, ``"FS6"``, ...).
        units: number of functional units per resource class name.
        class_map: which resource class each :class:`OpClass` occupies.
        occupancy: initiation interval per *opcode name* for units that
            are not fully pipelined — an opcode with occupancy ``k``
            blocks its unit for ``k`` consecutive cycles. Absent opcodes
            are fully pipelined (occupancy 1), which is the case for every
            paper configuration; Section 4.1 describes the Rim & Jain
            expansion this library applies in the bounds.
    """

    name: str
    units: dict[str, int]
    class_map: dict[OpClass, str] = field(default_factory=dict)
    occupancy: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.units:
            raise ValueError("machine must have at least one resource class")
        for rclass, count in self.units.items():
            if count <= 0:
                raise ValueError(f"resource class {rclass!r} has count {count}")
        if not self.class_map:
            specialized = GENERAL_PURPOSE not in self.units
            object.__setattr__(self, "class_map", default_class_map(specialized))
        missing = [oc for oc in OpClass if self.class_map.get(oc) not in self.units]
        if missing:
            raise ValueError(
                f"machine {self.name!r} does not map op classes "
                f"{[m.value for m in missing]} onto any resource class"
            )
        for op_name, occ in self.occupancy.items():
            if occ < 1:
                raise ValueError(
                    f"machine {self.name!r}: occupancy of {op_name!r} must "
                    f"be >= 1, got {occ}"
                )

    @property
    def fully_pipelined(self) -> bool:
        """True when every opcode has unit occupancy."""
        return all(occ == 1 for occ in self.occupancy.values())

    def occupancy_of(self, op: Operation) -> int:
        """Cycles the operation blocks its functional unit."""
        return self.occupancy.get(op.opcode.name, 1)

    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Total issue width: one operation per unit per cycle."""
        return sum(self.units.values())

    @property
    def resource_classes(self) -> tuple[str, ...]:
        """Resource class names in deterministic order."""
        return tuple(sorted(self.units))

    @property
    def num_resource_classes(self) -> int:
        return len(self.units)

    def resource_of(self, op: Operation) -> str:
        """Resource class name the operation occupies."""
        return self.class_map[op.op_class]

    def units_of(self, rclass: str) -> int:
        return self.units[rclass]

    def capacity(self) -> ResourceVector:
        """Per-cycle capacity as a resource vector."""
        return ResourceVector(dict(self.units))

    def demand_of(self, ops: list[Operation]) -> ResourceVector:
        """Aggregate demand vector of a list of operations."""
        return ResourceVector.of_classes(self.resource_of(op) for op in ops)

    def __str__(self) -> str:
        return self.name


def _gp(name: str, count: int) -> MachineConfig:
    return MachineConfig(name=name, units={GENERAL_PURPOSE: count})


def _fs(name: str, ints: int, mems: int, floats: int, branches: int) -> MachineConfig:
    return MachineConfig(
        name=name,
        units={"int": ints, "mem": mems, "float": floats, "branch": branches},
    )


#: 1 general purpose unit.
GP1 = _gp("GP1", 1)
#: 2 general purpose units (the machine used in the paper's examples).
GP2 = _gp("GP2", 2)
#: 4 general purpose units.
GP4 = _gp("GP4", 4)
#: 4 specialized units: (1 int, 1 mem, 1 float, 1 branch).
FS4 = _fs("FS4", 1, 1, 1, 1)
#: 6 specialized units: (2 int, 2 mem, 1 float, 1 branch).
FS6 = _fs("FS6", 2, 2, 1, 1)
#: 8 specialized units: (3 int, 2 mem, 2 float, 1 branch).
FS8 = _fs("FS8", 3, 2, 2, 1)

#: FS4 with a blocking (non-pipelined) floating point divider and
#: multiplier — a demonstration configuration for the occupancy model;
#: not part of the paper's evaluation set.
FS4_NP = MachineConfig(
    name="FS4-NP",
    units={"int": 1, "mem": 1, "float": 1, "branch": 1},
    occupancy={"fdiv": 9, "fmul": 3},
)

#: All six paper configurations, in the paper's order.
PAPER_MACHINES: tuple[MachineConfig, ...] = (GP1, GP2, GP4, FS4, FS6, FS8)

_BY_NAME = {m.name: m for m in PAPER_MACHINES + (FS4_NP,)}


def machine_by_name(name: str) -> MachineConfig:
    """Look up a paper configuration by name (case insensitive)."""
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown machine {name!r}; known machines: {known}") from None
