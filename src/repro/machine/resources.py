"""Resource classes and resource vectors.

A *resource class* is a pool of identical, fully pipelined functional
units. An operation occupies exactly one unit of its class for one cycle at
issue time (the Rim & Jain occupancy model; non-pipelined units would be
pre-expanded into chains, but all paper configurations are fully
pipelined).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.ir.operation import OpClass

#: Resource class used by the general-purpose (GP*) configurations.
GENERAL_PURPOSE = "gp"


class ResourceVector:
    """A count of units (or unit demands) per resource class.

    Thin wrapper over :class:`collections.Counter` with subsetting helpers
    used by the schedulers ("do these demands fit in these free units?").
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: dict[str, int] | None = None) -> None:
        self._counts = Counter()
        if counts:
            for rclass, count in counts.items():
                if count < 0:
                    raise ValueError(f"negative count for resource {rclass!r}")
                if count:
                    self._counts[rclass] = count

    @classmethod
    def of_classes(cls, classes: Iterable[str]) -> "ResourceVector":
        """Demand vector of a multiset of resource class names."""
        vec = cls()
        vec._counts.update(classes)
        return vec

    def get(self, rclass: str) -> int:
        return self._counts.get(rclass, 0)

    def classes(self) -> list[str]:
        return sorted(self._counts)

    def total(self) -> int:
        return sum(self._counts.values())

    def add(self, rclass: str, count: int = 1) -> None:
        self._counts[rclass] += count

    def fits_in(self, capacity: "ResourceVector") -> bool:
        """True when every class demand is within ``capacity``."""
        return all(capacity.get(r) >= c for r, c in self._counts.items())

    def copy(self) -> "ResourceVector":
        return ResourceVector(dict(self._counts))

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{r}={c}" for r, c in sorted(self._counts.items()))
        return f"ResourceVector({inner})"


def default_class_map(specialized: bool) -> dict[OpClass, str]:
    """Map op classes to resource class names.

    Fully specialized machines give each op class its own pool; general
    purpose machines share a single pool.
    """
    if specialized:
        return {oc: oc.value for oc in OpClass}
    return {oc: GENERAL_PURPOSE for oc in OpClass}
