"""VLIW machine models: configurations, resources, reservation tables."""

from repro.machine.machine import (
    FS4,
    FS6,
    FS8,
    GP1,
    GP2,
    GP4,
    PAPER_MACHINES,
    MachineConfig,
    machine_by_name,
)
from repro.machine.reservation import ReservationTable
from repro.machine.resources import GENERAL_PURPOSE, ResourceVector

__all__ = [
    "FS4",
    "FS6",
    "FS8",
    "GENERAL_PURPOSE",
    "GP1",
    "GP2",
    "GP4",
    "PAPER_MACHINES",
    "MachineConfig",
    "ReservationTable",
    "ResourceVector",
    "machine_by_name",
]
