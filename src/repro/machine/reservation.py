"""Reservation tables: per-cycle functional-unit bookkeeping.

A :class:`ReservationTable` tracks how many units of each resource class
remain free in every cycle. All units are fully pipelined, so an operation
occupies one unit of its class only in its issue cycle. The table grows on
demand — cycles beyond the current horizon are implicitly empty.
"""

from __future__ import annotations

from repro.machine.machine import MachineConfig


class ReservationTable:
    """Tracks free functional-unit slots per cycle and resource class."""

    def __init__(self, machine: MachineConfig) -> None:
        self._machine = machine
        # _used[cycle][rclass] = units consumed; absent cycles are empty.
        self._used: list[dict[str, int]] = []

    @property
    def machine(self) -> MachineConfig:
        return self._machine

    @property
    def horizon(self) -> int:
        """Number of cycles with at least one recorded reservation."""
        return len(self._used)

    def _row(self, cycle: int) -> dict[str, int]:
        while len(self._used) <= cycle:
            self._used.append({})
        return self._used[cycle]

    def used(self, cycle: int, rclass: str) -> int:
        """Units of ``rclass`` already consumed in ``cycle``."""
        if cycle < 0:
            raise ValueError(f"negative cycle {cycle}")
        if cycle >= len(self._used):
            return 0
        return self._used[cycle].get(rclass, 0)

    def free(self, cycle: int, rclass: str) -> int:
        """Units of ``rclass`` still free in ``cycle``."""
        return self._machine.units_of(rclass) - self.used(cycle, rclass)

    def can_place(self, cycle: int, rclass: str, occupancy: int = 1) -> bool:
        """True when a unit of ``rclass`` is free for ``occupancy`` cycles.

        Count-based interval reservation is exact for identical units
        (interval graphs are perfect: overlap depth <= units implies a
        feasible unit assignment).
        """
        return all(
            self.free(cycle + k, rclass) > 0 for k in range(occupancy)
        )

    def place(self, cycle: int, rclass: str, occupancy: int = 1) -> None:
        """Reserve one ``rclass`` unit for cycles ``[cycle, cycle+occupancy)``."""
        if not self.can_place(cycle, rclass, occupancy):
            raise ValueError(
                f"no free {rclass!r} unit for {occupancy} cycle(s) starting "
                f"at {cycle} on {self._machine.name}"
            )
        for k in range(occupancy):
            row = self._row(cycle + k)
            row[rclass] = row.get(rclass, 0) + 1

    def release(self, cycle: int, rclass: str, occupancy: int = 1) -> None:
        """Undo a :meth:`place` (used by the branch-and-bound scheduler)."""
        for k in range(occupancy):
            row = self._row(cycle + k)
            current = row.get(rclass, 0)
            if current <= 0:
                raise ValueError(
                    f"no {rclass!r} reservation to release in cycle {cycle + k}"
                )
            row[rclass] = current - 1

    def earliest_fit(self, rclass: str, not_before: int, occupancy: int = 1) -> int:
        """Earliest cycle ``>= not_before`` with a free ``rclass`` unit."""
        cycle = max(0, not_before)
        while not self.can_place(cycle, rclass, occupancy):
            cycle += 1
        return cycle

    def free_slots(self, rclass: str, first: int, last: int) -> int:
        """Total free ``rclass`` slots in cycles ``first..last`` inclusive.

        This is the ``AvailSlot`` quantity of the paper's ERC computation
        (Section 5.1, Step 2).
        """
        if last < first:
            return 0
        per_cycle = self._machine.units_of(rclass)
        total = per_cycle * (last - first + 1)
        top = min(last, len(self._used) - 1)
        for cycle in range(max(0, first), top + 1):
            total -= self._used[cycle].get(rclass, 0)
        return total

    def cycle_is_full(self, cycle: int) -> bool:
        """True when no resource class has a free unit in ``cycle``."""
        return all(
            self.free(cycle, rclass) == 0 for rclass in self._machine.resource_classes
        )

    def snapshot_free(self, cycle: int) -> dict[str, int]:
        """Free units per class in ``cycle`` (a fresh dict)."""
        return {
            rclass: self.free(cycle, rclass)
            for rclass in self._machine.resource_classes
        }
