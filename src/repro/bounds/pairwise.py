"""The Pairwise bound (Section 4.2, Theorem 2, Figure 5).

For an ordered branch pair ``(i, j)`` (``i`` earlier in program order, so
``i`` is an ancestor of ``j`` via control edges), the bound quantifies the
*tradeoff* between scheduling the two branches early. For every candidate
separation ``l = t_j - t_i`` we add a virtual edge ``i -> j`` with latency
``l`` to the subgraph rooted at ``j`` and solve one Rim & Jain relaxation:

* ``y_l`` — lower bound on ``t_j`` when ``i`` issues at least ``l`` cycles
  before ``j``;
* ``x_l = y_l - l`` — the matching lower bound on ``t_i``.

The relaxation uses the recursive ``EarlyRC`` release times and the
resource-aware ``LateRC`` deadlines (shifted by ``j``'s delay), which is
what makes the bound "tightly integrate dependence and resource
constraints" (Observation 2).

Sweeping ``l`` over ``[l_br .. EarlyRC[j] + 1]`` traces the full tradeoff
curve; the *pair bound* is the curve point minimizing
``w_i * x + w_j * y``. Theorem 2's monotonicity arguments let the sweep
stop early at both ends, exactly as in the paper's Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bounds.earliest import dist_to_sink, subgraph_nodes
from repro.bounds.instrumentation import Counters
from repro.bounds.rim_jain import rim_jain_sink_bound
from repro.ir.depgraph import DependenceGraph
from repro.machine.machine import MachineConfig


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of a pair's tradeoff curve."""

    separation: int  #: the virtual latency l = t_j - t_i enforced
    x: int  #: lower bound on t_i under this separation
    y: int  #: lower bound on t_j under this separation


@dataclass(frozen=True)
class PairBound:
    """Tradeoff analysis of an ordered branch pair ``(i, j)``.

    Attributes:
        i, j: branch operation indices, ``i`` earlier in program order.
        x, y: the pair bound — curve point minimizing ``w_i*x + w_j*y``.
        curve: all evaluated tradeoff points, by increasing separation.
        conflict_free: True when both branches can reach their individual
            ``EarlyRC`` times simultaneously (no tradeoff exists).
    """

    i: int
    j: int
    x: int
    y: int
    curve: tuple[TradeoffPoint, ...]
    conflict_free: bool

    def cost(self, w_i: float, w_j: float) -> float:
        return w_i * self.x + w_j * self.y

    def best_for_weights(self, w_i: float, w_j: float) -> TradeoffPoint:
        """Curve point minimizing the weighted cost for arbitrary weights."""
        return min(self.curve, key=lambda p: (w_i * p.x + w_j * p.y, p.separation))


class PairwiseBounder:
    """Computes pair bounds for one superblock graph on one machine.

    Shares the per-branch subgraph structures (node lists, distance maps)
    across all separations of all pairs involving the same later branch.
    """

    def __init__(
        self,
        graph: DependenceGraph,
        machine: MachineConfig,
        early_rc: list[int],
        late_rc: dict[int, dict[int, int]],
        branch_latency: int = 1,
        counters: Counters | None = None,
    ) -> None:
        """
        Args:
            early_rc: forward LC bound for every operation.
            late_rc: per-branch resource-aware late times
                (``late_rc[b][v]``), from :mod:`repro.bounds.late_rc`.
        """
        self._graph = graph
        self._machine = machine
        self._early_rc = early_rc
        self._late_rc = late_rc
        self._l_br = branch_latency
        self._counters = counters
        self._sink_cache: dict[int, tuple[list[int], dict[int, int], dict[int, str]]] = {}
        self._occupancy: dict[int, dict[int, int]] = {}

    def _sink_context(self, j: int):
        ctx = self._sink_cache.get(j)
        if ctx is None:
            nodes = subgraph_nodes(self._graph, j)
            dist_j = dist_to_sink(self._graph, j, nodes)
            rclass = {
                v: self._machine.resource_of(self._graph.op(v)) for v in nodes
            }
            if not self._machine.fully_pipelined:
                self._occupancy[j] = {
                    v: self._machine.occupancy_of(self._graph.op(v))
                    for v in nodes
                }
            ctx = (nodes, dist_j, rclass)
            self._sink_cache[j] = ctx
        return ctx

    def _solve(
        self,
        i: int,
        j: int,
        separation: int,
        nodes: list[int],
        dist_j: dict[int, int],
        dist_i: dict[int, int],
        rclass: dict[int, str],
    ) -> TradeoffPoint:
        """One RJ relaxation with the virtual edge ``i -> j`` at ``separation``."""
        rc = self._early_rc
        est_j = max(rc[j], rc[i] + separation)
        shift = est_j - rc[j]
        late_rc_j = self._late_rc[j]
        late: dict[int, int] = {}
        for v in nodes:
            # Dependence deadline, accounting for the virtual edge: paths
            # through i must leave room for the enforced separation.
            d = dist_j[v]
            di = dist_i.get(v)
            if di is not None:
                d_via_i = di + separation
                if d_via_i > d:
                    d = d_via_i
            dep_late = est_j - d
            rc_late = late_rc_j[v] + shift
            late[v] = dep_late if dep_late < rc_late else rc_late
        early = {v: rc[v] for v in nodes}
        result = rim_jain_sink_bound(
            nodes, early, late, est_j, rclass, self._machine,
            self._counters, counter_prefix="pw",
            occupancy=self._occupancy.get(j),
        )
        y = result.bound
        return TradeoffPoint(separation=separation, x=y - separation, y=y)

    def pair_bound(self, i: int, j: int, w_i: float, w_j: float) -> PairBound:
        """Compute the pair bound for branches ``i < j`` with exit weights.

        Follows Figure 5: start at the separation that would let both
        branches issue at their individual ``EarlyRC``; walk down until
        ``j`` reaches its ``EarlyRC``; walk up until ``i`` reaches its
        ``EarlyRC`` (or the Theorem 2 cap ``EarlyRC[j] + 1``).
        """
        if not self._graph.is_ancestor(i, j):
            raise ValueError(
                f"branch {i} is not an ancestor of branch {j}; pairwise bounds "
                "require ordered superblock exits"
            )
        nodes, dist_j, rclass = self._sink_context(j)
        dist_i = dist_to_sink(self._graph, i, subgraph_nodes(self._graph, i))
        rc = self._early_rc
        l_min = self._l_br
        l_max = rc[j] + 1
        l_start = max(l_min, min(l_max, rc[j] - rc[i]))

        points: dict[int, TradeoffPoint] = {}

        def eval_at(l: int) -> TradeoffPoint:
            if l not in points:
                if self._counters is not None:
                    self._counters.add("pw.latency_trials", 1)
                points[l] = self._solve(i, j, l, nodes, dist_j, dist_i, rclass)
            return points[l]

        first = eval_at(l_start)
        conflict_free = first.y == rc[j] and first.x <= rc[i]
        covered_high = first.x <= rc[i]
        if not conflict_free:
            # Phase 1: decrease separation until j is as early as possible.
            # Smaller separations are covered by the stopping point: they can
            # only raise x while y is already at its floor.
            if first.y != rc[j]:
                for l in range(l_start - 1, l_min - 1, -1):
                    if eval_at(l).y == rc[j]:
                        break
            # Phase 2: increase separation until i is as early as possible;
            # larger separations are then covered by the stopping point.
            if first.x > rc[i]:
                for l in range(l_start + 1, l_max + 1):
                    if eval_at(l).x <= rc[i]:
                        covered_high = True
                        break
        if not covered_high:
            # Theorem 2 guarantees x reaches EarlyRC[i] by l_max; if an
            # implementation detail (e.g. the LateRC caps) leaves a gap, fall
            # back to the always-valid individual-bounds point so every
            # separation beyond the sweep stays covered.
            points[l_max + 1] = TradeoffPoint(
                separation=l_max + 1, x=rc[i], y=rc[j]
            )
        curve = tuple(points[l] for l in sorted(points))
        # Clamp x to EarlyRC[i]: separations beyond the cap cannot push i
        # below its own bound (Theorem 2's terminal argument).
        curve = tuple(
            TradeoffPoint(p.separation, max(p.x, rc[i]), p.y) for p in curve
        )
        best = min(curve, key=lambda p: (w_i * p.x + w_j * p.y, p.separation))
        return PairBound(
            i=i, j=j, x=best.x, y=best.y, curve=curve, conflict_free=conflict_free
        )
