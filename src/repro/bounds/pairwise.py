"""The Pairwise bound (Section 4.2, Theorem 2, Figure 5).

For an ordered branch pair ``(i, j)`` (``i`` earlier in program order, so
``i`` is an ancestor of ``j`` via control edges), the bound quantifies the
*tradeoff* between scheduling the two branches early. For every candidate
separation ``l = t_j - t_i`` we add a virtual edge ``i -> j`` with latency
``l`` to the subgraph rooted at ``j`` and solve one Rim & Jain relaxation:

* ``y_l`` — lower bound on ``t_j`` when ``i`` issues at least ``l`` cycles
  before ``j``;
* ``x_l = y_l - l`` — the matching lower bound on ``t_i``.

The relaxation uses the recursive ``EarlyRC`` release times and the
resource-aware ``LateRC`` deadlines (shifted by ``j``'s delay), which is
what makes the bound "tightly integrate dependence and resource
constraints" (Observation 2).

Sweeping ``l`` over ``[l_br .. EarlyRC[j] + 1]`` traces the full tradeoff
curve; the *pair bound* is the curve point minimizing
``w_i * x + w_j * y``. Theorem 2's monotonicity arguments let the sweep
stop early at both ends, exactly as in the paper's Figure 5.

Hot path
--------
One RJ solve per candidate separation per pair makes this the dominant
cost of the whole evaluation pipeline, so the bounder aggressively hoists
everything that does not depend on the separation:

* per later-branch ``j``: subgraph nodes, sink distances, resource
  classes, the shared ``early`` map, and a *relative* deadline map
  ``base_rel[v] = min(-dist_j[v], LateRC_j[v] - EarlyRC[j])`` — for any
  node untouched by the virtual edge, the absolute deadline is exactly
  ``est_j + base_rel[v]`` at every separation;
* per earlier-branch ``i``: its subgraph's sink distances (shared by all
  pairs with the same ``i``);
* per separation: the incremental sweep warm-starts the previous
  separation's ``late`` map — while ``est_j`` is pinned at ``EarlyRC[j]``
  only the entries whose ``d_via_i`` term changes (nodes in ``i``'s
  subgraph) are touched, and when ``est_j`` moves the map is rebuilt from
  ``base_rel`` with one comprehension instead of the naive three-term
  min/max per node.

``incremental=False`` selects the original per-separation construction;
the two paths produce identical curves (tests/test_pairwise_incremental).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import kernels
from repro.bounds.earliest import dist_to_sink, subgraph_nodes
from repro.bounds.instrumentation import Counters
from repro.bounds.rim_jain import rim_jain_sink_bound
from repro.ir.depgraph import DependenceGraph
from repro.machine.machine import MachineConfig


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of a pair's tradeoff curve."""

    separation: int  #: the virtual latency l = t_j - t_i enforced
    x: int  #: lower bound on t_i under this separation
    y: int  #: lower bound on t_j under this separation


def best_tradeoff_point(curve, w_i: float, w_j: float) -> TradeoffPoint:
    """The curve point minimizing ``w_i*x + w_j*y``.

    Ties break toward the smallest separation, so equal-cost plateaus
    pick the point leaving the schedule the most freedom. Shared by
    :meth:`PairBound.best_for_weights` and the ``pair_bound`` selection
    so the two tie-breaks cannot drift apart.
    """
    return min(curve, key=lambda p: (w_i * p.x + w_j * p.y, p.separation))


@dataclass(frozen=True)
class PairBound:
    """Tradeoff analysis of an ordered branch pair ``(i, j)``.

    Attributes:
        i, j: branch operation indices, ``i`` earlier in program order.
        x, y: the pair bound — curve point minimizing ``w_i*x + w_j*y``.
        curve: all evaluated tradeoff points, by increasing separation.
        conflict_free: True when both branches can reach their individual
            ``EarlyRC`` times simultaneously (no tradeoff exists).
    """

    i: int
    j: int
    x: int
    y: int
    curve: tuple[TradeoffPoint, ...]
    conflict_free: bool

    def cost(self, w_i: float, w_j: float) -> float:
        return w_i * self.x + w_j * self.y

    def best_for_weights(self, w_i: float, w_j: float) -> TradeoffPoint:
        """Curve point minimizing the weighted cost for arbitrary weights."""
        return best_tradeoff_point(self.curve, w_i, w_j)


#: Engine-cache sentinel distinguishing "never built" from "fell back".
_UNBUILT = object()


class PairwiseBounder:
    """Computes pair bounds for one superblock graph on one machine.

    Shares the per-branch subgraph structures (node lists, distance maps,
    relative deadline maps) across all separations of all pairs involving
    the same later branch ``j``, and the sink distances of each earlier
    branch ``i`` across all pairs sharing ``i``.
    """

    def __init__(
        self,
        graph: DependenceGraph,
        machine: MachineConfig,
        early_rc: list[int],
        late_rc: dict[int, dict[int, int]],
        branch_latency: int = 1,
        counters: Counters | None = None,
        incremental: bool = True,
    ) -> None:
        """
        Args:
            early_rc: forward LC bound for every operation.
            late_rc: per-branch resource-aware late times
                (``late_rc[b][v]``), from :mod:`repro.bounds.late_rc`.
            incremental: use the warm-started sweep (default); ``False``
                rebuilds every ``late`` map from scratch, for testing.
        """
        self._graph = graph
        self._machine = machine
        self._early_rc = early_rc
        self._late_rc = late_rc
        self._l_br = branch_latency
        self._counters = counters
        self._incremental = incremental
        # Per-j context: (nodes, dist_j, rclass, early, base_rel).
        self._sink_cache: dict[
            int,
            tuple[
                list[int],
                dict[int, int],
                dict[int, str],
                dict[int, int],
                dict[int, int],
            ],
        ] = {}
        # Per-i context: (v, dist_i[v]) items over i's subgraph.
        self._dist_i_cache: dict[int, list[tuple[int, int]]] = {}
        self._occupancy: dict[int, dict[int, int]] = {}
        # Array sweep engines (repro.kernels.pairwise_numpy), one per j,
        # plus per-(i, j) position/distance arrays. Only the incremental
        # path is accelerated: ``incremental=False`` is the reference
        # construction the engines are audited against. None = disabled.
        self._engines: dict[int, object] | None = (
            {} if incremental and kernels.use_numpy() else None
        )
        self._i_arrays: dict[tuple[int, int], tuple] = {}

    def _sink_context(self, j: int):
        ctx = self._sink_cache.get(j)
        if ctx is None:
            nodes = subgraph_nodes(self._graph, j)
            dist_j = dist_to_sink(self._graph, j, nodes)
            rclass = {
                v: self._machine.resource_of(self._graph.op(v)) for v in nodes
            }
            if not self._machine.fully_pipelined:
                self._occupancy[j] = {
                    v: self._machine.occupancy_of(self._graph.op(v))
                    for v in nodes
                }
            rc = self._early_rc
            early = {v: rc[v] for v in nodes}
            # Deadlines relative to est_j: for nodes unaffected by the
            # virtual edge, late[v] = est_j + base_rel[v] at *every*
            # separation (both the dependence term est_j - dist_j[v] and
            # the LateRC term late_rc_j[v] + (est_j - rc[j]) shift with
            # est_j by exactly the same amount).
            late_rc_j = self._late_rc[j]
            rc_j = rc[j]
            base_rel = {}
            for v in nodes:
                dep = -dist_j[v]
                res = late_rc_j[v] - rc_j
                base_rel[v] = dep if dep < res else res
            ctx = (nodes, dist_j, rclass, early, base_rel)
            self._sink_cache[j] = ctx
        return ctx

    def _engine(self, j: int):
        """The array sweep engine for ``j``, or None (python path)."""
        if self._engines is None:
            return None
        engine = self._engines.get(j, _UNBUILT)
        if engine is _UNBUILT:
            from repro.kernels.pairwise_numpy import SinkSweepEngine

            nodes, _dist_j, rclass, early, base_rel = self._sink_context(j)
            built = SinkSweepEngine(
                nodes,
                early,
                base_rel,
                rclass,
                self._occupancy.get(j),
                self._machine.units_of,
            )
            engine = built if built.ok else None
            self._engines[j] = engine
        return engine

    def _dist_i_items(self, i: int) -> list[tuple[int, int]]:
        items = self._dist_i_cache.get(i)
        if items is None:
            dist_i = dist_to_sink(self._graph, i, subgraph_nodes(self._graph, i))
            items = sorted(dist_i.items())
            self._dist_i_cache[i] = items
        return items

    def _late_naive(
        self,
        j: int,
        separation: int,
        est_j: int,
        nodes: list[int],
        dist_j: dict[int, int],
        dist_i: dict[int, int],
    ) -> dict[int, int]:
        """Reference construction of the deadline map (pre-optimization)."""
        shift = est_j - self._early_rc[j]
        late_rc_j = self._late_rc[j]
        late: dict[int, int] = {}
        for v in nodes:
            # Dependence deadline, accounting for the virtual edge: paths
            # through i must leave room for the enforced separation.
            d = dist_j[v]
            di = dist_i.get(v)
            if di is not None:
                d_via_i = di + separation
                if d_via_i > d:
                    d = d_via_i
            dep_late = est_j - d
            rc_late = late_rc_j[v] + shift
            late[v] = dep_late if dep_late < rc_late else rc_late
        return late

    def pair_bound(self, i: int, j: int, w_i: float, w_j: float) -> PairBound:
        """Compute the pair bound for branches ``i < j`` with exit weights.

        Follows Figure 5: start at the separation that would let both
        branches issue at their individual ``EarlyRC``; walk down until
        ``j`` reaches its ``EarlyRC``; walk up until ``i`` reaches its
        ``EarlyRC`` (or the Theorem 2 cap ``EarlyRC[j] + 1``).
        """
        if not self._graph.is_ancestor(i, j):
            raise ValueError(
                f"branch {i} is not an ancestor of branch {j}; pairwise bounds "
                "require ordered superblock exits"
            )
        nodes, dist_j, rclass, early, base_rel = self._sink_context(j)
        i_items = self._dist_i_items(i)
        dist_i_map = dict(i_items) if not self._incremental else None
        engine = self._engine(j)
        if engine is not None:
            pair_key = (i, j)
            i_arrays = self._i_arrays.get(pair_key)
            if i_arrays is None:
                i_arrays = engine.i_arrays(i_items)
                self._i_arrays[pair_key] = i_arrays
            ipos, idist = i_arrays
        rc = self._early_rc
        rc_i, rc_j = rc[i], rc[j]
        l_min = self._l_br
        l_max = rc_j + 1
        l_start = max(l_min, min(l_max, rc_j - rc_i))
        occupancy = self._occupancy.get(j)

        points: dict[int, TradeoffPoint] = {}
        # Sweep state for the incremental path: the deadline map of the
        # previously evaluated separation and its est_j.
        state_late: dict[int, int] | None = None
        state_est = -1

        def eval_at(l: int) -> TradeoffPoint:
            nonlocal state_late, state_est
            point = points.get(l)
            if point is not None:
                return point
            if self._counters is not None:
                self._counters.add("pw.latency_trials", 1)
            est_j = rc_i + l
            if est_j < rc_j:
                est_j = rc_j
            if engine is not None:
                # Array path: same relaxation through the dual form, all
                # deadline terms relative to est_j (no sweep state).
                y = engine.bound_at(l, est_j, ipos, idist)
                if self._counters is not None:
                    self._counters.add("pw.place", engine.n_pieces)
                point = TradeoffPoint(separation=l, x=y - l, y=y)
                points[l] = point
                return point
            if not self._incremental:
                late = self._late_naive(j, l, est_j, nodes, dist_j, dist_i_map)
            elif state_late is not None and est_j == state_est:
                # Warm start: est_j unchanged, so only entries with a
                # d_via_i term (nodes in i's subgraph) can move.
                late = state_late
                for v, di in i_items:
                    b = base_rel[v]
                    cand = -di - l
                    late[v] = est_j + (cand if cand < b else b)
            else:
                late = {v: est_j + r for v, r in base_rel.items()}
                for v, di in i_items:
                    cand = est_j - di - l
                    if cand < late[v]:
                        late[v] = cand
            state_late, state_est = late, est_j
            result = rim_jain_sink_bound(
                nodes, early, late, est_j, rclass, self._machine,
                self._counters, counter_prefix="pw",
                occupancy=occupancy,
            )
            y = result.bound
            point = TradeoffPoint(separation=l, x=y - l, y=y)
            points[l] = point
            return point

        first = eval_at(l_start)
        conflict_free = first.y == rc_j and first.x <= rc_i
        covered_high = first.x <= rc_i
        if not conflict_free:
            # Phase 1: decrease separation until j is as early as possible.
            # Smaller separations are covered by the stopping point: they can
            # only raise x while y is already at its floor.
            if first.y != rc_j:
                for l in range(l_start - 1, l_min - 1, -1):
                    if eval_at(l).y == rc_j:
                        break
            # Phase 2: increase separation until i is as early as possible;
            # larger separations are then covered by the stopping point.
            if first.x > rc_i:
                for l in range(l_start + 1, l_max + 1):
                    if eval_at(l).x <= rc_i:
                        covered_high = True
                        break
        if not covered_high:
            # Theorem 2 guarantees x reaches EarlyRC[i] by l_max; if an
            # implementation detail (e.g. the LateRC caps) leaves a gap, fall
            # back to the always-valid individual-bounds point so every
            # separation beyond the sweep stays covered.
            points[l_max + 1] = TradeoffPoint(
                separation=l_max + 1, x=rc_i, y=rc_j
            )
        # Clamp x to EarlyRC[i]: separations beyond the cap cannot push i
        # below its own bound (Theorem 2's terminal argument).
        curve = tuple(
            TradeoffPoint(p.separation, max(p.x, rc_i), p.y)
            for _l, p in sorted(points.items())
        )
        best = best_tradeoff_point(curve, w_i, w_j)
        return PairBound(
            i=i, j=j, x=best.x, y=best.y, curve=curve, conflict_free=conflict_free
        )
