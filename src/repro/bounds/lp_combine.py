"""LP combination of individual, pairwise, and triplewise inequalities.

Every bound in this package produces linear inequalities over the branch
issue cycles ``t_b``:

* individual: ``t_b >= EarlyRC[b]``
* pairwise:   ``w_i t_i + w_j t_j >= w_i x + w_j y``
* triplewise: ``w_i t_i + w_j t_j + w_k t_k >= w_i x + w_j y + w_k z``

The greatest WCT lower bound consistent with a set of such inequalities is
the linear program

    minimize  sum_b w_b t_b   subject to the inequalities,

plus the branch latency. This module solves that LP with scipy's HiGHS
backend. The LP view generalizes the paper's Theorem 3 averaging (which is
one particular dual-feasible combination) and — crucially — stays valid
when only a subset of pairs or triples was computed.
"""

from __future__ import annotations

from repro.bounds.pairwise import PairBound
from repro.bounds.triplewise import TripleBound
from repro.ir.superblock import Superblock


def solve_lp_bound(
    sb: Superblock,
    early_rc: list[int],
    pair_bounds: dict[tuple[int, int], PairBound],
    triple_bounds: dict[tuple[int, int, int], TripleBound],
) -> float:
    """WCT lower bound from the given inequality collection.

    Falls back to the naive (individual-bounds) aggregation if the LP solver
    is unavailable or fails — a valid, weaker answer.
    """
    branches = sb.branches
    weights = sb.weights
    l_br = sb.branch_latency
    naive = sum(w * (early_rc[b] + l_br) for b, w in weights.items())
    if not pair_bounds and not triple_bounds:
        return naive
    try:
        from scipy.optimize import linprog
    except ImportError:  # pragma: no cover - scipy is a hard dep in practice
        return naive

    index = {b: pos for pos, b in enumerate(branches)}
    n = len(branches)
    c = [weights[b] for b in branches]
    a_ub: list[list[float]] = []
    b_ub: list[float] = []

    def add_ge(coeffs: dict[int, float], rhs: float) -> None:
        row = [0.0] * n
        for b, w in coeffs.items():
            row[index[b]] = -w
        a_ub.append(row)
        b_ub.append(-rhs)

    for (i, j), pb in pair_bounds.items():
        w_i, w_j = weights[i], weights[j]
        add_ge({i: w_i, j: w_j}, w_i * pb.x + w_j * pb.y)
    for (i, j, k), tb in triple_bounds.items():
        w_i, w_j, w_k = weights[i], weights[j], weights[k]
        add_ge(
            {i: w_i, j: w_j, k: w_k}, w_i * tb.x + w_j * tb.y + w_k * tb.z
        )

    bounds = [(float(early_rc[b]), None) for b in branches]
    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not result.success:  # pragma: no cover - defensive
        return naive
    return max(naive, float(result.fun) + l_br)
