"""Resource-aware late times (``LateRC``) via reversed-graph LC.

Section 4.1: given a branch ``b``, delete all operations that do not
precede ``b``, reverse the remaining edges, and run the Langevin & Cerny
algorithm on the reversed graph. ``EarlyRC`` in the reversed graph is a
lower bound on how many cycles *before* ``b`` each operation must issue
(resources included), so

    LateRC_b[v] = EarlyRC[b] (forward)  -  EarlyRC_rev[v]

is the latest issue of ``v`` that can still let ``b`` issue at its own
``EarlyRC`` — tighter than the dependence-only ``LateDC`` whenever a chain
between ``v`` and ``b`` is squeezed by resource conflicts (the paper's
Observation 2 / Figure 3).
"""

from __future__ import annotations

import dataclasses

from repro.bounds.earliest import subgraph_nodes
from repro.bounds.instrumentation import Counters
from repro.bounds.langevin_cerny import early_rc
from repro.ir.depgraph import DependenceGraph
from repro.machine.machine import MachineConfig


def reversed_subgraph(
    graph: DependenceGraph, sink: int
) -> tuple[DependenceGraph, dict[int, int]]:
    """Reverse the subgraph rooted at ``sink``.

    Returns the reversed graph and a map from original op index to its
    index in the reversed graph. The sink becomes operation 0.
    """
    nodes = subgraph_nodes(graph, sink)
    order = list(reversed(nodes))  # reverse-topological = topological in G'
    remap = {v: i for i, v in enumerate(order)}
    rev = DependenceGraph()
    for i, v in enumerate(order):
        rev.add_operation(dataclasses.replace(graph.op(v), index=i))
    node_set = set(nodes)
    for v in order:
        for u, lat in graph.preds(v):
            if u in node_set:
                rev.add_edge(remap[v], remap[u], lat)
    rev.freeze()
    return rev, remap


def late_rc_for_branch(
    graph: DependenceGraph,
    machine: MachineConfig,
    branch: int,
    branch_early_rc: int,
    counters: Counters | None = None,
    fast_path: bool = True,
) -> dict[int, int]:
    """``LateRC_branch[v]`` for every ``v`` in the subgraph rooted at ``branch``.

    Args:
        branch_early_rc: the forward ``EarlyRC`` of the branch (anchor of
            the late times).
    """
    rev, remap = reversed_subgraph(graph, branch)
    # The reversed pass must not apply the blocking-unit expansion: a
    # blocking op occupies cycles *before* its issue slot in mirrored time,
    # so the forward expansion would over-constrain the relaxation and
    # yield deadlines tighter than any feasible schedule allows (observed
    # as Pairwise bounds exceeding achievable WCTs on FS4-NP).
    rc_rev = early_rc(
        rev, machine, counters, fast_path, counter_prefix="lc_rev",
        use_occupancy=False,
    )
    return {v: branch_early_rc - rc_rev[i] for v, i in remap.items()}
