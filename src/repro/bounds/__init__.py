"""Lower bounds on superblock weighted completion time.

Bound families, from weakest to strongest (Table 1 of the paper):

* **CP** — dependence-only critical path.
* **Hu** — CP plus a per-deadline-level resource packing argument.
* **RJ** — the Rim & Jain relaxation (EDF placement with release times and
  deadlines).
* **LC** — Langevin & Cerny's recursive RJ, with the paper's Theorem 1
  fast path.
* **PW** — the paper's Pairwise bound: per-branch-pair tradeoff curves
  aggregated by Theorem 3 averaging.
* **TW** — the Triplewise generalization, aggregated through an LP over
  all collected inequalities.

Entry point: :class:`BoundSuite` (one superblock, one machine).
"""

from repro.bounds.branch_rj import rj_branch_bound, rj_branch_bounds
from repro.bounds.critical_path import cp_branch_bounds
from repro.bounds.hu import hu_branch_bound, hu_branch_bounds
from repro.bounds.instrumentation import Counters
from repro.bounds.langevin_cerny import early_rc, lc_branch_bounds
from repro.bounds.late_rc import late_rc_for_branch, reversed_subgraph
from repro.bounds.pairwise import PairBound, PairwiseBounder, TradeoffPoint
from repro.bounds.rim_jain import RJResult, SlotAllocator, rim_jain_sink_bound
from repro.bounds.superblock_bounds import (
    BOUND_NAMES,
    BoundSuite,
    SuperblockBounds,
)
from repro.bounds.triplewise import TripleBound, TriplewiseBounder

__all__ = [
    "BOUND_NAMES",
    "BoundSuite",
    "Counters",
    "PairBound",
    "PairwiseBounder",
    "RJResult",
    "SlotAllocator",
    "SuperblockBounds",
    "TradeoffPoint",
    "TripleBound",
    "TriplewiseBounder",
    "cp_branch_bounds",
    "early_rc",
    "hu_branch_bound",
    "hu_branch_bounds",
    "late_rc_for_branch",
    "lc_branch_bounds",
    "reversed_subgraph",
    "rim_jain_sink_bound",
    "rj_branch_bound",
    "rj_branch_bounds",
]
