"""Langevin & Cerny recursive bound (``EarlyRC``) with the Theorem 1 fast path.

Langevin and Cerny [17] tighten the RJ bound by recursion: the release time
fed into each operation's relaxation is itself a resource-aware lower bound
computed the same way. We process operations in topological order, so every
predecessor's ``EarlyRC`` is available when an operation is solved.

**Theorem 1 (Trivial Bound Recursion)** — the paper's optimization: when an
operation ``v`` has a *unique* direct predecessor ``p`` and the edge
latency is positive, the recursive solve is unnecessary because

    EarlyRC[v] = EarlyRC[p] + lat(p, v).

The ``fast_path`` flag toggles this optimization so Table 2 can compare
the optimized algorithm ("LC") against the original ("LC-original").

A useful consequence of the recursion (used to skip redundant forward DPs):
``EarlyRC`` is monotone along edges, ``EarlyRC[v] >= EarlyRC[p] + lat``,
so the dependence-only earliest time of ``v`` given ``EarlyRC`` releases is
just ``max over preds (EarlyRC[p] + lat)``.
"""

from __future__ import annotations

from repro.bounds.earliest import dist_to_sink, subgraph_nodes
from repro.bounds.instrumentation import Counters
from repro.bounds.rim_jain import rim_jain_sink_bound
from repro.ir.depgraph import DependenceGraph
from repro.machine.machine import MachineConfig


def early_rc(
    graph: DependenceGraph,
    machine: MachineConfig,
    counters: Counters | None = None,
    fast_path: bool = True,
    counter_prefix: str = "lc",
    use_occupancy: bool = True,
) -> list[int]:
    """``EarlyRC[v]`` for every operation of ``graph``.

    Args:
        fast_path: apply the Theorem 1 shortcut for single-predecessor
            operations (the paper reports it removes ~30% of the work).
        use_occupancy: model blocking (multi-cycle-occupancy) units in the
            relaxations. Must be ``False`` when ``graph`` is a *reversed*
            subgraph: a blocking op occupies cycles after its issue slot in
            forward time, i.e. *before* it in mirrored time, so applying
            the forward expansion there over-constrains the relaxation and
            the resulting bound is no longer valid. Dropping the expansion
            (every op one slot at its issue cycle) is a relaxation of the
            mirrored problem, hence sound.
    """
    n = graph.num_operations
    rc = [0] * n
    rclass_all = [machine.resource_of(graph.op(v)) for v in range(n)]
    occ_all = None
    if use_occupancy and not machine.fully_pipelined:
        # Theorem 1's proof needs single-cycle occupancy; disable the
        # shortcut on machines with blocking units.
        fast_path = False
        occ_all = [machine.occupancy_of(graph.op(v)) for v in range(n)]
    for v in range(n):
        preds = graph.preds(v)
        if not preds:
            rc[v] = 0
            continue
        if fast_path and len(preds) == 1 and preds[0][1] > 0:
            p, lat = preds[0]
            rc[v] = rc[p] + lat
            if counters is not None:
                counters.add(f"{counter_prefix}.trivial", 1)
            continue
        est_v = max(rc[p] + lat for p, lat in preds)
        nodes = subgraph_nodes(graph, v)
        dist = dist_to_sink(graph, v, nodes)
        if counters is not None:
            counters.add(f"{counter_prefix}.late", len(nodes))
        early = {u: rc[u] for u in nodes}
        early[v] = est_v
        late = {u: est_v - dist[u] for u in nodes}
        rclass = {u: rclass_all[u] for u in nodes}
        occupancy = (
            {u: occ_all[u] for u in nodes} if occ_all is not None else None
        )
        result = rim_jain_sink_bound(
            nodes, early, late, est_v, rclass, machine, counters,
            counter_prefix, occupancy=occupancy,
        )
        rc[v] = result.bound
    return rc


def lc_branch_bounds(
    sb_graph: DependenceGraph,
    branches: tuple[int, ...],
    machine: MachineConfig,
    counters: Counters | None = None,
    fast_path: bool = True,
) -> dict[int, int]:
    """LC bound (``EarlyRC``) for every exit branch."""
    rc = early_rc(sb_graph, machine, counters, fast_path)
    return {b: rc[b] for b in branches}
