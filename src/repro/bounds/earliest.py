"""Dependence-only timing helpers shared by the bound algorithms.

All helpers operate on the *subgraph rooted at a sink* — the sink together
with its transitive predecessors — which is the unit of work of every bound
in the paper. Subgraphs are represented by sorted index lists (program
order is a topological order in our IR, see :mod:`repro.ir.depgraph`).
"""

from __future__ import annotations

from repro.ir.depgraph import DependenceGraph


def subgraph_nodes(graph: DependenceGraph, sink: int) -> list[int]:
    """The sink and its transitive predecessors, in topological order."""
    return _mask_nodes(graph.subgraph_mask(sink))


def _mask_nodes(mask: int) -> list[int]:
    nodes = []
    idx = 0
    while mask:
        if mask & 1:
            nodes.append(idx)
        mask >>= 1
        idx += 1
    return nodes


def earliest_with_release(
    graph: DependenceGraph,
    nodes: list[int],
    release: dict[int, int] | list[int],
) -> dict[int, int]:
    """Forward longest-path earliest times floored by per-op release times.

    ``est[v] = max(release[v], max over preds p of est[p] + lat(p, v))``.
    ``nodes`` must be closed under predecessors and topologically sorted.
    """
    est: dict[int, int] = {}
    for v in nodes:
        e = release[v]
        for u, lat in graph.preds(v):
            cand = est[u] + lat
            if cand > e:
                e = cand
        est[v] = e
    return est


def dist_to_sink(
    graph: DependenceGraph, sink: int, nodes: list[int]
) -> dict[int, int]:
    """Longest-path latency from every node to ``sink`` within the subgraph.

    ``dist[sink] == 0``. Every node in ``nodes`` is assumed to reach the
    sink or be the sink (true for subgraphs rooted at the sink); nodes with
    no path get ``-inf`` semantics via exclusion from successor scans, and
    are reported with distance 0 only if they *are* the sink.
    """
    in_sub = set(nodes)
    dist: dict[int, int] = {sink: 0}
    for v in reversed(nodes):
        if v == sink:
            continue
        best = None
        for w, lat in graph.succs(v):
            if w in in_sub and w in dist:
                cand = dist[w] + lat
                if best is None or cand > best:
                    best = cand
        if best is not None:
            dist[v] = best
    return dist


def deadlines_for_sink(
    est_sink: int, dist: dict[int, int]
) -> dict[int, int]:
    """Deadlines ``late[v] = est_sink - dist[v]`` for nodes that reach the sink."""
    return {v: est_sink - d for v, d in dist.items()}
