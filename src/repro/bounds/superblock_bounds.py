"""Superblock-level lower bounds on the weighted completion time.

Combines the per-branch bounds (CP, Hu, RJ, LC) and the pair/triple
tradeoff bounds into WCT lower bounds:

* **naive aggregation** — ``sum_b w_b * (bound_b + l_br)`` for any family
  of per-branch bounds; ignores inter-branch conflicts.
* **Theorem 3 averaging** — the paper's Pairwise superblock bound: each
  branch's per-pair values are averaged over all pairs containing it, then
  aggregated; valid because the per-pair inequalities can be summed.
* **LP combination** (an extension, documented in DESIGN.md §5) — the
  tightest bound derivable from *all* collected inequalities (individual,
  pairwise, triplewise): minimize ``sum w_b t_b`` over the polyhedron they
  define. Strictly dominates the averaging bound and remains valid when
  only a subset of pairs/triples was computed.

The :class:`BoundSuite` orchestrates every algorithm over one superblock
and one machine, sharing intermediate results (``EarlyRC``, ``LateRC``),
and reports each bound plus the tightest. Its caches are also the static
inputs of the Balance scheduler.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Callable, TypeVar

from repro import cache as result_cache
from repro.bounds.branch_rj import rj_branch_bounds
from repro.bounds.critical_path import cp_branch_bounds
from repro.bounds.hu import hu_branch_bounds
from repro.bounds.instrumentation import Counters
from repro.bounds.langevin_cerny import early_rc
from repro.bounds.late_rc import late_rc_for_branch
from repro.bounds.pairwise import PairBound, PairwiseBounder
from repro.bounds.triplewise import TripleBound, TriplewiseBounder
from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig
from repro.obs import trace
from repro.obs.metrics import active_counters

#: Names of the bound families, in the paper's Table 1 order.
BOUND_NAMES = ("CP", "Hu", "RJ", "LC", "PW", "TW")

#: Cache version of every bound computed through :class:`BoundSuite`.
#: Bump whenever any bound algorithm's output could change — stale
#: entries are then unreachable by construction (docs/caching.md).
#: v2: RJ placements fix (multi-occupancy ops report min slot - piece
#: index) and the vectorized kernel rollout (bit-identical, but entries
#: predating the parity pin should not be trusted).
BOUNDS_CACHE_VERSION = 2

_T = TypeVar("_T")


@dataclass
class SuperblockBounds:
    """All WCT lower bounds computed for one superblock on one machine."""

    superblock: str
    machine: str
    branch_bounds: dict[str, dict[int, int]]
    wct: dict[str, float]
    pair_bounds: dict[tuple[int, int], PairBound] = field(default_factory=dict)
    triple_bounds: dict[tuple[int, int, int], TripleBound] = field(
        default_factory=dict
    )
    pairs_complete: bool = True
    triples_skipped: int = 0

    @property
    def tightest(self) -> float:
        return max(self.wct.values())

    def gap_percent(self, name: str) -> float:
        """Percentage gap of bound ``name`` below the tightest bound."""
        tight = self.tightest
        if tight <= 0:
            return 0.0
        return 100.0 * (tight - self.wct[name]) / tight


class BoundSuite:
    """Computes and caches every bound for one (superblock, machine) pair.

    The expensive intermediates (``EarlyRC``, per-branch ``LateRC``, pair
    bounds) are exposed as cached properties so the Balance scheduler can
    reuse them without recomputation.
    """

    def __init__(
        self,
        sb: Superblock,
        machine: MachineConfig,
        counters: Counters | None = None,
        include_pairwise: bool = True,
        include_triplewise: bool = True,
        lc_fast_path: bool = True,
        pair_cap: int = 300,
        triple_cap: int = 40,
        triple_budget: int = 600,
    ) -> None:
        self.sb = sb
        self.machine = machine
        # An ambient MetricsRegistry (repro.obs.metrics) supplies the
        # counters when none are passed explicitly, so corpus_map workers
        # feed trip counts back to the parent without plumbing changes.
        self.counters = counters if counters is not None else active_counters()
        self.include_pairwise = include_pairwise
        self.include_triplewise = include_triplewise
        self.lc_fast_path = lc_fast_path
        self.pair_cap = pair_cap
        self.triple_cap = triple_cap
        self.triple_budget = triple_budget

    # -- result cache plumbing ------------------------------------------
    @cached_property
    def _cache_parts(self) -> list[Any]:
        """Content digests shared by every cached step of this suite."""
        return [
            result_cache.superblock_digest(self.sb),
            result_cache.machine_digest(self.machine),
            self.lc_fast_path,
        ]

    def _cached_step(
        self,
        algorithm: str,
        extra_parts: list[Any],
        compute: Callable[[], _T],
    ) -> _T:
        """Memoize one bound computation under the ambient result cache.

        Each entry stores ``(result, counter_delta)``: a hit replays the
        exact loop-trip counters the computation would have produced, so
        warm metrics match cold metrics bit for bit. Dependencies of a
        step (e.g. ``early_rc`` for the Pairwise sweep) must be
        materialized *before* the step runs so their deltas are captured
        by their own entries, never double-counted by this one.
        """
        cache = result_cache.active()
        if cache is None:
            return compute()
        key = result_cache.cache_key(
            algorithm, BOUNDS_CACHE_VERSION, self._cache_parts + extra_parts
        )
        hit, value = cache.get(key)
        if hit:
            result, delta = value
            if self.counters is not None:
                for name, amount in delta.items():
                    self.counters.add(name, amount)
            return result
        original = self.counters
        capture = Counters()
        self.counters = capture
        try:
            result = compute()
        finally:
            self.counters = original
        if original is not None:
            original.merge(capture)
        cache.put(key, (result, capture.as_dict()))
        return result

    # -- cached intermediates -------------------------------------------
    @cached_property
    def early_rc(self) -> list[int]:
        """Forward LC bound for every operation."""
        with trace.span(
            "bounds.lc", sb=self.sb.name, machine=self.machine.name
        ):
            return self._cached_step(
                "bounds.early_rc",
                [],
                lambda: early_rc(
                    self.sb.graph, self.machine, self.counters,
                    self.lc_fast_path,
                ),
            )

    @cached_property
    def late_rc(self) -> dict[int, dict[int, int]]:
        """Resource-aware late times, per branch."""
        rc = self.early_rc
        with trace.span(
            "bounds.late_rc", sb=self.sb.name, machine=self.machine.name
        ):
            return self._cached_step(
                "bounds.late_rc",
                [],
                lambda: {
                    b: late_rc_for_branch(
                        self.sb.graph, self.machine, b, rc[b], self.counters,
                        self.lc_fast_path,
                    )
                    for b in self.sb.branches
                },
            )

    @cached_property
    def _pairs_to_compute(self) -> tuple[list[tuple[int, int]], bool]:
        branches = self.sb.branches
        all_pairs = list(itertools.combinations(branches, 2))
        if len(all_pairs) <= self.pair_cap:
            return all_pairs, True
        # Too many pairs: keep adjacent pairs plus the heaviest ones.
        weights = self.sb.weights
        keep = {(a, b) for a, b in zip(branches, branches[1:])}
        ranked = sorted(
            all_pairs, key=lambda p: weights[p[0]] * weights[p[1]], reverse=True
        )
        for pair in ranked:
            if len(keep) >= self.pair_cap:
                break
            keep.add(pair)
        return sorted(keep), False

    @cached_property
    def pair_bounds(self) -> dict[tuple[int, int], PairBound]:
        """Pairwise tradeoff bounds, keyed by ordered branch pair."""
        pairs, _complete = self._pairs_to_compute
        early = self.early_rc  # materialize: cached under their own keys
        late = self.late_rc
        weights = self.sb.weights

        def sweep() -> dict[tuple[int, int], PairBound]:
            bounder = PairwiseBounder(
                self.sb.graph,
                self.machine,
                early,
                late,
                self.sb.branch_latency,
                self.counters,
            )
            return {
                (i, j): bounder.pair_bound(i, j, weights[i], weights[j])
                for i, j in pairs
            }

        with trace.span(
            "bounds.pairwise",
            sb=self.sb.name,
            machine=self.machine.name,
            pairs=len(pairs),
        ):
            return self._cached_step(
                "bounds.pairwise", [self.pair_cap, sorted(pairs)], sweep
            )

    @cached_property
    def pairs_complete(self) -> bool:
        return self._pairs_to_compute[1]

    @cached_property
    def _triples_to_compute(self) -> list[tuple[int, int, int]]:
        branches = self.sb.branches
        all_triples = list(itertools.combinations(branches, 3))
        if len(all_triples) <= self.triple_cap:
            return all_triples
        weights = self.sb.weights
        keep = {
            (a, b, c)
            for a, b, c in zip(branches, branches[1:], branches[2:])
        }
        ranked = sorted(
            all_triples,
            key=lambda t: weights[t[0]] * weights[t[1]] * weights[t[2]],
            reverse=True,
        )
        for triple in ranked:
            if len(keep) >= self.triple_cap:
                break
            keep.add(triple)
        return sorted(keep)

    @cached_property
    def triple_results(self) -> tuple[dict[tuple[int, int, int], TripleBound], int]:
        """Triple bounds plus the number of skipped (over-budget) triples."""
        early = self.early_rc  # materialize: cached under their own keys
        late = self.late_rc
        pb = self.pair_bounds
        weights = self.sb.weights
        triples = self._triples_to_compute

        def grid() -> tuple[dict[tuple[int, int, int], TripleBound], int]:
            bounder = TriplewiseBounder(
                self.sb.graph,
                self.machine,
                early,
                late,
                self.sb.branch_latency,
                self.counters,
                self.triple_budget,
            )
            results: dict[tuple[int, int, int], TripleBound] = {}
            skipped = 0
            for i, j, k in triples:
                # Triples whose pairs are all conflict-free almost never
                # add information; skip them to keep the O(C^2) grids rare.
                if all(
                    pb.get(p) is not None and pb[p].conflict_free
                    for p in ((i, j), (i, k), (j, k))
                ):
                    continue
                tb = bounder.triple_bound(
                    i, j, k, weights[i], weights[j], weights[k]
                )
                if tb is None:
                    skipped += 1
                else:
                    results[(i, j, k)] = tb
            return results, skipped

        with trace.span(
            "bounds.triplewise",
            sb=self.sb.name,
            machine=self.machine.name,
            triples=len(triples),
        ):
            return self._cached_step(
                "bounds.triplewise",
                [self.triple_cap, self.triple_budget, self.pair_cap],
                grid,
            )

    # -- aggregation -----------------------------------------------------
    def _naive_wct(self, branch_bounds: dict[int, int]) -> float:
        l_br = self.sb.branch_latency
        return sum(
            w * (branch_bounds[b] + l_br) for b, w in self.sb.weights.items()
        )

    def theorem3_average(self) -> float:
        """The paper's Pairwise superblock bound (Theorem 3).

        Requires the complete pair set; with a capped pair set the LP
        combination is used instead (see :meth:`lp_bound`).
        """
        weights = self.sb.weights
        rc = self.early_rc
        if len(self.sb.branches) < 2:
            return self._naive_wct({b: rc[b] for b in self.sb.branches})
        acc: dict[int, float] = {b: 0.0 for b in self.sb.branches}
        cnt: dict[int, int] = {b: 0 for b in self.sb.branches}
        for (i, j), pb in self.pair_bounds.items():
            acc[i] += pb.x
            cnt[i] += 1
            acc[j] += pb.y
            cnt[j] += 1
        l_br = self.sb.branch_latency
        total = 0.0
        for b, w in weights.items():
            per_branch = acc[b] / cnt[b] if cnt[b] else rc[b]
            total += w * (per_branch + l_br)
        return total

    def lp_bound(self, include_triples: bool) -> float:
        """Tightest bound from all collected inequalities, via a small LP."""
        from repro.bounds.lp_combine import solve_lp_bound

        triples = self.triple_results[0] if include_triples else {}
        return solve_lp_bound(
            self.sb, self.early_rc, self.pair_bounds, triples
        )

    def compute(self) -> SuperblockBounds:
        """Run every bound family and package the results."""
        sb, machine = self.sb, self.machine
        branch_bounds: dict[str, dict[int, int]] = {}
        with trace.span("bounds.cp", sb=sb.name, machine=self.machine.name):
            branch_bounds["CP"] = self._cached_step(
                "bounds.cp", [], lambda: cp_branch_bounds(sb, self.counters)
            )
        with trace.span("bounds.hu", sb=sb.name, machine=self.machine.name):
            branch_bounds["Hu"] = self._cached_step(
                "bounds.hu",
                [],
                lambda: hu_branch_bounds(sb, machine, self.counters),
            )
        with trace.span("bounds.rj", sb=sb.name, machine=self.machine.name):
            branch_bounds["RJ"] = self._cached_step(
                "bounds.rj",
                [],
                lambda: rj_branch_bounds(sb, machine, self.counters),
            )
        rc = self.early_rc
        branch_bounds["LC"] = {b: rc[b] for b in sb.branches}

        wct = {name: self._naive_wct(bb) for name, bb in branch_bounds.items()}
        pair_bounds: dict[tuple[int, int], PairBound] = {}
        triple_bounds: dict[tuple[int, int, int], TripleBound] = {}
        triples_skipped = 0
        if self.include_pairwise and len(sb.branches) >= 2:
            pair_bounds = self.pair_bounds
            if self.pairs_complete:
                wct["PW"] = max(wct["LC"], self.theorem3_average())
            else:
                wct["PW"] = max(wct["LC"], self.lp_bound(include_triples=False))
            if self.include_triplewise and len(sb.branches) >= 3:
                triple_bounds, triples_skipped = self.triple_results
                wct["TW"] = max(wct["PW"], self.lp_bound(include_triples=True))
            else:
                wct["TW"] = wct["PW"]
        else:
            wct["PW"] = wct["LC"]
            wct["TW"] = wct["LC"]

        return SuperblockBounds(
            superblock=sb.name,
            machine=machine.name,
            branch_bounds=branch_bounds,
            wct=wct,
            pair_bounds=pair_bounds,
            triple_bounds=triple_bounds,
            pairs_complete=self.pairs_complete,
            triples_skipped=triples_skipped,
        )
