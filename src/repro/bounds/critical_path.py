"""Critical path (CP) bound: dependence constraints only.

The weakest bound in the paper's Table 1: each branch's earliest issue is
its dependence-only longest path from the superblock entry (``EarlyDC``).
Resources are ignored entirely.
"""

from __future__ import annotations

from repro.bounds.instrumentation import Counters
from repro.ir.superblock import Superblock


def cp_branch_bounds(
    sb: Superblock, counters: Counters | None = None
) -> dict[int, int]:
    """``EarlyDC[b]`` for every exit branch ``b``."""
    early = sb.graph.early_dc()
    if counters is not None:
        counters.add("cp.visit", sb.graph.num_operations + sb.graph.num_edges)
    return {b: early[b] for b in sb.branches}
