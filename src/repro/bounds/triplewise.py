"""The Triplewise bound (Section 4.4).

The paper defers the construction to a technical report we do not have, so
this module implements the natural generalization of Theorem 2 (documented
as a substitution in DESIGN.md): for an ordered branch triple
``(i, j, k)`` we enforce the two separations ``l1 = t_j - t_i`` and
``l2 = t_k - t_j`` with virtual edges, solve one Rim & Jain relaxation per
``(l1, l2)`` grid point, and read off the triple of lower bounds

    z  = RJ bound on t_k,    y = z - l2,    x = y - l1.

Exactly as in the pairwise proof, the relaxation evaluated at the actual
separations of any feasible schedule under-bounds all three issue cycles,
so the pointwise minimum of the weighted cost over a *covering* set of grid
points is a valid lower bound on ``w_i t_i + w_j t_j + w_k t_k``.

Coverage bookkeeping (all sound, see inline comments):

* a grid point covers its exact separations;
* a row stops once ``x`` reaches ``EarlyRC[i]`` — the clamped stopping
  point covers every larger ``l1`` of that row;
* one terminal point at ``(l_br, L2)`` with ``x, y`` clamped to the
  individual bounds covers every ``l2 > L2``.

Because the grid costs ``O(C^2)`` relaxations per triple, a per-triple
solve budget caps the work; a triple that would exceed the budget is
skipped (weakening, never invalidating, the aggregate bound).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bounds.earliest import dist_to_sink, subgraph_nodes
from repro.bounds.instrumentation import Counters
from repro.bounds.rim_jain import rim_jain_sink_bound
from repro.ir.depgraph import DependenceGraph
from repro.machine.machine import MachineConfig


@dataclass(frozen=True)
class TripleBound:
    """Tradeoff analysis of an ordered branch triple ``(i, j, k)``.

    ``x, y, z`` is the covering point minimizing
    ``w_i*x + w_j*y + w_k*z``; ``evaluated`` counts RJ solves spent.
    """

    i: int
    j: int
    k: int
    x: int
    y: int
    z: int
    evaluated: int

    def cost(self, w_i: float, w_j: float, w_k: float) -> float:
        return w_i * self.x + w_j * self.y + w_k * self.z


class TriplewiseBounder:
    """Computes triple bounds for one superblock graph on one machine."""

    def __init__(
        self,
        graph: DependenceGraph,
        machine: MachineConfig,
        early_rc: list[int],
        late_rc: dict[int, dict[int, int]],
        branch_latency: int = 1,
        counters: Counters | None = None,
        solve_budget: int = 600,
    ) -> None:
        self._graph = graph
        self._machine = machine
        self._early_rc = early_rc
        self._late_rc = late_rc
        self._l_br = branch_latency
        self._counters = counters
        self._budget = solve_budget

    def _solve(
        self,
        i: int,
        j: int,
        k: int,
        l1: int,
        l2: int,
        nodes: list[int],
        dist_k: dict[int, int],
        dist_j: dict[int, int],
        dist_i: dict[int, int],
        rclass: dict[int, str],
    ) -> tuple[int, int, int]:
        rc = self._early_rc
        est_j = max(rc[j], rc[i] + l1)
        est_k = max(rc[k], est_j + l2)
        shift = est_k - rc[k]
        late_rc_k = self._late_rc[k]
        late: dict[int, int] = {}
        for v in nodes:
            d = dist_k[v]
            dj = dist_j.get(v)
            if dj is not None:
                cand = dj + l2
                if cand > d:
                    d = cand
            di = dist_i.get(v)
            if di is not None:
                cand = di + l1 + l2
                if cand > d:
                    d = cand
            dep_late = est_k - d
            rc_late = late_rc_k[v] + shift
            late[v] = dep_late if dep_late < rc_late else rc_late
        early = {v: rc[v] for v in nodes}
        occupancy = None
        if not self._machine.fully_pipelined:
            occupancy = {
                v: self._machine.occupancy_of(self._graph.op(v))
                for v in nodes
            }
        result = rim_jain_sink_bound(
            nodes, early, late, est_k, rclass, self._machine,
            self._counters, counter_prefix="tw", occupancy=occupancy,
        )
        z = result.bound
        return (z - l1 - l2, z - l2, z)

    def triple_bound(
        self, i: int, j: int, k: int, w_i: float, w_j: float, w_k: float
    ) -> TripleBound | None:
        """Compute the triple bound, or ``None`` if it exceeds the budget.

        Requires ``i < j < k`` in program order (ancestor chain through
        control edges).
        """
        if not (i < j < k):
            raise ValueError(
                f"triple ({i}, {j}, {k}) is not in program order; triplewise "
                "bounds require ordered superblock exits"
            )
        if not (
            self._graph.is_ancestor(i, j) and self._graph.is_ancestor(j, k)
        ):
            raise ValueError(
                f"branches ({i}, {j}, {k}) are not an ancestor chain; "
                "triplewise bounds require ordered superblock exits"
            )
        rc = self._early_rc
        l_min = self._l_br
        limit_1 = rc[j] + 1
        limit_2 = rc[k] + 1
        # Pessimistic full-grid size check before doing any work.
        if (limit_1 - l_min + 1) * (limit_2 - l_min + 1) > self._budget:
            return None

        nodes = subgraph_nodes(self._graph, k)
        dist_k = dist_to_sink(self._graph, k, nodes)
        dist_j = dist_to_sink(self._graph, j, subgraph_nodes(self._graph, j))
        dist_i = dist_to_sink(self._graph, i, subgraph_nodes(self._graph, i))
        rclass = {v: self._machine.resource_of(self._graph.op(v)) for v in nodes}

        best: tuple[float, int, int, int] | None = None
        evaluated = 0

        def consider(x: int, y: int, z: int) -> None:
            # Ties (duplicate weights, zero weights) break toward the
            # componentwise-largest point: at equal cost the larger
            # components are the tighter per-branch information for the
            # LP combination, and the rule is deterministic regardless of
            # grid iteration order.
            nonlocal best
            cost = w_i * x + w_j * y + w_k * z
            if (
                best is None
                or cost < best[0]
                or (cost == best[0] and (x, y, z) > (best[1], best[2], best[3]))
            ):
                best = (cost, x, y, z)

        for l2 in range(l_min, limit_2 + 1):
            for l1 in range(l_min, limit_1 + 1):
                x, y, z = self._solve(
                    i, j, k, l1, l2, nodes, dist_k, dist_j, dist_i, rclass
                )
                evaluated += 1
                if self._counters is not None:
                    self._counters.add("tw.latency_trials", 1)
                if x <= rc[i]:
                    # Clamped stopping point covers every larger l1 of this
                    # row: the relaxation stays valid (weaker separation
                    # constraint) and t_i >= EarlyRC[i] always.
                    consider(rc[i], y, z)
                    break
                consider(x, y, z)
            else:
                # Row exhausted with x still above EarlyRC[i]: cover the
                # rest of the row with the clamped last point (same
                # weaker-constraint argument as above).
                consider(rc[i], y, z)
            if evaluated > self._budget:
                return None
        # Terminal strip point: covers every l2 > limit_2 for any l1. The
        # relaxation at (l_min, limit_2) is valid for those schedules, and
        # the x, y components fall back to the individual bounds.
        x_t, y_t, z_t = self._solve(
            i, j, k, l_min, limit_2, nodes, dist_k, dist_j, dist_i, rclass
        )
        evaluated += 1
        consider(rc[i], rc[j], z_t)
        assert best is not None
        _, x, y, z = best
        return TripleBound(i=i, j=j, k=k, x=x, y=y, z=z, evaluated=evaluated)
