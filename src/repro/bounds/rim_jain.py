"""The Rim & Jain relaxation: the workhorse of every resource-aware bound.

Rim and Jain [18] lower-bound the length of a resource-constrained schedule
by solving a *relaxation* in which dependence edges are dropped and every
operation ``v`` only keeps a release time ``early[v]`` and a deadline
``late[v]`` (the latest issue that does not delay the sink). The relaxation
is solved greedily: operations are taken in increasing deadline order and
each is placed in the earliest cycle ``>= early[v]`` with a free unit of
its resource class. If some operation lands ``d`` cycles past its deadline,
the sink is provably delayed by at least ``d`` cycles, so

    bound(sink) = est(sink) + max(0, max_v (t_v - late[v]))

where ``est(sink)`` is the dependence-only earliest issue of the sink given
the release times. Earliest-deadline-first is optimal for this one-machine-
class-at-a-time relaxation, which is what makes the bound valid.

The placement loop uses a union-find "first free cycle" structure per
resource class, so a solve costs nearly ``O(V alpha(V))`` after sorting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bounds.instrumentation import Counters
from repro.machine.machine import MachineConfig


class SlotAllocator:
    """Finds the first cycle at or after a given cycle with a free unit.

    One allocator serves a single resource class with ``units`` identical
    units. Uses path-compressed skip pointers: once a cycle is full, queries
    for it jump forward to the next candidate.
    """

    __slots__ = ("units", "_used", "_skip")

    def __init__(self, units: int) -> None:
        if units <= 0:
            raise ValueError("allocator needs at least one unit")
        self.units = units
        self._used: dict[int, int] = {}
        self._skip: dict[int, int] = {}

    def _find(self, cycle: int) -> int:
        # Follow skip pointers to the first possibly-free cycle. The
        # no-pointer case dominates (most cycles are never full), so it
        # exits before allocating the compression path list.
        skip = self._skip
        nxt = skip.get(cycle)
        if nxt is None:
            return cycle
        path = [cycle]
        cycle = nxt
        while True:
            nxt = skip.get(cycle)
            if nxt is None:
                break
            path.append(cycle)
            cycle = nxt
        for c in path:
            skip[c] = cycle
        return cycle

    def allocate(self, not_before: int) -> int:
        """Reserve one unit in the first free cycle ``>= not_before``."""
        cycle = self._find(max(0, not_before))
        used = self._used.get(cycle, 0) + 1
        self._used[cycle] = used
        if used >= self.units:
            self._skip[cycle] = cycle + 1
        return cycle

    def used_in(self, cycle: int) -> int:
        return self._used.get(cycle, 0)


@dataclass
class RJResult:
    """Outcome of one Rim & Jain solve.

    Attributes:
        bound: lower bound on the sink's issue cycle.
        est_sink: dependence-only earliest issue of the sink (the ``CP``
            term of the bound formula).
        max_miss: largest deadline miss across operations (>= 0).
        placements: issue-slot estimate per op in the relaxation, keyed by
            operation index (diagnostic; not a feasible schedule). For a
            non-pipelined op this is the min over its pieces of
            ``slot - piece_index`` — the earliest issue consistent with
            every placed piece — not merely piece 0's slot.
    """

    bound: int
    est_sink: int
    max_miss: int
    placements: dict[int, int]


def solve_relaxation(
    ops: list[int],
    early: dict[int, int],
    late: dict[int, int],
    rclass: dict[int, str],
    machine: MachineConfig,
    counters: Counters | None = None,
    counter_prefix: str = "rj",
    occupancy: dict[int, int] | None = None,
) -> tuple[int, dict[int, int]]:
    """Greedy EDF placement of ``ops``; returns (max deadline miss, placements).

    Args:
        ops: operation indices to place.
        early: release time per op.
        late: deadline per op (issue at or before this cycle is on time).
        rclass: resource class name per op.
        machine: provides the unit count of each class.
        occupancy: slots each op consumes (non-pipelined units, Section
            4.1); the slots are placed independently — a relaxation of the
            real consecutive-window requirement, so the bound stays valid.

    Returns:
        ``(max_miss, placements)`` where ``max_miss`` is the largest amount
        by which any operation overshoots its deadline (0 when all make it).
    """
    # Non-pipelined ops are expanded into unit-occupancy *pieces* with
    # windows shifted by their position (the paper's Section 4.1
    # expansion, with the consecutive-slot constraint relaxed): piece i of
    # op v has release early[v]+i and deadline late[v]+i. Any feasible
    # schedule induces exactly these slot placements, so the relaxation
    # stays valid, and all pieces are unit jobs, so EDF stays optimal.
    if occupancy:
        pieces: list[tuple[int, int, int, int]] = []  # (late, early, op, piece)
        for v in ops:
            occ = occupancy.get(v, 1)
            for i in range(occ):
                pieces.append((late[v] + i, early[v] + i, v, i))
    else:
        # Fully pipelined: every op is a single unit piece.
        pieces = [(late[v], early[v], v, 0) for v in ops]
    pieces.sort()
    allocators: dict[str, SlotAllocator] = {}
    placements: dict[int, int] = {}
    max_miss = 0
    for piece_late, piece_early, v, i in pieces:
        rc_v = rclass[v]
        alloc = allocators.get(rc_v)
        if alloc is None:
            alloc = SlotAllocator(machine.units_of(rc_v))
            allocators[rc_v] = alloc
        t = alloc.allocate(piece_early)
        # Issue-slot estimate: piece i placed at t is consistent with the
        # op issuing at t - i, and with multi-unit classes a later piece
        # can land in piece 0's cycle, so the min over pieces — not the
        # first-placed piece's slot — is the earliest consistent issue.
        est = t - i
        cur = placements.get(v)
        if cur is None or est < cur:
            placements[v] = est
        miss = t - piece_late
        if miss > max_miss:
            max_miss = miss
    if counters is not None:
        counters.add(f"{counter_prefix}.place", len(pieces))
    return max_miss, placements


def rim_jain_sink_bound(
    ops: list[int],
    early: dict[int, int],
    late: dict[int, int],
    est_sink: int,
    rclass: dict[int, str],
    machine: MachineConfig,
    counters: Counters | None = None,
    counter_prefix: str = "rj",
    occupancy: dict[int, int] | None = None,
) -> RJResult:
    """Full RJ bound for a sink: ``est_sink + max(0, max deadline miss)``.

    ``late`` must be normalized so that the sink's deadline equals
    ``est_sink`` (i.e. deadlines are "latest issue not delaying the sink
    past its dependence-only earliest time").
    """
    max_miss, placements = solve_relaxation(
        ops, early, late, rclass, machine, counters, counter_prefix, occupancy
    )
    return RJResult(
        bound=est_sink + max(0, max_miss),
        est_sink=est_sink,
        max_miss=max_miss,
        placements=placements,
    )
