"""Hu-style packing bound.

Hu's classic labeling argument [10], applied per branch the way the paper's
Section 5.1 (Step 2) uses it: for each deadline level ``c``, all operations
with dependence-only deadline ``late[v] <= c`` must fit into the ``c + 1``
cycles ``0..c``; if a resource class cannot accommodate them, the branch is
delayed by the number of extra cycles the overflow requires:

    delay = ceil((NeedSlot - AvailSlot) / units_r)

The branch bound is ``EarlyDC[b]`` plus the worst such delay over every
deadline level and resource class.
"""

from __future__ import annotations

from collections import defaultdict

from repro.bounds.earliest import deadlines_for_sink, dist_to_sink, subgraph_nodes
from repro.bounds.instrumentation import Counters
from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig


def hu_branch_bound(
    sb: Superblock,
    machine: MachineConfig,
    branch: int,
    counters: Counters | None = None,
) -> int:
    """Hu packing bound on the issue cycle of one branch."""
    graph = sb.graph
    nodes = subgraph_nodes(graph, branch)
    early = graph.early_dc()
    dist = dist_to_sink(graph, branch, nodes)
    late = deadlines_for_sink(early[branch], dist)

    # Bucket piece deadlines by resource class: a blocking op of
    # occupancy k contributes unit pieces with deadlines late, late+1,
    # ..., late+k-1 (the Section 4.1 expansion) — counting all k slots
    # against the op's own deadline would over-constrain and break the
    # bound's validity.
    by_class: dict[str, list[int]] = defaultdict(list)
    for v in nodes:
        op = graph.op(v)
        rclass = machine.resource_of(op)
        for i in range(machine.occupancy_of(op)):
            by_class[rclass].append(late[v] + i)

    worst_delay = 0
    trips = 0
    for rclass, lates in by_class.items():
        units = machine.units_of(rclass)
        lates.sort()
        trips += len(lates)
        # After sorting, the k-th piece deadline (1-based) means k slots
        # are demanded by cycle lates[k-1]; sweep once.
        for k, c in enumerate(lates, start=1):
            avail = units * (c + 1)
            overflow = k - avail
            if overflow > 0:
                delay = -(-overflow // units)  # ceil division
                if delay > worst_delay:
                    worst_delay = delay
    if counters is not None:
        counters.add("hu.sweep", trips)
    return early[branch] + worst_delay


def hu_branch_bounds(
    sb: Superblock, machine: MachineConfig, counters: Counters | None = None
) -> dict[int, int]:
    """Hu bound for every exit branch."""
    return {b: hu_branch_bound(sb, machine, b, counters) for b in sb.branches}
