"""Per-branch Rim & Jain bound (the paper's "RJ" row).

Applies the relaxation of :mod:`repro.bounds.rim_jain` to the subgraph
rooted at each branch, with dependence-only release times (``EarlyDC``) and
deadlines (``LateDC``).
"""

from __future__ import annotations

from repro.bounds.earliest import deadlines_for_sink, dist_to_sink, subgraph_nodes
from repro.bounds.instrumentation import Counters
from repro.bounds.rim_jain import rim_jain_sink_bound
from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig


def rj_branch_bound(
    sb: Superblock,
    machine: MachineConfig,
    branch: int,
    counters: Counters | None = None,
    early: list[int] | None = None,
) -> int:
    """RJ lower bound on the issue cycle of one branch.

    Args:
        early: precomputed ``graph.early_dc()`` release times. The table
            is branch-independent, so :func:`rj_branch_bounds` computes it
            once and threads it through instead of copying the cached list
            once per branch.
    """
    graph = sb.graph
    nodes = subgraph_nodes(graph, branch)
    if early is None:
        early = graph.early_dc()
    dist = dist_to_sink(graph, branch, nodes)
    late = deadlines_for_sink(early[branch], dist)
    rclass = {v: machine.resource_of(graph.op(v)) for v in nodes}
    occupancy = None
    if not machine.fully_pipelined:
        occupancy = {v: machine.occupancy_of(graph.op(v)) for v in nodes}
    result = rim_jain_sink_bound(
        nodes,
        {v: early[v] for v in nodes},
        late,
        early[branch],
        rclass,
        machine,
        counters,
        counter_prefix="rj",
        occupancy=occupancy,
    )
    return result.bound


def rj_branch_bounds(
    sb: Superblock, machine: MachineConfig, counters: Counters | None = None
) -> dict[int, int]:
    """RJ bound for every exit branch.

    ``early_dc`` is hoisted out of the per-branch loop: the release times
    do not depend on the branch, and each ``graph.early_dc()`` call copies
    the cached O(n) list (tests/test_bounds_basic.py pins the single call).
    """
    early = sb.graph.early_dc()
    return {
        b: rj_branch_bound(sb, machine, b, counters, early=early)
        for b in sb.branches
    }
