"""Per-branch Rim & Jain bound (the paper's "RJ" row).

Applies the relaxation of :mod:`repro.bounds.rim_jain` to the subgraph
rooted at each branch, with dependence-only release times (``EarlyDC``) and
deadlines (``LateDC``).
"""

from __future__ import annotations

from repro import kernels
from repro.bounds.earliest import deadlines_for_sink, dist_to_sink, subgraph_nodes
from repro.bounds.instrumentation import Counters
from repro.bounds.rim_jain import rim_jain_sink_bound
from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig


def branch_problem(
    sb: Superblock,
    machine: MachineConfig,
    branch: int,
    early: list[int] | None = None,
):
    """The relaxation inputs for one branch, as the python path builds them.

    Shared with the ``kernel`` verify oracle so the reference problem the
    array kernels are audited against cannot drift from the real one.
    Returns ``(nodes, early_map, late, est, rclass, occupancy)``.
    """
    graph = sb.graph
    nodes = subgraph_nodes(graph, branch)
    if early is None:
        early = graph.early_dc()
    dist = dist_to_sink(graph, branch, nodes)
    late = deadlines_for_sink(early[branch], dist)
    rclass = {v: machine.resource_of(graph.op(v)) for v in nodes}
    occupancy = None
    if not machine.fully_pipelined:
        occupancy = {v: machine.occupancy_of(graph.op(v)) for v in nodes}
    return (
        nodes,
        {v: early[v] for v in nodes},
        late,
        early[branch],
        rclass,
        occupancy,
    )


def rj_branch_bound(
    sb: Superblock,
    machine: MachineConfig,
    branch: int,
    counters: Counters | None = None,
    early: list[int] | None = None,
) -> int:
    """RJ lower bound on the issue cycle of one branch.

    Args:
        early: precomputed ``graph.early_dc()`` release times. The table
            is branch-independent, so :func:`rj_branch_bounds` computes it
            once and threads it through instead of copying the cached list
            once per branch. A *custom* table always takes the python
            path: the array context bakes in the default release times.
    """
    if early is None and kernels.use_numpy():
        from repro.kernels import rj_numpy

        bound = rj_numpy.branch_bound(sb, machine, branch, counters)
        if bound is not None:
            return bound
    nodes, early_map, late, est, rclass, occupancy = branch_problem(
        sb, machine, branch, early
    )
    result = rim_jain_sink_bound(
        nodes,
        early_map,
        late,
        est,
        rclass,
        machine,
        counters,
        counter_prefix="rj",
        occupancy=occupancy,
    )
    return result.bound


def rj_branch_bounds(
    sb: Superblock, machine: MachineConfig, counters: Counters | None = None
) -> dict[int, int]:
    """RJ bound for every exit branch.

    Under the numpy backend (``REPRO_KERNEL``, see :mod:`repro.kernels`)
    every branch is solved in one batched array computation; the python
    path hoists ``early_dc`` out of the per-branch loop instead (the
    release times do not depend on the branch, and each
    ``graph.early_dc()`` call copies the cached O(n) list —
    tests/test_bounds_basic.py pins the single call).
    """
    if kernels.use_numpy():
        from repro.kernels import rj_numpy

        bounds = rj_numpy.branch_bounds(sb, machine, counters)
        if bounds is not None:
            return bounds
    early = sb.graph.early_dc()
    return {
        b: rj_branch_bound(sb, machine, b, counters, early=early)
        for b in sb.branches
    }
