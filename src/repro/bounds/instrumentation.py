"""Loop-trip-count instrumentation for the bound algorithms.

Table 2 of the paper characterizes each bound's cost by the *sum of its
loop trip counts*. The bound implementations accept an optional
:class:`Counters` object and increment named counters in their inner loops;
the Table 2 harness aggregates them per algorithm.

Counting is optional and costs nothing when disabled: every hot loop guards
the increment with ``if counters is not None``.
"""

from __future__ import annotations

from collections import Counter


class Counters:
    """Named trip counters with a tiny API.

    Example::

        counters = Counters()
        counters.add("rj.place", 5)
        counters.total("rj")        # sum of all counters under the rj. prefix
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] += amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def total(self, prefix: str = "") -> int:
        """Sum of all counters whose name starts with ``prefix``."""
        if not prefix:
            return sum(self._counts.values())
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return sum(
            count
            for name, count in self._counts.items()
            if name == prefix or name.startswith(dotted)
        )

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    def merge(self, other: "Counters") -> None:
        self._counts.update(other._counts)

    def clear(self) -> None:
        self._counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counters({dict(self._counts)!r})"
