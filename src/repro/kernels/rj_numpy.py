"""Array kernels for the per-branch Rim & Jain relaxation.

The python reference (:mod:`repro.bounds.rim_jain`) solves the relaxation
with a greedy EDF loop over per-op dicts. This module replaces the hot
``rj_branch_bounds`` path with a batched tensor computation built on the
relaxation's *dual form*:

    For one resource class with ``u`` identical units and unit-time
    pieces, the greedy EDF placement's largest deadline miss equals

        max(0, max over (s, d) of  s + ceil(N(s, d) / u) - 1 - d)

    where ``s`` ranges over the distinct (clamped, >= 0) release times,
    ``d`` over the distinct deadlines, and ``N(s, d)`` counts pieces with
    release >= s and deadline <= d. The ``N`` pieces all run in cycles
    ``>= s``, at most ``u`` per cycle, so the last finishes no earlier
    than ``s + ceil(N/u) - 1``; conversely EDF is optimal for unit jobs,
    so the worst such interval is exactly the greedy's miss. The ``kernel``
    verify family pins this equality against the reference greedy on the
    fuzz corpus, including blocking (occupancy > 1) machines.

Everything that depends only on ``(graph, machine)`` — node subsets, sink
distances, resource-class codes, the occupancy piece expansion, and the
per-class release/deadline histograms ``N`` is derived from — is built
once per graph and cached (the same hoisting discipline
:class:`repro.bounds.pairwise.PairwiseBounder` applies per sink). Each
``rj_branch_bounds`` call then recomputes the solve itself: two prefix
sums over the histogram tensor and a handful of elementwise ops, batched
across every branch and resource class at once.

For :class:`~repro.bounds.rim_jain.RJResult` parity (``placements``), the
module also carries an exact EDF greedy over int arrays
(:class:`ArraySlotAllocator` replaces the dict-based ``SlotAllocator``);
it is the cold path, used by the verify oracle and on demand.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.bounds.earliest import dist_to_sink, subgraph_nodes

#: Sentinel for masked/padded cells of the candidate-miss tensor. Any
#: real cell is bounded by u * horizon (~1e7), so -2**29 never wins a max
#: against a genuine candidate, and int32 arithmetic cannot overflow.
_NEG = -(1 << 29)

#: Ceiling on the ragged histogram layout (sum of |S|*|D| over groups).
#: Above this the flat arrays would waste memory (pathological occupancy
#: expansions); callers fall back to the python path.
_MAX_CELLS = 4_000_000

#: Contexts at or below this many cells solve with a plain python scan
#: over the same flat data: the numpy calls cost a few microseconds flat,
#: which a sub-hundred-cell loop undercuts (measured crossover).
_SMALL_CELLS = 96


class ArraySlotAllocator:
    """``SlotAllocator`` over int arrays: first free cycle >= a query.

    ``_skip`` is a union-find "next candidate" table with path halving;
    ``_used`` counts occupancy per cycle. Capacity is sized by the caller
    (max clamped release + piece count suffices: each placement advances
    at most one cycle past the previous worst case).
    """

    __slots__ = ("units", "_used", "_skip")

    def __init__(self, units: int, capacity: int) -> None:
        if units <= 0:
            raise ValueError("allocator needs at least one unit")
        self.units = units
        self._used = np.zeros(capacity, dtype=np.int64)
        self._skip = np.arange(capacity + 1, dtype=np.int64)

    def allocate(self, not_before: int) -> int:
        skip = self._skip
        c = not_before if not_before > 0 else 0
        # Find the root candidate, halving the path as we go.
        while skip[c] != c:
            skip[c] = skip[skip[c]]
            c = int(skip[c])
        used = self._used
        used[c] += 1
        if used[c] >= self.units:
            skip[c] = c + 1
        return c


def _piece_arrays(nodes, early, late, occupancy):
    """Expand ops into unit pieces: (late, eclamp, e, op, off) arrays."""
    p_late: list[int] = []
    p_e: list[int] = []
    p_op: list[int] = []
    p_off: list[int] = []
    if occupancy:
        for v in nodes:
            lv, ev = late[v], early[v]
            for i in range(occupancy.get(v, 1)):
                p_late.append(lv + i)
                p_e.append(ev + i)
                p_op.append(v)
                p_off.append(i)
    else:
        for v in nodes:
            p_late.append(late[v])
            p_e.append(early[v])
            p_op.append(v)
            p_off.append(0)
    late_a = np.asarray(p_late, dtype=np.int64)
    e_a = np.asarray(p_e, dtype=np.int64)
    return (
        late_a,
        np.maximum(e_a, 0),
        e_a,
        np.asarray(p_op, dtype=np.int64),
        np.asarray(p_off, dtype=np.int64),
    )


def _class_histogram(eclamp, late):
    """(S, D, C2) for one class: distinct releases/deadlines and counts."""
    S = np.unique(eclamp)
    D = np.unique(late)
    C2 = np.zeros((len(S), len(D)), dtype=np.int64)
    np.add.at(
        C2,
        (np.searchsorted(S, eclamp), np.searchsorted(D, late)),
        1,
    )
    return S, D, C2


def dual_max_miss(eclamp, late, grp, units_of_grp) -> int:
    """Dual-form max deadline miss over already-expanded piece arrays.

    Args:
        eclamp: per-piece release, clamped to >= 0.
        late: per-piece deadline.
        grp: per-piece resource-class code.
        units_of_grp: unit count per class code.

    Returns ``max(0, miss)``, matching the reference greedy's convention.
    """
    best = 0
    for g in np.unique(grp):
        sel = grp == g
        S, D, C2 = _class_histogram(eclamp[sel], late[sel])
        # N(s, d): suffix-sum over releases, prefix-sum over deadlines.
        N = np.cumsum(C2[::-1, :], axis=0)[::-1, :]
        N = np.cumsum(N, axis=1)
        u = int(units_of_grp[int(g)])
        cand = S[:, None] + (N + u - 1) // u - 1 - D[None, :]
        cand = np.where(N > 0, cand, _NEG)
        best = max(best, int(cand.max()))
    return best


def greedy_solve(late, e, op, off, grp, units_of_grp):
    """Exact EDF greedy over piece arrays: ``(max_miss, placements)``.

    Pieces are sorted once by ``(late, early, op)`` — identical to the
    reference ``pieces.sort()`` order — then placed left to right with
    one :class:`ArraySlotAllocator` per resource class. ``placements``
    follows the reference convention: the op's issue-slot estimate,
    ``min`` over its pieces of ``slot - piece_index``.
    """
    order = np.lexsort((op, e, late))
    s_late = late[order].tolist()
    s_e = e[order].tolist()
    s_op = op[order].tolist()
    s_off = off[order].tolist()
    s_grp = grp[order].tolist()
    capacity = int(max(np.max(e, initial=0), 0)) + len(s_late) + 2
    allocators: dict[int, ArraySlotAllocator] = {}
    placements: dict[int, int] = {}
    max_miss = 0
    for piece_late, piece_e, v, i, g in zip(s_late, s_e, s_op, s_off, s_grp):
        alloc = allocators.get(g)
        if alloc is None:
            alloc = ArraySlotAllocator(int(units_of_grp[g]), capacity)
            allocators[g] = alloc
        t = alloc.allocate(piece_e)
        est = t - i
        cur = placements.get(v)
        if cur is None or est < cur:
            placements[v] = est
        miss = t - piece_late
        if miss > max_miss:
            max_miss = miss
    return max_miss, placements


class BranchRJContext:
    """Per-(graph, machine) arrays for every exit branch's relaxation.

    ``ok`` is False when the padded tensor would exceed :data:`_MAX_CELLS`
    (callers fall back to the python path).
    """

    __slots__ = (
        "ok",
        "branches",
        "est",
        "place_counts",
        "C3r",
        "B3r",
        "group_u",
        "branch_groups",
        "per_branch",
        "units_of_grp",
        "_group_starts",
        "_py_groups",
        "_cs_buf",
    )

    def __init__(self, sb, machine) -> None:
        graph = sb.graph
        early = graph.early_dc()
        rc_names = machine.resource_classes
        rc_code = {name: k for k, name in enumerate(rc_names)}
        self.units_of_grp = [machine.units_of(name) for name in rc_names]
        pipelined = machine.fully_pipelined

        self.branches = list(sb.branches)
        self.est = [early[b] for b in self.branches]
        self.place_counts: list[int] = []
        self.per_branch: list[tuple] = []
        groups: list[tuple[int, ...]] = []  # (u, S, D, C2) per group
        group_starts: list[int] = []
        for b in self.branches:
            group_starts.append(len(groups))
            nodes = subgraph_nodes(graph, b)
            dist = dist_to_sink(graph, b, nodes)
            est_b = early[b]
            late = {v: est_b - dist[v] for v in nodes}
            occupancy = None
            if not pipelined:
                occupancy = {
                    v: machine.occupancy_of(graph.op(v)) for v in nodes
                }
            p_late, p_ec, p_e, p_op, p_off = _piece_arrays(
                nodes, early, late, occupancy
            )
            p_grp = np.asarray(
                [rc_code[machine.resource_of(graph.op(v))] for v in p_op],
                dtype=np.int64,
            )
            self.place_counts.append(len(p_late))
            self.per_branch.append((p_late, p_ec, p_e, p_op, p_off, p_grp))
            for g in np.unique(p_grp):
                sel = p_grp == g
                S, D, C2 = _class_histogram(p_ec[sel], p_late[sel])
                groups.append((self.units_of_grp[int(g)], S, D, C2))

        #: [start, stop) group-index range of each branch.
        self.branch_groups = [
            (start, stop)
            for start, stop in zip(
                group_starts, group_starts[1:] + [len(groups)]
            )
        ]
        self.group_u = [u for u, _S, _D, _C in groups]
        cells = sum(len(S) * len(D) for _u, S, D, _C in groups)
        if cells > _MAX_CELLS:
            self.ok = False
            return
        self.ok = True
        # Ragged flat layout, one int32 cell per *real* (group, s, d)
        # triple — no padding:
        #
        # * the static side stores the release-*cumulative* histogram
        #   ``Crel(s, d) = #pieces with release >= s and deadline == d``
        #   (rows = (group, s) pairs, each row a dense deadline line), so
        #   the per-call scan only runs along the deadline axis:
        #   ``N(s, d) = prefix-sum of Crel over d``. The ragged rows are
        #   concatenated, and each row's *first* cell is compensated by
        #   the static total of everything before it — so one *global*
        #   cumsum lands exactly on the row-local prefix sums, with no
        #   per-row fix-up left in the per-call path at all.
        # * the per-cell candidate is kept *scaled by u*: maximizing
        #   ``A + ceil(N/u)`` equals maximizing ``(N + u*A + u - 1) // u``,
        #   and floor division by the group constant u commutes with max,
        #   so the division collapses to one python op per group;
        # * cells with N == 0 are static (the histogram is), so the B term
        #   holds the _NEG sentinel there. Cell 0 is a guard keeping every
        #   row-start compensation in-bounds.
        crel = np.zeros(cells + 1, dtype=np.int64)
        b = np.full(cells + 1, _NEG, dtype=np.int32)
        row_starts: list[int] = []
        group_starts_flat = np.zeros(len(groups), dtype=np.intp)
        pos = 1
        for k, (u, S, D, C2) in enumerate(groups):
            group_starts_flat[k] = pos
            nd = len(D)
            crel2 = np.cumsum(C2[::-1, :], axis=0)  # suffix over releases
            n2 = np.cumsum(crel2, axis=1)
            B2 = u * (S[::-1, None] - 1 - D[None, :]) + (u - 1)
            B2 = np.where(n2 > 0, B2, _NEG)
            for row in range(len(S)):
                row_starts.append(pos)
                crel[pos : pos + nd] = crel2[row]
                b[pos : pos + nd] = B2[row]
                pos += nd
        starts = np.asarray(row_starts, dtype=np.intp)
        totals = np.cumsum(crel)
        # The carried-in value at a row start is the *previous row's*
        # local total (everything older is already cancelled by earlier
        # compensations), so subtract the per-row raw totals, not the
        # global running total. Magnitudes stay within the piece count,
        # so int32 is safe.
        crel[starts] -= np.diff(totals[starts - 1], prepend=0)
        self.C3r = crel.astype(np.int32)
        self.B3r = b
        #: group -> python-int flat index of its first cell (tail loop).
        self._group_starts = group_starts_flat
        if cells <= _SMALL_CELLS:
            # Below a few dozen cells the fixed cost of the numpy calls
            # exceeds a plain python scan over the same flat data; keep a
            # pre-zipped flat view per group and skip numpy entirely.
            bounds_flat = group_starts_flat.tolist() + [cells + 1]
            self._py_groups = [
                tuple(
                    zip(
                        self.C3r[lo:hi].tolist(),
                        b[lo:hi].tolist(),
                    )
                )
                for lo, hi in zip(bounds_flat, bounds_flat[1:])
            ]
            return
        self._py_groups = None
        self._cs_buf = np.empty_like(self.C3r)

    def solve_bounds(self) -> list[int]:
        """One batched dual-form solve: the RJ bound per branch."""
        if self._py_groups is not None:
            # The running sum is global, like the numpy cumsum: the
            # compensated row-start cells subtract everything carried in
            # from earlier rows and groups.
            scaled = []
            run = 0
            for cells_g in self._py_groups:
                g = _NEG
                for c, bb in cells_g:
                    run += c
                    v = run + bb
                    if v > g:
                        g = v
                scaled.append(g)
        else:
            cs = self._cs_buf
            np.cumsum(self.C3r, out=cs)  # row-local N (compensated starts)
            np.add(cs, self.B3r, out=cs)
            scaled = np.maximum.reduceat(cs, self._group_starts).tolist()
        group_u = self.group_u
        out = []
        for est_b, (start, stop) in zip(self.est, self.branch_groups):
            miss = max(scaled[k] // group_u[k] for k in range(start, stop))
            out.append(est_b + miss if miss > 0 else est_b)
        return out


#: graph -> [(machine, BranchRJContext)]; weak keys so corpora don't pin
#: contexts past their graphs' lifetimes.
_CTX_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def context(sb, machine) -> BranchRJContext:
    graph = sb.graph
    try:
        entries = _CTX_CACHE.get(graph)
        if entries is None:
            entries = []
            _CTX_CACHE[graph] = entries
    except TypeError:  # not weakrefable: build uncached
        return BranchRJContext(sb, machine)
    for m, ctx in entries:
        if m is machine or m == machine:
            return ctx
    ctx = BranchRJContext(sb, machine)
    entries.append((machine, ctx))
    return ctx


def branch_bounds(sb, machine, counters=None) -> dict[int, int] | None:
    """Batched RJ bound for every exit branch; None = use python path."""
    ctx = context(sb, machine)
    if not ctx.ok:
        return None
    bounds = ctx.solve_bounds()
    if counters is not None:
        for count in ctx.place_counts:
            counters.add("rj.place", count)
    return dict(zip(ctx.branches, bounds))


def branch_bound(sb, machine, branch, counters=None) -> int | None:
    """RJ bound for one branch via the batched context; None = fallback."""
    ctx = context(sb, machine)
    if not ctx.ok:
        return None
    pos = ctx.branches.index(branch)
    bound = int(ctx.solve_bounds()[pos])
    if counters is not None:
        counters.add("rj.place", ctx.place_counts[pos])
    return bound


def solve_full(sb, machine, branch):
    """Exact array-greedy solve for one branch: ``(max_miss, placements)``.

    The verify oracle compares this against the reference
    ``solve_relaxation`` (placements parity) and against the dual form
    (bound parity). Returns None when the context fell back.
    """
    ctx = context(sb, machine)
    if not ctx.ok:
        return None
    pos = ctx.branches.index(branch)
    p_late, p_ec, _p_e, p_op, p_off, p_grp = ctx.per_branch[pos]
    # The greedy must see the same clamped releases the allocator would
    # apply; sort ties on the *unclamped* values matching the reference.
    max_miss, placements = greedy_solve(
        p_late, _p_e, p_op, p_off, p_grp, ctx.units_of_grp
    )
    return max_miss, placements
