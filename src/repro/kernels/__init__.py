"""Kernel backend selection for the bound hot paths.

The Rim & Jain relaxation and the Pairwise separation sweep each have two
interchangeable implementations:

* the **python** path — the original per-op dict code in
  :mod:`repro.bounds.rim_jain` and :mod:`repro.bounds.pairwise`. It is the
  *reference oracle*: small, auditable, dependency-free.
* the **numpy** path — flat-array kernels in :mod:`repro.kernels.rj_numpy`
  and :mod:`repro.kernels.pairwise_numpy` that renumber nodes densely,
  sort the relaxation's pieces once with ``np.lexsort``, and solve the
  per-class placement over int arrays.

Selection is driven by the ``REPRO_KERNEL`` environment variable:

* ``auto`` (default) — numpy when importable, python otherwise;
* ``numpy`` — require the array kernels (error if numpy is missing);
* ``python`` — force the reference path (never imports numpy).

Both paths are required to be *bit-identical* — bounds, max_miss,
placements, and instrumentation counters — which the ``kernel`` verify
oracle family pins on the fuzz corpus (``repro verify --family kernel``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: Environment variable naming the backend: ``python``, ``numpy``, ``auto``.
KERNEL_ENV = "REPRO_KERNEL"

_BACKENDS = ("python", "numpy", "auto")

# Import-probe result, cached per process: None = not probed yet,
# (module | False) afterwards. The probe never runs under
# REPRO_KERNEL=python, so the forced-python path works without numpy
# installed at all.
_numpy_probe: object = None


def _numpy_module():
    global _numpy_probe
    if _numpy_probe is None:
        try:
            import numpy  # noqa: F401 - availability probe

            _numpy_probe = numpy
        except ImportError:
            _numpy_probe = False
    return _numpy_probe if _numpy_probe is not False else None


def numpy_available() -> bool:
    """True when the numpy backend could be selected."""
    return _numpy_module() is not None


# (raw env value, resolved backend) — backend() sits on the bound hot
# path, so repeat resolutions of the same env value short-circuit on one
# short string comparison instead of re-validating and re-probing.
# Changing the variable (or forced()) naturally invalidates the entry;
# tests that monkeypatch the import probe must also reset this.
_resolved: tuple[str | None, str] | None = None


def backend() -> str:
    """Resolve ``REPRO_KERNEL`` to the active backend name.

    Raises:
        ValueError: the variable holds an unknown value.
        RuntimeError: ``REPRO_KERNEL=numpy`` but numpy is not importable
            (``auto`` falls back to python silently instead).
    """
    global _resolved
    raw = os.environ.get(KERNEL_ENV)
    if _resolved is not None and _resolved[0] == raw:
        return _resolved[1]
    choice = (raw or "auto").strip().lower() or "auto"
    if choice not in _BACKENDS:
        raise ValueError(
            f"invalid {KERNEL_ENV}={choice!r}; expected one of {_BACKENDS}"
        )
    if choice == "python":
        resolved = "python"
    elif choice == "numpy":
        if not numpy_available():
            raise RuntimeError(
                f"{KERNEL_ENV}=numpy but numpy is not importable; "
                "install it or use REPRO_KERNEL=auto|python"
            )
        resolved = "numpy"
    else:
        resolved = "numpy" if numpy_available() else "python"
    _resolved = (raw, resolved)
    return resolved


def use_numpy() -> bool:
    """True when the array kernels should serve the hot paths."""
    return backend() == "numpy"


@contextmanager
def forced(choice: str) -> Iterator[None]:
    """Temporarily pin the backend (tests and the kernel verify oracle)."""
    old = os.environ.get(KERNEL_ENV)
    os.environ[KERNEL_ENV] = choice
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(KERNEL_ENV, None)
        else:
            os.environ[KERNEL_ENV] = old


__all__ = [
    "KERNEL_ENV",
    "backend",
    "forced",
    "numpy_available",
    "use_numpy",
]
