"""Array kernel for the Pairwise separation sweep.

The python sweep in :mod:`repro.bounds.pairwise` builds a deadline dict
and runs the greedy EDF relaxation once per candidate separation. This
module replaces that per-eval work with flat arrays over the later
branch's subgraph, evaluating the relaxation through the same *dual form*
as :mod:`repro.kernels.rj_numpy`:

    max_miss = max over classes g, releases s, deadlines d of
               s + ceil(N(s, d) / u_g) - 1 - d,   N(s, d) > 0

where ``N(s, d)`` counts pieces of class ``g`` with clamped release
``>= s`` and deadline ``<= d``. Releases come from the static ``EarlyRC``
map, so the release axis (distinct clamped values per class) is fixed at
build time; only the deadlines move between separations.

Everything that shifts uniformly with ``est_j`` is kept *relative*: the
deadline of every node is ``est_j + rel`` for both the ``base_rel`` term
and the virtual-edge term ``-dist_i - l`` (see the sweep's warm-start
derivation), so ``est_j`` only enters the final scalar arithmetic and the
engine needs no warm-start state at all.

Per evaluation the engine runs:

1. a scatter-min of ``-dist_i - separation`` into the (static) positions
   of ``i``'s subgraph — the whole "deadline map update";
2. a gather to per-piece deadlines plus one ``np.lexsort`` grouping
   pieces by class and sorting by deadline within each class;
3. a masked cumulative count over the ragged (class, release-rank) x
   piece cell grid. Row totals are order-independent, so the carried-in
   prefix of every row is *static* and folded into the candidate offsets
   — the dynamic part is one global cumsum plus elementwise arithmetic.

Bit-identity with the python path (bounds and counters) is pinned by the
``kernel`` verify family and tests/test_kernels.py.
"""

from __future__ import annotations

import numpy as np

#: Sentinel for masked cells; far below any real candidate, and int32
#: arithmetic with in-range offsets cannot overflow.
_NEG = -(1 << 29)

#: Ceiling on the per-engine cell grid (sum over classes of
#: |distinct releases| * |pieces|); above this the per-eval arrays would
#: outgrow cache for no benefit, so callers fall back to python.
_MAX_CELLS = 250_000

#: Floor on the cell grid: small subgraphs evaluate faster through the
#: python dict path than through the engine's fixed per-eval numpy call
#: overhead plus its build cost (measured crossover on the bench corpus).
_MIN_CELLS = 384

#: Cheap pre-gate on the piece count, checked before any array or dict
#: build so rejected subgraphs cost almost nothing. Sized so the engine
#: only serves the large sweeps it actually wins; everything smaller
#: stays on the python dict path.
_MIN_PIECES = 64


class SinkSweepEngine:
    """Per-(graph, machine, j) arrays for the separation sweep.

    ``ok`` is False when the subgraph's cell grid exceeds
    :data:`_MAX_CELLS`; callers must then use the python path.
    """

    __slots__ = (
        "ok",
        "n_pieces",
        "_pos",
        "_base",
        "_p_node",
        "_p_off",
        "_p_cls",
        "_u_blocked",
        "_esrank",
        "_k_map",
        "_thresh",
        "_a2",
        "_carry",
        "_class_starts",
        "_class_u",
        "_lr",
        "_plr",
        "_pl2",
        "_esr2",
        "_ud",
        "_c1",
        "_c2",
        "_b",
    )

    def __init__(
        self,
        nodes,
        early,
        base_rel,
        rclass,
        occupancy,
        units_of,
    ) -> None:
        """
        Args:
            nodes: the later branch's subgraph nodes (graph indices).
            early: static release time per node (``EarlyRC`` values).
            base_rel: deadline relative to ``est_j`` per node, before the
                virtual-edge term.
            rclass: resource class name per node.
            occupancy: slots per node for non-pipelined machines, or None.
            units_of: callable name -> unit count.
        """
        self.n_pieces = (
            sum(occupancy.get(v, 1) for v in nodes)
            if occupancy
            else len(nodes)
        )
        if self.n_pieces < _MIN_PIECES:
            # Too small to amortize the build; bail before any
            # array/dict work (ok=False just means python fallback).
            self.ok = False
            return
        self._pos = {v: k for k, v in enumerate(nodes)}
        self._base = np.asarray(
            [base_rel[v] for v in nodes], dtype=np.int32
        )
        class_names = sorted({rclass[v] for v in nodes})
        cls_code = {name: c for c, name in enumerate(class_names)}

        # Pieces, grouped class-contiguously (static blocks): piece i of
        # node v has release early[v]+i and deadline late[v]+i, exactly
        # as solve_relaxation expands them.
        p_node: list[int] = []
        p_off: list[int] = []
        p_cls: list[int] = []
        eclamp: list[int] = []
        class_blocks: list[tuple[int, int]] = []  # piece [lo, hi) per class
        for name in class_names:
            lo = len(p_node)
            code = cls_code[name]
            for k, v in enumerate(nodes):
                if rclass[v] != name:
                    continue
                occ = occupancy.get(v, 1) if occupancy else 1
                e_v = early[v]
                for i in range(occ):
                    p_node.append(k)
                    p_off.append(i)
                    p_cls.append(code)
                    e = e_v + i
                    eclamp.append(e if e > 0 else 0)
            class_blocks.append((lo, len(p_node)))
        self.n_pieces = len(p_node)

        # Rows: one per (class, distinct clamped release), cells = the
        # class's pieces sorted by deadline. Row totals (pieces with
        # release rank >= the row's) are order-independent, so the
        # carried-in global prefix before each row is static.
        cells = 0
        per_class: list[tuple[int, np.ndarray, np.ndarray]] = []
        esrank = np.zeros(self.n_pieces, dtype=np.int32)
        for name, (lo, hi) in zip(class_names, class_blocks):
            ec = np.asarray(eclamp[lo:hi], dtype=np.int64)
            S = np.unique(ec)
            esrank[lo:hi] = np.searchsorted(S, ec).astype(np.int32)
            per_class.append((units_of(name), S, ec))
            cells += len(S) * (hi - lo)
        if cells > _MAX_CELLS or cells < _MIN_CELLS:
            self.ok = False
            return
        self.ok = True

        self._p_node = np.asarray(p_node, dtype=np.intp)
        self._p_off = (
            np.asarray(p_off, dtype=np.int32) if occupancy else None
        )
        self._p_cls = np.asarray(p_cls, dtype=np.int32)
        u_blocked = np.zeros(self.n_pieces, dtype=np.int32)
        self._esrank = esrank

        k_map = np.zeros(cells, dtype=np.intp)
        thresh = np.zeros(cells, dtype=np.int32)
        a2 = np.zeros(cells, dtype=np.int32)
        carry = np.zeros(cells, dtype=np.int32)
        class_starts = np.zeros(len(class_names), dtype=np.intp)
        class_u: list[int] = []
        pos = 0
        carried = 0
        for c, ((u, S, ec), (lo, hi)) in enumerate(
            zip(per_class, class_blocks)
        ):
            np_c = hi - lo
            ns = len(S)
            block = slice(pos, pos + ns * np_c)
            u_blocked[lo:hi] = u
            class_starts[c] = pos
            class_u.append(u)
            k_map[block] = np.tile(np.arange(lo, hi), ns)
            thresh[block] = np.repeat(
                np.arange(ns, dtype=np.int32), np_c
            )
            # Row totals T[r] = #pieces with release rank >= r are
            # order-independent, so the carried-in global prefix before
            # each row is static; fold it into the candidate offset
            # u*(s-1)+(u-1) so the per-eval cumsum lands directly on N.
            hist = np.bincount(esrank[lo:hi], minlength=ns)
            totals = np.cumsum(hist[::-1])[::-1]
            carry_rows = carried + np.concatenate(
                ([0], np.cumsum(totals[:-1]))
            )
            a_rows = u * (S - 1) + (u - 1)
            a2[block] = np.repeat(a_rows - carry_rows, np_c)
            carry[block] = np.repeat(carry_rows, np_c)
            carried = int(carry_rows[-1] + totals[-1])
            pos += ns * np_c
        self._k_map = k_map
        self._thresh = thresh
        self._a2 = a2
        self._carry = carry
        self._class_starts = class_starts
        self._class_u = class_u

        self._u_blocked = u_blocked
        self._lr = np.empty(len(nodes), dtype=np.int32)
        self._plr = np.empty(self.n_pieces, dtype=np.int32)
        self._pl2 = np.empty(self.n_pieces, dtype=np.int32)
        self._esr2 = np.empty(self.n_pieces, dtype=np.int32)
        self._ud = np.empty(self.n_pieces, dtype=np.int32)
        self._c1 = np.empty(cells, dtype=np.int32)
        self._c2 = np.empty(cells, dtype=np.int32)
        self._b = np.empty(cells, dtype=bool)

    def i_arrays(self, i_items):
        """Positions/distances of ``i``'s subgraph in this engine's order.

        ``i_items`` is the bounder's sorted ``(node, dist_i)`` list; the
        result feeds :meth:`bound_at` and should be cached per pair.
        """
        pos = self._pos
        ipos = np.asarray([pos[v] for v, _d in i_items], dtype=np.intp)
        idist = np.asarray([d for _v, d in i_items], dtype=np.int32)
        return ipos, idist

    def bound_at(self, separation, est_j, ipos, idist) -> int:
        """Lower bound on ``t_j`` with the virtual edge at ``separation``."""
        lr = self._lr
        np.copyto(lr, self._base)
        if len(ipos):
            # The whole deadline-map update: min the virtual-edge term
            # into i's subgraph positions (all relative to est_j).
            cand = -idist - np.int32(separation)
            np.minimum(lr[ipos], cand, out=cand)
            lr[ipos] = cand

        plr = self._plr
        np.take(lr, self._p_node, out=plr)
        if self._p_off is not None:
            np.add(plr, self._p_off, out=plr)
        order = np.lexsort((plr, self._p_cls))
        late_sorted = self._pl2
        np.take(plr, order, out=late_sorted)
        esr_sorted = self._esr2
        np.take(self._esrank, order, out=esr_sorted)
        ud = self._ud
        np.multiply(late_sorted, self._u_blocked, out=ud)

        t = self._c1
        cs = self._c2
        b = self._b
        np.take(esr_sorted, self._k_map, out=t)
        np.greater_equal(t, self._thresh, out=b)
        np.cumsum(b, out=cs)  # global count; rows fixed up via _a2/_carry
        np.take(ud, self._k_map, out=t)
        np.subtract(cs, t, out=t)
        np.add(t, self._a2, out=t)  # u*(s + ceil(N/u) - 1 - d_rel), scaled
        np.less_equal(cs, self._carry, out=b)  # N == 0: vacuous window
        np.copyto(t, _NEG, where=b)
        smax = np.maximum.reduceat(t, self._class_starts).tolist()
        # floor((X - u*est_j)/u) == X//u - est_j exactly, so est_j drops
        # out of the per-class division.
        miss = max(
            sm // u - est_j for sm, u in zip(smax, self._class_u)
        )
        return est_j + miss if miss > 0 else est_j
