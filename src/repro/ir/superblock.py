"""Superblocks: single-entry, multiple-exit scheduling regions.

A superblock (Hwu et al. [3] in the paper) is a sequence of basic blocks
with one entry and one exit per block. Each exit is a branch operation with
an *exit probability* — the probability that control leaves the superblock
at that branch. The scheduling objective is to minimize the **weighted
completion time (WCT)**:

    WCT = sum over branches b of  w_b * (issue_cycle(b) + l_br)

where ``l_br`` is the branch latency (1 cycle in all paper configurations).

Structural invariants (enforced by :mod:`repro.ir.validate`):

* branch operations appear in increasing index order (program order);
* consecutive branches are linked by a *control edge* of latency ``l_br``,
  so branches can never be reordered and every earlier branch is an
  ancestor of every later branch — the property the Pairwise bound's
  Theorem 2 relies on;
* exit probabilities are non-negative and sum to 1 across all exits.

Non-branch operations may be *speculated* above branches they have no
dependence path to; they can never sink below a branch that transitively
depends on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.ir.depgraph import DependenceGraph
from repro.ir.operation import BRANCH_LATENCY, Operation


@dataclass(frozen=True)
class Superblock:
    """An immutable superblock: a frozen dependence graph plus exit weights.

    Attributes:
        name: identifier used in corpora and reports.
        graph: the frozen dependence graph (data + control edges).
        exec_freq: execution frequency of the superblock; used to weight
            aggregate ("dynamic") cycle counts across a corpus.
    """

    name: str
    graph: DependenceGraph
    exec_freq: float = 1.0
    source: str = ""
    attrs: dict = field(default_factory=dict, compare=False)

    @cached_property
    def branches(self) -> tuple[int, ...]:
        """Indices of the exit branches, in program order."""
        return tuple(self.graph.branches())

    @cached_property
    def weights(self) -> dict[int, float]:
        """Exit probability of each branch, keyed by operation index."""
        return {b: self.graph.op(b).exit_prob for b in self.branches}

    @property
    def num_operations(self) -> int:
        return self.graph.num_operations

    @property
    def num_branches(self) -> int:
        return len(self.branches)

    @property
    def branch_latency(self) -> int:
        """The paper's ``l_br``; constant across all operations here."""
        return BRANCH_LATENCY

    @property
    def operations(self) -> tuple[Operation, ...]:
        return self.graph.operations

    def op(self, idx: int) -> Operation:
        return self.graph.op(idx)

    @cached_property
    def last_branch(self) -> int:
        """Index of the final (fall-through) exit."""
        if not self.branches:
            raise ValueError(f"superblock {self.name!r} has no exit branch")
        return self.branches[-1]

    @cached_property
    def branch_order(self) -> dict[int, int]:
        """Map from branch op index to its 0-based exit position."""
        return {b: k for k, b in enumerate(self.branches)}

    @cached_property
    def home_blocks(self) -> tuple[int, ...]:
        """Home block of every operation.

        The home block of an operation is the exit position of the earliest
        branch that transitively depends on it — i.e. the first exit the
        operation matters to. Operations that reach no branch (possible only
        in hand-built graphs) are assigned to the last block. This is the
        priority key used by Successive Retirement.
        """
        n = self.graph.num_operations
        last = self.num_branches - 1
        blocks = [last] * n
        for pos in range(self.num_branches - 1, -1, -1):
            b = self.branches[pos]
            mask = self.graph.subgraph_mask(b)
            v = 0
            while mask:
                if mask & 1:
                    blocks[v] = pos
                mask >>= 1
                v += 1
        return tuple(blocks)

    def cumulative_weight(self, branch: int) -> float:
        """Sum of exit probabilities of ``branch`` and all earlier exits.

        This is the denominator of the G* heuristic's branch rank.
        """
        pos = self.branch_order[branch]
        return sum(self.weights[b] for b in self.branches[: pos + 1])

    def weighted_completion_time(self, issue_cycles: dict[int, int]) -> float:
        """WCT of a schedule given the issue cycle of every branch."""
        return sum(
            w * (issue_cycles[b] + self.branch_latency)
            for b, w in self.weights.items()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Superblock({self.name!r}, ops={self.num_operations}, "
            f"branches={self.num_branches})"
        )
