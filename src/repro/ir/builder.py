"""Fluent construction of superblocks.

:class:`SuperblockBuilder` assembles operations and dependence edges in
program order, automatically inserts the control edges between consecutive
branches, balances exit probabilities, and validates the result.

Example::

    sb = (SuperblockBuilder("demo")
          .op("add")                 # index 0
          .op("add", preds=[0])      # index 1
          .exit(0.3, preds=[1])      # index 2: side exit, p=0.3
          .op("load")                # index 3
          .last_exit(preds=[3]))     # index 4: final exit, p=0.7
"""

from __future__ import annotations

from repro.ir.depgraph import DependenceGraph
from repro.ir.operation import Opcode, Operation, opcode
from repro.ir.superblock import Superblock
from repro.ir.validate import validate_superblock


class SuperblockBuilder:
    """Builds a :class:`Superblock` incrementally, in program order."""

    def __init__(self, name: str, exec_freq: float = 1.0, source: str = "") -> None:
        self._name = name
        self._exec_freq = exec_freq
        self._source = source
        self._graph = DependenceGraph()
        self._branches: list[int] = []
        self._pending_edges: list[tuple[int, int, int | None]] = []
        self._block = 0
        self._finished = False

    # ------------------------------------------------------------------
    @property
    def next_index(self) -> int:
        """Index the next added operation will receive."""
        return self._graph.num_operations

    @property
    def num_branches(self) -> int:
        return len(self._branches)

    def op(
        self,
        op_name: str | Opcode,
        preds: list[int] | dict[int, int] | None = None,
        name: str = "",
    ) -> "SuperblockBuilder":
        """Append a non-branch operation.

        Args:
            op_name: opcode name (``"add"``, ``"load"``, ...) or an
                :class:`Opcode` instance.
            preds: producer indices. A list uses each producer's default
                latency; a dict maps producer index to an explicit latency.
            name: optional display label.
        """
        oc = op_name if isinstance(op_name, Opcode) else opcode(op_name)
        if oc.op_class.value == "branch":
            raise ValueError("use exit()/last_exit() to add branch operations")
        operation = Operation(
            index=self.next_index, opcode=oc, block=self._block, name=name
        )
        self._add(operation, preds)
        return self

    def exit(
        self,
        prob: float,
        preds: list[int] | dict[int, int] | None = None,
        name: str = "",
    ) -> "SuperblockBuilder":
        """Append a side-exit branch with exit probability ``prob``.

        A control edge from the previous branch (if any) is added
        automatically. Starts a new basic block.
        """
        idx = self._add_branch("branch", prob, preds, name)
        self._block += 1
        return self

    def last_exit(
        self,
        prob: float | None = None,
        preds: list[int] | dict[int, int] | None = None,
        name: str = "",
    ) -> Superblock:
        """Append the final exit and build the superblock.

        Args:
            prob: exit probability of the final branch; defaults to the
                remaining probability mass ``1 - sum(side exits)``.
        """
        if prob is None:
            prob = 1.0 - sum(self._graph.op(b).exit_prob for b in self._branches)
            prob = max(0.0, min(1.0, round(prob, 12)))
        self._add_branch("jump", prob, preds, name)
        return self.build()

    def edge(self, src: int, dst: int, latency: int | None = None) -> "SuperblockBuilder":
        """Add a dependence edge between already-added operations."""
        self._graph.add_edge(src, dst, latency)
        return self

    def build(self) -> Superblock:
        """Finalize: freeze the graph, validate, and return the superblock."""
        if self._finished:
            raise RuntimeError("builder already finished")
        self._finished = True
        self._graph.freeze()
        sb = Superblock(
            name=self._name,
            graph=self._graph,
            exec_freq=self._exec_freq,
            source=self._source,
        )
        validate_superblock(sb)
        return sb

    # ------------------------------------------------------------------
    def _add_branch(
        self,
        op_name: str,
        prob: float,
        preds: list[int] | dict[int, int] | None,
        name: str,
    ) -> int:
        oc = opcode(op_name)
        operation = Operation(
            index=self.next_index,
            opcode=oc,
            exit_prob=prob,
            block=self._block,
            name=name,
        )
        idx = self._add(operation, preds)
        if self._branches:
            prev = self._branches[-1]
            if not self._graph.has_edge(prev, idx):
                self._graph.add_edge(prev, idx, self._graph.op(prev).latency)
        self._branches.append(idx)
        return idx

    def _add(
        self, operation: Operation, preds: list[int] | dict[int, int] | None
    ) -> int:
        idx = self._graph.add_operation(operation)
        if preds:
            items = preds.items() if isinstance(preds, dict) else [
                (p, None) for p in preds
            ]
            for src, lat in items:
                self._graph.add_edge(src, idx, lat)
        return idx
