"""Superblock intermediate representation.

Public surface:

* :class:`Operation`, :class:`Opcode`, :class:`OpClass` — operations.
* :class:`DependenceGraph` — latency-weighted dependence DAG.
* :class:`Superblock` — single-entry multi-exit scheduling region.
* :class:`SuperblockBuilder` — fluent construction.
* :func:`validate_superblock` — invariant checks.
* :mod:`repro.ir.examples` — the paper's Figure 1-4 graphs.
"""

from repro.ir.builder import SuperblockBuilder
from repro.ir.depgraph import DependenceGraph
from repro.ir.operation import (
    BRANCH_LATENCY,
    OPCODES,
    OpClass,
    Opcode,
    Operation,
    opcode,
)
from repro.ir.serialize import (
    dumps,
    loads,
    superblock_from_dict,
    superblock_to_dict,
)
from repro.ir.superblock import Superblock
from repro.ir.validate import SuperblockValidationError, validate_superblock

__all__ = [
    "BRANCH_LATENCY",
    "OPCODES",
    "DependenceGraph",
    "OpClass",
    "Opcode",
    "Operation",
    "Superblock",
    "SuperblockBuilder",
    "SuperblockValidationError",
    "dumps",
    "loads",
    "opcode",
    "superblock_from_dict",
    "superblock_to_dict",
    "validate_superblock",
]
