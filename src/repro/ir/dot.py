"""Graphviz (DOT) export of superblock dependence graphs.

Purely cosmetic: useful to inspect the paper's example graphs and generated
workloads. Branches are drawn as bold boxes labeled with their exit
probability; non-unit edge latencies are labeled.
"""

from __future__ import annotations

from repro.ir.superblock import Superblock

_CLASS_COLORS = {
    "int": "white",
    "mem": "lightyellow",
    "float": "lightblue",
    "branch": "lightgray",
}


def to_dot(sb: Superblock, title: str | None = None) -> str:
    """Render ``sb`` as a DOT digraph string."""
    lines = ["digraph superblock {"]
    lines.append(f'  label="{title or sb.name}";')
    lines.append("  rankdir=TB;")
    lines.append('  node [fontname="Helvetica", fontsize=10];')
    for op in sb.operations:
        color = _CLASS_COLORS[op.op_class.value]
        if op.is_branch:
            label = f"{op.index}: {op.opcode.name}\\np={op.exit_prob:g}"
            shape = "box"
            style = "bold,filled"
        else:
            label = f"{op.index}: {op.opcode.name}"
            shape = "ellipse"
            style = "filled"
        lines.append(
            f'  n{op.index} [label="{label}", shape={shape}, '
            f'style="{style}", fillcolor={color}];'
        )
    for src, dst, lat in sb.graph.edges():
        attrs = f' [label="{lat}"]' if lat != 1 else ""
        lines.append(f"  n{src} -> n{dst}{attrs};")
    lines.append("}")
    return "\n".join(lines) + "\n"
