"""Structural validation of superblocks.

Checks the invariants listed in :mod:`repro.ir.superblock`. Validation runs
automatically when a superblock is built through :class:`SuperblockBuilder`
or deserialized; hand-assembled graphs can call it directly.
"""

from __future__ import annotations

import math

from repro.ir.superblock import Superblock

#: Absolute tolerance for the exit-probability sum check.
WEIGHT_TOLERANCE = 1e-6


class SuperblockValidationError(ValueError):
    """Raised when a superblock violates a structural invariant."""


def validate_superblock(sb: Superblock) -> None:
    """Validate ``sb``; raise :class:`SuperblockValidationError` on failure."""
    errors = list(iter_violations(sb))
    if errors:
        raise SuperblockValidationError(
            f"superblock {sb.name!r} is malformed:\n  - " + "\n  - ".join(errors)
        )


def iter_violations(sb: Superblock):
    """Yield a human-readable message for every violated invariant."""
    graph = sb.graph
    n = graph.num_operations

    if n == 0:
        yield "superblock has no operations"
        return

    branches = sb.branches
    if not branches:
        yield "superblock has no exit branch"
        return

    # The final operation must be the last exit.
    if branches[-1] != n - 1:
        yield (
            f"the last operation (index {n - 1}) must be the final exit; "
            f"found final exit at index {branches[-1]}"
        )

    # Branches must be linked by control edges in program order.
    for prev, nxt in zip(branches, branches[1:]):
        if not graph.has_edge(prev, nxt):
            yield f"missing control edge between branches {prev} and {nxt}"
        else:
            lat = graph.edge_latency(prev, nxt)
            if lat < graph.op(prev).latency:
                yield (
                    f"control edge ({prev}, {nxt}) latency {lat} is below the "
                    f"branch latency {graph.op(prev).latency}"
                )

    # Exit probabilities sum to one.
    total = sum(graph.op(b).exit_prob for b in branches)
    if not math.isclose(total, 1.0, abs_tol=WEIGHT_TOLERANCE):
        yield f"exit probabilities sum to {total:.9f}, expected 1.0"

    # Edges are forward and acyclic by construction of DependenceGraph, but
    # edge latencies must not be smaller than 0 and producers of latency-0
    # edges are not allowed for branches (a branch's result is control flow).
    for src, dst, lat in graph.edges():
        if graph.op(src).is_branch and lat < graph.op(src).latency:
            yield (
                f"edge ({src}, {dst}) from branch {src} has latency {lat} "
                f"below the branch latency"
            )

    if sb.exec_freq < 0:
        yield f"negative execution frequency {sb.exec_freq}"
