"""Reconstructions of the paper's example dependence graphs (Figures 1-4).

The figures themselves are not machine-readable in the paper text, so
these graphs are *reconstructions* built to exhibit exactly the properties
the prose describes (all on the paper's 2-wide general purpose machine):

* **Figure 1** — branch 16 has 16 predecessors and a 7-cycle dependence
  chain, so resources (not dependences) bound it at cycle 8; the one-cycle
  gap is just enough to schedule the side exit early. Critical Path delays
  the side exit by several cycles; Successive Retirement is optimal.
* **Figure 2** (Observation 1) — both branches are resource constrained;
  a purely help-based heuristic wastes cycle 0 on operations 0-2 and
  delays branch 6, whose 3-cycle chain through operation 4 must start
  immediately. Balance schedules operations with *compatible* needs.
* **Figure 3** (Observation 2) — the dependence-only distance between
  operation 4 and branch 9 is 4 cycles, but the antichain {6, 7, 8}
  cannot fit in one cycle on a 2-wide machine, so the true distance is 5:
  only the resource-aware ``LateRC`` detects that branch 9 needs
  operation 4 in cycle 0.
* **Figure 4** (Observation 3) — a branch-tradeoff graph: the side and
  final exits cannot both be scheduled at their individual bounds; the
  optimal schedule flips between (side=3, final=11) and (side=5, final=9)
  as the side-exit probability ``P`` crosses 0.5. (The paper's exact
  Figure 4 graph, with its 3-point tradeoff curve, is unpublished; this
  reconstruction exhibits the same probability-dependent regime flip —
  recorded as a substitution in DESIGN.md.)
"""

from __future__ import annotations

from repro.ir.builder import SuperblockBuilder
from repro.ir.superblock import Superblock
from repro.machine.machine import GP2, MachineConfig


def figure1(side_prob: float = 0.25) -> Superblock:
    """Figure 1: CP delays the side exit; SR finds the optimal schedule.

    Structure: ops 0-2 feed the side exit (branch 3); a 7-op chain (4-10),
    two 2-op chains (11-12, 13-14) and op 15 feed the final exit (op 16),
    which therefore has 16 predecessors — resource-bound at cycle 8 on the
    2-wide machine, one cycle above its 7-cycle dependence bound.
    """
    b = SuperblockBuilder("figure1")
    b.op("add").op("add").op("add")           # 0, 1, 2
    b.exit(side_prob, preds=[0, 1, 2])        # 3: side exit
    b.op("add")                               # 4: head of the long chain
    for prev in range(4, 10):                 # 5..10: chain 4->5->...->10
        b.op("add", preds=[prev])
    b.op("add").op("add", preds=[11])         # 11 -> 12
    b.op("add").op("add", preds=[13])         # 13 -> 14
    b.op("add")                               # 15
    return b.last_exit(preds=[10, 12, 14, 15])  # 16: final exit


def figure2(side_prob: float = 0.4) -> Superblock:
    """Figure 2 (Observation 1): compatible needs beat pure help counts.

    Branch 3 needs one of {0, 1, 2} in cycle 0 (its three predecessors
    need three of the four slots in cycles 0-1); branch 6 needs operation
    4 in cycle 0 (it starts a 3-cycle chain) *and* is resource-bound at
    cycle 3 by its six predecessors. Scheduling {0, 4} in cycle 0
    satisfies both; a help-count heuristic schedules {0, 1} and delays
    branch 6 by one cycle.
    """
    b = SuperblockBuilder("figure2")
    b.op("add").op("add").op("add")           # 0, 1, 2
    b.exit(side_prob, preds=[0, 1, 2])        # 3: side exit
    b.op("add")                               # 4
    b.op("add", preds={4: 2})                 # 5, two cycles after 4
    return b.last_exit(preds=[5])             # 6: final exit


def figure3(side_prob: float = 0.4) -> Superblock:
    """Figure 3 (Observation 2): dependence distances are too optimistic.

    The longest dependence path from operation 4 (a 2-cycle load) to
    branch 9 is 4 cycles, but its middle antichain {6, 7, 8} needs two
    cycles on the 2-wide machine, so the real minimum distance is 5 —
    captured by ``LateRC`` (LateRC_9[4] = 0) but not by ``LateDC``
    (LateDC_9[4] = 1).
    """
    b = SuperblockBuilder("figure3")
    b.op("add").op("add").op("add")           # 0, 1, 2
    b.exit(side_prob, preds=[0, 1, 2])        # 3: side exit
    b.op("load")                              # 4: 2-cycle producer
    b.op("add", preds=[4])                    # 5 (ready 2 cycles after 4)
    b.op("add", preds=[5])                    # 6 \
    b.op("add", preds=[5])                    # 7  > antichain
    b.op("add", preds=[5])                    # 8 /
    return b.last_exit(preds=[6, 7, 8])       # 9: final exit


def figure4(side_prob: float = 0.3) -> Superblock:
    """Figure 4 (Observation 3): the optimal schedule depends on P.

    The side exit needs a 3-op chain plus three independent operations;
    the final exit needs an 8-op chain plus three fillers. Both exits
    cannot reach their individual bounds together: the optimal branch
    issue times are (side=5, final=9) for P < 0.5 and (side=3, final=11)
    for P > 0.5 — the Pairwise bound's tradeoff curve exposes exactly
    this choice to the Balance scheduler.
    """
    b = SuperblockBuilder("figure4")
    b.op("add")                               # 0: side chain head
    b.op("add", preds=[0])                    # 1
    b.op("add", preds=[1])                    # 2
    b.op("add").op("add").op("add")           # 3, 4, 5: independent
    b.exit(side_prob, preds=[2, 3, 4, 5])     # 6: side exit
    b.op("add")                               # 7: final chain head
    for prev in range(7, 14):                 # 8..14: chain 7->8->...->14
        b.op("add", preds=[prev])
    b.op("add").op("add").op("add")           # 15, 16, 17: fillers
    return b.last_exit(preds=[14, 15, 16, 17])  # 18: final exit


#: The paper's examples with the machine they are discussed on.
PAPER_EXAMPLES: dict[str, tuple[Superblock, MachineConfig]] = {
    "figure1": (figure1(), GP2),
    "figure2": (figure2(), GP2),
    "figure3": (figure3(), GP2),
    "figure4": (figure4(), GP2),
}
