"""Operations: the atomic units scheduled inside a superblock.

An :class:`Operation` is an immutable description of one machine operation:
its opcode, the functional-unit class it occupies, its result latency, and —
for branches — the probability that the branch exits the superblock.

The opcode catalog mirrors the machine model of the paper (Section 6):
all operations are fully pipelined with unit latency, except ``load``
(2 cycles), ``fmul`` (3 cycles) and ``fdiv`` (9 cycles). Branches have unit
latency (the paper's ``l_br``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class OpClass(enum.Enum):
    """Functional-unit class an operation occupies for one cycle at issue.

    The fully-specialized machine configurations (FS4/FS6/FS8) provide a
    distinct pool of units per class; the general-purpose configurations
    (GP1/GP2/GP4) map every class onto a single shared pool.
    """

    INT = "int"
    MEM = "mem"
    FLOAT = "float"
    BRANCH = "branch"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OpClass.{self.name}"


@dataclass(frozen=True)
class Opcode:
    """An opcode: a name, the unit class it uses, and its result latency."""

    name: str
    op_class: OpClass
    latency: int

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"opcode {self.name!r} has negative latency")

    def __str__(self) -> str:
        return self.name


def _catalog() -> dict[str, Opcode]:
    ops = [
        # Integer ALU operations (unit latency).
        Opcode("add", OpClass.INT, 1),
        Opcode("sub", OpClass.INT, 1),
        Opcode("and", OpClass.INT, 1),
        Opcode("or", OpClass.INT, 1),
        Opcode("xor", OpClass.INT, 1),
        Opcode("shl", OpClass.INT, 1),
        Opcode("shr", OpClass.INT, 1),
        Opcode("cmp", OpClass.INT, 1),
        Opcode("mov", OpClass.INT, 1),
        Opcode("mul", OpClass.INT, 1),
        # Memory operations: loads take two cycles, stores one.
        Opcode("load", OpClass.MEM, 2),
        Opcode("store", OpClass.MEM, 1),
        # Floating point.
        Opcode("fadd", OpClass.FLOAT, 1),
        Opcode("fsub", OpClass.FLOAT, 1),
        Opcode("fmul", OpClass.FLOAT, 3),
        Opcode("fdiv", OpClass.FLOAT, 9),
        Opcode("fcmp", OpClass.FLOAT, 1),
        # Control flow. ``branch`` is a side exit; ``jump`` ends the block.
        Opcode("branch", OpClass.BRANCH, 1),
        Opcode("jump", OpClass.BRANCH, 1),
    ]
    return {op.name: op for op in ops}


#: The default opcode catalog, keyed by opcode name.
OPCODES: dict[str, Opcode] = _catalog()

#: Latency of every branch opcode (the paper's ``l_br``).
BRANCH_LATENCY: int = OPCODES["branch"].latency


def opcode(name: str) -> Opcode:
    """Look up an opcode by name.

    Raises:
        KeyError: if ``name`` is not in the catalog.
    """
    try:
        return OPCODES[name]
    except KeyError:
        known = ", ".join(sorted(OPCODES))
        raise KeyError(f"unknown opcode {name!r}; known opcodes: {known}") from None


@dataclass(frozen=True)
class Operation:
    """One operation of a superblock.

    Attributes:
        index: position of the operation in program order; also its node id
            in the dependence graph.
        opcode: the opcode describing class and latency.
        exit_prob: for branches, the probability that the branch is taken
            (i.e. control exits the superblock here). Zero for non-branches.
        block: index of the basic block the operation originally belonged to
            (0-based); purely informational, used by reporting and by the
            Successive Retirement fallback for operations that precede no
            branch.
        name: optional human-readable label used in examples and DOT output.
    """

    index: int
    opcode: Opcode
    exit_prob: float = 0.0
    block: int = 0
    name: str = ""
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("operation index must be non-negative")
        if self.is_branch:
            if not 0.0 <= self.exit_prob <= 1.0:
                raise ValueError(
                    f"branch {self.index} has exit probability {self.exit_prob} "
                    "outside [0, 1]"
                )
        elif self.exit_prob != 0.0:
            raise ValueError(
                f"non-branch operation {self.index} has a non-zero exit probability"
            )

    @property
    def is_branch(self) -> bool:
        """True when the operation occupies a branch unit (side exit or jump)."""
        return self.opcode.op_class is OpClass.BRANCH

    @property
    def op_class(self) -> OpClass:
        return self.opcode.op_class

    @property
    def latency(self) -> int:
        """Result latency of the operation (edge latency to its consumers)."""
        return self.opcode.latency

    @property
    def label(self) -> str:
        """Display label: the explicit name if set, else ``<opcode><index>``."""
        return self.name or f"{self.opcode.name}{self.index}"

    def __str__(self) -> str:
        if self.is_branch:
            return f"{self.label}(p={self.exit_prob:g})"
        return self.label
