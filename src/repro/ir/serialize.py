"""JSON (de)serialization of superblocks.

The on-disk format is a plain JSON object designed to be stable across
library versions and easy to produce from external tools:

.. code-block:: json

    {
      "name": "gcc.sb0042",
      "exec_freq": 1234.0,
      "source": "synthetic:gcc",
      "operations": [
        {"opcode": "add"},
        {"opcode": "branch", "exit_prob": 0.25},
        {"opcode": "jump", "exit_prob": 0.75}
      ],
      "edges": [[0, 1, 1], [1, 2, 1]]
    }

Operation indices are implicit (array position); edges are
``[src, dst, latency]`` triples. Control edges between branches are stored
explicitly so a file is self-contained.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.schedulers.schedule import Schedule

from repro.ir.depgraph import DependenceGraph
from repro.ir.operation import Operation, opcode
from repro.ir.superblock import Superblock
from repro.ir.validate import validate_superblock


def superblock_to_dict(sb: Superblock) -> dict[str, Any]:
    """Convert a superblock to a JSON-compatible dict."""
    ops = []
    for op in sb.operations:
        entry: dict[str, Any] = {"opcode": op.opcode.name}
        if op.is_branch:
            entry["exit_prob"] = op.exit_prob
        if op.block:
            entry["block"] = op.block
        if op.name:
            entry["name"] = op.name
        ops.append(entry)
    return {
        "name": sb.name,
        "exec_freq": sb.exec_freq,
        "source": sb.source,
        "operations": ops,
        "edges": [[src, dst, lat] for src, dst, lat in sb.graph.edges()],
    }


def superblock_from_dict(data: dict[str, Any], validate: bool = True) -> Superblock:
    """Reconstruct a superblock from :func:`superblock_to_dict` output.

    Args:
        validate: run :func:`validate_superblock` on the result. Callers
            deserializing data they themselves produced (e.g. the
            parallel-evaluation workers) may skip it for speed.
    """
    graph = DependenceGraph()
    for idx, entry in enumerate(data["operations"]):
        graph.add_operation(
            Operation(
                index=idx,
                opcode=opcode(entry["opcode"]),
                exit_prob=float(entry.get("exit_prob", 0.0)),
                block=int(entry.get("block", 0)),
                name=entry.get("name", ""),
            )
        )
    for src, dst, lat in data["edges"]:
        graph.add_edge(int(src), int(dst), int(lat))
    graph.freeze()
    sb = Superblock(
        name=data["name"],
        graph=graph,
        exec_freq=float(data.get("exec_freq", 1.0)),
        source=data.get("source", ""),
    )
    if validate:
        validate_superblock(sb)
    return sb


def dumps(sb: Superblock, indent: int | None = None) -> str:
    """Serialize a superblock to a JSON string."""
    return json.dumps(superblock_to_dict(sb), indent=indent)


def loads(text: str) -> Superblock:
    """Deserialize a superblock from a JSON string."""
    return superblock_from_dict(json.loads(text))


def schedule_to_dict(schedule: "Schedule") -> dict[str, Any]:
    """Convert a schedule to a JSON-compatible dict.

    The issue map is stored as ``[op, cycle]`` pairs sorted by op index,
    so re-serializing a round-tripped schedule is bit-identical.
    """
    out: dict[str, Any] = {
        "superblock": schedule.superblock,
        "machine": schedule.machine,
        "heuristic": schedule.heuristic,
        "issue": [[v, t] for v, t in sorted(schedule.issue.items())],
        "wct": schedule.wct,
    }
    if schedule.stats:
        out["stats"] = schedule.stats
    return out


def schedule_from_dict(data: dict[str, Any]) -> "Schedule":
    """Reconstruct a schedule from :func:`schedule_to_dict` output."""
    from repro.schedulers.schedule import Schedule

    return Schedule(
        superblock=data["superblock"],
        machine=data["machine"],
        heuristic=data["heuristic"],
        issue={int(v): int(t) for v, t in data["issue"]},
        wct=float(data["wct"]),
        stats=dict(data.get("stats", {})),
    )


def dumps_schedule(schedule: "Schedule", indent: int | None = None) -> str:
    """Serialize a schedule to a JSON string."""
    return json.dumps(schedule_to_dict(schedule), indent=indent)


def loads_schedule(text: str) -> "Schedule":
    """Deserialize a schedule from a JSON string."""
    return schedule_from_dict(json.loads(text))
