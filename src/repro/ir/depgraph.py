"""Dependence graphs: latency-weighted DAGs over superblock operations.

Edges point from producers to consumers and carry a latency: if edge
``(u, v)`` has latency ``L`` and ``u`` issues at cycle ``t``, then ``v``
cannot issue before cycle ``t + L``. Superblock operations are stored in
program order and every edge goes forward (``u.index < v.index``), so the
index order is a valid topological order — a property the bound algorithms
exploit heavily.

The class also caches ancestor/descendant sets as integer bitmasks, which
makes the ``O(V^2)``-ish set queries of the Pairwise and Triplewise bounds
cheap even for the largest superblocks.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.ir.operation import Operation


class DependenceGraph:
    """A latency-weighted DAG over :class:`Operation` nodes.

    The graph is append-only: nodes and edges can be added until the first
    analysis query, after which the derived caches (ancestor masks, earliest
    times) are built lazily and the structure should not change. Mutating a
    graph after analysis raises :class:`RuntimeError`.
    """

    def __init__(self, operations: Iterable[Operation] = ()) -> None:
        self._ops: list[Operation] = []
        self._preds: list[list[tuple[int, int]]] = []
        self._succs: list[list[tuple[int, int]]] = []
        self._edge_set: set[tuple[int, int]] = set()
        self._frozen = False
        # Lazy caches.
        self._ancestor_masks: list[int] | None = None
        self._descendant_masks: list[int] | None = None
        self._early_dc: list[int] | None = None
        for op in operations:
            self.add_operation(op)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_operation(self, op: Operation) -> int:
        """Append an operation; its ``index`` must equal the next slot."""
        self._check_mutable()
        if op.index != len(self._ops):
            raise ValueError(
                f"operation index {op.index} does not match insertion position "
                f"{len(self._ops)}; operations must be added in program order"
            )
        self._ops.append(op)
        self._preds.append([])
        self._succs.append([])
        return op.index

    def add_edge(self, src: int, dst: int, latency: int | None = None) -> None:
        """Add a dependence edge ``src -> dst``.

        Args:
            src: producer operation index.
            dst: consumer operation index; must be greater than ``src``.
            latency: edge latency; defaults to the producer's result latency.
        """
        self._check_mutable()
        self._check_index(src)
        self._check_index(dst)
        if src >= dst:
            raise ValueError(
                f"edge ({src}, {dst}) is not forward; superblock dependences "
                "must respect program order"
            )
        if latency is None:
            latency = self._ops[src].latency
        if latency < 0:
            raise ValueError(f"edge ({src}, {dst}) has negative latency {latency}")
        if (src, dst) in self._edge_set:
            # Keep the larger latency: a tighter constraint subsumes a looser one.
            self._preds[dst] = [
                (u, max(lat, latency) if u == src else lat) for u, lat in self._preds[dst]
            ]
            self._succs[src] = [
                (v, max(lat, latency) if v == dst else lat) for v, lat in self._succs[src]
            ]
            return
        self._edge_set.add((src, dst))
        self._preds[dst].append((src, latency))
        self._succs[src].append((dst, latency))

    def freeze(self) -> "DependenceGraph":
        """Mark the graph immutable; subsequent mutation raises."""
        self._frozen = True
        return self

    def _check_mutable(self) -> None:
        if self._frozen:
            raise RuntimeError("dependence graph is frozen; create a new one instead")

    def _check_index(self, idx: int) -> None:
        if not 0 <= idx < len(self._ops):
            raise IndexError(f"operation index {idx} out of range (n={len(self._ops)})")

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def num_operations(self) -> int:
        return len(self._ops)

    @property
    def num_edges(self) -> int:
        return len(self._edge_set)

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    @property
    def operations(self) -> tuple[Operation, ...]:
        return tuple(self._ops)

    def op(self, idx: int) -> Operation:
        self._check_index(idx)
        return self._ops[idx]

    def preds(self, idx: int) -> list[tuple[int, int]]:
        """Direct predecessors of ``idx`` as ``(op index, latency)`` pairs."""
        self._check_index(idx)
        return self._preds[idx]

    def succs(self, idx: int) -> list[tuple[int, int]]:
        """Direct successors of ``idx`` as ``(op index, latency)`` pairs."""
        self._check_index(idx)
        return self._succs[idx]

    def has_edge(self, src: int, dst: int) -> bool:
        return (src, dst) in self._edge_set

    def edge_latency(self, src: int, dst: int) -> int:
        for v, lat in self._succs[src]:
            if v == dst:
                return lat
        raise KeyError(f"no edge ({src}, {dst})")

    def edges(self) -> Iterator[tuple[int, int, int]]:
        """Iterate over ``(src, dst, latency)`` triples in program order."""
        for u in range(len(self._ops)):
            for v, lat in self._succs[u]:
                yield (u, v, lat)

    def roots(self) -> list[int]:
        """Operations with no predecessors."""
        return [v for v in range(len(self._ops)) if not self._preds[v]]

    def sinks(self) -> list[int]:
        """Operations with no successors."""
        return [v for v in range(len(self._ops)) if not self._succs[v]]

    # ------------------------------------------------------------------
    # Reachability (bitmask) caches
    # ------------------------------------------------------------------
    def _build_masks(self) -> None:
        n = len(self._ops)
        anc = [0] * n
        for v in range(n):
            m = 0
            for u, _lat in self._preds[v]:
                m |= anc[u] | (1 << u)
            anc[v] = m
        desc = [0] * n
        for v in range(n - 1, -1, -1):
            m = 0
            for w, _lat in self._succs[v]:
                m |= desc[w] | (1 << w)
            desc[v] = m
        self._ancestor_masks = anc
        self._descendant_masks = desc

    def ancestor_mask(self, idx: int) -> int:
        """Bitmask of all (transitive) predecessors of ``idx``."""
        self._check_index(idx)
        if self._ancestor_masks is None:
            self._build_masks()
        assert self._ancestor_masks is not None
        return self._ancestor_masks[idx]

    def descendant_mask(self, idx: int) -> int:
        """Bitmask of all (transitive) successors of ``idx``."""
        self._check_index(idx)
        if self._descendant_masks is None:
            self._build_masks()
        assert self._descendant_masks is not None
        return self._descendant_masks[idx]

    def ancestors(self, idx: int) -> list[int]:
        """Transitive predecessors of ``idx`` in program order."""
        return _mask_to_indices(self.ancestor_mask(idx))

    def descendants(self, idx: int) -> list[int]:
        """Transitive successors of ``idx`` in program order."""
        return _mask_to_indices(self.descendant_mask(idx))

    def is_ancestor(self, u: int, v: int) -> bool:
        """True when there is a dependence path from ``u`` to ``v``."""
        return bool(self.ancestor_mask(v) >> u & 1)

    def subgraph_mask(self, idx: int) -> int:
        """Bitmask of ``idx`` together with all its ancestors.

        This is the "subgraph rooted at" set the paper's bound algorithms
        operate on.
        """
        return self.ancestor_mask(idx) | (1 << idx)

    # ------------------------------------------------------------------
    # Dependence-only timing
    # ------------------------------------------------------------------
    def early_dc(self) -> list[int]:
        """``EarlyDC[v]``: earliest issue cycle of each op, dependences only."""
        if self._early_dc is None:
            n = len(self._ops)
            early = [0] * n
            for v in range(n):
                e = 0
                for u, lat in self._preds[v]:
                    cand = early[u] + lat
                    if cand > e:
                        e = cand
                early[v] = e
            self._early_dc = early
        return list(self._early_dc)

    def critical_path(self) -> int:
        """Dependence-only critical path: ``max_v EarlyDC[v]``."""
        early = self.early_dc()
        return max(early, default=0)

    def dist_to(self, sink: int) -> list[int]:
        """Longest-path latency from every op to ``sink``.

        ``dist[sink] == 0``; operations with no path to ``sink`` get ``-1``.
        Used for ``LateDC_b[v] = EarlyDC[b] - dist[v]``.
        """
        self._check_index(sink)
        n = len(self._ops)
        dist = [-1] * n
        dist[sink] = 0
        reach = self.ancestor_mask(sink) | (1 << sink)
        for v in range(sink - 1, -1, -1):
            if not reach >> v & 1:
                continue
            best = -1
            for w, lat in self._succs[v]:
                if dist[w] >= 0:
                    cand = dist[w] + lat
                    if cand > best:
                        best = cand
            dist[v] = best
        return dist

    def late_dc(self, sink: int) -> list[int]:
        """``LateDC_sink[v]``: latest issue of ``v`` not delaying ``sink``.

        Defined only for ``v`` in the subgraph rooted at ``sink``; other
        entries are ``None``.
        """
        early = self.early_dc()
        dist = self.dist_to(sink)
        return [
            early[sink] - d if d >= 0 else None  # type: ignore[misc]
            for d in dist
        ]

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def branches(self) -> list[int]:
        """Indices of all branch operations in program order."""
        return [op.index for op in self._ops if op.is_branch]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DependenceGraph(ops={self.num_operations}, edges={self.num_edges}, "
            f"branches={len(self.branches())})"
        )


def _mask_to_indices(mask: int) -> list[int]:
    """Expand a bitmask into the sorted list of set bit positions."""
    out = []
    idx = 0
    while mask:
        if mask & 1:
            out.append(idx)
        mask >>= 1
        idx += 1
    return out
