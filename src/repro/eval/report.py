"""One-shot evaluation report: every table and figure as markdown.

:func:`full_report` runs the complete evaluation (Tables 1-7, Figure 8,
the example figures, and the extension metrics) on a given corpus and
renders a single markdown document — the automated core of
EXPERIMENTS.md. The CLI exposes it as ``python -m repro report``.
"""

from __future__ import annotations

import statistics
import time

from repro.eval.figures import figure8, figure_schedules
from repro.eval.tables import (
    ALL_MACHINES,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)
from repro.machine.machine import FS4
from repro.obs import trace
from repro.obs.logsetup import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.workloads.corpus import Corpus

log = get_logger("eval.report")


def full_report(
    corpus: Corpus,
    small_corpus: Corpus | None = None,
    include_triplewise: bool = True,
    include_costs: bool = True,
    jobs: int | None = None,
    metrics: MetricsRegistry | None = None,
) -> str:
    """Run the full evaluation and return a markdown report.

    Args:
        small_corpus: corpus for the quadratic-cost experiments
            (Tables 2, 6, 7); defaults to the main corpus.
        include_costs: skip the slow cost tables (2 and 6) when False.
        jobs: worker processes for every table's corpus fan-out.
        metrics: optional registry aggregating every table's counters and
            per-section timers (identical totals for any ``jobs``).
    """
    from repro.workloads.stats import characterization_report

    small = small_corpus or corpus
    sections: list[str] = [
        "# Evaluation report",
        "",
        f"- corpus: `{corpus.name}` ({corpus.stats()['superblocks']:.0f} "
        f"superblocks, {corpus.stats()['total_ops']:.0f} ops)",
        f"- machines: {', '.join(m.name for m in ALL_MACHINES)}",
        "",
        "```",
        characterization_report(corpus),
        "```",
        "",
    ]

    log.info(
        "full report: corpus=%s jobs=%s triplewise=%s costs=%s",
        corpus.name, jobs, include_triplewise, include_costs,
    )

    def add(title: str, body: str, elapsed: float) -> None:
        sections.append(f"## {title}")
        sections.append("")
        sections.append("```")
        sections.append(body)
        sections.append("```")
        sections.append(f"_(computed in {elapsed:.1f}s)_")
        sections.append("")
        log.info("%s computed in %.1fs", title, elapsed)
        if metrics is not None:
            slug = title.split("—")[0].strip().lower().replace(" ", "")
            metrics.observe(f"report.{slug}", elapsed)

    t0 = time.perf_counter()
    with trace.span("report.table1"):
        t1_res = table1(
            corpus, include_triplewise=include_triplewise, jobs=jobs,
            metrics=metrics,
        )
    add("Table 1 — bound quality", t1_res.render(), time.perf_counter() - t0)

    if include_costs:
        t0 = time.perf_counter()
        with trace.span("report.table2"):
            t2_res = table2(
                small, include_triplewise=include_triplewise, jobs=jobs,
                metrics=metrics,
            )
        add("Table 2 — bound cost", t2_res.render(), time.perf_counter() - t0)

    t0 = time.perf_counter()
    with trace.span("report.table3"):
        t3_res = table3(
            corpus, include_triplewise=include_triplewise, jobs=jobs,
            metrics=metrics,
        )
    add("Table 3 — scheduler slowdown", t3_res.render(), time.perf_counter() - t0)
    summaries = t3_res.data["summaries"]

    t0 = time.perf_counter()
    with trace.span("report.table4"):
        t4_res = table4(
            corpus, include_triplewise=include_triplewise, summaries=summaries
        )
    add("Table 4 — optimality", t4_res.render(), time.perf_counter() - t0)

    t0 = time.perf_counter()
    with trace.span("report.table5"):
        t5_res = table5(
            corpus,
            include_triplewise=include_triplewise,
            profiled_summaries=summaries,
            jobs=jobs,
            metrics=metrics,
        )
    add("Table 5 — no profile data", t5_res.render(), time.perf_counter() - t0)

    if include_costs:
        t0 = time.perf_counter()
        with trace.span("report.table6"):
            t6_res = table6(small, FS4, jobs=jobs, metrics=metrics)
        add("Table 6 — scheduler cost", t6_res.render(), time.perf_counter() - t0)

    t0 = time.perf_counter()
    with trace.span("report.table7"):
        t7_res = table7(
            small, include_triplewise=include_triplewise, jobs=jobs,
            metrics=metrics,
        )
    add("Table 7 — Balance ablation", t7_res.render(), time.perf_counter() - t0)

    t0 = time.perf_counter()
    gcc = corpus.by_benchmark("gcc")
    fig8_corpus = gcc if len(gcc) else corpus
    with trace.span("report.figure8"):
        f8 = figure8(
            fig8_corpus,
            FS4,
            include_triplewise=include_triplewise,
            summary=None,
            jobs=jobs,
            metrics=metrics,
        )
    add("Figure 8 — CDF (gcc, FS4)", f8.render(), time.perf_counter() - t0)

    t0 = time.perf_counter()
    add(
        "Figures 1-4 — worked examples",
        figure_schedules(),
        time.perf_counter() - t0,
    )

    # Headline summary.
    heuristics = ("sr", "cp", "gstar", "dhasy", "help", "balance", "best")
    avg = {
        h: statistics.fmean(
            summaries[m.name].slowdown_percent(h) for m in ALL_MACHINES
        )
        for h in heuristics
    }
    ranked = sorted(avg.items(), key=lambda kv: kv[1])
    sections.append("## Headline")
    sections.append("")
    sections.append(
        "Average slowdown over the tightest lower bound, all machines: "
        + ", ".join(f"{h} {v:.2f}%" for h, v in ranked)
    )
    sections.append("")
    return "\n".join(sections)
