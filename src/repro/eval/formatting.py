"""Plain-text table rendering for the evaluation harnesses.

Everything the benches print goes through :func:`format_table`, which
produces aligned monospace tables resembling the paper's layout.
"""

from __future__ import annotations

from collections.abc import Sequence


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Render an aligned text table.

    Floats are shown with two decimals; the first column is left-aligned,
    the rest right-aligned.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render(row) for row in str_rows)
    return "\n".join(lines)


def format_percent(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}%"
