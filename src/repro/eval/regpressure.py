"""Register pressure of superblock schedules (an extension metric).

Aggressive speculation stretches value lifetimes: an operation hoisted far
above its consumers holds a register across every intervening cycle. The
paper evaluates cycles only; this module adds the classic companion
metric so the speculation cost is visible:

* a value is **live** from its producer's issue cycle until the last
  consumer's issue cycle (operations with no consumers hold their value
  until the final exit — they are live-out);
* **pressure** at a cycle is the number of live values; a schedule's
  pressure is the maximum over cycles.

``pressure_profile`` returns the full per-cycle curve; ``max_pressure``
the scalar. Both work on any (superblock, schedule) pair.
"""

from __future__ import annotations

from repro.ir.superblock import Superblock
from repro.schedulers.schedule import Schedule


def pressure_profile(sb: Superblock, schedule: Schedule) -> list[int]:
    """Live-value count per cycle, from cycle 0 to the schedule's end."""
    graph = sb.graph
    length = schedule.length
    final = schedule.issue[sb.last_branch]
    deltas = [0] * (length + 1)
    for v in range(graph.num_operations):
        op = sb.op(v)
        if op.is_branch:
            continue  # branches produce control flow, not values
        start = schedule.issue[v]
        consumers = [w for w, _lat in graph.succs(v)]
        if consumers:
            end = max(schedule.issue[w] for w in consumers)
        else:
            end = final  # live-out
        if end <= start:
            continue  # consumed immediately (or degenerate)
        deltas[start] += 1
        deltas[min(end, length)] -= 1
    profile = []
    live = 0
    for t in range(length):
        live += deltas[t]
        profile.append(live)
    return profile


def max_pressure(sb: Superblock, schedule: Schedule) -> int:
    """Peak number of simultaneously live values."""
    return max(pressure_profile(sb, schedule), default=0)


def sequential_pressure(sb: Superblock) -> int:
    """Peak pressure of the non-speculative, source-order schedule.

    A 1-wide in-order issue of the operations in program order — the
    baseline lifetimes before any scheduling. Useful to quantify how much
    a speculative schedule inflates pressure.
    """
    issue = {}
    cycle = 0
    early = sb.graph.early_dc()
    for v in range(sb.num_operations):
        # Respect latencies so the schedule is feasible on a 1-wide
        # idealized machine; program order is already topological.
        ready = max(
            [issue[u] + lat for u, lat in sb.graph.preds(v)] or [0]
        )
        cycle = max(cycle + 1 if v else 0, ready, early[v])
        issue[v] = cycle
    fake = Schedule(
        superblock=sb.name,
        machine="seq",
        heuristic="sequential",
        issue=issue,
        wct=0.0,
    )
    return max_pressure(sb, fake)


def pressure_increase(sb: Superblock, schedule: Schedule) -> int:
    """How many more registers the schedule needs over source order."""
    return max_pressure(sb, schedule) - sequential_pressure(sb)
