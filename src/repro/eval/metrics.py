"""Evaluation metrics: slowdowns, optimality, trivial superblocks.

Terminology follows Section 6 of the paper:

* **dynamic cycles** of a schedule = its WCT times the superblock's
  execution frequency; corpus-level numbers sum these.
* a superblock is **trivial** (Table 3) when *every* evaluated heuristic
  schedules it at the tightest lower bound — such superblocks dilute
  comparisons, so slowdowns are reported over the nontrivial rest.
* **slowdown** of a heuristic = extra dynamic cycles over the tightest
  bound, as a percentage of the bound's dynamic cycles, over the
  nontrivial superblocks.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.ir.depgraph import DependenceGraph
from repro.ir.superblock import Superblock

#: Numerical tolerance when comparing WCTs against bounds.
EPS = 1e-9


@dataclass
class SuperblockResult:
    """Bound and per-heuristic WCTs for one superblock on one machine."""

    name: str
    exec_freq: float
    tightest_bound: float
    bound_wct: dict[str, float]
    heuristic_wct: dict[str, float]
    stats: dict = field(default_factory=dict)

    def optimal(self, heuristic: str) -> bool:
        """True when the heuristic provably met the tightest bound."""
        return self.heuristic_wct[heuristic] <= self.tightest_bound + EPS

    @property
    def trivial(self) -> bool:
        return all(self.optimal(h) for h in self.heuristic_wct)

    def extra_dynamic_cycles(self, heuristic: str) -> float:
        return self.exec_freq * max(
            0.0, self.heuristic_wct[heuristic] - self.tightest_bound
        )


@dataclass
class CorpusSummary:
    """Aggregate of :class:`SuperblockResult` records (Table 3 shape)."""

    machine: str
    results: list[SuperblockResult]

    @property
    def bound_cycles(self) -> float:
        return sum(r.exec_freq * r.tightest_bound for r in self.results)

    @property
    def trivial_cycle_fraction(self) -> float:
        """Fraction of bound cycles spent in trivial superblocks."""
        total = self.bound_cycles
        if total <= 0:
            return 0.0
        triv = sum(
            r.exec_freq * r.tightest_bound for r in self.results if r.trivial
        )
        return triv / total

    def slowdown_percent(self, heuristic: str) -> float:
        """Slowdown over the bound in nontrivial superblocks (percent)."""
        nontrivial = [r for r in self.results if not r.trivial]
        base = sum(r.exec_freq * r.tightest_bound for r in nontrivial)
        if base <= 0:
            return 0.0
        extra = sum(r.extra_dynamic_cycles(heuristic) for r in nontrivial)
        return 100.0 * extra / base

    def optimal_fraction(self, heuristic: str, nontrivial_only: bool = False) -> float:
        """Fraction of superblocks scheduled at the tightest bound."""
        pool = [r for r in self.results if not (nontrivial_only and r.trivial)]
        if not pool:
            return 1.0
        return sum(1 for r in pool if r.optimal(heuristic)) / len(pool)

    def extra_cycle_distribution(self, heuristic: str) -> list[float]:
        """Per-superblock extra dynamic cycles (Figure 8 raw data)."""
        return sorted(r.extra_dynamic_cycles(heuristic) for r in self.results)


def reweighted(sb: Superblock, weights: dict[int, float]) -> Superblock:
    """Copy of ``sb`` with replaced exit probabilities.

    Used by the no-profile experiment (Table 5): schedulers are fed
    synthetic weights while evaluation uses the real ones.
    """
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("weights must have positive mass")
    graph = DependenceGraph()
    for op in sb.operations:
        prob = weights.get(op.index, 0.0) / total if op.is_branch else 0.0
        graph.add_operation(dataclasses.replace(op, exit_prob=prob))
    for src, dst, lat in sb.graph.edges():
        graph.add_edge(src, dst, lat)
    graph.freeze()
    return Superblock(
        name=sb.name,
        graph=graph,
        exec_freq=sb.exec_freq,
        source=sb.source,
    )


def noprofile_weights(sb: Superblock, last_weight: float = 1000.0) -> dict[int, float]:
    """The paper's no-profile assumption: last exit 1000, others 1."""
    return {
        b: (last_weight if b == sb.last_branch else 1.0) for b in sb.branches
    }


@dataclasses.dataclass(frozen=True)
class NoProfileWeights:
    """Picklable form of :func:`noprofile_weights` for parallel evaluation.

    ``evaluate_corpus(jobs=N)`` ships the scheduling-weights callable to
    worker processes; a lambda closing over ``last_weight`` cannot cross
    that boundary, this frozen dataclass can.
    """

    last_weight: float = 1000.0

    def __call__(self, sb: Superblock) -> dict[int, float]:
        return noprofile_weights(sb, self.last_weight)
