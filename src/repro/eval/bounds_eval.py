"""Bound-quality and bound-cost evaluation (Tables 1 and 2).

* :func:`bound_quality` — per bound family, the average and maximum
  percentage gap below the tightest bound and the fraction of superblocks
  where the bound is strictly below the tightest (Table 1's Avg/Max/Num).
* :func:`bound_costs` — per algorithm, loop-trip-count statistics from the
  :class:`Counters` instrumentation (Table 2), including the LC variants
  with and without the Theorem 1 fast path and the reversed-graph LateRC
  computation.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro import cache as result_cache
from repro.bounds.branch_rj import rj_branch_bounds
from repro.bounds.critical_path import cp_branch_bounds
from repro.bounds.hu import hu_branch_bounds
from repro.bounds.instrumentation import Counters
from repro.bounds.langevin_cerny import early_rc
from repro.bounds.late_rc import late_rc_for_branch
from repro.bounds.superblock_bounds import BOUND_NAMES, BoundSuite
from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig
from repro.obs import ledger
from repro.obs.metrics import MetricsRegistry, active_counters
from repro.perf.runner import parallel_cost_weight
from repro.perf.workers import corpus_map
from repro.workloads.corpus import Corpus

#: Numerical slack when deciding a bound is strictly below the tightest.
_EPS = 1e-9


@dataclass
class BoundQuality:
    """Table 1 statistics for one bound family."""

    name: str
    avg_gap_percent: float
    max_gap_percent: float
    below_tightest_percent: float


@parallel_cost_weight(2.0)
@result_cache.kernel_version(3)
def _quality_unit(
    sb: Superblock, machine: MachineConfig, include_triplewise: bool
) -> dict:
    """Bound values plus gap/strictly-below stats for one work unit.

    The ``gaps`` entries carry Table 1's numbers; ``wct``/``tightest``
    ride along so the run ledger can record per-block bound values
    without recomputing (and stay bit-identical to the table).
    """
    bounds = BoundSuite(
        sb, machine, include_triplewise=include_triplewise
    ).compute()
    tight = bounds.tightest
    return {
        "wct": dict(bounds.wct),
        "tightest": tight,
        "gaps": [
            (bounds.gap_percent(name), bounds.wct[name] < tight - _EPS)
            for name in BOUND_NAMES
        ],
    }


def bound_quality(
    corpus: Corpus,
    machines: list[MachineConfig],
    include_triplewise: bool = True,
    jobs: int | None = None,
    metrics: MetricsRegistry | None = None,
) -> dict[str, BoundQuality]:
    """Quality of each bound family over ``corpus`` x ``machines``.

    Args:
        jobs: worker processes for the (superblock, machine) fan-out;
            ``None``/``1`` runs serially, ``0`` uses all CPUs. Results
            are identical for any value.
        metrics: optional registry collecting the bound algorithms' trip
            counters; merged totals are identical for any ``jobs``.
    """
    superblocks = list(corpus)
    units = [
        (idx, (machine, include_triplewise))
        for machine in machines
        for idx in range(len(superblocks))
    ]
    per_unit = corpus_map(_quality_unit, superblocks, units, jobs, metrics=metrics)
    recorder = ledger.active_recorder()
    gaps: dict[str, list[float]] = {name: [] for name in BOUND_NAMES}
    below: dict[str, int] = {name: 0 for name in BOUND_NAMES}
    total = 0
    for (idx, (machine, _tw)), unit_stats in zip(units, per_unit):
        total += 1
        for name, (gap, is_below) in zip(BOUND_NAMES, unit_stats["gaps"]):
            gaps[name].append(gap)
            if is_below:
                below[name] += 1
        if recorder is not None:
            sb = superblocks[idx]
            recorder.record_block(
                sb.name,
                machine.name,
                ops=sb.num_operations,
                branches=sb.num_branches,
                edges=sb.graph.num_edges,
                exec_freq=sb.exec_freq,
                tightest=unit_stats["tightest"],
                bounds=unit_stats["wct"],
            )
    return {
        name: BoundQuality(
            name=name,
            avg_gap_percent=statistics.fmean(gaps[name]) if total else 0.0,
            max_gap_percent=max(gaps[name], default=0.0),
            below_tightest_percent=100.0 * below[name] / total if total else 0.0,
        )
        for name in BOUND_NAMES
    }


@dataclass
class BoundCost:
    """Table 2 statistics for one bound algorithm."""

    name: str
    worst_case: str
    empirical: str
    average_trips: float
    median_trips: float


#: Complexity expressions quoted from the paper's Table 2.
_COMPLEXITY = {
    "CP": ("O(B(V+E))", "O(B(V+E))"),
    "Hu": ("O(B(V+E+VR))", "O(B(V+E+V))"),
    "RJ": ("O(B(V+E+cCP))", "O(B(V+C))"),
    "LC": ("O(V(V+E+cCP))", "O(V(V+C))"),
    "LC-original": ("O(V(V+E+cCP))", "O(V(V+C))"),
    "LC-reverse": ("O(BV(V+E+cCP))", "O(BV(V+C))"),
    "PW": ("O(B^2 C(V+E+cCP))", "O(B^2 C(V+C))"),
    "TW": ("O(B^3 C^2(V+E+cCP))", "O(B^3 C^2(V+C))"),
}


@parallel_cost_weight(4.0)
@result_cache.kernel_version(2)
def _cost_unit(
    sb: Superblock, machine: MachineConfig, include_triplewise: bool
) -> dict[str, int]:
    """Loop-trip counts of every bound algorithm for one work unit."""
    graph = sb.graph
    branches = sb.branches
    trips: dict[str, int] = {}

    c = Counters()
    cp_branch_bounds(sb, c)
    trips["CP"] = c.total("cp")

    c = Counters()
    hu_branch_bounds(sb, machine, c)
    trips["Hu"] = c.total("hu")

    c = Counters()
    rj_branch_bounds(sb, machine, c)
    trips["RJ"] = c.total("rj")

    c = Counters()
    rc = early_rc(graph, machine, c, fast_path=True)
    trips["LC"] = c.total("lc")

    c = Counters()
    early_rc(graph, machine, c, fast_path=False)
    trips["LC-original"] = c.total("lc")

    c = Counters()
    for b in branches:
        late_rc_for_branch(graph, machine, b, rc[b], c)
    trips["LC-reverse"] = c.total("lc_rev")

    c = Counters()
    suite = BoundSuite(sb, machine, counters=c)
    _ = suite.pair_bounds
    trips["PW"] = c.total("pw")

    if include_triplewise:
        c2 = Counters()
        suite2 = BoundSuite(sb, machine, counters=c2)
        _ = suite2.pair_bounds  # prerequisite of the triple filter
        c2.clear()
        _ = suite2.triple_results
        trips["TW"] = c2.total("tw")

    # Feed the ambient registry (if any) so Table 2 totals survive the
    # worker boundary: each algorithm's trips land under "table2.<name>".
    agg = active_counters()
    if agg is not None:
        for name, value in trips.items():
            agg.add(f"table2.{name}", value)
    return trips


def bound_costs(
    corpus: Corpus,
    machines: list[MachineConfig],
    include_triplewise: bool = True,
    jobs: int | None = None,
    metrics: MetricsRegistry | None = None,
) -> dict[str, BoundCost]:
    """Loop-trip counts of every bound algorithm (Table 2).

    Statistics are per (superblock, machine) pair, exactly like the paper's
    "sum of each loop trip count in the algorithm".
    """
    superblocks = list(corpus)
    units = [
        (idx, (machine, include_triplewise))
        for machine in machines
        for idx in range(len(superblocks))
    ]
    per_unit = corpus_map(_cost_unit, superblocks, units, jobs, metrics=metrics)
    recorder = ledger.active_recorder()
    samples: dict[str, list[int]] = {name: [] for name in _COMPLEXITY}
    for (idx, (machine, _tw)), trips in zip(units, per_unit):
        for name, value in trips.items():
            samples[name].append(value)
        if recorder is not None:
            sb = superblocks[idx]
            recorder.record_block(
                sb.name,
                machine.name,
                ops=sb.num_operations,
                branches=sb.num_branches,
                edges=sb.graph.num_edges,
                trips=dict(trips),
            )
    if not include_triplewise:
        samples.pop("TW")
    out = {}
    for name, values in samples.items():
        worst, emp = _COMPLEXITY[name]
        out[name] = BoundCost(
            name=name,
            worst_case=worst,
            empirical=emp,
            average_trips=statistics.fmean(values) if values else 0.0,
            median_trips=statistics.median(values) if values else 0.0,
        )
    return out
