"""Builders for every table of the paper's evaluation (Tables 1-7).

Each ``tableN`` function runs the required experiment on a corpus and
returns a :class:`TableResult` carrying both the raw data (for tests and
EXPERIMENTS.md) and a paper-style text rendering.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any

from repro.bounds.superblock_bounds import BOUND_NAMES
from repro.core.config import ABLATION_GRID
from repro.eval.bounds_eval import bound_costs, bound_quality
from repro.eval.formatting import format_table
from repro.eval.metrics import CorpusSummary, NoProfileWeights
from repro.eval.sched_eval import TABLE_HEURISTICS, evaluate_corpus
from repro.machine.machine import FS4, FS6, FS8, GP1, GP2, GP4, MachineConfig
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry
from repro.perf.workers import corpus_map
from repro.schedulers.base import get_scheduler
from repro.workloads.corpus import Corpus

#: Machine groups exactly as in the paper's tables.
GP_MACHINES: tuple[MachineConfig, ...] = (GP1, GP2, GP4)
FS_MACHINES: tuple[MachineConfig, ...] = (FS4, FS6, FS8)
ALL_MACHINES: tuple[MachineConfig, ...] = GP_MACHINES + FS_MACHINES

#: Display names for the scheduler columns, paper order.
_HEUR_LABELS = {
    "sr": "SR",
    "cp": "CP",
    "gstar": "G*",
    "dhasy": "DHASY",
    "help": "Help",
    "balance": "Balance",
    "best": "Best",
}


@dataclass
class TableResult:
    """One regenerated paper table: raw data plus a text rendering."""

    table_id: str
    title: str
    headers: list[str]
    rows: list[list[Any]]
    data: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        return format_table(self.headers, self.rows, f"{self.table_id}: {self.title}")


# ---------------------------------------------------------------------------
# Table 1 — bound quality
# ---------------------------------------------------------------------------
def table1(
    corpus: Corpus,
    gp_machines: tuple[MachineConfig, ...] = GP_MACHINES,
    fs_machines: tuple[MachineConfig, ...] = FS_MACHINES,
    include_triplewise: bool = True,
    jobs: int | None = None,
    metrics: MetricsRegistry | None = None,
) -> TableResult:
    """Performance of the bounds relative to the tightest lower bound."""
    rows: list[list[Any]] = []
    data: dict[str, Any] = {}
    for group_name, machines in (("GP", gp_machines), ("FS", fs_machines)):
        with trace.span("table1.group", group=group_name):
            quality = bound_quality(
                corpus, list(machines), include_triplewise, jobs, metrics
            )
        data[group_name] = quality
        rows.append(
            [f"{group_name} Avg%"]
            + [quality[n].avg_gap_percent for n in BOUND_NAMES]
        )
        rows.append(
            [f"{group_name} Max%"]
            + [quality[n].max_gap_percent for n in BOUND_NAMES]
        )
        rows.append(
            [f"{group_name} Num%"]
            + [quality[n].below_tightest_percent for n in BOUND_NAMES]
        )
    return TableResult(
        table_id="Table 1",
        title="Performance of bounds relative to the tightest lower bound",
        headers=["Metric"] + list(BOUND_NAMES),
        rows=rows,
        data=data,
    )


# ---------------------------------------------------------------------------
# Table 2 — bound algorithm cost
# ---------------------------------------------------------------------------
def table2(
    corpus: Corpus,
    machines: tuple[MachineConfig, ...] = ALL_MACHINES,
    include_triplewise: bool = True,
    jobs: int | None = None,
    metrics: MetricsRegistry | None = None,
) -> TableResult:
    """Computational complexity (loop trip counts) of the bound algorithms."""
    costs = bound_costs(corpus, list(machines), include_triplewise, jobs, metrics)
    rows = [
        [
            name,
            cost.worst_case,
            cost.empirical,
            cost.average_trips,
            cost.median_trips,
        ]
        for name, cost in costs.items()
    ]
    return TableResult(
        table_id="Table 2",
        title="Complexity of the bound algorithms (loop trip counts)",
        headers=["Bound", "Worst-case", "Empirical", "Average", "Median"],
        rows=rows,
        data={"costs": costs},
    )


# ---------------------------------------------------------------------------
# Table 3 — scheduler slowdown vs the tightest bound
# ---------------------------------------------------------------------------
def table3(
    corpus: Corpus,
    machines: tuple[MachineConfig, ...] = ALL_MACHINES,
    heuristics: tuple[str, ...] = TABLE_HEURISTICS,
    include_triplewise: bool = True,
    jobs: int | None = None,
    metrics: MetricsRegistry | None = None,
) -> TableResult:
    """Slowdown relative to the tightest lower bound, per configuration."""
    summaries: dict[str, CorpusSummary] = {}
    rows: list[list[Any]] = []
    for machine in machines:
        with trace.span("table3.machine", machine=machine.name):
            summary = evaluate_corpus(
                corpus, machine, heuristics,
                include_triplewise=include_triplewise, jobs=jobs,
                metrics=metrics,
            )
        summaries[machine.name] = summary
        rows.append(
            [
                machine.name,
                round(summary.bound_cycles, 1),
                100.0 * summary.trivial_cycle_fraction,
            ]
            + [summary.slowdown_percent(h) for h in heuristics]
        )
    avg_row: list[Any] = ["Average", "", ""]
    for h in heuristics:
        avg_row.append(
            statistics.fmean(
                summaries[m.name].slowdown_percent(h) for m in machines
            )
        )
    rows.append(avg_row)
    return TableResult(
        table_id="Table 3",
        title="Slowdown relative to the tightest lower bound (nontrivial superblocks, %)",
        headers=["Machine", "Bound cycles", "Trivial%"]
        + [_HEUR_LABELS.get(h, h) for h in heuristics],
        rows=rows,
        data={"summaries": summaries},
    )


# ---------------------------------------------------------------------------
# Table 4 — optimally scheduled nontrivial superblocks
# ---------------------------------------------------------------------------
def table4(
    corpus: Corpus,
    machines: tuple[MachineConfig, ...] = ALL_MACHINES,
    heuristics: tuple[str, ...] = TABLE_HEURISTICS,
    include_triplewise: bool = True,
    summaries: dict[str, CorpusSummary] | None = None,
    jobs: int | None = None,
    metrics: MetricsRegistry | None = None,
) -> TableResult:
    """Percentage of nontrivial superblocks scheduled at the bound.

    Also reports the compile-time-saving strategy the paper suggests:
    schedule with DHASY first and re-schedule with Balance only when DHASY
    is not provably optimal.
    """
    if summaries is None:
        summaries = {
            m.name: evaluate_corpus(
                corpus, m, heuristics,
                include_triplewise=include_triplewise, jobs=jobs,
                metrics=metrics,
            )
            for m in machines
        }
    rows: list[list[Any]] = []
    combo_stats: dict[str, dict[str, float]] = {}
    for machine in machines:
        summary = summaries[machine.name]
        row: list[Any] = [machine.name]
        for h in heuristics:
            row.append(100.0 * summary.optimal_fraction(h, nontrivial_only=True))
        # DHASY-first strategy over *all* superblocks.
        total = len(summary.results)
        dhasy_opt = sum(1 for r in summary.results if r.optimal("dhasy"))
        rescheduled = total - dhasy_opt
        strategy_opt = sum(
            1
            for r in summary.results
            if r.optimal("dhasy") or r.optimal("balance")
        )
        combo_stats[machine.name] = {
            "strategy_optimal_percent": 100.0 * strategy_opt / total,
            "rescheduled_percent": 100.0 * rescheduled / total,
        }
        row.append(100.0 * strategy_opt / total)
        row.append(100.0 * rescheduled / total)
        rows.append(row)
    return TableResult(
        table_id="Table 4",
        title="Optimally scheduled nontrivial superblocks (%)",
        headers=["Machine"]
        + [_HEUR_LABELS.get(h, h) for h in heuristics]
        + ["DHASY->Balance", "Rescheduled%"],
        rows=rows,
        data={"summaries": summaries, "strategy": combo_stats},
    )


# ---------------------------------------------------------------------------
# Table 5 — scheduling without profile data
# ---------------------------------------------------------------------------
def table5(
    corpus: Corpus,
    machines: tuple[MachineConfig, ...] = ALL_MACHINES,
    heuristics: tuple[str, ...] = TABLE_HEURISTICS,
    include_triplewise: bool = True,
    last_weight: float = 1000.0,
    profiled_summaries: dict[str, CorpusSummary] | None = None,
    jobs: int | None = None,
    metrics: MetricsRegistry | None = None,
) -> TableResult:
    """No-profile experiment: schedulers assume (1, ..., 1, 1000) weights.

    Evaluation still uses the true exit probabilities, so the numbers are
    directly comparable with Table 3; the final row shows the average
    slowdown increase caused by dropping the profile.
    """
    summaries: dict[str, CorpusSummary] = {}
    rows: list[list[Any]] = []
    for machine in machines:
        summary = evaluate_corpus(
            corpus,
            machine,
            heuristics,
            scheduling_weights=NoProfileWeights(last_weight),
            include_triplewise=include_triplewise,
            jobs=jobs,
            metrics=metrics,
        )
        summaries[machine.name] = summary
        rows.append(
            [machine.name] + [summary.slowdown_percent(h) for h in heuristics]
        )
    avg_row: list[Any] = ["Average"]
    delta_row: list[Any] = ["Delta vs profiled"]
    for h in heuristics:
        avg = statistics.fmean(
            summaries[m.name].slowdown_percent(h) for m in machines
        )
        avg_row.append(avg)
        if profiled_summaries is not None:
            base = statistics.fmean(
                profiled_summaries[m.name].slowdown_percent(h) for m in machines
            )
            delta_row.append(avg - base)
    rows.append(avg_row)
    if profiled_summaries is not None:
        rows.append(delta_row)
    return TableResult(
        table_id="Table 5",
        title=f"Slowdown without profile data (last exit weight {last_weight:g}, %)",
        headers=["Machine"] + [_HEUR_LABELS.get(h, h) for h in heuristics],
        rows=rows,
        data={"summaries": summaries},
    )


# ---------------------------------------------------------------------------
# Table 6 — scheduler cost
# ---------------------------------------------------------------------------
#: Complexity expressions quoted from the paper's Table 6.
_SCHED_COMPLEXITY = {
    "sr": ("O(V(V+E))", "O(V+E)"),
    "cp": ("O(V(V+E))", "O(V+E)"),
    "gstar": ("O(BV(V+E))", "O(B(V+E))"),
    "dhasy": ("O(B(V+E))", "O(B(V+E))"),
    "help": ("O(BV(V+E)R)", "O(BVR)"),
    "balance": ("O(BV(V+E)R)", "O(BVR)"),
    "balance-fullupdate": ("O(BV(V+E)R)", "O(BVR)"),
    "balance-percycle": ("O(BV(V+E)R)", "O(BVR)"),
}


def _sched_time_unit(sb, machine, name, config, repetitions: int) -> float:
    """Wall-clock microseconds to schedule one superblock once."""
    from repro.core.balance import balance_schedule

    t0 = time.perf_counter()
    for _ in range(repetitions):
        if config is not None:
            balance_schedule(sb, machine, config, validate=False)
        else:
            get_scheduler(name)(sb, machine, validate=False)
    return 1e6 * (time.perf_counter() - t0) / repetitions


def table6(
    corpus: Corpus,
    machine: MachineConfig = FS4,
    heuristics: tuple[str, ...] = ("sr", "cp", "gstar", "dhasy", "help", "balance"),
    repetitions: int = 1,
    jobs: int | None = None,
    metrics: MetricsRegistry | None = None,
) -> TableResult:
    """Measured scheduling cost per heuristic (wall-clock per superblock).

    The paper reports loop trip counts; wall-clock per superblock is the
    equivalent empirical measure for a Python implementation. The
    ``balance-percycle`` row quantifies the saving of updating the dynamic
    bounds once per cycle instead of once per operation.

    Note that with ``jobs > 1`` the per-superblock timings are taken in
    concurrently running workers: aggregate throughput improves but the
    individual measurements pick up scheduling noise, so serial runs are
    preferred when the absolute microsecond numbers matter.
    """
    from repro.core.config import BalanceConfig

    variants = {
        "balance-fullupdate": BalanceConfig(light_update=False),
        "balance-percycle": BalanceConfig(update_per_op=False),
    }
    rows: list[list[Any]] = []
    data: dict[str, Any] = {}
    names = list(heuristics) + list(variants)
    superblocks = list(corpus)
    units = [
        (idx, (machine, name, variants.get(name), repetitions))
        for name in names
        for idx in range(len(superblocks))
    ]
    timings = corpus_map(_sched_time_unit, superblocks, units, jobs, metrics=metrics)
    for pos, name in enumerate(names):
        per_sb_us = timings[pos * len(superblocks) : (pos + 1) * len(superblocks)]
        worst, emp = _SCHED_COMPLEXITY.get(name, ("-", "-"))
        rows.append(
            [
                _HEUR_LABELS.get(name, name),
                worst,
                emp,
                statistics.fmean(per_sb_us),
                statistics.median(per_sb_us),
            ]
        )
        data[name] = per_sb_us
    return TableResult(
        table_id="Table 6",
        title=f"Scheduling cost per superblock on {machine.name} (microseconds)",
        headers=["Heuristic", "Worst-case", "Empirical", "Avg us", "Median us"],
        rows=rows,
        data=data,
    )


# ---------------------------------------------------------------------------
# Table 7 — Balance component ablation
# ---------------------------------------------------------------------------
def table7(
    corpus: Corpus,
    machines: tuple[MachineConfig, ...] = ALL_MACHINES,
    include_triplewise: bool = True,
    jobs: int | None = None,
    metrics: MetricsRegistry | None = None,
) -> TableResult:
    """Slowdown of every Balance component combination (Table 7 grid)."""
    labels = {cfg.label(): cfg for cfg in ABLATION_GRID}
    summaries: dict[str, CorpusSummary] = {}
    for machine in machines:
        summaries[machine.name] = evaluate_corpus(
            corpus,
            machine,
            heuristics=("balance",),  # anchor for the trivial classification
            include_triplewise=include_triplewise,
            extra_configs=labels,
            jobs=jobs,
            metrics=metrics,
        )
    combos = [
        "Help",
        "HlpDel",
        "Help+Bound",
        "HlpDel+Bound",
        "HlpDel+Bound+Tradeoff",
    ]
    rows: list[list[Any]] = []
    for mode, suffix in (("once per cycle", "perCycle"), ("once per op", "perOp")):
        row: list[Any] = [mode]
        for combo in combos:
            label = f"{combo}+{suffix}"
            row.append(
                statistics.fmean(
                    summaries[m.name].slowdown_percent(label) for m in machines
                )
            )
        rows.append(row)
    return TableResult(
        table_id="Table 7",
        title="Balance component ablation: slowdown for nontrivial superblocks (%)",
        headers=["Update"] + combos,
        rows=rows,
        data={"summaries": summaries},
    )
