"""Run bounds and schedulers over a corpus (the evaluation workhorse).

:func:`evaluate_corpus` produces one :class:`SuperblockResult` per
superblock: the tightest lower bound plus the WCT of each requested
heuristic (optionally scheduled under substitute exit weights for the
no-profile experiment). Results feed every table/figure builder in
:mod:`repro.eval.tables` and :mod:`repro.eval.figures`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro import cache as result_cache
from repro.bounds.superblock_bounds import BoundSuite
from repro.core.balance import balance_schedule
from repro.core.config import BalanceConfig
from repro.eval.metrics import CorpusSummary, SuperblockResult, reweighted
from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig
from repro.obs import ledger, trace
from repro.obs.metrics import MetricsRegistry, active_counters
from repro.perf.runner import parallel_cost_weight
from repro.perf.workers import corpus_map
from repro.schedulers.base import get_scheduler
from repro.workloads.corpus import Corpus

#: Heuristics evaluated in the paper's scheduler tables, paper order.
TABLE_HEURISTICS = ("sr", "cp", "gstar", "dhasy", "help", "balance", "best")


@parallel_cost_weight(8.0)
@result_cache.kernel_version(2)
def evaluate_superblock(
    sb: Superblock,
    machine: MachineConfig,
    heuristics: Iterable[str] = TABLE_HEURISTICS,
    scheduling_weights: Callable[[Superblock], dict[int, float]] | None = None,
    include_triplewise: bool = True,
    extra_configs: dict[str, BalanceConfig] | None = None,
) -> SuperblockResult:
    """Bounds + schedules for one superblock.

    Args:
        scheduling_weights: optional substitute exit weights the schedulers
            see (evaluation always uses the true weights).
        extra_configs: additional Balance-engine configurations to run,
            keyed by result label (the Table 7 ablation grid).
    """
    counters = active_counters()
    suite = BoundSuite(
        sb, machine, counters, include_triplewise=include_triplewise
    )
    with trace.span("eval.bounds", sb=sb.name, machine=machine.name):
        bounds = suite.compute()

    sched_sb = sb
    sched_suite = suite
    if scheduling_weights is not None:
        sched_sb = reweighted(sb, scheduling_weights(sb))
        sched_suite = BoundSuite(
            sched_sb, machine, counters, include_triplewise=False
        )

    wct: dict[str, float] = {}
    makespan: dict[str, int] = {}
    for name in heuristics:
        kwargs = {"suite": sched_suite} if name == "balance" else {}
        if name in ("balance", "help"):
            kwargs["counters"] = counters
        with trace.span(
            "eval.schedule", sb=sb.name, machine=machine.name, heuristic=name
        ):
            s = get_scheduler(name)(sched_sb, machine, validate=False, **kwargs)
        # Evaluate with the *true* weights regardless of scheduling weights.
        wct[name] = sb.weighted_completion_time(
            {b: s.issue[b] for b in sb.branches}
        )
        makespan[name] = s.length
    for label, config in (extra_configs or {}).items():
        s = balance_schedule(
            sched_sb,
            machine,
            config,
            suite=sched_suite if config.use_rc_bounds else None,
            counters=counters,
            validate=False,
        )
        wct[label] = sb.weighted_completion_time(
            {b: s.issue[b] for b in sb.branches}
        )
        makespan[label] = s.length

    # Makespans ride along unconditionally (never gated on the ledger
    # being on) so cached results and the ledger-on/off bit-identity
    # contract both hold regardless of observation state.
    return SuperblockResult(
        name=sb.name,
        exec_freq=sb.exec_freq,
        tightest_bound=bounds.tightest,
        bound_wct=dict(bounds.wct),
        heuristic_wct=wct,
        stats={"makespan": makespan},
    )


def evaluate_corpus(
    corpus: Corpus,
    machine: MachineConfig,
    heuristics: Iterable[str] = TABLE_HEURISTICS,
    scheduling_weights: Callable[[Superblock], dict[int, float]] | None = None,
    include_triplewise: bool = True,
    extra_configs: dict[str, BalanceConfig] | None = None,
    jobs: int | None = None,
    metrics: MetricsRegistry | None = None,
) -> CorpusSummary:
    """Evaluate every superblock of ``corpus`` on ``machine``.

    Args:
        jobs: worker processes for the per-superblock fan-out
            (``None``/``1`` serial, ``0`` = all CPUs); results are
            identical for any value. An unpicklable
            ``scheduling_weights`` callable (e.g. a lambda) silently
            forces the serial path — use a picklable callable such as
            :class:`repro.eval.metrics.NoProfileWeights` to keep the
            fan-out parallel.
        metrics: optional registry collecting counters/timers from every
            work unit; merged totals are identical for any ``jobs``.
    """
    superblocks = list(corpus)
    extras = (
        machine,
        tuple(heuristics),
        scheduling_weights,
        include_triplewise,
        extra_configs,
    )
    results = corpus_map(
        evaluate_superblock,
        superblocks,
        [(idx, extras) for idx in range(len(superblocks))],
        jobs,
        metrics=metrics,
    )
    recorder = ledger.active_recorder()
    if recorder is not None:
        for sb, result in zip(superblocks, results):
            recorder.record_block(
                sb.name,
                machine.name,
                ops=sb.num_operations,
                branches=sb.num_branches,
                edges=sb.graph.num_edges,
                exec_freq=sb.exec_freq,
                tightest=result.tightest_bound,
                bounds=dict(result.bound_wct),
                wct=dict(result.heuristic_wct),
                makespan=dict(result.stats.get("makespan", {})),
            )
    return CorpusSummary(machine=machine.name, results=results)
