"""Evaluation harnesses: metrics, table builders, figure builders."""

from repro.eval.bounds_eval import (
    BoundCost,
    BoundQuality,
    bound_costs,
    bound_quality,
)
from repro.eval.figures import FigureResult, figure8, figure_schedules
from repro.eval.formatting import format_table
from repro.eval.metrics import (
    CorpusSummary,
    SuperblockResult,
    noprofile_weights,
    reweighted,
)
from repro.eval.sched_eval import (
    TABLE_HEURISTICS,
    evaluate_corpus,
    evaluate_superblock,
)
from repro.eval.tables import (
    ALL_MACHINES,
    FS_MACHINES,
    GP_MACHINES,
    TableResult,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)

__all__ = [
    "ALL_MACHINES",
    "FS_MACHINES",
    "GP_MACHINES",
    "TABLE_HEURISTICS",
    "BoundCost",
    "BoundQuality",
    "CorpusSummary",
    "FigureResult",
    "SuperblockResult",
    "TableResult",
    "bound_costs",
    "bound_quality",
    "evaluate_corpus",
    "evaluate_superblock",
    "figure8",
    "figure_schedules",
    "format_table",
    "noprofile_weights",
    "reweighted",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
]
