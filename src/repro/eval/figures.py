"""Builders for the paper's figures.

* :func:`figure8` — the CDF of Figure 8: fraction of (gcc) superblocks
  scheduled within X extra dynamic cycles of the tightest bound, per
  heuristic, on FS4.
* :func:`figure_schedules` — side-by-side schedules of the motivating
  examples (Figures 1-4), rendered as text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.eval.metrics import CorpusSummary
from repro.eval.sched_eval import TABLE_HEURISTICS, evaluate_corpus
from repro.machine.machine import FS4, MachineConfig
from repro.obs.metrics import MetricsRegistry
from repro.schedulers.base import get_scheduler
from repro.workloads.corpus import Corpus

#: Extra-cycle thresholds of the Figure 8 X axis (log-ish grid).
FIGURE8_THRESHOLDS: tuple[float, ...] = (
    0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 100, 1000, 10_000, 100_000, 1_000_000
)


@dataclass
class FigureResult:
    """One regenerated figure: raw series plus a text rendering."""

    figure_id: str
    title: str
    series: dict[str, list[tuple[float, float]]]
    data: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        lines = [f"{self.figure_id}: {self.title}", "=" * 40]
        header = "extra cycles <= " + "  ".join(
            f"{x:>8g}" for x in FIGURE8_THRESHOLDS
        )
        lines.append(header)
        for name, pts in self.series.items():
            vals = "  ".join(f"{100 * y:7.2f}%" for _x, y in pts)
            lines.append(f"{name:>16s} {vals}")
        return "\n".join(lines)


def figure8(
    corpus: Corpus,
    machine: MachineConfig = FS4,
    heuristics: tuple[str, ...] = TABLE_HEURISTICS,
    include_triplewise: bool = True,
    summary: CorpusSummary | None = None,
    jobs: int | None = None,
    metrics: MetricsRegistry | None = None,
) -> FigureResult:
    """Fraction of superblocks within X extra dynamic cycles of the bound.

    The Y-intercept (X = 0) is the fraction of optimally scheduled
    superblocks, exactly as in the paper's Figure 8.
    """
    if summary is None:
        summary = evaluate_corpus(
            corpus, machine, heuristics,
            include_triplewise=include_triplewise, jobs=jobs,
            metrics=metrics,
        )
    total = len(summary.results)
    series: dict[str, list[tuple[float, float]]] = {}
    for h in heuristics:
        extras = summary.extra_cycle_distribution(h)
        pts = []
        for x in FIGURE8_THRESHOLDS:
            covered = sum(1 for e in extras if e <= x + 1e-9)
            pts.append((float(x), covered / total if total else 1.0))
        series[h] = pts
    # Sort the legend by decreasing optimal fraction, like the paper.
    ordered = dict(
        sorted(series.items(), key=lambda kv: -kv[1][0][1])
    )
    return FigureResult(
        figure_id="Figure 8",
        title=f"Superblocks within X extra cycles of the bound ({corpus.name}, {machine.name})",
        series=ordered,
        data={"summary": summary},
    )


def figure_schedules(
    heuristics: tuple[str, ...] = ("cp", "sr", "gstar", "dhasy", "help", "balance"),
) -> str:
    """Text rendering of the Figure 1-4 example schedules."""
    from repro.ir.examples import PAPER_EXAMPLES

    blocks: list[str] = []
    for fig_name, (sb, machine) in PAPER_EXAMPLES.items():
        blocks.append(f"--- {fig_name}: {sb.name} on {machine.name} ---")
        for h in heuristics:
            s = get_scheduler(h)(sb, machine, validate=False)
            branch_cycles = {b: s.issue[b] for b in sb.branches}
            blocks.append(
                f"{h:>8s}: WCT={s.wct:.3f} length={s.length} "
                f"branches={branch_cycles}"
            )
        blocks.append("")
    return "\n".join(blocks)
