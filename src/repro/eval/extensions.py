"""Extension experiments beyond the paper's tables.

* :func:`per_benchmark_table` — Table 3's slowdown broken down by
  SPECint95 program (the paper discusses 126.gcc separately; this gives
  the full per-program picture).
* :func:`profile_noise_sweep` — a finer version of Table 5: instead of
  the all-or-nothing no-profile assumption, exit weights are perturbed by
  multiplicative noise of increasing strength, showing how gracefully
  each heuristic degrades with profile staleness.
* :func:`gstar_secondary_table` — G* with different secondary heuristics
  (the paper fixes Critical Path; ref [8] defines the family).
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.eval.metrics import CorpusSummary
from repro.eval.sched_eval import evaluate_corpus
from repro.eval.tables import TableResult
from repro.ir.superblock import Superblock
from repro.machine.machine import FS4, MachineConfig
from repro.schedulers.base import get_scheduler
from repro.workloads.corpus import Corpus
from repro.workloads.profiles import SPECINT95_PROFILES


def per_benchmark_table(
    corpus: Corpus,
    machine: MachineConfig = FS4,
    heuristics: tuple[str, ...] = ("sr", "cp", "dhasy", "help", "balance"),
    include_triplewise: bool = False,
) -> TableResult:
    """Slowdown vs the tightest bound, per SPECint95 program."""
    rows = []
    summaries: dict[str, CorpusSummary] = {}
    for profile in SPECINT95_PROFILES:
        sub = corpus.by_benchmark(profile.name)
        if not len(sub):
            continue
        summary = evaluate_corpus(
            sub, machine, heuristics, include_triplewise=include_triplewise
        )
        summaries[profile.name] = summary
        rows.append(
            [profile.name, len(sub)]
            + [summary.slowdown_percent(h) for h in heuristics]
        )
    return TableResult(
        table_id="Extension A",
        title=f"Per-benchmark slowdown on {machine.name} (%)",
        headers=["Benchmark", "SBs"] + [h.upper() for h in heuristics],
        rows=rows,
        data={"summaries": summaries},
    )


def _noisy_weights(
    sb: Superblock, noise: float, rng: random.Random
) -> dict[int, float]:
    """Multiplicatively perturb the exit weights (profile staleness)."""
    return {
        b: max(1e-6, w * rng.uniform(1.0 - noise, 1.0 + noise))
        for b, w in sb.weights.items()
    }


def profile_noise_sweep(
    corpus: Corpus,
    machine: MachineConfig = FS4,
    heuristics: tuple[str, ...] = ("dhasy", "help", "balance"),
    noise_levels: Iterable[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    seed: int = 0,
    include_triplewise: bool = False,
) -> TableResult:
    """Slowdown as the schedulers' view of the profile degrades.

    ``noise = 1.0`` means each weight may be scaled anywhere in [0, 2];
    evaluation always uses the true weights.
    """
    rows = []
    data: dict[float, dict[str, float]] = {}
    for noise in noise_levels:
        rng = random.Random(f"noise/{seed}/{noise}")
        summary = evaluate_corpus(
            corpus,
            machine,
            heuristics,
            scheduling_weights=(
                None if noise == 0.0
                else (lambda sb, _n=noise: _noisy_weights(sb, _n, rng))
            ),
            include_triplewise=include_triplewise,
        )
        row = {h: summary.slowdown_percent(h) for h in heuristics}
        data[noise] = row
        rows.append([f"noise {noise:.2f}"] + [row[h] for h in heuristics])
    return TableResult(
        table_id="Extension B",
        title=f"Profile-noise sensitivity on {machine.name} (slowdown %)",
        headers=["Profile noise"] + [h.upper() for h in heuristics],
        rows=rows,
        data=data,
    )


def gstar_secondary_table(
    corpus: Corpus,
    machine: MachineConfig = FS4,
    secondaries: tuple[str, ...] = ("cp", "sr", "dhasy"),
) -> TableResult:
    """Aggregate WCT of the G* family under different secondary heuristics."""
    rows = []
    data: dict[str, float] = {}
    for secondary in secondaries:
        total = 0.0
        for sb in corpus:
            s = get_scheduler("gstar")(
                sb, machine, secondary=secondary, validate=False
            )
            total += sb.exec_freq * s.wct
        data[secondary] = total
        rows.append([f"G*[{secondary}]", total])
    base = min(data.values())
    for row in rows:
        row.append(100.0 * (row[1] / base - 1.0))
    return TableResult(
        table_id="Extension C",
        title=f"G* secondary heuristics on {machine.name}",
        headers=["Variant", "Dynamic cycles", "vs best %"],
        rows=rows,
        data=data,
    )
