"""Verification run orchestration.

``run_verify`` drives the oracle families over a deterministic fuzz
corpus, wiring observability in (a ``verify.case`` span per case, counters
per oracle family) and minimizing the first few counterexamples so a
failing run ends with something small enough to pin as a regression test.

The division of labor per case:

1. generate the case (``verify.generators``);
2. solve it exactly (ILP, cross-checked against branch and bound);
3. run every scheduler and validate every schedule (legality family);
4. run every bound family and compare against the exact optimum and the
   best feasible schedule (bounds family);
5. simulate the best heuristic schedule and check convergence to its WCT
   (sim family);
6. round-trip the case through the worker pool's array-packed codec and
   recompute the bounds on the decode (pack family);
7. evaluate the case with and without an installed run-ledger recorder
   and require bit-identical results/counters/spans (ledger family);
8. post the case to an in-process HTTP scheduling service, cold and
   warm, and require both responses bit-identical — results and
   counters — to the direct library call (service family).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.obs import trace
from repro.obs.metrics import active
from repro.schedulers.schedule import ScheduleError, validate_schedule
from repro.verify.generators import VerifyCase, fuzz_cases
from repro.verify.minimize import minimize_superblock
from repro.verify.oracles import (
    Finding,
    check_bounds,
    check_cache,
    check_kernel,
    check_ledger,
    check_pack,
    check_schedulers,
    check_service,
    check_sim,
    exact_wct,
)

#: Oracle families selectable via ``--family``.
FAMILIES = (
    "legality", "bounds", "sim", "cache", "pack", "ledger", "kernel",
    "service",
)


@dataclass(frozen=True)
class VerifyConfig:
    """One verification run's parameters."""

    fuzz: int = 200
    seed: int = 0
    families: tuple[str, ...] = FAMILIES
    max_ops: int = 14
    max_branches: int = 4
    sim_runs: int = 4000
    allow_blocking: bool = True
    minimize: bool = True
    minimize_cap: int = 3  #: counterexamples minimized per run

    def __post_init__(self) -> None:
        unknown = [f for f in self.families if f not in FAMILIES]
        if unknown:
            raise ValueError(
                f"unknown oracle families {unknown}; known: {list(FAMILIES)}"
            )

    @classmethod
    def quick(cls) -> "VerifyConfig":
        """The CI smoke configuration: small corpus, smaller blocks."""
        return cls(fuzz=25, max_ops=10, max_branches=3, sim_runs=1500)


@dataclass
class VerifyReport:
    """Outcome of one verification run."""

    config: VerifyConfig
    cases: int = 0
    checked_exact: int = 0  #: cases with an exact reference available
    findings: list[Finding] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings


def run_verify(config: VerifyConfig) -> VerifyReport:
    """Run the configured oracle families over the fuzz corpus."""
    t0 = time.perf_counter()
    report = VerifyReport(config=config)
    metrics = active()
    cases = fuzz_cases(
        config.fuzz,
        seed=config.seed,
        max_ops=config.max_ops,
        max_branches=config.max_branches,
        allow_blocking=config.allow_blocking,
    )
    minimized = 0
    for case in cases:
        with trace.span(
            "verify.case",
            index=case.index,
            sb=case.sb.name,
            machine=case.machine.name,
        ):
            case_findings, had_exact = _run_case(case, config)
        report.cases += 1
        if had_exact:
            report.checked_exact += 1
        if metrics is not None:
            metrics.add("verify.cases", 1)
            if case_findings:
                metrics.add("verify.findings", len(case_findings))
        if case_findings and config.minimize and minimized < config.minimize_cap:
            case_findings = [
                _minimized(case, f, config) for f in case_findings
            ]
            minimized += 1
        report.findings.extend(case_findings)
    report.elapsed_s = time.perf_counter() - t0
    if metrics is not None:
        metrics.gauge("verify.elapsed_s", round(report.elapsed_s, 3))
    return report


def _run_case(
    case: VerifyCase, config: VerifyConfig
) -> tuple[list[Finding], bool]:
    """Run the selected oracle families on one case.

    Returns the findings plus whether an exact reference was available.
    """
    findings: list[Finding] = []
    sb, machine = case.sb, case.machine
    need_exact = "bounds" in config.families or "legality" in config.families
    opt = None
    if need_exact:
        with trace.span("verify.exact", sb=sb.name):
            opt, exact_findings = exact_wct(sb, machine)
        findings.extend(exact_findings)
    schedules = {}
    if "legality" in config.families or "sim" in config.families:
        with trace.span("verify.schedulers", sb=sb.name):
            sched_findings, schedules = check_schedulers(sb, machine, opt)
        if "legality" in config.families:
            findings.extend(sched_findings)
    if "bounds" in config.families:
        feasible = _best_feasible_wct(sb, machine, schedules)
        with trace.span("verify.bounds", sb=sb.name):
            bound_findings, _res = check_bounds(sb, machine, opt, feasible)
        findings.extend(bound_findings)
    if "sim" in config.families and schedules:
        best = min(schedules.values(), key=lambda s: s.wct)
        with trace.span("verify.sim", sb=sb.name):
            findings.extend(
                check_sim(
                    sb, machine, best,
                    runs=config.sim_runs, seed=config.seed,
                )
            )
    if "cache" in config.families:
        with trace.span("verify.cache", sb=sb.name):
            findings.extend(check_cache(sb, machine))
    if "pack" in config.families:
        with trace.span("verify.pack", sb=sb.name):
            findings.extend(check_pack(sb, machine))
    if "ledger" in config.families:
        with trace.span("verify.ledger", sb=sb.name):
            findings.extend(check_ledger(sb, machine))
    if "kernel" in config.families:
        with trace.span("verify.kernel", sb=sb.name):
            findings.extend(check_kernel(sb, machine))
    if "service" in config.families:
        with trace.span("verify.service", sb=sb.name):
            findings.extend(check_service(sb, machine))
    return findings, opt is not None


def _best_feasible_wct(sb, machine, schedules) -> float | None:
    """Lowest WCT among schedules that actually validate."""
    best = None
    for s in schedules.values():
        try:
            validate_schedule(sb, machine, s)
        except ScheduleError:
            continue
        if best is None or s.wct < best:
            best = s.wct
    return best


def _minimized(case: VerifyCase, finding: Finding, config: VerifyConfig) -> Finding:
    """Attach a minimized counterexample to a finding when possible."""
    from repro.ir.serialize import superblock_to_dict

    oracle, check = finding.oracle, finding.check

    def still_fails(sb) -> bool:
        try:
            small_case = VerifyCase(case.index, sb, case.machine)
            repro, _ = _run_case(small_case, replace(config, minimize=False))
        except Exception:  # noqa: BLE001 - shrink candidates may crash
            return False
        return any(f.oracle == oracle and f.check == check for f in repro)

    try:
        small = minimize_superblock(case.sb, still_fails, max_evals=150)
    except ValueError:
        return finding
    return replace(finding, superblock=superblock_to_dict(small))


def render_report(report: VerifyReport) -> str:
    """Human-readable verification report."""
    cfg = report.config
    lines = [
        f"verify: {report.cases} cases "
        f"(seed {cfg.seed}, families {'+'.join(cfg.families)}), "
        f"{report.checked_exact} with an exact reference, "
        f"{report.elapsed_s:.1f}s",
    ]
    if report.ok:
        lines.append("all oracles passed: no soundness violations found")
        return "\n".join(lines)
    lines.append(f"{len(report.findings)} FINDING(S):")
    import json

    for k, f in enumerate(report.findings, 1):
        lines.append(f"[{k}] {f.oracle}/{f.check}: {f.detail}")
        lines.append(f"    machine: {json.dumps(f.machine, sort_keys=True)}")
        lines.append(f"    superblock: {json.dumps(f.superblock)}")
    lines.append(
        "pin each finding as a regression test before fixing it "
        "(docs/verification.md)"
    )
    return "\n".join(lines)
