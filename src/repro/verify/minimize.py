"""Greedy counterexample minimization.

When an oracle fires, the raw fuzz case is rarely the story — the bug
usually survives in a much smaller superblock. :func:`minimize_superblock`
shrinks a failing case while a caller-supplied predicate keeps returning
``True`` ("still fails"), using three structural passes per round:

1. drop a side exit (its probability mass folds into the final exit);
2. drop a non-branch operation (its edges go with it);
3. drop a single non-control dependence edge.

Every candidate is re-validated structurally before the predicate runs, so
the result is always a well-formed superblock ready to be pinned as a
regression test (docs/verification.md shows the workflow end to end).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from repro.ir.depgraph import DependenceGraph
from repro.ir.superblock import Superblock
from repro.ir.validate import SuperblockValidationError, validate_superblock


def minimize_superblock(
    sb: Superblock,
    predicate: Callable[[Superblock], bool],
    max_evals: int = 400,
) -> Superblock:
    """Shrink ``sb`` while ``predicate`` holds; returns the smallest found.

    The predicate must return ``True`` for ``sb`` itself (the unshrunk
    counterexample) and for every intermediate result it wants kept; it
    should catch its own exceptions and translate them into a verdict.
    """
    if not predicate(sb):
        raise ValueError("predicate does not hold for the initial superblock")
    evals = 0
    current = sb
    shrunk = True
    while shrunk and evals < max_evals:
        shrunk = False
        for candidate in _candidates(current):
            evals += 1
            if evals > max_evals:
                break
            if predicate(candidate):
                current = candidate
                shrunk = True
                break
    return current


def _candidates(sb: Superblock):
    """Yield structurally valid one-step shrinks of ``sb``, smallest first."""
    branches = sb.branches
    # Pass 1: drop one side exit (never the final exit).
    for b in branches[:-1]:
        candidate = _try_build(_without_op(sb, b))
        if candidate is not None:
            yield candidate
    # Pass 2: drop one non-branch operation.
    for v in range(sb.num_operations):
        if sb.op(v).is_branch:
            continue
        candidate = _try_build(_without_op(sb, v))
        if candidate is not None:
            yield candidate
    # Pass 3: drop one non-control dependence edge.
    control = set(zip(branches, branches[1:]))
    for src, dst, _lat in sb.graph.edges():
        if (src, dst) in control:
            continue
        candidate = _try_build(_without_edge(sb, src, dst))
        if candidate is not None:
            yield candidate


def _without_op(sb: Superblock, drop: int) -> Superblock | None:
    """Rebuild ``sb`` without operation ``drop``, remapping indices."""
    keep = [v for v in range(sb.num_operations) if v != drop]
    if not keep:
        return None
    remap = {v: i for i, v in enumerate(keep)}
    graph = DependenceGraph()
    dropped_op = sb.op(drop)
    extra_prob = dropped_op.exit_prob if dropped_op.is_branch else 0.0
    last = sb.last_branch
    for v in keep:
        op = sb.op(v)
        exit_prob = op.exit_prob
        if v == last and extra_prob:
            # Fold the dropped exit's probability into the fall-through.
            exit_prob = min(1.0, round(exit_prob + extra_prob, 9))
        graph.add_operation(
            dataclasses.replace(op, index=remap[v], exit_prob=exit_prob)
        )
    for src, dst, lat in sb.graph.edges():
        if src == drop or dst == drop:
            continue
        graph.add_edge(remap[src], remap[dst], lat)
    # Bridge the control chain around a dropped branch.
    if dropped_op.is_branch:
        remaining = [b for b in sb.branches if b != drop]
        for prev, nxt in zip(remaining, remaining[1:]):
            if not graph.has_edge(remap[prev], remap[nxt]):
                graph.add_edge(remap[prev], remap[nxt], sb.op(prev).latency)
    _tie_orphans(graph)
    graph.freeze()
    return Superblock(
        name=sb.name, graph=graph, exec_freq=sb.exec_freq, source=sb.source
    )


def _without_edge(sb: Superblock, src: int, dst: int) -> Superblock:
    """Rebuild ``sb`` without the single edge ``(src, dst)``."""
    graph = DependenceGraph()
    for op in sb.operations:
        graph.add_operation(op)
    for s, d, lat in sb.graph.edges():
        if (s, d) != (src, dst):
            graph.add_edge(s, d, lat)
    _tie_orphans(graph)
    graph.freeze()
    return Superblock(
        name=sb.name, graph=graph, exec_freq=sb.exec_freq, source=sb.source
    )


def _tie_orphans(graph: DependenceGraph) -> None:
    """Feed orphaned sinks into the final exit.

    A shrink can leave a non-branch operation with no consumers; such an
    op no longer reaches any exit, so schedulers would be free to park it
    anywhere (including past the last branch). Tying it to the final exit
    preserves the corpus-wide invariant that every operation matters to
    some exit.
    """
    n = graph.num_operations
    last = n - 1
    for v in range(n - 1):
        if not graph.op(v).is_branch and not graph.succs(v):
            graph.add_edge(v, last, graph.op(v).latency)


def _try_build(candidate: Superblock | None) -> Superblock | None:
    """Return the candidate only if it is structurally valid."""
    if candidate is None:
        return None
    try:
        validate_superblock(candidate)
    except SuperblockValidationError:
        return None
    return candidate
