"""Seeded fuzz-case generation for the verification oracles.

The generator deliberately favors the *corners* the main corpus generator
smooths over — empty blocks, zero-probability exits, long-latency chains,
duplicate weights, blocking (non-pipelined) units — because that is where
bound and scheduler bugs hide. Every case is derived from
``random.Random(f"verify/{seed}/{index}")``, so a failing case index
reproduces in isolation and across machines.

Instances are kept small enough for the exact solvers: the ILP reference
is ``O(V * T)`` variables and the branch-and-bound search is exponential,
so the default caps (14 ops, 4 exits) keep one case in the milliseconds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.ir.builder import SuperblockBuilder
from repro.ir.superblock import Superblock
from repro.machine.machine import (
    FS4,
    FS4_NP,
    FS6,
    GP1,
    GP2,
    GP4,
    MachineConfig,
)

#: Opcode pool: weighted toward unit-latency integer ops, with enough
#: multi-latency (load/fmul) and blocking-eligible (fdiv) traffic to
#: exercise the latency and occupancy paths.
_OPCODES = (
    ["add"] * 4
    + ["sub", "cmp", "mov", "mul", "xor"]
    + ["load"] * 3
    + ["store"]
    + ["fadd", "fmul", "fdiv"]
)

#: Fixed machine pool; the remaining draws build random blocking variants.
_FIXED_MACHINES = (GP1, GP2, GP4, FS4, FS6, FS4_NP)


@dataclass(frozen=True)
class VerifyCase:
    """One fuzz case: a small superblock and the machine to audit it on."""

    index: int
    sb: Superblock
    machine: MachineConfig


def machine_to_dict(machine: MachineConfig) -> dict[str, Any]:
    """JSON-compatible description of a machine (for pinned findings)."""
    out: dict[str, Any] = {
        "name": machine.name,
        "units": dict(machine.units),
    }
    if machine.occupancy:
        out["occupancy"] = dict(machine.occupancy)
    return out


def machine_from_dict(data: dict[str, Any]) -> MachineConfig:
    """Reconstruct a machine from :func:`machine_to_dict` output."""
    return MachineConfig(
        name=data["name"],
        units={str(k): int(v) for k, v in data["units"].items()},
        occupancy={
            str(k): int(v) for k, v in data.get("occupancy", {}).items()
        },
    )


def random_machine(rng: random.Random, allow_blocking: bool = True) -> MachineConfig:
    """Sample a machine: a paper configuration or a blocking variant."""
    roll = rng.random()
    if roll < 0.7 or not allow_blocking:
        pool = _FIXED_MACHINES if allow_blocking else _FIXED_MACHINES[:-1]
        return rng.choice(pool)
    # Random blocking variant of a GP/FS base: pick 1-2 opcodes and give
    # them multi-cycle initiation intervals.
    base = rng.choice((GP1, GP2, FS4, FS6))
    occupancy: dict[str, int] = {}
    for op_name in rng.sample(("load", "fmul", "fdiv", "mul", "store"), 2):
        if rng.random() < 0.75:
            occupancy[op_name] = rng.randint(2, 4)
    if not occupancy:
        occupancy["load"] = 2
    tag = "".join(f"{k}{v}" for k, v in sorted(occupancy.items()))
    return MachineConfig(
        name=f"{base.name}-B{tag}",
        units=dict(base.units),
        occupancy=occupancy,
    )


def random_superblock(
    rng: random.Random,
    max_ops: int = 14,
    max_branches: int = 4,
) -> Superblock:
    """Generate one small, valid, corner-heavy superblock."""
    n_branches = rng.randint(1, max_branches)
    builder = SuperblockBuilder(f"fuzz{rng.randrange(10**9):09d}")
    all_ops: list[int] = []
    side_probs = _side_exit_probs(rng, n_branches)
    budget = rng.randint(0, max_ops)
    for blk in range(n_branches):
        # Empty blocks are a deliberate corner (probability ~1/4).
        block_len = 0 if rng.random() < 0.25 else rng.randint(
            0, max(1, budget // n_branches)
        )
        block_ops: list[int] = []
        for _ in range(block_len):
            pool = all_ops + block_ops
            k = min(len(pool), rng.randint(0, 2))
            preds = rng.sample(pool, k=k) if k else None
            builder.op(rng.choice(_OPCODES), preds=preds)
            block_ops.append(builder.next_index - 1)
        all_ops.extend(block_ops)
        if blk == n_branches - 1:
            sinks = [
                v for v in all_ops if not builder._graph.succs(v)  # noqa: SLF001
            ]
            return builder.last_exit(preds=sinks or None)
        k = min(len(block_ops), rng.randint(0, 2))
        preds = rng.sample(block_ops, k=k) if k else None
        builder.exit(side_probs[blk], preds=preds)
    raise AssertionError("unreachable: the last block always returns")


def _side_exit_probs(rng: random.Random, n_branches: int) -> list[float]:
    """Side-exit probabilities with corner cases baked in.

    Roughly one case in five gets a zero-probability side exit and one in
    five gets duplicated weights — both historically fertile ground for
    tie-handling bugs in the tradeoff bounds.
    """
    probs: list[float] = []
    remaining = 1.0
    duplicate = rng.random() < 0.2
    dup_value = round(rng.uniform(0.05, 1.0 / max(1, n_branches)), 3)
    for _ in range(max(0, n_branches - 1)):
        if rng.random() < 0.2:
            p = 0.0
        elif duplicate:
            p = min(dup_value, round(remaining, 6))
        else:
            p = round(remaining * rng.uniform(0.05, 0.6), 6)
        probs.append(p)
        remaining -= p
    return probs


def fuzz_cases(
    count: int,
    seed: int = 0,
    max_ops: int = 14,
    max_branches: int = 4,
    allow_blocking: bool = True,
) -> list[VerifyCase]:
    """The deterministic fuzz corpus for one verification run."""
    cases = []
    for index in range(count):
        rng = random.Random(f"verify/{seed}/{index}")
        cases.append(
            VerifyCase(
                index=index,
                sb=random_superblock(rng, max_ops, max_branches),
                machine=random_machine(rng, allow_blocking),
            )
        )
    return cases
