"""Differential verification: the soundness audit subsystem.

The paper's whole argument (Sections 3-5) rests on every lower bound being
a *true* lower bound on the weighted completion time — and PR 2's LateRC
fix showed that this stack can be unsound without any test failing. This
package cross-checks every layer against independent oracles on small,
exhaustively solvable instances:

* **legality** — every scheduler's output passes the hardened
  :func:`~repro.schedulers.schedule.validate_schedule` and its reported
  WCT matches recomputation from the issue cycles;
* **bounds** — every bound family (LC, LateRC-backed PW/TW, RJ, Hu, CP,
  lp_combine) is ``<=`` the ILP/branch-and-bound optimal WCT, the two
  exact solvers agree with each other, and the incremental Pairwise sweep
  equals the naive one point for point;
* **sim** — Monte Carlo mean cycles converge to the schedule's WCT within
  an exact-variance confidence interval;
* **cache** — results served from the content-addressed result cache
  (:mod:`repro.cache`) are bit-identical, bounds and trip counters alike,
  to freshly computed ones, cold and warm.

Run it as ``python -m repro verify [--fuzz N] [--seed S] [--family F]``;
see docs/verification.md for the workflow, including how to minimize and
pin a counterexample when an oracle fires.
"""

from repro.verify.generators import (
    VerifyCase,
    fuzz_cases,
    machine_from_dict,
    machine_to_dict,
    random_machine,
    random_superblock,
)
from repro.verify.minimize import minimize_superblock
from repro.verify.oracles import (
    Finding,
    check_bounds,
    check_cache,
    check_ledger,
    check_pack,
    check_schedulers,
    check_service,
    check_sim,
    exact_wct,
)
from repro.verify.runner import (
    FAMILIES,
    VerifyConfig,
    VerifyReport,
    render_report,
    run_verify,
)

__all__ = [
    "FAMILIES",
    "Finding",
    "VerifyCase",
    "VerifyConfig",
    "VerifyReport",
    "check_bounds",
    "check_cache",
    "check_ledger",
    "check_pack",
    "check_schedulers",
    "check_service",
    "check_sim",
    "exact_wct",
    "fuzz_cases",
    "machine_from_dict",
    "machine_to_dict",
    "minimize_superblock",
    "random_machine",
    "random_superblock",
    "render_report",
    "run_verify",
]
