"""The verification oracles.

Each oracle inspects one (superblock, machine) case and returns a list of
:class:`Finding` records — empty means the case passed. Findings carry the
serialized superblock and machine so any failure is reproducible from the
report alone (see docs/verification.md for the pin-a-counterexample
workflow).

Oracle design notes:

* The **exact reference** prefers the time-indexed ILP (it models blocking
  units directly); on fully pipelined machines the branch-and-bound search
  runs as well and the two must agree — two independent exact solvers
  disagreeing is itself a high-value finding.
* Bound soundness is checked against the exact WCT when available and
  against the best *feasible* schedule always: a lower bound exceeding any
  validated schedule's WCT is unsound no matter what the optimum is.
* The sim oracle uses the exact per-exit cycle distribution to build a
  z-score confidence interval, so the tolerance is principled rather than
  an arbitrary epsilon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.bounds.pairwise import PairwiseBounder
from repro.bounds.superblock_bounds import BoundSuite, SuperblockBounds
from repro.ir.serialize import superblock_to_dict
from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig
from repro.schedulers.base import get_scheduler
from repro.schedulers.ilp import IlpSizeExceeded, ilp_schedule
from repro.schedulers.optimal import SearchBudgetExceeded
from repro.schedulers.schedule import Schedule, ScheduleError, validate_schedule
from repro.sim.executor import exact_sim_moments, simulate
from repro.verify.generators import machine_to_dict

#: Absolute slack for float comparisons between bounds and WCTs.
EPS = 1e-6

#: Schedulers audited by the differential fuzzer, in registry order.
SCHEDULERS = ("cp", "sr", "gstar", "dhasy", "help", "balance", "best")


@dataclass(frozen=True)
class Finding:
    """One verified-false invariant, with everything needed to reproduce."""

    oracle: str  #: family that fired ("legality", "bounds", "sim", ...)
    check: str  #: specific invariant, e.g. "PW<=optimal"
    detail: str  #: human-readable violation description
    superblock: dict[str, Any] = field(default_factory=dict)
    machine: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "oracle": self.oracle,
            "check": self.check,
            "detail": self.detail,
            "superblock": self.superblock,
            "machine": self.machine,
        }


def _finding(
    oracle: str, check: str, detail: str, sb: Superblock, machine: MachineConfig
) -> Finding:
    return Finding(
        oracle=oracle,
        check=check,
        detail=detail,
        superblock=superblock_to_dict(sb),
        machine=machine_to_dict(machine),
    )


# ----------------------------------------------------------------------
# Exact reference
# ----------------------------------------------------------------------
def exact_wct(
    sb: Superblock,
    machine: MachineConfig,
    ilp_max_variables: int = 20_000,
    bb_budget: int = 300_000,
) -> tuple[float | None, list[Finding]]:
    """Exact optimal WCT, cross-validated between the two exact solvers.

    Returns ``(wct, findings)``; ``wct`` is ``None`` when the instance is
    too large for both solvers (the case is then skipped, never silently
    passed).
    """
    findings: list[Finding] = []
    ilp: Schedule | None = None
    bb: Schedule | None = None
    try:
        ilp = ilp_schedule(
            sb, machine, max_variables=ilp_max_variables, validate=False
        )
    except IlpSizeExceeded:
        pass
    if machine.fully_pipelined:
        try:
            bb = get_scheduler("optimal")(
                sb, machine, budget=bb_budget, validate=False
            )
        except SearchBudgetExceeded:
            pass
    for name, exact in (("ilp", ilp), ("optimal", bb)):
        if exact is None:
            continue
        try:
            validate_schedule(sb, machine, exact)
        except ScheduleError as exc:
            findings.append(
                _finding(
                    "bounds", f"{name}-valid",
                    f"exact scheduler {name} produced an invalid schedule: {exc}",
                    sb, machine,
                )
            )
    if ilp is not None and bb is not None and abs(ilp.wct - bb.wct) > EPS:
        findings.append(
            _finding(
                "bounds", "ilp==optimal",
                f"exact solvers disagree: ILP WCT {ilp.wct:.6f} vs "
                f"branch-and-bound WCT {bb.wct:.6f}",
                sb, machine,
            )
        )
    if ilp is not None:
        return ilp.wct, findings
    if bb is not None:
        return bb.wct, findings
    return None, findings


# ----------------------------------------------------------------------
# Oracle 1+3: schedule legality and the cross-scheduler differential
# ----------------------------------------------------------------------
def check_schedulers(
    sb: Superblock,
    machine: MachineConfig,
    opt_wct: float | None = None,
    schedulers: tuple[str, ...] = SCHEDULERS,
) -> tuple[list[Finding], dict[str, Schedule]]:
    """Every scheduler must emit a validating schedule with a true WCT.

    Checks per scheduler: (a) :func:`validate_schedule` passes — latencies,
    resource/ERC occupancy on pipelined and blocking machines, branch
    order, liveness past the last exit; (b) the reported WCT equals
    recomputation from the issue cycles; (c) no heuristic beats the exact
    optimum when one is known.
    """
    findings: list[Finding] = []
    schedules: dict[str, Schedule] = {}
    for name in schedulers:
        try:
            s = get_scheduler(name)(sb, machine, validate=False)
        except Exception as exc:  # noqa: BLE001 - a crash is a finding
            findings.append(
                _finding(
                    "legality", f"{name}-runs",
                    f"scheduler {name} raised {type(exc).__name__}: {exc}",
                    sb, machine,
                )
            )
            continue
        schedules[name] = s
        try:
            validate_schedule(sb, machine, s)
        except ScheduleError as exc:
            findings.append(
                _finding(
                    "legality", f"{name}-valid",
                    f"scheduler {name} produced an invalid schedule: {exc}",
                    sb, machine,
                )
            )
        recomputed = sb.weighted_completion_time(
            {b: s.issue[b] for b in sb.branches}
        )
        if abs(recomputed - s.wct) > EPS:
            findings.append(
                _finding(
                    "legality", f"{name}-wct",
                    f"scheduler {name} reports WCT {s.wct:.6f} but its issue "
                    f"cycles recompute to {recomputed:.6f}",
                    sb, machine,
                )
            )
        if opt_wct is not None and s.wct < opt_wct - EPS:
            findings.append(
                _finding(
                    "legality", f"{name}-beats-optimal",
                    f"heuristic {name} WCT {s.wct:.6f} is below the exact "
                    f"optimum {opt_wct:.6f} — the exact reference or the "
                    "heuristic's schedule is wrong",
                    sb, machine,
                )
            )
    return findings, schedules


# ----------------------------------------------------------------------
# Oracle 2: bound soundness vs the exact optimum
# ----------------------------------------------------------------------
def check_bounds(
    sb: Superblock,
    machine: MachineConfig,
    opt_wct: float | None,
    feasible_wct: float | None = None,
) -> tuple[list[Finding], SuperblockBounds]:
    """Every bound family must under-approximate every achievable WCT.

    ``opt_wct`` is the exact reference (skipped when None);
    ``feasible_wct`` is the best *validated* heuristic WCT — a weaker but
    always-available ceiling. Also asserts the dominance chain, the
    incremental==naive Pairwise contract, and that the LP combination
    dominates the Theorem 3 average it generalizes.
    """
    findings: list[Finding] = []
    suite = BoundSuite(sb, machine)
    res = suite.compute()
    ceilings = []
    if opt_wct is not None:
        ceilings.append(("optimal", opt_wct))
    if feasible_wct is not None:
        ceilings.append(("best-heuristic", feasible_wct))
    for name, wct in res.wct.items():
        for kind, ceiling in ceilings:
            if wct > ceiling + EPS:
                findings.append(
                    _finding(
                        "bounds", f"{name}<={kind}",
                        f"bound {name} = {wct:.6f} exceeds the {kind} WCT "
                        f"{ceiling:.6f}: the bound is not a true lower bound",
                        sb, machine,
                    )
                )
    chain = (("CP", "Hu"), ("CP", "RJ"), ("RJ", "LC"), ("LC", "PW"), ("PW", "TW"))
    for weaker, stronger in chain:
        if res.wct[weaker] > res.wct[stronger] + EPS:
            findings.append(
                _finding(
                    "bounds", f"{weaker}<={stronger}",
                    f"dominance chain broken: {weaker} = "
                    f"{res.wct[weaker]:.6f} > {stronger} = "
                    f"{res.wct[stronger]:.6f}",
                    sb, machine,
                )
            )
    if res.pairs_complete and len(sb.branches) >= 2:
        theorem3 = suite.theorem3_average()
        lp = suite.lp_bound(include_triples=False)
        if lp < theorem3 - EPS:
            findings.append(
                _finding(
                    "bounds", "lp>=theorem3",
                    f"LP combination {lp:.6f} is below the Theorem 3 "
                    f"average {theorem3:.6f} it generalizes",
                    sb, machine,
                )
            )
    findings.extend(_check_pairwise_incremental(sb, machine, suite))
    return findings, res


def _check_pairwise_incremental(
    sb: Superblock, machine: MachineConfig, suite: BoundSuite
) -> list[Finding]:
    """The warm-started Pairwise sweep must equal the naive one exactly."""
    if len(sb.branches) < 2:
        return []
    naive = PairwiseBounder(
        sb.graph,
        machine,
        suite.early_rc,
        suite.late_rc,
        sb.branch_latency,
        incremental=False,
    )
    findings: list[Finding] = []
    weights = sb.weights
    for (i, j), pb in suite.pair_bounds.items():
        ref = naive.pair_bound(i, j, weights[i], weights[j])
        if (pb.x, pb.y) != (ref.x, ref.y) or pb.curve != ref.curve:
            findings.append(
                _finding(
                    "bounds", "incremental==naive",
                    f"pair ({i}, {j}): incremental sweep gives "
                    f"(x={pb.x}, y={pb.y}) with {len(pb.curve)} points, "
                    f"naive gives (x={ref.x}, y={ref.y}) with "
                    f"{len(ref.curve)} points",
                    sb, machine,
                )
            )
    return findings


# ----------------------------------------------------------------------
# Oracle 4: dynamic simulation vs static WCT
# ----------------------------------------------------------------------
def check_sim(
    sb: Superblock,
    machine: MachineConfig,
    schedule: Schedule,
    runs: int = 4000,
    seed: int = 0,
    z: float = 6.0,
) -> list[Finding]:
    """Monte Carlo mean must converge to the WCT within CI bounds.

    The per-run cycle count is a deterministic function of the sampled
    exit, so its exact variance is closed-form; the check is a ``z``-sigma
    interval (defaults to 6 — about 1e-9 false-positive probability per
    case) plus a small absolute epsilon for the zero-variance case.
    """
    findings: list[Finding] = []
    stats = simulate(sb, machine, schedule, runs=runs, seed=seed)
    mean, variance = exact_sim_moments(sb, schedule)
    tol = z * (variance / runs) ** 0.5 + EPS
    if abs(stats.mean_cycles - mean) > tol:
        findings.append(
            _finding(
                "sim", "mean==wct",
                f"simulated mean {stats.mean_cycles:.6f} deviates from the "
                f"static WCT {mean:.6f} by more than the {z}-sigma interval "
                f"{tol:.6f} over {runs} runs",
                sb, machine,
            )
        )
    if abs(mean - schedule.wct) > EPS:
        findings.append(
            _finding(
                "sim", "moments==wct",
                f"closed-form sim mean {mean:.6f} disagrees with the "
                f"schedule's cached WCT {schedule.wct:.6f}",
                sb, machine,
            )
        )
    if sum(stats.exit_counts.values()) != runs:
        findings.append(
            _finding(
                "sim", "exit-counts",
                f"exit counts {stats.exit_counts} sum to "
                f"{sum(stats.exit_counts.values())}, expected {runs}",
                sb, machine,
            )
        )
    if not 0.0 <= stats.mean_waste_fraction <= 1.0:
        findings.append(
            _finding(
                "sim", "waste-fraction",
                f"mean waste fraction {stats.mean_waste_fraction} is outside "
                "[0, 1]",
                sb, machine,
            )
        )
    return findings


# ----------------------------------------------------------------------
# Result-cache oracle
# ----------------------------------------------------------------------
def _bounds_snapshot(
    sb: Superblock, machine: MachineConfig
) -> tuple[Any, dict[str, int]]:
    """Every bound (plus the pair table) and the trip counters, one run."""
    from repro.bounds.instrumentation import Counters

    counters = Counters()
    suite = BoundSuite(sb, machine, counters=counters)
    res = suite.compute()
    return (res.wct, res.tightest, suite.pair_bounds), counters.as_dict()


def check_cache(sb: Superblock, machine: MachineConfig) -> list[Finding]:
    """Cached results must be bit-identical to freshly computed ones.

    Runs the bound suite and the exact solvers three ways — uncached, cold
    through a fresh temp-directory cache, and warm from the entries the
    cold run just wrote — and fires on ANY divergence: differing bounds or
    schedules, differing trip counters (stored metric deltas must replay
    exactly), or a warm run that missed (entries must round-trip the disk
    format).
    """
    import shutil
    import tempfile

    from repro import cache as result_cache

    findings: list[Finding] = []

    def snapshot() -> tuple[Any, Any]:
        payload, counters = _bounds_snapshot(sb, machine)
        exact: dict[str, Any] = {}
        try:
            s = ilp_schedule(sb, machine, validate=False)
            exact["ilp"] = (s.issue, s.wct)
        except IlpSizeExceeded:
            pass
        if machine.fully_pipelined:
            try:
                s = get_scheduler("optimal")(
                    sb, machine, budget=300_000, validate=False
                )
                exact["optimal"] = (s.issue, s.wct)
            except SearchBudgetExceeded:
                pass
        return (payload, exact), counters

    ref, ref_counters = snapshot()
    tmp = tempfile.mkdtemp(prefix="repro-verify-cache-")
    try:
        cold_cache = result_cache.ResultCache(tmp)
        with result_cache.install(cold_cache):
            cold, cold_counters = snapshot()
        warm_cache = result_cache.ResultCache(tmp)
        with result_cache.install(warm_cache):
            warm, warm_counters = snapshot()
        for label, got, got_counters in (
            ("cold", cold, cold_counters),
            ("warm", warm, warm_counters),
        ):
            if got != ref:
                findings.append(
                    _finding(
                        "cache",
                        f"{label}==uncached",
                        f"{label} cached results diverge from the uncached "
                        f"reference: {got!r} != {ref!r}",
                        sb, machine,
                    )
                )
            if got_counters != ref_counters:
                findings.append(
                    _finding(
                        "cache",
                        f"{label}-counters",
                        f"{label} run trip counters diverge from the "
                        f"uncached reference: {got_counters!r} != "
                        f"{ref_counters!r}",
                        sb, machine,
                    )
                )
        if cold_cache.stats.writes == 0:
            findings.append(
                _finding(
                    "cache", "cold-writes",
                    "cold run wrote no cache entries", sb, machine,
                )
            )
        if warm_cache.stats.misses or warm_cache.stats.corrupt:
            findings.append(
                _finding(
                    "cache", "warm-no-miss",
                    f"warm run missed ({warm_cache.stats.misses} misses, "
                    f"{warm_cache.stats.corrupt} corrupt) on entries the "
                    f"cold run just wrote",
                    sb, machine,
                )
            )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return findings


# ----------------------------------------------------------------------
# Pack-codec oracle
# ----------------------------------------------------------------------
def check_pack(sb: Superblock, machine: MachineConfig) -> list[Finding]:
    """The array-packed work-unit codec must be invisible to the bounds.

    Round-trips the case through :mod:`repro.perf.pack` — the wire format
    the worker pool ships — and fires when the decoded structures differ
    from the originals, when packing is not byte-deterministic (the pool
    keys worker reuse on a payload fingerprint), or when the bound suite
    computes anything different on the decoded case than on the original
    objects (trip counters included: the packed path must replay the
    object path's work exactly, not just its answers).
    """
    from repro.perf import pack as packmod

    try:
        blob = packmod.pack_superblock(sb)
        mblob = packmod.pack_machine(machine)
    except packmod.PackError as exc:
        return [
            _finding(
                "pack", "packable",
                f"pack refused a generated case: {exc}", sb, machine,
            )
        ]
    findings: list[Finding] = []
    if (
        blob != packmod.pack_superblock(sb)
        or mblob != packmod.pack_machine(machine)
    ):
        findings.append(
            _finding(
                "pack", "deterministic",
                "packing the same objects twice produced different bytes",
                sb, machine,
            )
        )
    decoded = packmod.unpack_superblock(blob)
    decoded_machine = packmod.unpack_machine(mblob)
    if not packmod.superblocks_equal(sb, decoded):
        findings.append(
            _finding(
                "pack", "superblock-round-trip",
                "decoded superblock differs structurally from the original",
                sb, machine,
            )
        )
    if decoded_machine != machine:
        findings.append(
            _finding(
                "pack", "machine-round-trip",
                f"decoded machine differs from the original: "
                f"{decoded_machine!r} != {machine!r}",
                sb, machine,
            )
        )
    if findings:
        return findings  # bounds on a mangled decode would double-report
    ref, ref_counters = _bounds_snapshot(sb, machine)
    got, got_counters = _bounds_snapshot(decoded, decoded_machine)
    if got != ref:
        findings.append(
            _finding(
                "pack", "bounds==object-path",
                f"bounds computed on the decoded case diverge from the "
                f"object path: {got!r} != {ref!r}",
                sb, machine,
            )
        )
    if got_counters != ref_counters:
        findings.append(
            _finding(
                "pack", "counters==object-path",
                f"trip counters on the decoded case diverge from the "
                f"object path: {got_counters!r} != {ref_counters!r}",
                sb, machine,
            )
        )
    return findings


def check_ledger(sb: Superblock, machine: MachineConfig) -> list[Finding]:
    """Ledger-on runs must be bit-identical to ledger-off runs.

    Evaluates the case twice — once with no recorder installed, once with
    an active :class:`~repro.obs.ledger.RunRecorder` — each under a fresh
    tracer and metrics registry, and fires on ANY divergence: results,
    trip counters, or span-name inventories. Also checks the recorder
    actually captured the block (with bound/WCT values matching the
    results) — a ledger that is merely inert would pass the identity
    check while recording nothing.
    """
    from repro.eval.sched_eval import evaluate_corpus
    from repro.obs import ledger, trace
    from repro.obs.metrics import MetricsRegistry

    findings: list[Finding] = []
    heuristics = ("dhasy", "balance")

    def snapshot(recorder: "ledger.RunRecorder | None"):
        tracer = trace.Tracer()
        metrics = MetricsRegistry()
        with trace.install(tracer):
            if recorder is None:
                summary = evaluate_corpus(
                    [sb], machine, heuristics=heuristics,
                    include_triplewise=False, metrics=metrics,
                )
            else:
                with ledger.installed(recorder):
                    summary = evaluate_corpus(
                        [sb], machine, heuristics=heuristics,
                        include_triplewise=False, metrics=metrics,
                    )
        results = [
            (r.name, r.tightest_bound, r.bound_wct, r.heuristic_wct, r.stats)
            for r in summary.results
        ]
        span_names = sorted(e["name"] for e in tracer.spans())
        return results, metrics.counters.as_dict(), span_names

    ref, ref_counters, ref_spans = snapshot(None)
    recorder = ledger.RunRecorder("verify-ledger")
    got, got_counters, got_spans = snapshot(recorder)

    if got != ref:
        findings.append(
            _finding(
                "ledger", "results==ledger-off",
                f"results with the ledger on diverge from the ledger-off "
                f"reference: {got!r} != {ref!r}",
                sb, machine,
            )
        )
    if got_counters != ref_counters:
        findings.append(
            _finding(
                "ledger", "counters==ledger-off",
                f"trip counters with the ledger on diverge from the "
                f"ledger-off reference: {got_counters!r} != "
                f"{ref_counters!r}",
                sb, machine,
            )
        )
    if got_spans != ref_spans:
        findings.append(
            _finding(
                "ledger", "spans==ledger-off",
                f"span inventory with the ledger on diverges from the "
                f"ledger-off reference: {got_spans!r} != {ref_spans!r}",
                sb, machine,
            )
        )

    record = recorder.finalize()
    rows = {
        (row["sb"], row.get("machine")): row for row in record["blocks"]
    }
    row = rows.get((sb.name, machine.name))
    if row is None:
        findings.append(
            _finding(
                "ledger", "block-recorded",
                f"the recorder captured no block row for "
                f"({sb.name}, {machine.name}); rows: {sorted(rows)}",
                sb, machine,
            )
        )
    elif ref:
        _name, tightest, bound_wct, heuristic_wct, _stats = ref[0]
        if row.get("tightest") != tightest or row.get("bounds") != bound_wct:
            findings.append(
                _finding(
                    "ledger", "block-bounds-match",
                    f"recorded block bounds diverge from the results: "
                    f"{row.get('tightest')!r}/{row.get('bounds')!r} != "
                    f"{tightest!r}/{bound_wct!r}",
                    sb, machine,
                )
            )
        if row.get("wct") != heuristic_wct:
            findings.append(
                _finding(
                    "ledger", "block-wct-match",
                    f"recorded block WCTs diverge from the results: "
                    f"{row.get('wct')!r} != {heuristic_wct!r}",
                    sb, machine,
                )
            )
    return findings


# ----------------------------------------------------------------------
# Kernel-parity oracle
# ----------------------------------------------------------------------
def check_kernel(sb: Superblock, machine: MachineConfig) -> list[Finding]:
    """The array kernels must be bit-identical to the python reference.

    Pins the ``REPRO_KERNEL=numpy`` backend against the forced-python
    oracle at three depths:

    * the batched per-branch RJ bounds plus their trip counters;
    * the full relaxation solve — ``max_miss`` *and* per-op placements —
      against :func:`repro.bounds.rim_jain.solve_relaxation` on the exact
      problem :func:`repro.bounds.branch_rj.branch_problem` builds;
    * the end-to-end bound suite (every bound, the pair table, and all
      counters), which routes the Pairwise sweep through its engine.

    Skips (returns no findings) when numpy is not importable — the
    no-numpy CI job runs the python path only, and the other families
    already cover it.
    """
    from repro import kernels

    if not kernels.numpy_available():
        return []

    from repro.bounds.branch_rj import branch_problem, rj_branch_bounds
    from repro.bounds.instrumentation import Counters
    from repro.bounds.rim_jain import solve_relaxation
    from repro.kernels import rj_numpy

    findings: list[Finding] = []

    with kernels.forced("python"):
        c_py = Counters()
        ref_bounds = rj_branch_bounds(sb, machine, c_py)
    with kernels.forced("numpy"):
        c_np = Counters()
        got_bounds = rj_branch_bounds(sb, machine, c_np)
    if got_bounds != ref_bounds:
        findings.append(
            _finding(
                "kernel", "rj-bounds",
                f"numpy RJ branch bounds diverge from the python "
                f"reference: {got_bounds!r} != {ref_bounds!r}",
                sb, machine,
            )
        )
    if c_np.as_dict() != c_py.as_dict():
        findings.append(
            _finding(
                "kernel", "rj-counters",
                f"numpy RJ trip counters diverge from the python "
                f"reference: {c_np.as_dict()!r} != {c_py.as_dict()!r}",
                sb, machine,
            )
        )

    for b in sb.branches:
        full = rj_numpy.solve_full(sb, machine, b)
        if full is None:
            break  # context fell back; the bounds check covered python
        nodes, early_map, late, _est, rclass, occupancy = branch_problem(
            sb, machine, b
        )
        ref_solve = solve_relaxation(
            nodes, early_map, late, rclass, machine, occupancy=occupancy
        )
        if full != ref_solve:
            findings.append(
                _finding(
                    "kernel", "rj-placements",
                    f"array greedy solve for branch {b} diverges from "
                    f"solve_relaxation: {full!r} != {ref_solve!r}",
                    sb, machine,
                )
            )

    from repro import cache as result_cache
    from repro.kernels import pairwise_numpy

    # Cache keys do not encode the backend (the backends are required to
    # be bit-identical), so an ambient cache would let the first run's
    # entries stand in for the second and hide divergence. The pairwise
    # engine's size gates are zeroed for the numpy run: they are perf
    # heuristics, and fuzz cases are small enough that the engine would
    # otherwise never be exercised.
    saved_gates = (pairwise_numpy._MIN_PIECES, pairwise_numpy._MIN_CELLS)
    with result_cache.disabled():
        with kernels.forced("python"):
            ref_suite, ref_counters = _bounds_snapshot(sb, machine)
        pairwise_numpy._MIN_PIECES = 0
        pairwise_numpy._MIN_CELLS = 0
        try:
            with kernels.forced("numpy"):
                got_suite, got_counters = _bounds_snapshot(sb, machine)
        finally:
            pairwise_numpy._MIN_PIECES, pairwise_numpy._MIN_CELLS = saved_gates
    if got_suite != ref_suite:
        findings.append(
            _finding(
                "kernel", "suite-results",
                f"numpy bound suite diverges from the python reference: "
                f"{got_suite!r} != {ref_suite!r}",
                sb, machine,
            )
        )
    if got_counters != ref_counters:
        findings.append(
            _finding(
                "kernel", "suite-counters",
                f"numpy bound-suite counters diverge from the python "
                f"reference: {got_counters!r} != {ref_counters!r}",
                sb, machine,
            )
        )
    return findings


def check_service(sb: Superblock, machine: MachineConfig) -> list[Finding]:
    """HTTP batch responses must be bit-identical to direct library calls.

    Boots a private in-process server (ephemeral port, serial jobs, a
    fresh temporary cache), computes the uncached reference with a
    direct :func:`~repro.eval.sched_eval.evaluate_corpus` call, then
    posts the same case twice. The **cold** response exercises the full
    service path (protocol decode, evaluation, cache write) and the
    **warm** response the cache-replay path; both must match the
    reference exactly — per-block results *and* reported trip counters —
    after one JSON round-trip (the service speaks JSON; the reference is
    normalized through ``json.dumps``/``loads`` so float encoding cannot
    mask or fake a diff). The warm response must also actually report
    cache hits, or "warm" silently degrades to a second cold run.
    """
    import json
    import tempfile
    import urllib.request

    from repro import cache as result_cache
    from repro.eval.sched_eval import evaluate_corpus
    from repro.obs.metrics import MetricsRegistry
    from repro.service import protocol
    from repro.service.app import ServiceConfig
    from repro.service.server import ServiceServer

    findings: list[Finding] = []
    heuristics = ("dhasy", "balance")

    registry = MetricsRegistry()
    with result_cache.disabled():
        summary = evaluate_corpus(
            [sb], machine, heuristics=heuristics,
            include_triplewise=False, metrics=registry,
        )
    reference = json.loads(json.dumps({
        "results": [protocol.result_payload(r) for r in summary.results],
        "counters": registry.as_dict()["counters"],
    }))

    body = json.dumps({
        "kind": "schedule",
        "machine": machine_to_dict(machine),
        "blocks": [superblock_to_dict(sb)],
        "heuristics": list(heuristics),
        "include_triplewise": False,
    }).encode("utf-8")

    def post(url: str):
        request = urllib.request.Request(
            f"{url}/v1/batch",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=60.0) as response:
            return response.status, json.loads(response.read())

    with tempfile.TemporaryDirectory(prefix="repro-verify-service-") as tmp:
        server = ServiceServer(
            ServiceConfig(port=0, jobs=1, cache_dir=tmp)
        )
        server.start()
        try:
            responses = [post(server.url), post(server.url)]
        except Exception as exc:  # noqa: BLE001 - any transport failure
            server.stop()
            return [
                _finding(
                    "service", "transport",
                    f"batch request against the in-process server failed: "
                    f"{exc!r}",
                    sb, machine,
                )
            ]
        server.stop()

    for label, (status, payload) in zip(("cold", "warm"), responses):
        if status != 200:
            findings.append(
                _finding(
                    "service", f"{label}-status",
                    f"{label} request answered {status}: {payload!r}",
                    sb, machine,
                )
            )
            continue
        got = {
            "results": payload.get("results"),
            "counters": payload.get("counters"),
        }
        if got["results"] != reference["results"]:
            findings.append(
                _finding(
                    "service", f"{label}-results",
                    f"{label} HTTP results diverge from the direct library "
                    f"call: {got['results']!r} != {reference['results']!r}",
                    sb, machine,
                )
            )
        if got["counters"] != reference["counters"]:
            findings.append(
                _finding(
                    "service", f"{label}-counters",
                    f"{label} HTTP trip counters diverge from the direct "
                    f"library call: {got['counters']!r} != "
                    f"{reference['counters']!r}",
                    sb, machine,
                )
            )

    warm_status, warm_payload = responses[1]
    if warm_status == 200:
        delta = warm_payload.get("cache") or {}
        warm_hits = int(delta.get("hits", 0)) + int(
            delta.get("memory_hits", 0)
        )
        if warm_hits == 0:
            findings.append(
                _finding(
                    "service", "warm-hits",
                    f"the warm request reported no cache hits "
                    f"({delta!r}) — the service warm path is not actually "
                    f"serving from the cache",
                    sb, machine,
                )
            )

    findings.extend(_check_service_request_id(sb, machine, heuristics))
    return findings


def _check_service_request_id(
    sb: Superblock, machine: MachineConfig, heuristics: tuple[str, ...]
) -> list[Finding]:
    """An inbound request id must reach every span of a traced request.

    Pins the tentpole of request-scoped tracing: a two-block batch posted
    with ``X-Request-Id`` against a ``jobs=2`` server (the dispatch
    break-even is zeroed via ``REPRO_PAR_BREAK_EVEN`` so two blocks
    really fan out where a pool exists) must echo the id in the response
    and stamp ``request_id`` on **all** spans of the returned trace —
    worker-side spans merged back across the pool included. Platforms
    without a usable process pool fall back to the serial path; the
    all-spans assertion still pins propagation there.
    """
    import json
    import os
    import tempfile
    import urllib.request

    from repro.service.app import ServiceConfig
    from repro.service.server import ServiceServer

    sent_id = "verify-rid-0001"
    body = json.dumps({
        "kind": "schedule",
        "machine": machine_to_dict(machine),
        # Two copies of the block: single-unit batches always plan
        # serial, so the worker path would silently go untested.
        "blocks": [superblock_to_dict(sb), superblock_to_dict(sb)],
        "heuristics": list(heuristics),
        "include_triplewise": False,
        "trace": True,
    }).encode("utf-8")

    with tempfile.TemporaryDirectory(prefix="repro-verify-rid-") as tmp:
        server = ServiceServer(
            ServiceConfig(port=0, jobs=2, cache_dir=None, ledger_dir=tmp)
        )
        server.start()
        saved = os.environ.get("REPRO_PAR_BREAK_EVEN")
        os.environ["REPRO_PAR_BREAK_EVEN"] = "0"
        try:
            request = urllib.request.Request(
                f"{server.url}/v1/batch",
                data=body,
                headers={
                    "Content-Type": "application/json",
                    "X-Request-Id": sent_id,
                },
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=60.0) as response:
                status = response.status
                echoed = response.headers.get("X-Request-Id")
                payload = json.loads(response.read())
        except Exception as exc:  # noqa: BLE001 - any transport failure
            return [
                _finding(
                    "service", "rid-transport",
                    f"traced jobs=2 request failed: {exc!r}",
                    sb, machine,
                )
            ]
        finally:
            if saved is None:
                os.environ.pop("REPRO_PAR_BREAK_EVEN", None)
            else:
                os.environ["REPRO_PAR_BREAK_EVEN"] = saved
            server.stop()

    if status != 200:
        return [
            _finding(
                "service", "rid-status",
                f"traced jobs=2 request answered {status}: {payload!r}",
                sb, machine,
            )
        ]
    findings: list[Finding] = []
    if payload.get("request_id") != sent_id or echoed != sent_id:
        findings.append(
            _finding(
                "service", "rid-echo",
                f"the inbound X-Request-Id {sent_id!r} was not echoed "
                f"back (payload: {payload.get('request_id')!r}, header: "
                f"{echoed!r})",
                sb, machine,
            )
        )
    spans = [
        e
        for e in (payload.get("trace") or {}).get("traceEvents", [])
        if e.get("ph") == "X"
    ]
    if not spans:
        findings.append(
            _finding(
                "service", "rid-no-spans",
                "the traced response carried no complete span events",
                sb, machine,
            )
        )
    untagged = [
        e["name"]
        for e in spans
        if (e.get("args") or {}).get("request_id") != sent_id
    ]
    if untagged:
        findings.append(
            _finding(
                "service", "rid-propagation",
                f"{len(untagged)} of {len(spans)} spans in the reassembled "
                f"trace miss request_id={sent_id!r} (e.g. "
                f"{sorted(set(untagged))[:5]!r}) — the request id does not "
                f"propagate through the worker pool",
                sb, machine,
            )
        )
    return findings
