"""The Balance scheduling heuristic — the paper's core contribution."""

from repro.core.balance import balance_schedule
from repro.core.branch_select import Selection, select_branches, select_with_tradeoffs
from repro.core.config import ABLATION_GRID, BALANCE, HELP, BalanceConfig
from repro.core.dynamic_bounds import BranchNeeds, DynamicBounds, ERCLevel
from repro.core.op_select import pick_operation, score_operation

__all__ = [
    "ABLATION_GRID",
    "BALANCE",
    "HELP",
    "BalanceConfig",
    "BranchNeeds",
    "DynamicBounds",
    "ERCLevel",
    "Selection",
    "balance_schedule",
    "pick_operation",
    "score_operation",
    "select_branches",
    "select_with_tradeoffs",
]
