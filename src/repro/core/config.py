"""Configuration of the Balance heuristic's components.

Table 7 of the paper ablates Balance along three axes plus an update
frequency; :class:`BalanceConfig` exposes exactly those switches:

* ``use_rc_bounds`` — "Bound": drive the dynamic Early/Late bounds with the
  static ``EarlyRC``/``LateRC`` (Langevin & Cerny) values instead of the
  dependence-only ``EarlyDC``/``LateDC`` (Observation 2).
* ``help_delay`` — "HlpDel": track not only which branches an operation
  *helps* but which it *indirectly delays* by wasting a critical resource
  (Observation 1); enables the compatible-branch selection of Section 5.3.
* ``tradeoff`` — "Tradeoff": use the Pairwise bounds to accept beneficial
  branch delays and to reorder the branch selection (Observation 3 /
  Section 5.4). Requires ``use_rc_bounds`` (the pairwise machinery builds
  on ``EarlyRC``/``LateRC``).
* ``update_per_op`` — recompute the dynamic bound information before every
  scheduling decision (True) or only once per cycle (False). The paper
  finds per-operation updating is the single most important factor.

Preset configurations:

* :data:`BALANCE` — everything on (the paper's Balance heuristic).
* :data:`HELP` — everything off: Speculative-Hedge-style help scoring with
  dependence-only bounds (the paper's Help heuristic).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BalanceConfig:
    """Component switches of the Balance scheduling engine."""

    use_rc_bounds: bool = True
    help_delay: bool = True
    tradeoff: bool = True
    update_per_op: bool = True
    #: Maximum branch-order reorderings per decision in the tradeoff step
    #: (the paper: "after iterating this process a few times").
    max_reorders: int = 4
    #: Use the incremental ("light") update path where valid, recomputing
    #: only the branches whose data could have changed. Semantically
    #: equivalent to the full update; exists for the Table 6 cost
    #: comparison.
    light_update: bool = True

    def __post_init__(self) -> None:
        if self.tradeoff and not self.use_rc_bounds:
            raise ValueError(
                "tradeoff requires use_rc_bounds: the Pairwise machinery is "
                "built on EarlyRC/LateRC"
            )
        if self.max_reorders < 0:
            raise ValueError("max_reorders must be non-negative")

    @property
    def branch_selection(self) -> bool:
        """Compatible-branch selection is the mechanism behind HlpDel."""
        return self.help_delay

    def label(self) -> str:
        """Short component label used in the Table 7 ablation."""
        parts = ["HlpDel" if self.help_delay else "Help"]
        if self.use_rc_bounds:
            parts.append("Bound")
        if self.tradeoff:
            parts.append("Tradeoff")
        parts.append("perOp" if self.update_per_op else "perCycle")
        return "+".join(parts)


#: The full Balance heuristic.
BALANCE = BalanceConfig()

#: The Help heuristic: Balance minus the EarlyRC/LateRC/Pairwise bounds and
#: minus the compatible-branch selection (Section 6.2).
HELP = BalanceConfig(
    use_rc_bounds=False, help_delay=False, tradeoff=False, update_per_op=True
)

#: The Table 7 ablation grid: every valid component combination, in both
#: update modes.
ABLATION_GRID: tuple[BalanceConfig, ...] = tuple(
    BalanceConfig(
        use_rc_bounds=bound,
        help_delay=hlp,
        tradeoff=trade,
        update_per_op=per_op,
    )
    for per_op in (False, True)
    for hlp, bound, trade in (
        (False, False, False),  # Help
        (True, False, False),   # HlpDel
        (False, True, False),   # Help + Bound
        (True, True, False),    # HlpDel + Bound
        (True, True, True),     # HlpDel + Bound + Tradeoff  (Balance)
    )
)
