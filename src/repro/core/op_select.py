"""Operation scoring and selection (Section 5.5).

The final decision of each Balance iteration picks one operation among the
candidates (``TakeEach`` and ``TakeOne`` members when a branch selection
constrains the choice, otherwise every ready placeable operation), using
the Speculative Hedge score the paper found to work best:

* primary: sum of the exit probabilities of the branches the operation
  *helps* (it is in their ``NeedEach`` or ``NeedOne``), minus — with the
  HlpDel component — the probabilities of the branches it *indirectly
  delays* (its resource class has a zero-empty-slot ERC the operation is
  not part of);
* tie-breaks: most helped branches, then smallest late time, then program
  order.
"""

from __future__ import annotations

from repro.core.dynamic_bounds import BranchNeeds

#: Sentinel late time for operations no unscheduled branch depends on.
_NO_LATE = 1 << 30


def score_operation(
    v: int,
    rclass: str,
    needs: dict[int, BranchNeeds],
    weights: dict[int, float],
    help_delay: bool,
) -> tuple[float, int, int]:
    """Score one candidate; larger tuples are better.

    Returns ``(net help, helped count, -min late)``.
    """
    helped = 0.0
    count = 0
    penalty = 0.0
    late_min = _NO_LATE
    for b, info in needs.items():
        w = weights[b]
        one = info.need_one.get(rclass)
        if v in info.need_each or (one is not None and v in one):
            helped += w
            count += 1
        elif help_delay and one is not None:
            # The branch critically needs its next rclass slot for the ERC
            # members; spending the slot on v wastes it (Observation 1).
            penalty += w
        late_v = info.late.get(v)
        if late_v is not None and late_v < late_min:
            late_min = late_v
    net = helped - penalty if help_delay else helped
    return (net, count, -late_min)


def pick_operation(
    candidates: list[int],
    rclass_of,
    needs: dict[int, BranchNeeds],
    weights: dict[int, float],
    help_delay: bool,
) -> int:
    """Highest-scoring candidate; program order breaks final ties."""
    best_v = candidates[0]
    best_key = None
    for v in sorted(candidates):
        key = score_operation(v, rclass_of(v), needs, weights, help_delay)
        if best_key is None or key > best_key:
            best_key = key
            best_v = v
    return best_v
