"""Compatible-branch selection (Section 5.3) and pairwise tradeoffs (5.4).

The selection walks the unscheduled branches in a candidate order (initially
by decreasing exit probability) and greedily accepts each branch whose needs
can be *jointly* satisfied with the already-selected ones:

* ``TakeEach`` — union of the selected branches' ``NeedEach`` sets; every
  member must fit (and be ready) in the current cycle.
* ``TakeOne`` — per resource class, the intersection of the selected
  branches' ``NeedOne`` sets; at least one ready member and one free unit
  must remain after the ``TakeEach`` demands.

A non-selected branch is **delayed** if it had needs and **ignored**
otherwise. The tradeoff step (Section 5.4) then consults the static
Pairwise bounds: if the bound proves that delaying branch ``i`` by a cycle
cannot cost anything (its pair-optimal issue time is later anyway), the
outcome is revised to **delayedOK**; if the bound instead blames a selected
branch ``j`` processed earlier, the order of ``i`` and ``j`` is swapped and
the selection is retried. The selection with the highest *rank*
(``sum w(selected) + sum w(delayedOK) - sum w(delayed)``) wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bounds.pairwise import PairBound
from repro.core.dynamic_bounds import BranchNeeds, DynamicBounds
from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig


@dataclass
class Selection:
    """Outcome of one compatible-branch selection pass.

    ``take_one`` maps a resource class to the set of operations of which
    one must issue next; an *empty* set means the class is **blocked** — a
    selected branch needs its next slot of that class for operations that
    are not ready yet, so spending the slot on anything else would delay
    the branch (the class constraint degrades to "do not waste me").
    """

    selected: list[int] = field(default_factory=list)
    delayed: list[int] = field(default_factory=list)
    ignored: list[int] = field(default_factory=list)
    delayed_ok: set[int] = field(default_factory=set)
    take_each: set[int] = field(default_factory=set)
    take_one: dict[str, set[int]] = field(default_factory=dict)
    rank: float = 0.0
    #: Pairwise-tradeoff justifications recorded during selection:
    #: ``(branch, against, kind, bound)`` with kind ``"delayedOK"`` (the
    #: pair bound proves delaying ``branch`` is free) or ``"swap"`` (the
    #: bound blames ``against`` and the order was retried).
    tradeoffs: list[tuple[int, int, str, int]] = field(default_factory=list)

    @property
    def constrained(self) -> bool:
        """True when the selection restricts the operation choice."""
        return bool(self.take_each) or bool(self.take_one)

    @property
    def blocked_classes(self) -> set[str]:
        """Resource classes no operation outside TakeEach may consume."""
        return {r for r, members in self.take_one.items() if not members}

    def candidate_ops(self) -> set[int]:
        """Operations satisfying the selected branches' needs."""
        ops = set(self.take_each)
        for members in self.take_one.values():
            ops |= members
        return ops


def select_branches(
    order: list[int],
    needs: dict[int, BranchNeeds],
    free: dict[str, int],
    rclass_of,
    is_ready,
) -> Selection:
    """One greedy pass of Section 5.3 over ``order``.

    Args:
        free: free units per resource class in the current cycle.
        rclass_of: op index -> resource class name.
        is_ready: op index -> bool (all predecessors issued and latencies
            elapsed at the current cycle).
    """
    sel = Selection()
    take_each: set[int] = set()
    take_one: dict[str, set[int]] = {}
    for b in order:
        info = needs[b]
        if not info.has_needs:
            sel.ignored.append(b)
            continue
        # Dependence needs: every op of NeedEach must fit this cycle.
        te_new = take_each | info.need_each
        if any(not is_ready(v) for v in info.need_each - take_each):
            sel.delayed.append(b)
            continue
        demand: dict[str, int] = {}
        for v in te_new:
            r = rclass_of(v)
            demand[r] = demand.get(r, 0) + 1
        if any(cnt > free.get(r, 0) for r, cnt in demand.items()):
            sel.delayed.append(b)
            continue
        # Resource needs: per class, intersect with the running TakeOne.
        to_new = {r: set(s) for r, s in take_one.items()}
        compatible = True
        for r, members in info.need_one.items():
            if members & te_new:
                continue  # satisfied by a mandatory operation of class r
            ready_members = {v for v in members if is_ready(v)}
            cur = to_new.get(r)
            if not ready_members:
                # No needed op of class r can issue this cycle (readiness
                # is fixed within a cycle), so the class-r delay of this
                # branch is already unavoidable: the constraint is vacuous.
                # Skip it rather than discarding the branch's remaining,
                # servable needs.
                continue
            inter = ready_members if cur is None else cur & ready_members
            if not inter or free.get(r, 0) - demand.get(r, 0) < 1:
                compatible = False
                break
            to_new[r] = inter
        if not compatible:
            sel.delayed.append(b)
            continue
        # A TakeOne constraint satisfied by a mandatory op can be dropped.
        for r in list(to_new):
            if to_new[r] & te_new:
                del to_new[r]
        take_each, take_one = te_new, to_new
        sel.selected.append(b)
    sel.take_each = take_each
    sel.take_one = take_one
    return sel


def _pair_components(
    pair_bounds: dict[tuple[int, int], PairBound], i: int, j: int
) -> tuple[int, int] | None:
    """Pair-bound components for (i, j) regardless of program order."""
    a, b = (i, j) if i < j else (j, i)
    pb = pair_bounds.get((a, b))
    if pb is None:
        return None
    if i < j:
        return pb.x, pb.y
    return pb.y, pb.x


def select_with_tradeoffs(
    sb: Superblock,
    machine: MachineConfig,
    state: DynamicBounds,
    branches: list[int],
    free: dict[str, int],
    is_ready,
    pair_bounds: dict[tuple[int, int], PairBound] | None,
    max_reorders: int = 4,
) -> Selection:
    """Sections 5.3 + 5.4: branch selection with pairwise tradeoffs.

    Without ``pair_bounds`` this is a single selection pass in
    decreasing-exit-probability order.
    """
    weights = sb.weights
    order = sorted(branches, key=lambda b: (-weights[b], b))
    rclass_of = state.resource_class
    needs = state.needs

    def ranked(sel: Selection) -> float:
        score = sum(weights[b] for b in sel.selected)
        score += sum(weights[b] for b in sel.delayed_ok)
        score -= sum(
            weights[b] for b in sel.delayed if b not in sel.delayed_ok
        )
        return score

    best: Selection | None = None
    attempts = max_reorders + 1 if pair_bounds is not None else 1
    for _attempt in range(attempts):
        sel = select_branches(order, needs, free, rclass_of, is_ready)
        swap: tuple[int, int] | None = None
        if pair_bounds is not None:
            for i in sel.delayed:
                for j in sel.selected:
                    comps = _pair_components(pair_bounds, i, j)
                    if comps is None:
                        continue
                    bound_i, bound_j = comps
                    if needs[i].early + 1 <= bound_i:
                        # The pair bound proves i ends up at least this
                        # late anyway: delaying it now is free.
                        sel.delayed_ok.add(i)
                        sel.tradeoffs.append((i, j, "delayedOK", bound_i))
                    elif (
                        swap is None
                        and needs[j].early + 1 <= bound_j
                        and order.index(j) < order.index(i)
                    ):
                        # The bound blames j: try giving i priority.
                        swap = (i, j)
                        sel.tradeoffs.append((i, j, "swap", bound_j))
        sel.rank = ranked(sel)
        if best is None or sel.rank > best.rank:
            best = sel
        if swap is None:
            break
        pos_i, pos_j = order.index(swap[0]), order.index(swap[1])
        order[pos_i], order[pos_j] = order[pos_j], order[pos_i]
    assert best is not None
    return best
