"""Dynamic per-branch bounds for the Balance scheduler (Section 5.1).

Before each scheduling decision (or each cycle, in the cheaper mode) the
scheduler refreshes, for every unscheduled branch ``b``:

* **Early** — earliest issue estimates for all operations, combining the
  issue times of already-scheduled operations, dependence propagation, the
  static floors (``EarlyRC`` or ``EarlyDC``), and the current cycle.
* **Late_b** — latest issue of each unscheduled predecessor of ``b`` that
  does not delay ``b`` past ``Early[b]``; the backward dependence pass is
  capped by the static resource-aware late times (``LateRC``), shifted by
  ``b``'s accumulated delay.
* **ERCs** — Elementary Resource Constraints (Step 2): for every deadline
  level ``c`` and resource class ``r``, the operations with
  ``Late_b <= c`` must fit into the free ``r`` slots between the current
  cycle and ``c``. A violated ERC delays ``b`` (Step 3); an ERC with zero
  *empty slots* (Step 4) means the very next decision must take one of its
  operations or lose a cycle.
* **NeedEach / NeedOne** (Section 5.2) — the dependence-critical set
  (every member must issue this cycle) and the per-resource-class
  zero-empty-slot ERC set (one member must issue this decision).

Branches are processed in program order so that a resource delay of an
early branch propagates into the Early times of later branches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bounds.instrumentation import Counters
from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig
from repro.machine.reservation import ReservationTable


@dataclass
class ERCLevel:
    """One Elementary Resource Constraint: ops with ``Late <= c`` of class r."""

    c: int
    need: int
    empty: int


@dataclass
class BranchNeeds:
    """Dynamic scheduling needs of one branch (Section 5.2)."""

    branch: int
    early: int
    late: dict[int, int]
    need_each: frozenset[int] = frozenset()
    need_one: dict[str, frozenset[int]] = field(default_factory=dict)
    erc_levels: dict[str, list[ERCLevel]] = field(default_factory=dict)

    @property
    def has_needs(self) -> bool:
        return bool(self.need_each) or bool(self.need_one)


class DynamicBounds:
    """Recomputable dynamic bound state for one superblock on one machine.

    Args:
        early_floor: static per-op lower bound on the issue cycle
            (``EarlyRC`` with the Bound component, else ``EarlyDC``).
        late_cap: per-branch static late times (``LateRC_b`` or ``LateDC_b``)
            anchored at ``anchor[b]`` — the static bound of ``b`` the late
            times were computed against.
    """

    def __init__(
        self,
        sb: Superblock,
        machine: MachineConfig,
        early_floor: list[int],
        late_cap: dict[int, dict[int, int]],
        anchor: dict[int, int],
        counters: Counters | None = None,
    ) -> None:
        self.sb = sb
        self.machine = machine
        self.early_floor = early_floor
        self.late_cap = late_cap
        self.anchor = anchor
        self.counters = counters
        graph = sb.graph
        n = graph.num_operations
        self._rclass = [machine.resource_of(graph.op(v)) for v in range(n)]
        self._occ = [machine.occupancy_of(graph.op(v)) for v in range(n)]
        self._sub_nodes = {
            b: [v for v in graph.ancestors(b)] + [b] for b in sb.branches
        }
        self.early: list[int] = list(early_floor)
        self.needs: dict[int, BranchNeeds] = {}

    def resource_class(self, v: int) -> str:
        return self._rclass[v]

    # ------------------------------------------------------------------
    def recompute(
        self,
        cycle: int,
        issue: dict[int, int],
        table: ReservationTable,
        branches: list[int],
    ) -> None:
        """Refresh Early, Late, ERCs, and needs for the given cycle.

        Args:
            issue: issue cycles of already-scheduled operations.
            branches: unscheduled branches, in program order.
        """
        graph = self.sb.graph
        n = graph.num_operations
        early = self._forward_early(cycle, issue, 0, None)
        self.needs = {}
        overrides: dict[int, int] = {}
        for b in branches:
            info = self._branch_needs(b, cycle, issue, table, early)
            # A resource delay on b propagates into later branches' Early
            # times; iterate to a (bounded) fixpoint.
            for _ in range(3):
                if info.early <= early[b]:
                    break
                overrides[b] = info.early
                early = self._forward_early(cycle, issue, b, overrides, early)
                info = self._branch_needs(b, cycle, issue, table, early)
            self.needs[b] = info
            if self.counters is not None:
                self.counters.add("balance.branch_update", 1)
        self.early = early

    # ------------------------------------------------------------------
    def _forward_early(
        self,
        cycle: int,
        issue: dict[int, int],
        start: int,
        overrides: dict[int, int] | None,
        base: list[int] | None = None,
    ) -> list[int]:
        """Forward dependence pass with floors; optionally restart at ``start``."""
        graph = self.sb.graph
        n = graph.num_operations
        early = list(base) if base is not None else [0] * n
        floor = self.early_floor
        for v in range(start, n):
            t = issue.get(v)
            if t is not None:
                early[v] = t
                continue
            e = floor[v]
            if cycle > e:
                e = cycle
            if overrides is not None:
                ov = overrides.get(v)
                if ov is not None and ov > e:
                    e = ov
            for u, lat in graph.preds(v):
                cand = early[u] + lat
                if cand > e:
                    e = cand
            early[v] = e
            if self.counters is not None:
                self.counters.add("balance.early_visit", 1)
        return early

    def _branch_needs(
        self,
        b: int,
        cycle: int,
        issue: dict[int, int],
        table: ReservationTable,
        early: list[int],
    ) -> BranchNeeds:
        graph = self.sb.graph
        nodes = self._sub_nodes[b]
        unscheduled = [v for v in nodes if v not in issue]
        early_b = early[b]
        shift = early_b - self.anchor[b]
        cap = self.late_cap[b]
        in_sub = set(nodes)
        late: dict[int, int] = {}
        for v in reversed(unscheduled):
            if v == b:
                late[v] = early_b
            else:
                dep = None
                for w, lat in graph.succs(v):
                    if w in in_sub:
                        lw = late.get(w)
                        if lw is not None:
                            cand = lw - lat
                            if dep is None or cand < dep:
                                dep = cand
                val = cap[v] + shift
                if dep is not None and dep < val:
                    val = dep
                late[v] = val
            if self.counters is not None:
                self.counters.add("balance.late_visit", 1)

        # ERC pass: per resource class, check each deadline level.
        by_class: dict[str, list[int]] = {}
        for v in unscheduled:
            by_class.setdefault(self._rclass[v], []).append(v)

        delay = 0
        for rclass, ops in by_class.items():
            units = self.machine.units_of(rclass)
            free_now = table.free(cycle, rclass)
            # Blocking ops contribute unit pieces with shifted deadlines
            # (Section 4.1 expansion), never k slots at one deadline.
            lates = sorted(
                late[v] + i for v in ops for i in range(self._occ[v])
            )
            for idx, c in enumerate(lates):
                k = idx + 1
                if idx + 1 < len(lates) and lates[idx + 1] == c:
                    continue  # only evaluate at the last piece of a level
                overflow = k - free_now
                x_req = cycle if overflow <= 0 else cycle + -(-overflow // units)
                d = x_req - c
                if d > delay:
                    delay = d
                if self.counters is not None:
                    self.counters.add("balance.erc_level", 1)

        if delay > 0:
            early_b += delay
            shift += delay
            late = {v: t + delay for v, t in late.items()}

        return self._needs_from_late(
            b, cycle, issue, table, late, early_b, allow_negative=True
        )

    def _needs_from_late(
        self,
        b: int,
        cycle: int,
        issue: dict[int, int],
        table: ReservationTable,
        late: dict[int, int],
        early_b: int,
        allow_negative: bool = False,
    ) -> BranchNeeds | None:
        """Empty-slot / needs derivation (Steps 2 & 4) from a late map.

        This is also the *light update* path (Section 5.1): within a cycle
        the late map of a branch only loses scheduled entries, so the needs
        can be rebuilt from the cached lates and the live reservation
        table. Returns ``None`` when ``allow_negative`` is false and some
        ERC has negative empty slots — the branch's delay grew and a full
        recomputation (with Step 3's Early update) is required.
        """
        by_class: dict[str, list[int]] = {}
        for v, lv in late.items():
            if v not in issue:
                by_class.setdefault(self._rclass[v], []).append(v)

        need_each = frozenset(
            v for v, lv in late.items() if v not in issue and lv <= cycle
        )
        need_one: dict[str, frozenset[int]] = {}
        erc_levels: dict[str, list[ERCLevel]] = {}
        for rclass, ops in by_class.items():
            units = self.machine.units_of(rclass)
            free_now = table.free(cycle, rclass)
            pieces = sorted(
                late[v] + i for v in ops for i in range(self._occ[v])
            )
            levels: list[ERCLevel] = []
            tightest_c: int | None = None
            for idx, c in enumerate(pieces):
                k = idx + 1
                if idx + 1 < len(pieces) and pieces[idx + 1] == c:
                    continue
                avail = free_now + units * (c - cycle) if c >= cycle else 0
                empty = avail - k
                if empty < 0 and not allow_negative:
                    return None
                levels.append(ERCLevel(c=c, need=k, empty=empty))
                if empty <= 0 and tightest_c is None:
                    tightest_c = c
            erc_levels[rclass] = levels
            if tightest_c is not None:
                members = frozenset(
                    v for v in ops if late[v] <= tightest_c
                )
                if members:
                    need_one[rclass] = members
        return BranchNeeds(
            branch=b,
            early=early_b,
            late={v: lv for v, lv in late.items() if v not in issue},
            need_each=need_each,
            need_one=need_one,
            erc_levels=erc_levels,
        )

    # ------------------------------------------------------------------
    def light_update(
        self,
        cycle: int,
        issue: dict[int, int],
        table: ReservationTable,
        branches: list[int],
    ) -> None:
        """Cheap within-cycle refresh after one scheduling decision.

        Within a cycle the Early array is stable for ready operations,
        the late maps only lose scheduled entries, and resource
        consumption only shrinks the ERC empty-slot counts — which this
        method re-derives from the live reservation table. Two events the
        cheap path does not track:

        * an ERC turning infeasible (negative empty slots — the branch's
          delay grew): the full :meth:`recompute` runs, exactly as the
          paper's light update falls back to the full update;
        * a transiently *over-estimated* branch delay melting away as its
          overdue operations issue — the full per-op update notices one
          decision earlier. Empirically this changes the chosen schedule
          for well under 1% of superblocks and virtually never the WCT
          (see tests/test_light_update.py).
        """
        new_needs: dict[int, BranchNeeds] = {}
        for b in branches:
            cached = self.needs.get(b)
            if cached is None:
                self.recompute(cycle, issue, table, branches)
                return
            rebuilt = self._needs_from_late(
                b, cycle, issue, table, cached.late, cached.early
            )
            if rebuilt is None:
                if self.counters is not None:
                    self.counters.add("balance.light_fallback", 1)
                self.recompute(cycle, issue, table, branches)
                return
            if self.counters is not None:
                self.counters.add("balance.light_branch", 1)
            new_needs[b] = rebuilt
        self.needs = new_needs
