"""The Balance superblock scheduler (Section 5) — the paper's contribution.

One scheduling loop iteration:

1. update the dynamic Early/Late bounds and the ERCs (Section 5.1) —
   before every decision with ``update_per_op``, else once per cycle;
2. derive each branch's ``NeedEach``/``NeedOne`` sets (Section 5.2);
3. select a compatible set of branches, revising outcomes and the branch
   order with the Pairwise bounds (Sections 5.3-5.4);
4. pick one operation satisfying the selected branches' needs with the
   Speculative Hedge score (Section 5.5) and issue it.

The cycle advances when nothing more fits. The same engine with components
switched off (see :mod:`repro.core.config`) yields the paper's **Help**
heuristic and the entire Table 7 ablation grid.
"""

from __future__ import annotations

from repro.bounds.instrumentation import Counters
from repro.bounds.superblock_bounds import BoundSuite
from repro.core.branch_select import select_with_tradeoffs
from repro.obs.decision_trace import DecisionRecorder
from repro.core.config import BALANCE, HELP, BalanceConfig
from repro.core.dynamic_bounds import DynamicBounds
from repro.core.op_select import pick_operation
from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig
from repro.machine.reservation import ReservationTable
from repro.schedulers.base import register
from repro.schedulers.schedule import Schedule, make_schedule


def _static_inputs(
    sb: Superblock,
    machine: MachineConfig,
    config: BalanceConfig,
    suite: BoundSuite | None,
    counters: Counters | None,
):
    """Static floors / caps / pair bounds per the Bound and Tradeoff flags."""
    graph = sb.graph
    if config.use_rc_bounds:
        if suite is None:
            suite = BoundSuite(
                sb, machine, counters, include_triplewise=False
            )
        floor = suite.early_rc
        late_cap = suite.late_rc
        anchor = {b: floor[b] for b in sb.branches}
        pair_bounds = suite.pair_bounds if config.tradeoff else None
    else:
        floor = graph.early_dc()
        late_cap = {}
        for b in sb.branches:
            dist = graph.dist_to(b)
            late_cap[b] = {
                v: floor[b] - dist[v]
                for v in range(graph.num_operations)
                if dist[v] >= 0
            }
        anchor = {b: floor[b] for b in sb.branches}
        pair_bounds = None
    return floor, late_cap, anchor, pair_bounds


def balance_schedule(
    sb: Superblock,
    machine: MachineConfig,
    config: BalanceConfig = BALANCE,
    suite: BoundSuite | None = None,
    counters: Counters | None = None,
    heuristic_name: str | None = None,
    validate: bool = True,
    recorder: DecisionRecorder | None = None,
) -> Schedule:
    """Schedule ``sb`` with the Balance engine under ``config``.

    Args:
        suite: optional precomputed :class:`BoundSuite` (reuses its
            ``EarlyRC``/``LateRC``/pairwise caches).
        recorder: optional :class:`DecisionRecorder` capturing the
            per-cycle decision trace (dynamic bounds, needs, selections,
            tradeoff justifications, issues). Recording never changes the
            schedule (tests/test_decision_trace.py).
    """
    graph = sb.graph
    n = graph.num_operations
    floor, late_cap, anchor, pair_bounds = _static_inputs(
        sb, machine, config, suite, counters
    )
    if recorder is not None:
        recorder.begin(
            sb, machine,
            heuristic_name or ("balance" if config == BALANCE else config.label()),
        )
    state = DynamicBounds(sb, machine, floor, late_cap, anchor, counters)
    table = ReservationTable(machine)
    issue: dict[int, int] = {}
    preds_left = [len(graph.preds(v)) for v in range(n)]
    ready_at = [0] * n
    unscheduled_branches = list(sb.branches)
    rclass = [machine.resource_of(graph.op(v)) for v in range(n)]
    occ = [machine.occupancy_of(graph.op(v)) for v in range(n)]
    weights = sb.weights

    cycle = 0
    state_cycle = -1  # cycle the dynamic state was last computed for

    def is_ready(v: int) -> bool:
        return v not in issue and preds_left[v] == 0 and ready_at[v] <= cycle

    while len(issue) < n:
        released = [
            v for v in range(n) if v not in issue and preds_left[v] == 0
        ]
        ready = [v for v in released if ready_at[v] <= cycle]
        placeable = [
            v for v in ready if table.can_place(cycle, rclass[v], occ[v])
        ]
        if not placeable:
            # Advance; jump over fully idle cycles.
            if ready:
                cycle += 1
            else:
                cycle = max(cycle + 1, min(ready_at[v] for v in released))
            continue

        if state_cycle != cycle:
            state.recompute(cycle, issue, table, unscheduled_branches)
            state_cycle = cycle
            if counters is not None:
                counters.add("balance.update", 1)
            if recorder is not None:
                recorder.cycle(cycle, state.needs)
        elif config.update_per_op:
            if config.light_update:
                state.light_update(cycle, issue, table, unscheduled_branches)
            else:
                state.recompute(cycle, issue, table, unscheduled_branches)
            if counters is not None:
                counters.add("balance.update", 1)

        if config.branch_selection:
            free = table.snapshot_free(cycle)
            sel = select_with_tradeoffs(
                sb,
                machine,
                state,
                unscheduled_branches,
                free,
                is_ready,
                pair_bounds if config.tradeoff else None,
                config.max_reorders,
            )
            if recorder is not None:
                recorder.selection(cycle, sel)
            if sel.constrained:
                allowed = sel.candidate_ops()
                candidates = [v for v in placeable if v in allowed]
                if not candidates:
                    # Nothing needed is placeable: schedule something
                    # neutral, avoiding the blocked classes if possible.
                    blocked = sel.blocked_classes
                    candidates = [
                        v for v in placeable if rclass[v] not in blocked
                    ]
                if not candidates:  # defensive: never wedge the scheduler
                    candidates = placeable
            else:
                candidates = placeable
        else:
            candidates = placeable

        v = pick_operation(
            candidates,
            lambda u: rclass[u],
            state.needs,
            weights,
            config.help_delay,
        )
        table.place(cycle, rclass[v], occ[v])
        issue[v] = cycle
        if counters is not None:
            counters.add("balance.decision", 1)
        if recorder is not None:
            recorder.issue(cycle, v, rclass[v])
        for w, lat in graph.succs(v):
            preds_left[w] -= 1
            t = cycle + lat
            if t > ready_at[w]:
                ready_at[w] = t
        if graph.op(v).is_branch:
            unscheduled_branches.remove(v)

    name = heuristic_name or ("balance" if config == BALANCE else config.label())
    result = make_schedule(sb, machine, name, issue, validate=validate)
    if recorder is not None:
        recorder.end(result)
    return result


@register("balance")
def balance(
    sb: Superblock,
    machine: MachineConfig,
    suite: BoundSuite | None = None,
    counters: Counters | None = None,
    validate: bool = True,
    recorder: DecisionRecorder | None = None,
) -> Schedule:
    """The full Balance heuristic."""
    return balance_schedule(
        sb, machine, BALANCE, suite, counters, "balance", validate, recorder
    )


@register("help")
def help_heuristic(
    sb: Superblock,
    machine: MachineConfig,
    counters: Counters | None = None,
    validate: bool = True,
    recorder: DecisionRecorder | None = None,
) -> Schedule:
    """The Help heuristic: Speculative-Hedge-style scoring, no RC bounds,
    no compatible-branch selection (Section 6.2)."""
    return balance_schedule(
        sb, machine, HELP, None, counters, "help", validate, recorder
    )
