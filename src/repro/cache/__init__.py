"""Content-addressed result cache with incremental evaluation.

Every expensive computation in this library — bound suites, Pairwise and
Triplewise sweeps, exact ILP/branch-and-bound solves, whole evaluation
work units — is a pure function of ``(superblock, machine, algorithm,
parameters)``. This package memoizes those functions on disk, keyed by a
canonical content hash (:mod:`repro.cache.keys`), so a warm re-run of the
table/figure/report pipeline skips straight to the answers.

Design invariants (docs/caching.md):

* **Bit-identical output.** Cache entries store the computation's result
  *and* its metric counter deltas; a hit replays both, so a warm run
  renders byte-for-byte the same tables and (counter) metrics as a cold
  or uncached run. Wall-clock timers are exempt — time is not cacheable.
* **Versioned invalidation.** Keys fold in a global schema version plus a
  per-algorithm version constant (bumped whenever an implementation's
  output could change), so stale results can never be served — the old
  keys simply never match again.
* **Crash safety.** Writes are atomic; corrupt or truncated entries are
  deleted on first contact, counted (``cache.corrupt``), and recomputed.

Usage follows the ambient pattern of :mod:`repro.obs`: callers install a
cache for a scope and library code picks it up::

    from repro import cache
    with cache.install(cache.ResultCache("~/.cache/repro")):
        run_tables()

When no cache is installed every ``cached()`` call degrades to a plain
function call with zero overhead.
"""

from __future__ import annotations

from collections.abc import Callable
from contextlib import contextmanager
from typing import Any, TypeVar

from repro.cache.keys import (
    SCHEMA_VERSION,
    Unkeyable,
    cache_key,
    canonical_json,
    canonical_machine,
    canonical_superblock,
    canonical_value,
    digest,
    machine_digest,
    superblock_digest,
    superblock_identity_digest,
)
from repro.cache.store import CacheStats, GcResult, ResultCache

T = TypeVar("T")

#: Installation stack; the innermost installed cache is the ambient one.
_STACK: list[ResultCache] = []


def active() -> ResultCache | None:
    """The ambient cache, or ``None`` when caching is disabled."""
    return _STACK[-1] if _STACK else None


@contextmanager
def install(cache: ResultCache | None):
    """Make ``cache`` the ambient cache for the ``with`` body.

    Installing ``None`` is a no-op scope, so call sites can write
    ``with cache.install(maybe_cache):`` unconditionally.
    """
    if cache is None:
        yield None
        return
    _STACK.append(cache)
    try:
        yield cache
    finally:
        _STACK.pop()


def deactivate() -> None:
    """Drop every installed cache in this process.

    Called from worker-process initializers: the corpus engine performs
    cache lookups and write-backs **in the parent** (misses only are
    fanned out), so a forked worker must not inherit the parent's cache —
    double writes would be harmless but wasteful, and worker-side hits
    would skew the parent's accounting.
    """
    _STACK.clear()


@contextmanager
def disabled():
    """No ambient cache for the ``with`` body, restored on exit.

    Used by oracles that compare two freshly computed runs (e.g. the
    ``kernel`` family): the cache key does not encode the active backend
    — the backends are required to be bit-identical — so a shared cache
    would let the first run's entries stand in for the second and hide
    divergence.
    """
    saved = _STACK[:]
    _STACK.clear()
    try:
        yield
    finally:
        _STACK[:] = saved


def cached(algorithm: str, version: int, parts: Any, compute: Callable[[], T]) -> T:
    """Memoize ``compute()`` under the ambient cache.

    With no cache installed, or when ``parts`` has no canonical form,
    this is exactly ``compute()``.
    """
    cache = active()
    if cache is None:
        return compute()
    try:
        key = cache_key(algorithm, version, parts)
    except Unkeyable:
        return compute()
    hit, value = cache.get(key)
    if hit:
        return value
    value = compute()
    cache.put(key, value)
    return value


def kernel_version(version: int):
    """Mark a corpus-map kernel as cacheable at ``version``.

    The corpus engine only caches kernels that opt in (timing kernels,
    for instance, must never be cached); bump the version whenever the
    kernel's output could change.
    """

    def mark(fn):
        fn.__cache_version__ = version
        return fn

    return mark


__all__ = [
    "SCHEMA_VERSION",
    "CacheStats",
    "GcResult",
    "ResultCache",
    "Unkeyable",
    "active",
    "cache_key",
    "cached",
    "canonical_json",
    "canonical_machine",
    "canonical_superblock",
    "canonical_value",
    "deactivate",
    "digest",
    "disabled",
    "install",
    "kernel_version",
    "machine_digest",
    "superblock_digest",
    "superblock_identity_digest",
]
