"""Content-addressed result cache: sharded disk store + in-memory LRU.

Layout: one file per entry under ``<dir>/objects/<key[:2]>/<key[2:]>``,
sharded on the first key byte so no directory grows unboundedly. Every
file carries a magic header and a SHA-256 payload digest::

    RPRC1\\n | sha256(payload) (32 bytes) | payload (pickle)

Writes are atomic (temp file in the same directory + ``os.replace``), so
a reader never observes a partially written entry; a corrupt or truncated
entry — wrong magic, digest mismatch, unpicklable payload — is deleted on
first contact, counted under ``cache.corrupt``, and reported as a miss so
the caller simply recomputes.

A small LRU dictionary fronts the disk store: repeated lookups within one
process (the Pairwise sweep re-reading a suite entry, a warm table build)
never touch the filesystem twice. Hits, misses, writes, evictions, and
corruption are counted on the cache object itself (:class:`CacheStats`)
— never into whatever :class:`~repro.obs.metrics.MetricsRegistry` happens
to be active, because during metered evaluation that registry is a
per-unit capture whose contents are *stored in cache entries*; leaking
bookkeeping there would make cold and uncached runs report different
counters. Call :meth:`ResultCache.publish_metrics` at scope end to
surface the totals in :mod:`repro.obs` under ``cache.*``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs import trace
from repro.obs.metrics import active as _active_metrics

_MAGIC = b"RPRC1\n"
_DIGEST_LEN = 32

#: A sentinel distinguishing "miss" from a cached ``None`` value.
_MISS = object()


@dataclass
class CacheStats:
    """Event counts for one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    corrupt: int = 0
    #: Hits served from the in-memory LRU (subset of ``hits``).
    memory_hits: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 with no lookups)."""
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "memory_hits": self.memory_hits,
        }


@dataclass
class GcResult:
    """Outcome of one :meth:`ResultCache.gc` pass."""

    removed: int = 0
    kept: int = 0
    bytes_freed: int = 0
    bytes_kept: int = 0
    errors: list[str] = field(default_factory=list)


class ResultCache:
    """Disk-backed, content-addressed result cache with an LRU front.

    Args:
        directory: cache root; created on first write.
        memory_entries: capacity of the in-memory LRU front (0 disables
            it); eviction is by least-recent use and never touches disk.
        readonly: serve hits but never write (useful for audits).
    """

    def __init__(
        self,
        directory: str | Path,
        memory_entries: int = 512,
        readonly: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.readonly = readonly
        self.stats = CacheStats()
        self._memory_entries = max(0, memory_entries)
        self._memory: OrderedDict[str, Any] = OrderedDict()

    # -- paths -----------------------------------------------------------
    @property
    def objects_dir(self) -> Path:
        return self.directory / "objects"

    def path_for(self, key: str) -> Path:
        return self.objects_dir / key[:2] / key[2:]

    # -- counting --------------------------------------------------------
    def _count(self, event: str, amount: int = 1) -> None:
        setattr(self.stats, event, getattr(self.stats, event) + amount)

    def publish_metrics(self, registry: Any = None) -> None:
        """Push lifetime totals into a metrics registry as ``cache.*``.

        Uses the ambient registry when none is given. Intended to run
        once at scope end (the CLI cache scope does), keeping the cache's
        own bookkeeping out of per-unit metric deltas.
        """
        registry = _active_metrics() if registry is None else registry
        if registry is None:
            return
        for event, amount in self.stats.as_dict().items():
            registry.add(f"cache.{event}", amount)

    # -- core API --------------------------------------------------------
    def get(self, key: str) -> tuple[bool, Any]:
        """Look up a key; returns ``(hit, value)``.

        A corrupt entry is deleted, counted, and reported as a miss.
        """
        value = self._memory_get(key)
        if value is not _MISS:
            self._count("hits")
            self._count("memory_hits")
            return True, value
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self._count("misses")
            return False, None
        value = self._decode(raw)
        if value is _MISS:
            self._count("corrupt")
            self._count("misses")
            try:
                path.unlink()
            except OSError:  # pragma: no cover - already gone / perms
                pass
            return False, None
        self._memory_put(key, value)
        self._count("hits")
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Store a value atomically; last writer wins."""
        self._memory_put(key, value)
        if self.readonly:
            return
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob = _MAGIC + hashlib.sha256(payload).digest() + payload
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._count("writes")

    @staticmethod
    def _decode(raw: bytes) -> Any:
        """Payload of an entry blob, or the miss sentinel when corrupt."""
        if not raw.startswith(_MAGIC):
            return _MISS
        header_len = len(_MAGIC) + _DIGEST_LEN
        if len(raw) < header_len:
            return _MISS
        expected = raw[len(_MAGIC) : header_len]
        payload = raw[header_len:]
        if hashlib.sha256(payload).digest() != expected:
            return _MISS
        try:
            return pickle.loads(payload)
        except Exception:  # noqa: BLE001 - any unpickling failure is corruption
            return _MISS

    # -- memory LRU ------------------------------------------------------
    def _memory_get(self, key: str) -> Any:
        if key not in self._memory:
            return _MISS
        self._memory.move_to_end(key)
        return self._memory[key]

    def _memory_put(self, key: str, value: Any) -> None:
        if self._memory_entries == 0:
            return
        if key in self._memory:
            self._memory.move_to_end(key)
        self._memory[key] = value
        while len(self._memory) > self._memory_entries:
            self._memory.popitem(last=False)
            self._count("evictions")

    # -- maintenance -----------------------------------------------------
    def entries(self) -> list[Path]:
        """Every entry file currently in the store, unordered."""
        if not self.objects_dir.is_dir():
            return []
        return [p for p in self.objects_dir.glob("*/*") if p.is_file()]

    def summary(self) -> dict[str, Any]:
        """Disk-store summary for ``cache stats`` and reports."""
        files = self.entries()
        total = 0
        for path in files:
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - raced deletion
                pass
        return {
            "directory": str(self.directory),
            "entries": len(files),
            "bytes": total,
            "shards": len({p.parent.name for p in files}),
        }

    def gc(
        self,
        max_bytes: int | None = None,
        max_age_s: float | None = None,
        now: float | None = None,
    ) -> GcResult:
        """Trim the disk store by age and/or total size.

        Entries older than ``max_age_s`` are removed first; the remainder
        is trimmed least-recently-modified-first until it fits in
        ``max_bytes``. Removals count as evictions.
        """
        result = GcResult()
        now = time.time() if now is None else now
        with trace.span("cache.gc"):
            stamped: list[tuple[float, int, Path]] = []
            for path in self.entries():
                try:
                    st = path.stat()
                except OSError:  # pragma: no cover - raced deletion
                    continue
                stamped.append((st.st_mtime, st.st_size, path))
            stamped.sort()  # oldest first
            keep: list[tuple[float, int, Path]] = []
            for mtime, size, path in stamped:
                if max_age_s is not None and now - mtime > max_age_s:
                    self._remove(path, size, result)
                else:
                    keep.append((mtime, size, path))
            if max_bytes is not None:
                total = sum(size for _, size, _ in keep)
                for mtime, size, path in keep:
                    if total <= max_bytes:
                        result.kept += 1
                        result.bytes_kept += size
                        continue
                    self._remove(path, size, result)
                    total -= size
            else:
                result.kept += len(keep)
                result.bytes_kept += sum(size for _, size, _ in keep)
        self._memory.clear()
        return result

    def _remove(self, path: Path, size: int, result: GcResult) -> None:
        try:
            path.unlink()
        except OSError as exc:  # pragma: no cover - perms/races
            result.errors.append(f"{path}: {exc}")
            return
        result.removed += 1
        result.bytes_freed += size
        self._count("evictions")

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - perms/races
                pass
        self._memory.clear()
        return removed
