"""Canonical serialization and content hashing for cache keys.

A cache key must identify the *semantics* of a computation, nothing else:
two superblocks that differ only in edge-list order, dict-key order, or
cosmetic metadata (``name``, ``source``) must hash identically, while any
semantic change — an opcode, a latency, an exit probability, a machine
parameter — must change the hash. The canonical form is therefore built
from sorted, minimal JSON (``sort_keys=True``, no whitespace, ``NaN``
rejected) and hashed with SHA-256.

Two digests exist per superblock:

* :func:`superblock_digest` — semantic content only (operations + edges).
  Used by algorithm-level caches (bounds, exact solvers) whose stored
  values are identity-free and therefore shareable between structurally
  identical blocks.
* :func:`superblock_identity_digest` — semantic content *plus* the
  block's identity (``name``, ``exec_freq``). Used by the generic
  corpus-kernel cache, whose stored values may embed the block's name.

Key assembly (:func:`cache_key`) folds in a global schema version, the
algorithm name, and the per-algorithm version constant, so bumping either
can never serve stale results — the key simply never matches again.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

from repro.ir.superblock import Superblock
from repro.machine.machine import MachineConfig

#: Global cache schema version: bump to invalidate every existing entry
#: (e.g. when the on-disk value encoding changes).
SCHEMA_VERSION = 1


class Unkeyable(TypeError):
    """An object has no canonical form and cannot participate in a key."""


def canonical_json(obj: Any) -> str:
    """Minimal, key-sorted, NaN-free JSON — the canonical text form."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def digest(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


# ----------------------------------------------------------------------
# Domain objects
# ----------------------------------------------------------------------
def canonical_superblock(sb: Superblock) -> dict[str, Any]:
    """Semantic content of a superblock, in canonical order.

    Operation order is semantic (indices are referenced by edges and the
    branch sequence) and is kept positional; edge order is not and is
    sorted. Cosmetic fields (``name``, ``source``, per-op ``name``) and
    the evaluation-only ``exec_freq`` are excluded.
    """
    return {
        "ops": [
            [op.opcode.name, repr(float(op.exit_prob)), op.block]
            for op in sb.operations
        ],
        "edges": sorted([src, dst, lat] for src, dst, lat in sb.graph.edges()),
    }


def superblock_digest(sb: Superblock) -> str:
    """Content digest of a superblock's semantics (identity-free)."""
    return digest(canonical_superblock(sb))


def superblock_identity_digest(sb: Superblock) -> str:
    """Content digest including the block's identity fields.

    Corpus kernels return values that may embed ``sb.name`` and
    ``sb.exec_freq`` (e.g. :class:`~repro.eval.metrics.SuperblockResult`),
    so their cache entries must not be shared across identically-shaped
    blocks with different identities.
    """
    body = canonical_superblock(sb)
    body["name"] = sb.name
    body["exec_freq"] = repr(float(sb.exec_freq))
    return digest(body)


def canonical_machine(machine: MachineConfig) -> dict[str, Any]:
    """Semantic content of a machine configuration."""
    return {
        "units": dict(machine.units),
        "class_map": {oc.value: rc for oc, rc in machine.class_map.items()},
        "occupancy": dict(machine.occupancy),
    }


def machine_digest(machine: MachineConfig) -> str:
    """Content digest of a machine configuration (name excluded)."""
    return digest(canonical_machine(machine))


# ----------------------------------------------------------------------
# Generic parameter encoding
# ----------------------------------------------------------------------
def canonical_value(obj: Any) -> Any:
    """Recursively convert ``obj`` to a JSON-canonical structure.

    Supports the primitives, containers, and the frozen dataclasses the
    evaluation layer passes as kernel extras (machine configs, Balance
    configurations, picklable weight callables). Anything else — above
    all arbitrary callables such as lambdas — raises :class:`Unkeyable`,
    which callers treat as "do not cache this work unit".
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return repr(obj)  # repr round-trips; json would re-parse 1.0 == 1
    if isinstance(obj, MachineConfig):
        return {"__machine__": canonical_machine(obj)}
    if isinstance(obj, Superblock):
        return {"__superblock__": superblock_identity_digest(obj)}
    if isinstance(obj, (list, tuple)):
        return [canonical_value(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonical_value(v) for v in obj)
    if isinstance(obj, dict):
        items = [
            (canonical_json(canonical_value(k)), canonical_value(v))
            for k, v in obj.items()
        ]
        return {"__dict__": sorted(items)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        return {
            "__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                f.name: canonical_value(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    raise Unkeyable(f"cannot derive a canonical cache key from {type(obj)!r}")


def cache_key(algorithm: str, version: int, parts: Any) -> str:
    """Assemble the full content-addressed key for one computation.

    Args:
        algorithm: stable algorithm identifier (``"bounds"``, ``"ilp"``,
            a kernel's qualified name, ...).
        version: the per-algorithm version constant; bump it whenever the
            implementation's output could change.
        parts: everything the output depends on (digests, parameters);
            must be canonicalizable by :func:`canonical_value`.
    """
    return digest(
        ["repro-cache", SCHEMA_VERSION, algorithm, version, canonical_value(parts)]
    )
