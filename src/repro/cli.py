"""Command line interface: ``python -m repro <command>`` / ``balance-sched``.

Commands:

* ``corpus``   — generate and save (or summarize) a synthetic corpus.
* ``schedule`` — schedule one superblock file with a chosen heuristic.
* ``bounds``   — print every lower bound for one superblock file.
* ``table1`` .. ``table7`` — regenerate a paper table.
* ``figure8``  — regenerate the Figure 8 CDF.
* ``examples`` — print the Figure 1-4 example schedules.
* ``verify``   — differential soundness audit (see docs/verification.md).
* ``bench``    — run the perf smoke suite / regression gate; also
  ``--compare A B`` and ``--trend`` analytics over the bench history.
* ``trace``    — render a JSONL trace file (spans or Balance decisions).
* ``profile``  — wrap any command in a profiling capture with per-span
  hotspot attribution (``profile table1 --quick``).
* ``export``   — convert artifacts to standard formats: span JSONL to
  Chrome trace-event JSON (Perfetto), metrics JSON to Prometheus text.
* ``obs``      — query the run ledger: ``summary``, ``blocks``,
  ``anomalies``, ``diff A B``, and ``dashboard --out report.html`` (a
  self-contained static HTML performance dashboard).
* ``serve``    — run the batch scheduling service: an HTTP/JSON API
  (``POST /v1/batch``, ``/healthz``, ``/metrics``) over the worker
  pool, result cache and run ledger (see docs/service.md).
* ``loadgen``  — drive a service (or a self-hosted one) with
  zipf-skewed synthetic traffic; reports latency percentiles,
  throughput and cache hit-rate into the bench history.

Corpus-sweep commands accept ``--jobs N`` to fan the (superblock,
machine) work units out over N worker processes; outputs are
byte-identical to the serial run. Observability flags (see
docs/observability.md): ``--trace-out PATH`` writes a JSONL span trace
(for ``schedule`` with the Balance/Help heuristics, a decision trace),
``--metrics-out PATH`` writes the merged counters/timers JSON, and
``--profile-out PATH`` on ``schedule``/``bounds``/``report`` captures a
profile of the command without the ``profile`` wrapper. With
``--ledger DIR`` (or ``REPRO_LEDGER_DIR``) every run appends a
schema-versioned record — args, git SHA, span self-times, counters,
cache/dispatch stats, and a per-block detail table — to a local ledger;
results stay bit-identical with the ledger on or off.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import __version__
from repro.machine.machine import _BY_NAME, PAPER_MACHINES, machine_by_name


class CommandError(Exception):
    """A command failed; the message is printed and the CLI exits 1."""


class _ListMachinesAction(argparse.Action):
    """``--list-machines``: print every machine model and exit."""

    def __call__(self, parser, namespace, values, option_string=None):
        lines = []
        for name, m in _BY_NAME.items():
            units = ", ".join(f"{r}x{n}" for r, n in m.units.items())
            blocking = (
                "; blocking: "
                + ", ".join(
                    f"{op}={occ}" for op, occ in sorted(m.occupancy.items())
                )
                if m.occupancy
                else ""
            )
            lines.append(f"{name:8s} units: {units}{blocking}")
        print("\n".join(lines))
        parser.exit()


def _add_corpus_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", type=int, default=120,
        help="total superblocks in the synthetic corpus (default 120)",
    )
    parser.add_argument("--seed", type=int, default=1999, help="corpus seed")
    parser.add_argument(
        "--max-ops", type=int, default=150, help="per-superblock op cap"
    )


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the corpus fan-out "
        "(1 = serial, 0 = all CPUs); results are identical for any N. "
        "Runs below the dispatch break-even point fall back to the "
        "serial path so small corpora never pay pool overhead "
        "(override with REPRO_PAR_BREAK_EVEN)",
    )


def _add_ledger_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ledger", metavar="DIR",
        help="append a run record (args, git SHA, spans, counters, "
        "cache/dispatch stats, per-block detail) to this ledger "
        "directory (default: the REPRO_LEDGER_DIR environment "
        "variable; unset = no ledger); results are bit-identical "
        "with or without it — query with 'python -m repro obs'",
    )
    parser.add_argument(
        "--no-ledger", action="store_true",
        help="skip the run ledger even when REPRO_LEDGER_DIR is set",
    )


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", metavar="PATH",
        help="write a JSONL trace here (render with 'python -m repro trace')",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH",
        help="write the merged counters/timers JSON here",
    )
    _add_ledger_args(parser)


def _add_profile_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile-out", metavar="PATH",
        help="profile this command and write the hotspot report JSON here "
        "(shorthand for the 'profile' wrapper; incompatible with "
        "--trace-out)",
    )


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="content-addressed result cache directory (default: the "
        "REPRO_CACHE_DIR environment variable; unset = no caching); "
        "outputs are bit-identical with or without it",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache even when REPRO_CACHE_DIR is set",
    )
    parser.add_argument(
        "--cache-stats", action="store_true",
        help="print cache hit/miss statistics after the command",
    )


def _build_corpus(args):
    from repro.obs import trace as trace_mod
    from repro.workloads.corpus import specint95_corpus

    with trace_mod.span(
        "corpus.build", scale=args.scale, seed=args.seed, max_ops=args.max_ops
    ):
        return specint95_corpus(
            scale=args.scale, seed=args.seed, max_ops=args.max_ops
        )


def _machines(args):
    if args.machines == "all":
        return PAPER_MACHINES
    return tuple(machine_by_name(n) for n in args.machines.split(","))


def _resolve_ledger_dir(args) -> str | None:
    """Ledger directory per flags and environment, ``None`` = disabled."""
    import os

    if getattr(args, "no_ledger", False):
        return None
    return getattr(args, "ledger", None) or os.environ.get(
        "REPRO_LEDGER_DIR"
    ) or None


def _observed(args):
    """Tracer/metrics/ledger per the observability flags.

    Returns an entered context manager yielding ``(tracer, metrics,
    recorder)`` — each may be ``None`` when the corresponding flag
    (``--trace-out`` / ``--metrics-out`` / ``--ledger`` or
    ``REPRO_LEDGER_DIR``) is absent. With a ledger but no
    ``--trace-out``, a private tracer is installed anyway so the run
    record gets span self-times and per-block solve attribution; no
    private *metrics* registry is ever created — counter instrumentation
    costs real kernel time, so the record carries counters only when the
    user asked for ``--metrics-out``. The recorder finalizes (and its
    record is appended to the ledger) on scope exit.
    """
    from contextlib import ExitStack, contextmanager

    from repro.obs import trace as trace_mod
    from repro.obs.metrics import MetricsRegistry

    @contextmanager
    def ctx():
        from repro.obs import ledger as ledger_mod
        from repro.perf.runner import (
            publish_dispatch_stats,
            reset_dispatch_stats,
        )

        tracer = trace_mod.Tracer() if getattr(args, "trace_out", None) else None
        metrics = (
            MetricsRegistry() if getattr(args, "metrics_out", None) else None
        )
        ledger_dir = _resolve_ledger_dir(args)
        recorder = None
        span_source = tracer
        if ledger_dir is not None:
            recorder = ledger_mod.RunRecorder(
                args.command,
                argv=sys.argv[1:],
                args=ledger_mod.args_payload(args),
                directory=ledger_dir,
            )
            if span_source is None:
                # Reuse an already-installed tracer (the profile wrapper's)
                # rather than shadowing it; otherwise bring a private one
                # so the run record still gets span attribution.
                span_source = trace_mod.current() or trace_mod.Tracer()
        reset_dispatch_stats()
        with ExitStack() as stack:
            if span_source is not None and span_source is not trace_mod.current():
                stack.enter_context(trace_mod.install(span_source))
            if metrics is not None:
                stack.enter_context(metrics.activated())
            if recorder is not None:
                stack.enter_context(ledger_mod.installed(recorder))
            ok = False
            try:
                yield tracer, metrics, recorder
                ok = True
            finally:
                if metrics is not None:
                    publish_dispatch_stats(metrics)
                # A run that raised appends nothing: partial records
                # would pollute the history statistics anomalies use.
                if ok and recorder is not None:
                    recorder.finalize(
                        span_events=(
                            span_source.spans()
                            if span_source is not None
                            else None
                        ),
                        metrics=metrics,
                    )

    return ctx()


def _resolve_cache_dir(args) -> str | None:
    """Cache directory per flags and environment, ``None`` = disabled."""
    import os

    if getattr(args, "no_cache", False):
        return None
    return getattr(args, "cache_dir", None) or os.environ.get(
        "REPRO_CACHE_DIR"
    ) or None


def _cache_scope(args):
    """Entered context manager installing the result cache, if any.

    Yields the :class:`~repro.cache.ResultCache` (or ``None``). On exit
    the cache's lifetime totals are published to the ambient metrics
    registry — after the fact, so the bookkeeping never contaminates the
    per-unit counter deltas stored in cache entries.
    """
    from contextlib import contextmanager

    from repro import cache as result_cache
    from repro.obs import ledger as ledger_mod

    @contextmanager
    def ctx():
        directory = _resolve_cache_dir(args)
        if directory is None:
            yield None
            return
        cache = result_cache.ResultCache(directory)
        with result_cache.install(cache):
            try:
                yield cache
            finally:
                cache.publish_metrics()
                recorder = ledger_mod.active_recorder()
                if recorder is not None:
                    recorder.attach_cache_stats(cache.stats.as_dict())

    return ctx()


def _cache_lines(args, cache) -> list[str]:
    """The ``--cache-stats`` report, empty without the flag."""
    if not getattr(args, "cache_stats", False):
        return []
    if cache is None:
        return ["cache: disabled (pass --cache-dir or set REPRO_CACHE_DIR)"]
    s = cache.stats
    summary = cache.summary()
    return [
        f"cache {summary['directory']}: "
        f"{s.hits} hits ({s.memory_hits} from memory), {s.misses} misses, "
        f"{s.writes} writes, {s.corrupt} corrupt, {s.evictions} evictions; "
        f"store: {summary['entries']} entries, {summary['bytes']} bytes "
        f"in {summary['shards']} shards"
    ]


def _ledger_lines(recorder) -> list[str]:
    """Where the run record landed, empty when the ledger is off."""
    if recorder is None or recorder.written_path is None:
        return []
    return [
        f"ledger: run {recorder.run_id} appended to {recorder.written_path}"
    ]


def _obs_lines(args, tracer, metrics, recorder=None) -> list[str]:
    """Write the requested trace/metrics files; report what was written."""
    lines = []
    if getattr(args, "trace_out", None):
        source = recorder if recorder is not None else tracer
        source.write_jsonl(args.trace_out)
        lines.append(f"trace written to {args.trace_out}")
    if metrics is not None:
        metrics.save(args.metrics_out)
        lines.append(f"metrics written to {args.metrics_out}")
    return lines


def build_parser() -> argparse.ArgumentParser:
    """The full argument parser (also used to re-parse wrapped commands)."""
    parser = argparse.ArgumentParser(
        prog="balance-sched",
        description=(
            "Reproduction of 'Balance Scheduling: Weighting Branch "
            "Tradeoffs in Superblocks' (MICRO 1999)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--list-machines", action=_ListMachinesAction, nargs=0,
        help="list the available machine models and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("corpus", help="generate a synthetic SPECint95 corpus")
    _add_corpus_args(p)
    p.add_argument("--out", help="write corpus to this JSONL file")

    p = sub.add_parser("schedule", help="schedule a superblock JSON file")
    p.add_argument("file", help="superblock JSON (see repro.ir.serialize)")
    p.add_argument("--machine", default="GP2")
    p.add_argument("--heuristic", default="balance")
    p.add_argument(
        "--gantt", action="store_true", help="render an ASCII Gantt chart"
    )
    _add_obs_args(p)
    _add_profile_arg(p)
    _add_cache_args(p)

    p = sub.add_parser(
        "cfg", help="generate a CFG, select traces, form superblocks"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--segments", type=int, default=6)
    p.add_argument("--machine", default="FS6")

    p = sub.add_parser("bounds", help="print all bounds for a superblock file")
    p.add_argument("file")
    p.add_argument("--machine", default="GP2")
    _add_obs_args(p)
    _add_profile_arg(p)
    _add_cache_args(p)

    for tid in range(1, 8):
        p = sub.add_parser(f"table{tid}", help=f"regenerate paper Table {tid}")
        _add_corpus_args(p)
        p.add_argument(
            "--machines", default="all",
            help="comma-separated machine names or 'all'",
        )
        p.add_argument(
            "--no-triplewise", action="store_true",
            help="skip the (expensive) Triplewise bound",
        )
        _add_jobs_arg(p)
        _add_obs_args(p)
        _add_cache_args(p)

    p = sub.add_parser("figure8", help="regenerate the Figure 8 CDF (gcc, FS4)")
    _add_corpus_args(p)
    p.add_argument("--machine", default="FS4")
    _add_jobs_arg(p)
    _add_obs_args(p)
    _add_cache_args(p)

    sub.add_parser("examples", help="print the Figure 1-4 example schedules")

    p = sub.add_parser(
        "report", help="run the full evaluation and emit a markdown report"
    )
    _add_corpus_args(p)
    p.add_argument("--out", help="write the report to this file")
    p.add_argument("--no-triplewise", action="store_true")
    p.add_argument(
        "--no-costs", action="store_true",
        help="skip the slow cost tables (2 and 6)",
    )
    _add_jobs_arg(p)
    _add_obs_args(p)
    _add_profile_arg(p)
    _add_cache_args(p)

    p = sub.add_parser(
        "trace", help="render a JSONL trace (span or decision events)"
    )
    p.add_argument("file", help="trace file written by --trace-out")
    p.add_argument(
        "--dot", action="store_true",
        help="emit a Graphviz DOT rendering of a decision trace",
    )

    p = sub.add_parser(
        "verify",
        help="differential soundness audit (schedulers, bounds, simulator)",
    )
    p.add_argument(
        "--fuzz", type=int, default=200, metavar="N",
        help="number of fuzz cases (default 200)",
    )
    p.add_argument("--seed", type=int, default=0, help="fuzz corpus seed")
    p.add_argument(
        "--family", action="append", metavar="F",
        help="restrict to an oracle family "
        "(legality, bounds, sim, cache, pack, ledger, kernel, service); "
        "repeatable, default all",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="CI smoke configuration (25 small cases)",
    )
    p.add_argument(
        "--no-minimize", action="store_true",
        help="report raw counterexamples without shrinking them",
    )
    p.add_argument(
        "--findings-out", metavar="PATH",
        help="write the (minimized) counterexamples as JSON here, "
        "pass or fail — CI uploads this file as an artifact",
    )
    _add_obs_args(p)

    p = sub.add_parser(
        "cache", help="inspect or maintain a result cache directory"
    )
    csub = p.add_subparsers(dest="cache_command", required=True)
    for cname, chelp in (
        ("stats", "print a summary of the on-disk store"),
        ("gc", "trim the store by total size and/or entry age"),
        ("clear", "delete every entry in the store"),
    ):
        cp = csub.add_parser(cname, help=chelp)
        cp.add_argument(
            "--cache-dir", metavar="DIR",
            help="cache directory (default: REPRO_CACHE_DIR)",
        )
        if cname == "gc":
            cp.add_argument(
                "--max-mb", type=float, metavar="MB",
                help="trim least-recently-used entries beyond this size",
            )
            cp.add_argument(
                "--max-age-days", type=float, metavar="DAYS",
                help="remove entries older than this",
            )

    p = sub.add_parser(
        "bench",
        help="run the perf smoke suite (hot-path and end-to-end metrics)",
    )
    p.add_argument("--quick", action="store_true", help="reduced configuration")
    p.add_argument(
        "--no-scaling", action="store_true", help="skip the --jobs scaling scan"
    )
    p.add_argument("--out", help="write metrics JSON (BENCH schema) here")
    p.add_argument(
        "--check", nargs="?", const="", metavar="BASELINE",
        help="fail when a headline metric regresses >tolerance vs BASELINE "
        "(default: the committed benchmarks/BENCH_1.json)",
    )
    p.add_argument("--tolerance", type=float, default=0.20)
    p.add_argument(
        "--compare", nargs=2, metavar=("BASELINE", "CURRENT"),
        help="compare two BENCH JSON files without running the bench; "
        "exits nonzero when any metric regresses past --tolerance",
    )
    p.add_argument(
        "--trend", action="store_true",
        help="render the metric trajectory from the bench history "
        "without running the bench",
    )
    p.add_argument(
        "--history", metavar="PATH",
        help="bench history JSONL "
        "(default: the committed benchmarks/BENCH_history.jsonl)",
    )
    p.add_argument(
        "--no-history", action="store_true",
        help="do not append this run to the bench history",
    )
    p.add_argument(
        "--label", metavar="L",
        help="restrict --trend to records with this label (quick/full)",
    )
    _add_ledger_args(p)

    p = sub.add_parser(
        "obs",
        help="query the run ledger (runs, blocks, anomalies, dashboard)",
    )
    osub = p.add_subparsers(dest="obs_command", required=True)
    for oname, ohelp in (
        ("summary", "table of recent runs, newest first"),
        ("blocks", "per-block detail table of one run"),
        ("anomalies", "flag outlier blocks and history regressions"),
        ("diff", "compare two runs (wall, counters, per-block WCTs)"),
        ("dashboard", "render the self-contained HTML dashboard"),
        ("slo", "replay service traffic against SLOs (burn rates)"),
        ("slowest", "list slow-request exemplars captured by the service"),
    ):
        op = osub.add_parser(oname, help=ohelp)
        op.add_argument(
            "--ledger", metavar="DIR",
            help="ledger directory (default: REPRO_LEDGER_DIR)",
        )
        if oname == "summary":
            op.add_argument(
                "--last", type=int, default=10, metavar="N",
                help="runs shown (default 10)",
            )
        if oname in ("blocks", "anomalies"):
            op.add_argument(
                "--run", default="-1", metavar="REF",
                help="run id (or unique prefix) or negative index "
                "(default -1, the newest run)",
            )
        if oname == "blocks":
            op.add_argument(
                "--top", type=int, default=10, metavar="N",
                help="block rows shown (default 10)",
            )
            op.add_argument(
                "--by", choices=("gap", "solve", "ops"), default="gap",
                help="sort key: bound gap (default), solve time, or size",
            )
        if oname == "anomalies":
            op.add_argument(
                "--z", type=float, default=3.5, metavar="T",
                help="modified z-score threshold (default 3.5)",
            )
        if oname == "diff":
            op.add_argument("run_a", help="baseline run reference")
            op.add_argument("run_b", help="current run reference")
        if oname == "dashboard":
            op.add_argument(
                "--out", default="dashboard.html", metavar="PATH",
                help="output HTML path (default dashboard.html)",
            )
            op.add_argument(
                "--top", type=int, default=15, metavar="N",
                help="block rows in the dashboard table (default 15)",
            )
            op.add_argument(
                "--title", default="repro run ledger",
                help="dashboard page title",
            )
        if oname == "slo":
            op.add_argument(
                "--latency-ms", type=float, default=1000.0, metavar="MS",
                help="latency objective threshold in milliseconds "
                "(default 1000)",
            )
            op.add_argument(
                "--latency-target", type=float, default=0.99, metavar="R",
                help="fraction of requests that must meet the latency "
                "threshold (default 0.99)",
            )
            op.add_argument(
                "--availability-target", type=float, default=0.999,
                metavar="R",
                help="fraction of requests that must succeed "
                "(default 0.999)",
            )
            op.add_argument(
                "--json", action="store_true",
                help="emit the report as JSON instead of a table",
            )
            op.add_argument(
                "--max-burn", type=float, default=None, metavar="B",
                help="exit nonzero when any objective's burn rate over "
                "any window exceeds B (e.g. 1.0)",
            )
        if oname == "slowest":
            op.add_argument(
                "--top", type=int, default=10, metavar="N",
                help="exemplars shown, slowest first (default 10)",
            )
            op.add_argument(
                "--trace-out", metavar="PATH",
                help="write the slowest exemplar's Chrome trace JSON here "
                "(open it in Perfetto)",
            )

    p = sub.add_parser(
        "profile",
        help="wrap any command in a profiling capture (per-span hotspots)",
    )
    p.add_argument(
        "--engine", choices=("sampling", "cprofile"), default="sampling",
        help="capture engine: statistical sampling (default, near-zero "
        "perturbation) or deterministic cProfile",
    )
    p.add_argument(
        "--interval-ms", type=float, default=4.0,
        help="sampling period in milliseconds (sampling engine only)",
    )
    p.add_argument(
        "--top", type=int, default=5,
        help="functions shown per span in the report",
    )
    p.add_argument(
        "--out", metavar="PATH", help="write the hotspot report JSON here"
    )
    p.add_argument(
        "--spans-out", metavar="PATH",
        help="also write the captured span JSONL here "
        "(feed it to 'export chrome-trace')",
    )
    p.add_argument(
        "wrapped", nargs=argparse.REMAINDER, metavar="COMMAND ...",
        help="the command to profile, with its flags "
        "(e.g. 'profile table1 --quick'; --quick on corpus commands "
        "is shorthand for --scale 12 --max-ops 32)",
    )

    p = sub.add_parser(
        "serve",
        help="run the batch scheduling service (HTTP/JSON over the "
        "worker pool, cache and ledger; see docs/service.md)",
    )
    p.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    p.add_argument(
        "--port", type=int, default=8131,
        help="listen port (default 8131; 0 = pick an ephemeral port)",
    )
    _add_jobs_arg(p)
    p.add_argument(
        "--cache-dir", metavar="DIR",
        help="content-addressed result cache directory for warm requests "
        "(default: REPRO_CACHE_DIR; unset = no caching); responses are "
        "bit-identical with or without it",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache even when REPRO_CACHE_DIR is set",
    )
    _add_ledger_args(p)
    p.add_argument(
        "--max-blocks", type=int, default=None, metavar="N",
        help="per-request superblock cap (default 64); larger batches "
        "answer 413",
    )
    p.add_argument(
        "--max-body-mb", type=float, default=None, metavar="MB",
        help="request body cap in MiB (default 8)",
    )
    p.add_argument(
        "--slow-threshold-ms", type=float, default=1000.0, metavar="MS",
        help="requests at least this slow persist a tail-latency "
        "exemplar (trace + phase split) into their ledger record "
        "(default 1000; 0 captures every request, negative disables); "
        "list them with 'repro obs slowest'",
    )
    p.add_argument(
        "--slo-latency-ms", type=float, default=1000.0, metavar="MS",
        help="SLO latency threshold in milliseconds (default 1000)",
    )
    p.add_argument(
        "--slo-latency-target", type=float, default=0.99, metavar="R",
        help="fraction of requests that must meet the SLO latency "
        "threshold (default 0.99)",
    )
    p.add_argument(
        "--slo-availability-target", type=float, default=0.999, metavar="R",
        help="fraction of requests that must succeed (default 0.999)",
    )

    p = sub.add_parser(
        "loadgen",
        help="drive a scheduling service with zipf-skewed synthetic load",
    )
    p.add_argument(
        "--url", metavar="URL",
        help="target server base URL (e.g. http://127.0.0.1:8131); "
        "omit to self-host a temporary server on an ephemeral port",
    )
    p.add_argument(
        "--requests", type=int, default=200, metavar="N",
        help="total requests to send (default 200)",
    )
    p.add_argument(
        "--concurrency", type=int, default=4, metavar="C",
        help="client threads issuing requests (default 4)",
    )
    p.add_argument(
        "--zipf", type=float, default=1.1, metavar="S",
        help="zipf skew exponent of the request popularity distribution "
        "(default 1.1; higher = hotter hot set, more warm cache hits)",
    )
    p.add_argument(
        "--templates", type=int, default=24, metavar="N",
        help="distinct request bodies in the rotation (default 24)",
    )
    p.add_argument("--seed", type=int, default=1999, help="stream seed")
    p.add_argument(
        "--scale", type=int, default=48,
        help="corpus size the request templates draw blocks from",
    )
    p.add_argument(
        "--max-ops", type=int, default=64, help="per-superblock op cap"
    )
    _add_jobs_arg(p)
    p.add_argument(
        "--cache-dir", metavar="DIR",
        help="cache directory of the self-hosted server (ignored with "
        "--url; default: a temporary directory)",
    )
    p.add_argument(
        "--ledger", metavar="DIR",
        help="run-ledger directory of the self-hosted server (ignored "
        "with --url; needed for slow-request exemplar capture)",
    )
    p.add_argument(
        "--slow-threshold-ms", type=float, default=None, metavar="MS",
        help="slow-exemplar threshold of the self-hosted server "
        "(ignored with --url; 0 forces an exemplar per request)",
    )
    p.add_argument(
        "--timeout", type=float, default=60.0, metavar="S",
        help="per-request timeout in seconds (default 60)",
    )
    p.add_argument(
        "--out", metavar="PATH", help="write the load report JSON here"
    )
    p.add_argument(
        "--history", metavar="PATH",
        help="bench history JSONL to append the report to "
        "(default: the committed benchmarks/BENCH_history.jsonl)",
    )
    p.add_argument(
        "--no-history", action="store_true",
        help="do not append this run to the bench history",
    )
    p.add_argument(
        "--min-hit-rate", type=float, default=None, metavar="R",
        help="fail unless the warm cache hit-rate reaches R (0..1); "
        "CI's service-smoke gate uses this",
    )

    p = sub.add_parser(
        "export", help="convert observability artifacts to standard formats"
    )
    esub = p.add_subparsers(dest="export_command", required=True)
    ep = esub.add_parser(
        "chrome-trace",
        help="span JSONL -> Chrome trace-event JSON "
        "(load in https://ui.perfetto.dev or chrome://tracing)",
    )
    ep.add_argument("file", help="span JSONL written by --trace-out")
    ep.add_argument("--out", metavar="PATH", help="output path (default: stdout)")
    ep.add_argument(
        "--process-name", default="repro",
        help="process label shown in the timeline UI",
    )
    ep = esub.add_parser(
        "prometheus",
        help="metrics JSON -> Prometheus text exposition format",
    )
    ep.add_argument("file", help="metrics JSON written by --metrics-out")
    ep.add_argument("--out", metavar="PATH", help="output path (default: stdout)")
    ep.add_argument(
        "--prefix", default="repro", help="metric name prefix"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        out = run_command(args)
    except CommandError as exc:
        print(exc, file=sys.stderr)
        return 1
    print(out)
    return 0


#: Modules imported before a profiling capture starts: lazy imports
#: otherwise land inside the profiled window as unattributed root
#: self-time, diluting span attribution with one-off import cost.
_PROFILE_PRELOADS = (
    "repro.bounds.branch_rj",
    "repro.bounds.superblock_bounds",
    "repro.eval.figures",
    "repro.eval.report",
    "repro.eval.tables",
    "repro.perf.workers",
    "repro.schedulers.base",
    "repro.workloads.corpus",
)

#: Commands whose corpus flags the profile wrapper's ``--quick``
#: shorthand expands into (verify/bench define their own ``--quick``).
_QUICK_COMMANDS = (
    "corpus",
    "figure8",
    "report",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
)


def _preload_for_profile() -> None:
    import importlib

    for module in _PROFILE_PRELOADS:
        importlib.import_module(module)


def run_command(args) -> str:
    """Execute a parsed command and return its textual output."""
    profile_out = getattr(args, "profile_out", None)
    if profile_out:
        if getattr(args, "trace_out", None):
            raise CommandError(
                "--profile-out installs its own tracer and cannot be "
                "combined with --trace-out; use the 'profile' wrapper "
                "with --spans-out to capture both"
            )
        from repro.obs.profile import ProfileSession

        args.profile_out = None
        _preload_for_profile()
        session = ProfileSession()
        with session.capture(f"cmd.{args.command}"):
            out = _dispatch(args)
        session.report().save(profile_out)
        return "\n".join([out, f"profile report written to {profile_out}"])
    return _dispatch(args)


def _dispatch(args) -> str:
    if args.command == "corpus":
        corpus = _build_corpus(args)
        if args.out:
            corpus.save(args.out)
        stats = corpus.stats()
        lines = [f"corpus: {corpus.name}"]
        lines += [f"  {key}: {value}" for key, value in stats.items()]
        if args.out:
            lines.append(f"saved to {args.out}")
        return "\n".join(lines)

    if args.command == "schedule":
        from repro.ir.serialize import superblock_from_dict

        with open(args.file) as fh:
            sb = superblock_from_dict(json.load(fh))
        machine = machine_by_name(args.machine)
        from repro.schedulers.base import schedule as run_sched

        # The Balance engine records a decision trace; other heuristics
        # fall back to a span trace of their bound computations.
        recorder = None
        kwargs = {}
        if args.trace_out and args.heuristic in ("balance", "help"):
            from repro.obs.decision_trace import DecisionRecorder

            recorder = DecisionRecorder()
            kwargs["recorder"] = recorder
        from repro.obs import trace as trace_mod

        import time as time_mod

        with _observed(args) as (tracer, metrics, lrec), _cache_scope(
            args
        ) as rcache:
            if metrics is not None and args.heuristic in ("balance", "help"):
                kwargs["counters"] = metrics.counters
            with trace_mod.span(
                "schedule", superblock=sb.name, heuristic=args.heuristic
            ):
                t0 = time_mod.perf_counter()
                s = run_sched(sb, machine, args.heuristic, **kwargs)
                solve_s = time_mod.perf_counter() - t0
            if lrec is not None:
                lrec.record_block(
                    sb.name,
                    machine.name,
                    ops=sb.num_operations,
                    branches=sb.num_branches,
                    edges=sb.graph.num_edges,
                    wct={args.heuristic: s.wct},
                    makespan={args.heuristic: s.length},
                    solve_s=round(solve_s, 6),
                )
        lines = [
            f"{sb.name} on {machine.name} with {args.heuristic}:",
            f"  WCT = {s.wct:.4f}, length = {s.length} cycles",
        ]
        for b in sb.branches:
            lines.append(
                f"  branch {b} (p={sb.weights[b]:.3f}) issues at cycle {s.issue[b]}"
            )
        if args.gantt:
            from repro.schedulers.visualize import gantt

            lines.append("")
            lines.append(gantt(sb, machine, s))
        lines += _obs_lines(args, tracer, metrics, recorder)
        lines += _cache_lines(args, rcache)
        lines += _ledger_lines(lrec)
        return "\n".join(lines)

    if args.command == "cfg":
        from repro.cfg import form_superblocks, generate_cfg, select_traces
        from repro.schedulers.base import schedule as run_sched

        machine = machine_by_name(args.machine)
        cfg = generate_cfg(f"fn{args.seed}", seed=args.seed, segments=args.segments)
        lines = [f"CFG {cfg.name}: {len(cfg.blocks)} blocks"]
        for trace in select_traces(cfg):
            lines.append("  trace: " + " -> ".join(trace.labels))
        for sb in form_superblocks(cfg):
            s = run_sched(sb, machine, "balance")
            lines.append(
                f"  {sb.name}: {sb.num_operations} ops, "
                f"{sb.num_branches} exits, WCT={s.wct:.3f} on {machine.name}"
            )
        return "\n".join(lines)

    if args.command == "bounds":
        from repro.bounds.superblock_bounds import BoundSuite
        from repro.ir.serialize import superblock_from_dict

        with open(args.file) as fh:
            sb = superblock_from_dict(json.load(fh))
        machine = machine_by_name(args.machine)
        with _observed(args) as (tracer, metrics, lrec), _cache_scope(
            args
        ) as rcache:
            res = BoundSuite(sb, machine).compute()
            if lrec is not None:
                lrec.record_block(
                    sb.name,
                    machine.name,
                    ops=sb.num_operations,
                    branches=sb.num_branches,
                    edges=sb.graph.num_edges,
                    tightest=res.tightest,
                    bounds=dict(res.wct),
                )
        lines = [f"{sb.name} on {machine.name}:"]
        for name, wct in res.wct.items():
            mark = "  <- tightest" if wct == res.tightest else ""
            lines.append(f"  {name:3s} = {wct:.4f}{mark}")
        lines += _obs_lines(args, tracer, metrics)
        lines += _cache_lines(args, rcache)
        lines += _ledger_lines(lrec)
        return "\n".join(lines)

    if args.command.startswith("table"):
        from repro.eval import tables as tables_mod

        machines = _machines(args)
        tid = int(args.command[-1])
        jobs = args.jobs
        kwargs = {}
        with _observed(args) as (tracer, metrics, lrec), _cache_scope(
            args
        ) as rcache:
            corpus = _build_corpus(args)
            if tid in (1,):
                gp = tuple(m for m in machines if m.name.startswith("GP"))
                fs = tuple(m for m in machines if m.name.startswith("FS"))
                result = tables_mod.table1(
                    corpus,
                    gp or tables_mod.GP_MACHINES,
                    fs or tables_mod.FS_MACHINES,
                    include_triplewise=not args.no_triplewise,
                    jobs=jobs,
                    metrics=metrics,
                )
            elif tid == 6:
                result = tables_mod.table6(
                    corpus, machines[0], jobs=jobs, metrics=metrics
                )
            else:
                fn = getattr(tables_mod, f"table{tid}")
                kwargs["machines"] = machines
                kwargs["include_triplewise"] = not args.no_triplewise
                kwargs["jobs"] = jobs
                kwargs["metrics"] = metrics
                result = fn(corpus, **kwargs)
        out = [result.render()] + _obs_lines(args, tracer, metrics)
        out += _cache_lines(args, rcache)
        out += _ledger_lines(lrec)
        return "\n".join(out)

    if args.command == "figure8":
        from repro.eval.figures import figure8

        machine = machine_by_name(args.machine)
        with _observed(args) as (tracer, metrics, lrec), _cache_scope(
            args
        ) as rcache:
            corpus = _build_corpus(args).by_benchmark("gcc")
            rendered = figure8(
                corpus, machine, jobs=args.jobs, metrics=metrics
            ).render()
        return "\n".join(
            [rendered]
            + _obs_lines(args, tracer, metrics)
            + _cache_lines(args, rcache)
            + _ledger_lines(lrec)
        )

    if args.command == "examples":
        from repro.eval.figures import figure_schedules

        return figure_schedules()

    if args.command == "report":
        from repro.eval.report import full_report
        from repro.obs.logsetup import setup_logging
        from repro.workloads.corpus import specint95_corpus

        setup_logging()
        with _observed(args) as (tracer, metrics, lrec), _cache_scope(
            args
        ) as rcache:
            corpus = _build_corpus(args)
            small = specint95_corpus(
                scale=max(8, args.scale // 2),
                seed=args.seed,
                max_ops=args.max_ops,
            )
            text = full_report(
                corpus,
                small,
                include_triplewise=not args.no_triplewise,
                include_costs=not args.no_costs,
                jobs=args.jobs,
                metrics=metrics,
            )
        extra = (
            _obs_lines(args, tracer, metrics)
            + _cache_lines(args, rcache)
            + _ledger_lines(lrec)
        )
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
            return "\n".join([f"report written to {args.out}"] + extra)
        return "\n".join([text] + extra)

    if args.command == "trace":
        from repro.obs.decision_trace import (
            decision_trace_to_dot,
            load_jsonl,
            render_decision_trace,
        )
        from repro.obs.trace import render_spans

        try:
            events = load_jsonl(args.file)
        except FileNotFoundError:
            raise CommandError(f"trace file not found: {args.file}") from None
        except ValueError as exc:
            # covers truncated/corrupt JSONL and non-object lines, with
            # the offending line number in the message
            raise CommandError(str(exc)) from None
        if not events:
            raise CommandError(
                f"{args.file} contains no events (empty trace — did the "
                "traced command run any spans?)"
            )
        span_events = [e for e in events if e.get("event") == "span"]
        for e in span_events:
            missing = [k for k in ("name", "t0", "dur") if k not in e]
            if missing:
                raise CommandError(
                    f"{args.file}: span event missing required key(s) "
                    f"{', '.join(missing)} — damaged or incompatible "
                    "trace file"
                )
        decision_events = [e for e in events if e.get("event") != "span"]
        if args.dot:
            if not decision_events:
                raise CommandError(
                    "--dot requires a decision trace (schedule --trace-out "
                    "with the balance/help heuristic)"
                )
            return decision_trace_to_dot(decision_events)
        parts = []
        if decision_events:
            parts.append(render_decision_trace(decision_events))
        if span_events:
            parts.append(render_spans(span_events))
        return "\n\n".join(parts)

    if args.command == "cache":
        import os

        from repro import cache as result_cache

        directory = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
        if not directory:
            raise CommandError(
                "no cache directory: pass --cache-dir or set REPRO_CACHE_DIR"
            )
        cache = result_cache.ResultCache(directory)
        if args.cache_command == "stats":
            summary = cache.summary()
            return "\n".join(f"{k}: {v}" for k, v in summary.items())
        if args.cache_command == "gc":
            if args.max_mb is None and args.max_age_days is None:
                raise CommandError(
                    "cache gc needs --max-mb and/or --max-age-days"
                )
            result = cache.gc(
                max_bytes=(
                    int(args.max_mb * 1024 * 1024)
                    if args.max_mb is not None
                    else None
                ),
                max_age_s=(
                    args.max_age_days * 86400.0
                    if args.max_age_days is not None
                    else None
                ),
            )
            lines = [
                f"removed {result.removed} entries "
                f"({result.bytes_freed} bytes)",
                f"kept {result.kept} entries ({result.bytes_kept} bytes)",
            ]
            lines += [f"error: {err}" for err in result.errors]
            return "\n".join(lines)
        assert args.cache_command == "clear"
        removed = cache.clear()
        return f"removed {removed} entries from {directory}"

    if args.command == "verify":
        from dataclasses import replace as _dc_replace

        from repro.verify import FAMILIES, VerifyConfig, render_report, run_verify

        config = VerifyConfig.quick() if args.quick else VerifyConfig()
        overrides = {}
        if not args.quick or args.fuzz != 200:
            overrides["fuzz"] = args.fuzz
        if args.family:
            unknown = [f for f in args.family if f not in FAMILIES]
            if unknown:
                raise CommandError(
                    f"unknown oracle family {unknown[0]!r}; "
                    f"choose from: {', '.join(FAMILIES)}"
                )
            overrides["families"] = tuple(dict.fromkeys(args.family))
        if args.no_minimize:
            overrides["minimize"] = False
        config = _dc_replace(config, seed=args.seed, **overrides)
        with _observed(args) as (tracer, metrics, lrec):
            report = run_verify(config)
            if lrec is not None:
                lrec.extra["verify"] = {
                    "ok": report.ok,
                    "cases": report.cases,
                    "checked_exact": report.checked_exact,
                    "findings": len(report.findings),
                    "families": list(config.families),
                    "seed": config.seed,
                }
        lines = (
            [render_report(report)]
            + _obs_lines(args, tracer, metrics)
            + _ledger_lines(lrec)
        )
        if args.findings_out:
            with open(args.findings_out, "w") as fh:
                json.dump(
                    {
                        "ok": report.ok,
                        "cases": report.cases,
                        "checked_exact": report.checked_exact,
                        "elapsed_s": report.elapsed_s,
                        "seed": config.seed,
                        "families": list(config.families),
                        "findings": [f.to_dict() for f in report.findings],
                    },
                    fh,
                    indent=2,
                )
                fh.write("\n")
            lines.append(f"findings written to {args.findings_out}")
        if not report.ok:
            raise CommandError("\n".join(lines))
        return "\n".join(lines)

    if args.command == "bench":
        from repro.obs import trend as trend_mod
        from repro.perf import bench as bench_mod

        history_path = args.history or str(trend_mod.DEFAULT_HISTORY)
        if args.compare:
            payloads = []
            for path in args.compare:
                try:
                    with open(path) as fh:
                        payloads.append(json.load(fh))
                except FileNotFoundError:
                    raise CommandError(
                        f"bench file not found: {path}"
                    ) from None
                except json.JSONDecodeError as exc:
                    raise CommandError(
                        f"{path} is not valid JSON: {exc}"
                    ) from None
            comparison = trend_mod.compare_runs(
                payloads[1], payloads[0], threshold=args.tolerance
            )
            rendered = trend_mod.render_comparison(comparison)
            if not comparison.ok:
                raise CommandError(rendered)
            return rendered
        if args.trend:
            try:
                records = trend_mod.load_history(history_path)
            except FileNotFoundError:
                raise CommandError(
                    f"no bench history at {history_path} — run "
                    "'python -m repro bench' first"
                ) from None
            except ValueError as exc:
                raise CommandError(str(exc)) from None
            return trend_mod.render_trend(records, label=args.label)

        config = (
            bench_mod.BenchConfig.quick()
            if args.quick
            else bench_mod.BenchConfig()
        )
        if args.no_scaling:
            config.include_scaling = False
        from contextlib import ExitStack

        from repro.obs import ledger as ledger_mod
        from repro.perf.runner import reset_dispatch_stats

        ledger_dir = _resolve_ledger_dir(args)
        lrec = None
        with ExitStack() as stack:
            if ledger_dir is not None:
                reset_dispatch_stats()
                lrec = ledger_mod.RunRecorder(
                    "bench",
                    argv=sys.argv[1:],
                    args=ledger_mod.args_payload(args),
                    directory=ledger_dir,
                )
                stack.enter_context(ledger_mod.installed(lrec))
            result = bench_mod.run_bench(config)
        lines = [bench_mod.render_metrics(result)]
        if lrec is not None:
            lrec.extra["bench"] = {
                name: entry["value"]
                for name, entry in trend_mod.metric_entries(
                    result.metrics
                ).items()
            }
            counters = (result.observability or {}).get("counters")
            lrec.finalize(counters=counters)
            lines += _ledger_lines(lrec)
        if args.out:
            bench_mod.save_metrics(result, args.out)
            lines.append(f"metrics written to {args.out}")
        if args.check is not None:
            if args.quick:
                raise CommandError(
                    "--quick runs a smaller corpus whose metrics are not "
                    "comparable to the committed baseline; drop --quick "
                    "when gating with --check"
                )
            baseline = args.check or str(bench_mod.DEFAULT_BASELINE)
            try:
                baseline_metrics = bench_mod.load_baseline(baseline)
            except FileNotFoundError:
                raise CommandError(f"baseline not found: {baseline}") from None
            except json.JSONDecodeError as exc:
                raise CommandError(
                    f"baseline {baseline} is not valid JSON: {exc}"
                ) from None
            failures = bench_mod.compare_metrics(
                result.metrics, baseline_metrics, args.tolerance
            ) + bench_mod.check_speedup_floors(result.metrics)
            if failures:
                message = f"PERF REGRESSION vs {baseline}:\n" + "\n".join(
                    f"  {line}" for line in failures
                )
                # Quote each offending metric's recent trajectory so the
                # failure message says whether this is a cliff or a drift.
                names = tuple(
                    dict.fromkeys(line.split(":", 1)[0] for line in failures)
                )
                try:
                    history = trend_mod.load_history(history_path)
                except (FileNotFoundError, ValueError):
                    history = []
                if history:
                    message += "\nrecent history:\n" + "\n".join(
                        trend_mod.metric_trend_lines(history, names)
                    )
                raise CommandError(message)
            lines.append(
                f"all headline metrics within {100 * args.tolerance:.0f}% "
                f"of {baseline}"
            )
        if not args.no_history:
            payload: dict = dict(result.metrics)
            if result.observability:
                payload["observability"] = result.observability
            record = trend_mod.make_record(
                payload,
                label="quick" if args.quick else "full",
                config={
                    "seed": config.seed,
                    "scale": config.scale,
                    "max_ops": config.max_ops,
                    "repeats": config.repeats,
                },
            )
            trend_mod.append_record(record, history_path)
            lines.append(f"history appended to {history_path}")
        return "\n".join(lines)

    if args.command == "obs":
        import os

        from repro.obs import anomaly as anomaly_mod
        from repro.obs import ledger as ledger_mod

        directory = args.ledger or os.environ.get("REPRO_LEDGER_DIR")
        if not directory:
            raise CommandError(
                "no ledger directory: pass --ledger or set REPRO_LEDGER_DIR"
            )
        path = ledger_mod.ledger_path(directory)
        try:
            records = ledger_mod.load_ledger(path)
        except FileNotFoundError:
            raise CommandError(
                f"no ledger at {path} — run any command with "
                f"--ledger {directory} first"
            ) from None
        except ValueError as exc:
            # covers corrupt/truncated lines, missing record keys, and
            # schema-version skew, with the offending line number
            raise CommandError(str(exc)) from None
        except OSError as exc:
            # e.g. the ledger "directory" is a regular file
            # (NotADirectoryError) or is unreadable
            raise CommandError(
                f"cannot read ledger at {path}: {exc}"
            ) from None
        if not records:
            raise CommandError(f"{path} contains no runs")

        def _resolve(ref: str):
            try:
                return ledger_mod.resolve_run(records, ref)
            except ValueError as exc:
                raise CommandError(str(exc)) from None

        if args.obs_command == "summary":
            return ledger_mod.render_summary(records, last=args.last)
        if args.obs_command == "blocks":
            return ledger_mod.render_blocks(
                _resolve(args.run), top=args.top, by=args.by
            )
        if args.obs_command == "anomalies":
            record = _resolve(args.run)
            found = anomaly_mod.find_anomalies(
                records, record, z_threshold=args.z
            )
            return anomaly_mod.render_anomalies(found)
        if args.obs_command == "diff":
            return ledger_mod.render_diff(
                _resolve(args.run_a), _resolve(args.run_b)
            )
        if args.obs_command == "slo":
            from repro.obs.slo import Objective, SLOTracker

            serves = [r for r in records if r.get("command") == "serve"]
            if not serves:
                raise CommandError(
                    f"{path} has no 'serve' records — point --ledger at a "
                    "service ledger"
                )
            try:
                objectives = (
                    Objective(
                        name="latency",
                        kind="latency",
                        target=args.latency_target,
                        threshold_s=args.latency_ms / 1000.0,
                    ),
                    Objective(
                        name="availability",
                        kind="availability",
                        target=args.availability_target,
                    ),
                )
            except ValueError as exc:
                raise CommandError(f"obs slo: {exc}") from None
            tracker = SLOTracker(objectives)
            # The ledger only records *successful* requests (error paths
            # never finalize a run record), so replay measures the
            # latency objective; availability burn stays 0 here and is
            # read live from the service's own /metrics instead.
            for record in serves:
                tracker.record(
                    ok=True,
                    latency_s=float(record.get("wall_seconds", 0.0)),
                    t=float(record.get("timestamp", 0.0)),
                )
            at = tracker.last_recorded
            if args.json:
                out_text = json.dumps(
                    tracker.as_dict(t=at), indent=2, sort_keys=True
                )
            else:
                out_text = (
                    f"{len(serves)} serve record(s) replayed "
                    f"(windows end at the newest record)\n"
                    + tracker.render(t=at)
                )
            if args.max_burn is not None:
                worst = max(
                    (
                        (w["burn_rate"], f"{o['name']}/{label}")
                        for o in tracker.as_dict(t=at)["objectives"]
                        for label, w in o["windows"].items()
                    ),
                    default=(0.0, "-"),
                )
                if worst[0] > args.max_burn:
                    raise CommandError(
                        f"{out_text}\nobs slo: burn rate {worst[0]:.2f} on "
                        f"{worst[1]} exceeds --max-burn {args.max_burn}"
                    )
            return out_text
        if args.obs_command == "slowest":
            out_lines = [ledger_mod.render_slowest(records, top=args.top)]
            if args.trace_out:
                from repro.obs.export import write_chrome_trace

                exemplars = ledger_mod.slow_exemplars(records)
                traced = next(
                    (e for e in exemplars if "trace" in e["exemplar"]), None
                )
                if traced is None:
                    raise CommandError(
                        "obs slowest: no exemplar carries a trace (the "
                        "service records one when a ledger is enabled)"
                    )
                write_chrome_trace(traced["exemplar"]["trace"], args.trace_out)
                out_lines.append(
                    f"slowest traced request "
                    f"{traced['exemplar'].get('request_id', '?')} "
                    f"written to {args.trace_out}"
                )
            return "\n".join(out_lines)
        assert args.obs_command == "dashboard"
        from repro.obs import dashboard as dashboard_mod

        out = dashboard_mod.write_dashboard(
            records, args.out, title=args.title, top=args.top
        )
        return f"dashboard written to {out} ({len(records)} run(s))"

    if args.command == "profile":
        from repro.obs.profile import ProfileConfig, ProfileSession

        wrapped = [a for a in args.wrapped if a != "--"]
        if not wrapped:
            raise CommandError(
                "profile: nothing to profile — give a command, e.g. "
                "'python -m repro profile table1 --quick'"
            )
        if wrapped[0] == "profile":
            raise CommandError("profile cannot wrap itself")
        for flag in ("--trace-out", "--profile-out"):
            if any(a == flag or a.startswith(flag + "=") for a in wrapped):
                raise CommandError(
                    f"the wrapped command may not use {flag} (profile "
                    "installs its own tracer); use 'profile --spans-out "
                    "PATH' to keep the span JSONL"
                )
        if wrapped[0] in _QUICK_COMMANDS and "--quick" in wrapped:
            idx = wrapped.index("--quick")
            wrapped[idx:idx + 1] = ["--scale", "12", "--max-ops", "32"]
        try:
            inner = build_parser().parse_args(wrapped)
        except SystemExit:
            raise CommandError(
                "profile: could not parse the wrapped command "
                f"{' '.join(wrapped)!r}"
            ) from None
        try:
            config = ProfileConfig(
                engine=args.engine,
                interval_s=args.interval_ms / 1e3,
                top=args.top,
            )
        except ValueError as exc:
            raise CommandError(str(exc)) from None
        _preload_for_profile()
        session = ProfileSession(config)
        with session.capture(f"cmd.{inner.command}"):
            inner_out = run_command(inner)
        report = session.report()
        lines = [inner_out, "", report.render(top=args.top)]
        if args.spans_out:
            session.tracer.write_jsonl(args.spans_out)
            lines.append(f"spans written to {args.spans_out}")
        if args.out:
            report.save(args.out)
            lines.append(f"profile report written to {args.out}")
        return "\n".join(lines)

    if args.command == "serve":
        from repro.service.app import ServiceConfig
        from repro.service.protocol import (
            DEFAULT_MAX_BLOCKS,
            DEFAULT_MAX_BODY_BYTES,
        )
        from repro.service.server import ServiceServer

        config = ServiceConfig(
            host=args.host,
            port=args.port,
            jobs=args.jobs,
            cache_dir=_resolve_cache_dir(args),
            ledger_dir=_resolve_ledger_dir(args),
            max_blocks=(
                args.max_blocks
                if args.max_blocks is not None
                else DEFAULT_MAX_BLOCKS
            ),
            max_body_bytes=(
                int(args.max_body_mb * 1024 * 1024)
                if args.max_body_mb is not None
                else DEFAULT_MAX_BODY_BYTES
            ),
            slow_threshold_ms=args.slow_threshold_ms,
            slo_latency_ms=args.slo_latency_ms,
            slo_latency_target=args.slo_latency_target,
            slo_availability_target=args.slo_availability_target,
        )
        server = ServiceServer(config)
        try:
            server.bind()
        except OSError as exc:
            raise CommandError(
                f"serve: cannot bind {config.host}:{config.port}: {exc}"
            ) from None
        # Announce readiness before blocking: CI polls /healthz, humans
        # read this line.
        print(
            f"repro serve listening on {server.url} "
            f"(jobs={config.jobs}, "
            f"cache={'on' if config.cache_dir else 'off'}, "
            f"ledger={'on' if config.ledger_dir else 'off'})",
            flush=True,
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
        counters = server.service.registry.counters.as_dict()
        return (
            f"repro serve stopped after "
            f"{counters.get('service.requests', 0)} request(s)"
        )

    if args.command == "loadgen":
        from repro.obs import trend as trend_mod
        from repro.service.loadgen import LoadgenConfig, run_loadgen

        config = LoadgenConfig(
            requests=args.requests,
            concurrency=args.concurrency,
            zipf=args.zipf,
            seed=args.seed,
            url=args.url,
            templates=args.templates,
            scale=args.scale,
            max_ops=args.max_ops,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            ledger_dir=args.ledger,
            slow_threshold_ms=args.slow_threshold_ms,
            timeout_s=args.timeout,
        )
        try:
            report = run_loadgen(config)
        except OSError as exc:
            raise CommandError(f"loadgen: {exc}") from None
        lines = [report.render()]
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            lines.append(f"report written to {args.out}")
        if not args.no_history:
            history_path = args.history or str(trend_mod.DEFAULT_HISTORY)
            record = trend_mod.make_record(
                report.history_payload(),
                label="loadgen",
                config={
                    "requests": config.requests,
                    "concurrency": config.concurrency,
                    "zipf": config.zipf,
                    "seed": config.seed,
                    "templates": config.templates,
                    "self_hosted": config.url is None,
                },
            )
            trend_mod.append_record(record, history_path)
            lines.append(f"history appended to {history_path}")
        if not report.ok:
            raise CommandError(
                "\n".join(lines + [f"loadgen: {report.failed} request(s) failed"])
            )
        if (
            args.min_hit_rate is not None
            and report.hit_rate < args.min_hit_rate
        ):
            raise CommandError(
                "\n".join(
                    lines
                    + [
                        f"loadgen: warm hit-rate {report.hit_rate:.3f} is "
                        f"below the --min-hit-rate floor "
                        f"{args.min_hit_rate:.3f}"
                    ]
                )
            )
        return "\n".join(lines)

    if args.command == "export":
        from repro.obs import export as export_mod

        if args.export_command == "chrome-trace":
            from repro.obs.decision_trace import load_jsonl

            try:
                events = load_jsonl(args.file)
            except FileNotFoundError:
                raise CommandError(
                    f"trace file not found: {args.file}"
                ) from None
            except ValueError as exc:
                raise CommandError(str(exc)) from None
            try:
                doc = export_mod.spans_to_chrome_trace(
                    events, process_name=args.process_name
                )
            except ValueError as exc:
                raise CommandError(f"{args.file}: {exc}") from None
            problems = export_mod.validate_chrome_trace(doc)
            if problems:
                raise CommandError(
                    "exported document failed trace-event validation:\n"
                    + "\n".join(f"  {p}" for p in problems)
                )
            if args.out:
                export_mod.write_chrome_trace(doc, args.out)
                spans = sum(
                    1 for e in doc["traceEvents"] if e.get("ph") == "X"
                )
                return (
                    f"chrome trace written to {args.out} ({spans} spans; "
                    "load it in https://ui.perfetto.dev)"
                )
            return json.dumps(doc, indent=1, sort_keys=True)

        assert args.export_command == "prometheus"
        try:
            with open(args.file) as fh:
                data = json.load(fh)
        except FileNotFoundError:
            raise CommandError(
                f"metrics file not found: {args.file}"
            ) from None
        except json.JSONDecodeError as exc:
            raise CommandError(f"{args.file} is not valid JSON: {exc}") from None
        if not isinstance(data, dict) or not any(
            key in data for key in ("counters", "timers", "gauges")
        ):
            raise CommandError(
                f"{args.file} does not look like a --metrics-out dump "
                "(expected counters/timers/gauges keys)"
            )
        text = export_mod.metrics_to_prometheus(data, prefix=args.prefix)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text)
            return f"prometheus metrics written to {args.out}"
        return text.rstrip("\n")

    raise ValueError(f"unknown command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
