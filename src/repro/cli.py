"""Command line interface: ``python -m repro <command>`` / ``balance-sched``.

Commands:

* ``corpus``   — generate and save (or summarize) a synthetic corpus.
* ``schedule`` — schedule one superblock file with a chosen heuristic.
* ``bounds``   — print every lower bound for one superblock file.
* ``table1`` .. ``table7`` — regenerate a paper table.
* ``figure8``  — regenerate the Figure 8 CDF.
* ``examples`` — print the Figure 1-4 example schedules.
* ``bench``    — run the perf smoke suite / regression gate.

Corpus-sweep commands accept ``--jobs N`` to fan the (superblock,
machine) work units out over N worker processes; outputs are
byte-identical to the serial run.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.machine.machine import PAPER_MACHINES, machine_by_name


class CommandError(Exception):
    """A command failed; the message is printed and the CLI exits 1."""


def _add_corpus_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", type=int, default=120,
        help="total superblocks in the synthetic corpus (default 120)",
    )
    parser.add_argument("--seed", type=int, default=1999, help="corpus seed")
    parser.add_argument(
        "--max-ops", type=int, default=150, help="per-superblock op cap"
    )


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the corpus fan-out "
        "(1 = serial, 0 = all CPUs); results are identical for any N",
    )


def _build_corpus(args):
    from repro.workloads.corpus import specint95_corpus

    return specint95_corpus(
        scale=args.scale, seed=args.seed, max_ops=args.max_ops
    )


def _machines(args):
    if args.machines == "all":
        return PAPER_MACHINES
    return tuple(machine_by_name(n) for n in args.machines.split(","))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="balance-sched",
        description=(
            "Reproduction of 'Balance Scheduling: Weighting Branch "
            "Tradeoffs in Superblocks' (MICRO 1999)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("corpus", help="generate a synthetic SPECint95 corpus")
    _add_corpus_args(p)
    p.add_argument("--out", help="write corpus to this JSONL file")

    p = sub.add_parser("schedule", help="schedule a superblock JSON file")
    p.add_argument("file", help="superblock JSON (see repro.ir.serialize)")
    p.add_argument("--machine", default="GP2")
    p.add_argument("--heuristic", default="balance")
    p.add_argument(
        "--gantt", action="store_true", help="render an ASCII Gantt chart"
    )

    p = sub.add_parser(
        "cfg", help="generate a CFG, select traces, form superblocks"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--segments", type=int, default=6)
    p.add_argument("--machine", default="FS6")

    p = sub.add_parser("bounds", help="print all bounds for a superblock file")
    p.add_argument("file")
    p.add_argument("--machine", default="GP2")

    for tid in range(1, 8):
        p = sub.add_parser(f"table{tid}", help=f"regenerate paper Table {tid}")
        _add_corpus_args(p)
        p.add_argument(
            "--machines", default="all",
            help="comma-separated machine names or 'all'",
        )
        p.add_argument(
            "--no-triplewise", action="store_true",
            help="skip the (expensive) Triplewise bound",
        )
        _add_jobs_arg(p)

    p = sub.add_parser("figure8", help="regenerate the Figure 8 CDF (gcc, FS4)")
    _add_corpus_args(p)
    p.add_argument("--machine", default="FS4")
    _add_jobs_arg(p)

    sub.add_parser("examples", help="print the Figure 1-4 example schedules")

    p = sub.add_parser(
        "report", help="run the full evaluation and emit a markdown report"
    )
    _add_corpus_args(p)
    p.add_argument("--out", help="write the report to this file")
    p.add_argument("--no-triplewise", action="store_true")
    p.add_argument(
        "--no-costs", action="store_true",
        help="skip the slow cost tables (2 and 6)",
    )
    _add_jobs_arg(p)

    p = sub.add_parser(
        "bench",
        help="run the perf smoke suite (hot-path and end-to-end metrics)",
    )
    p.add_argument("--quick", action="store_true", help="reduced configuration")
    p.add_argument(
        "--no-scaling", action="store_true", help="skip the --jobs scaling scan"
    )
    p.add_argument("--out", help="write metrics JSON (BENCH schema) here")
    p.add_argument(
        "--check", nargs="?", const="", metavar="BASELINE",
        help="fail when a headline metric regresses >tolerance vs BASELINE "
        "(default: the committed benchmarks/BENCH_1.json)",
    )
    p.add_argument("--tolerance", type=float, default=0.20)

    args = parser.parse_args(argv)
    try:
        out = run_command(args)
    except CommandError as exc:
        print(exc, file=sys.stderr)
        return 1
    print(out)
    return 0


def run_command(args) -> str:
    """Execute a parsed command and return its textual output."""
    if args.command == "corpus":
        corpus = _build_corpus(args)
        if args.out:
            corpus.save(args.out)
        stats = corpus.stats()
        lines = [f"corpus: {corpus.name}"]
        lines += [f"  {key}: {value}" for key, value in stats.items()]
        if args.out:
            lines.append(f"saved to {args.out}")
        return "\n".join(lines)

    if args.command == "schedule":
        from repro.ir.serialize import superblock_from_dict
        import json

        with open(args.file) as fh:
            sb = superblock_from_dict(json.load(fh))
        machine = machine_by_name(args.machine)
        from repro.schedulers.base import schedule as run_sched

        s = run_sched(sb, machine, args.heuristic)
        lines = [
            f"{sb.name} on {machine.name} with {args.heuristic}:",
            f"  WCT = {s.wct:.4f}, length = {s.length} cycles",
        ]
        for b in sb.branches:
            lines.append(
                f"  branch {b} (p={sb.weights[b]:.3f}) issues at cycle {s.issue[b]}"
            )
        if args.gantt:
            from repro.schedulers.visualize import gantt

            lines.append("")
            lines.append(gantt(sb, machine, s))
        return "\n".join(lines)

    if args.command == "cfg":
        from repro.cfg import form_superblocks, generate_cfg, select_traces
        from repro.schedulers.base import schedule as run_sched

        machine = machine_by_name(args.machine)
        cfg = generate_cfg(f"fn{args.seed}", seed=args.seed, segments=args.segments)
        lines = [f"CFG {cfg.name}: {len(cfg.blocks)} blocks"]
        for trace in select_traces(cfg):
            lines.append("  trace: " + " -> ".join(trace.labels))
        for sb in form_superblocks(cfg):
            s = run_sched(sb, machine, "balance")
            lines.append(
                f"  {sb.name}: {sb.num_operations} ops, "
                f"{sb.num_branches} exits, WCT={s.wct:.3f} on {machine.name}"
            )
        return "\n".join(lines)

    if args.command == "bounds":
        from repro.bounds.superblock_bounds import BoundSuite
        from repro.ir.serialize import superblock_from_dict
        import json

        with open(args.file) as fh:
            sb = superblock_from_dict(json.load(fh))
        machine = machine_by_name(args.machine)
        res = BoundSuite(sb, machine).compute()
        lines = [f"{sb.name} on {machine.name}:"]
        for name, wct in res.wct.items():
            mark = "  <- tightest" if wct == res.tightest else ""
            lines.append(f"  {name:3s} = {wct:.4f}{mark}")
        return "\n".join(lines)

    if args.command.startswith("table"):
        from repro.eval import tables as tables_mod

        corpus = _build_corpus(args)
        machines = _machines(args)
        tid = int(args.command[-1])
        jobs = args.jobs
        kwargs = {}
        if tid in (1,):
            gp = tuple(m for m in machines if m.name.startswith("GP"))
            fs = tuple(m for m in machines if m.name.startswith("FS"))
            result = tables_mod.table1(
                corpus,
                gp or tables_mod.GP_MACHINES,
                fs or tables_mod.FS_MACHINES,
                include_triplewise=not args.no_triplewise,
                jobs=jobs,
            )
        elif tid == 6:
            result = tables_mod.table6(corpus, machines[0], jobs=jobs)
        else:
            fn = getattr(tables_mod, f"table{tid}")
            kwargs["machines"] = machines
            kwargs["include_triplewise"] = not args.no_triplewise
            kwargs["jobs"] = jobs
            result = fn(corpus, **kwargs)
        return result.render()

    if args.command == "figure8":
        from repro.eval.figures import figure8

        corpus = _build_corpus(args).by_benchmark("gcc")
        machine = machine_by_name(args.machine)
        return figure8(corpus, machine, jobs=args.jobs).render()

    if args.command == "examples":
        from repro.eval.figures import figure_schedules

        return figure_schedules()

    if args.command == "report":
        from repro.eval.report import full_report
        from repro.workloads.corpus import specint95_corpus

        corpus = _build_corpus(args)
        small = specint95_corpus(
            scale=max(8, args.scale // 2), seed=args.seed, max_ops=args.max_ops
        )
        text = full_report(
            corpus,
            small,
            include_triplewise=not args.no_triplewise,
            include_costs=not args.no_costs,
            jobs=args.jobs,
        )
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
            return f"report written to {args.out}"
        return text

    if args.command == "bench":
        from repro.perf import bench as bench_mod

        config = (
            bench_mod.BenchConfig.quick()
            if args.quick
            else bench_mod.BenchConfig()
        )
        if args.no_scaling:
            config.include_scaling = False
        result = bench_mod.run_bench(config)
        lines = [bench_mod.render_metrics(result)]
        if args.out:
            bench_mod.save_metrics(result, args.out)
            lines.append(f"metrics written to {args.out}")
        if args.check is not None:
            if args.quick:
                raise CommandError(
                    "--quick runs a smaller corpus whose metrics are not "
                    "comparable to the committed baseline; drop --quick "
                    "when gating with --check"
                )
            baseline = args.check or str(bench_mod.DEFAULT_BASELINE)
            try:
                baseline_metrics = bench_mod.load_baseline(baseline)
            except FileNotFoundError:
                raise CommandError(f"baseline not found: {baseline}") from None
            except json.JSONDecodeError as exc:
                raise CommandError(
                    f"baseline {baseline} is not valid JSON: {exc}"
                ) from None
            failures = bench_mod.compare_metrics(
                result.metrics, baseline_metrics, args.tolerance
            )
            if failures:
                raise CommandError(
                    f"PERF REGRESSION vs {baseline}:\n"
                    + "\n".join(f"  {line}" for line in failures)
                )
            lines.append(
                f"all headline metrics within {100 * args.tolerance:.0f}% "
                f"of {baseline}"
            )
        return "\n".join(lines)

    raise ValueError(f"unknown command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
