"""Corpora: named collections of superblocks with aggregate statistics.

A :class:`Corpus` stands in for the paper's 6615-superblock SPECint95
input. Standard corpora are built by :func:`specint95_corpus` with a size
knob (``scale``); tests use tiny corpora, the benchmark harnesses use
medium ones, and ``scale`` can be raised toward paper size when runtime
permits.
"""

from __future__ import annotations

import json
import statistics
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.ir.serialize import superblock_from_dict, superblock_to_dict
from repro.ir.superblock import Superblock
from repro.workloads.generator import generate_superblock
from repro.workloads.profiles import SPECINT95_PROFILES, BenchmarkProfile


@dataclass
class Corpus:
    """An ordered collection of superblocks."""

    name: str
    superblocks: list[Superblock] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.superblocks)

    def __iter__(self) -> Iterator[Superblock]:
        return iter(self.superblocks)

    def __getitem__(self, idx: int) -> Superblock:
        return self.superblocks[idx]

    def by_benchmark(self, benchmark: str) -> "Corpus":
        """Sub-corpus of one SPECint95 program (matched on name prefix)."""
        prefix = benchmark.lower() + "."
        return Corpus(
            name=f"{self.name}:{benchmark}",
            superblocks=[
                sb for sb in self.superblocks if sb.name.startswith(prefix)
            ],
        )

    def stats(self) -> dict[str, float]:
        """Structural summary used in reports and tests."""
        ops = [sb.num_operations for sb in self.superblocks]
        branches = [sb.num_branches for sb in self.superblocks]
        return {
            "superblocks": len(self.superblocks),
            "total_ops": sum(ops),
            "mean_ops": statistics.fmean(ops) if ops else 0.0,
            "median_ops": statistics.median(ops) if ops else 0.0,
            "max_ops": max(ops, default=0),
            "mean_branches": statistics.fmean(branches) if branches else 0.0,
            "max_branches": max(branches, default=0),
        }

    # -- worker transfer ------------------------------------------------
    def payload(self) -> list[dict]:
        """JSON-compatible worker-transfer form of every superblock.

        This is what :mod:`repro.perf.workers` ships to evaluation worker
        processes (once per worker, via the pool initializer);
        :meth:`from_payload` reverses it.
        """
        from repro.ir.serialize import superblock_to_dict

        return [superblock_to_dict(sb) for sb in self.superblocks]

    @classmethod
    def from_payload(
        cls, name: str, entries: list[dict], validate: bool = False
    ) -> "Corpus":
        """Rebuild a corpus from :meth:`payload` output.

        Validation defaults to off: payloads are produced by this library
        from already-validated superblocks, and the workers are on the
        hot path.
        """
        from repro.ir.serialize import superblock_from_dict

        return cls(
            name=name,
            superblocks=[
                superblock_from_dict(entry, validate=validate)
                for entry in entries
            ],
        )

    # -- persistence ----------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the corpus as JSON Lines (one superblock per line)."""
        path = Path(path)
        with path.open("w") as fh:
            fh.write(json.dumps({"corpus": self.name}) + "\n")
            for sb in self.superblocks:
                fh.write(json.dumps(superblock_to_dict(sb)) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "Corpus":
        """Read a corpus written by :meth:`save`."""
        path = Path(path)
        with path.open() as fh:
            header = json.loads(fh.readline())
            superblocks = [
                superblock_from_dict(json.loads(line))
                for line in fh
                if line.strip()
            ]
        return cls(name=header.get("corpus", path.stem), superblocks=superblocks)


def specint95_corpus(
    scale: int = 240,
    seed: int = 1999,
    max_ops: int = 150,
    profiles: tuple[BenchmarkProfile, ...] = SPECINT95_PROFILES,
) -> Corpus:
    """Build the synthetic SPECint95 corpus.

    Args:
        scale: total number of superblocks across all eight programs
            (the paper used 6615; the default trades fidelity for Python
            runtimes — raise it for paper-scale runs).
        seed: corpus seed; same seed => identical corpus.
        max_ops: per-superblock operation cap.
    """
    if scale < len(profiles):
        raise ValueError(
            f"scale={scale} is below the number of benchmarks ({len(profiles)})"
        )
    superblocks: list[Superblock] = []
    for profile in profiles:
        count = max(1, round(scale * profile.share))
        for index in range(count):
            superblocks.append(
                generate_superblock(profile, index, seed=seed, max_ops=max_ops)
            )
    return Corpus(name=f"specint95(scale={scale},seed={seed})", superblocks=superblocks)
