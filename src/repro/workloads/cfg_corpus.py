"""Corpora derived through the full CFG -> superblock formation pipeline.

Where :func:`repro.workloads.corpus.specint95_corpus` synthesizes
superblock dependence graphs directly, this module generates profiled
*control-flow graphs* of register instructions and runs the classic
formation pass (trace selection + tail duplication) over them — the same
route the paper's inputs took through the LEGO compiler. The resulting
superblocks have organically correlated dataflow, memory ordering edges,
store speculation barriers, and profile-derived exit probabilities.
"""

from __future__ import annotations

from repro.cfg.formation import form_superblocks
from repro.cfg.gencfg import generate_cfg
from repro.workloads.corpus import Corpus


def cfg_corpus(
    functions: int = 24,
    seed: int = 1999,
    segments: int = 6,
    mean_block_len: float = 5.0,
    min_prob: float = 0.5,
    tail_duplicate: bool = True,
) -> Corpus:
    """Generate a corpus by forming superblocks from synthetic CFGs.

    Args:
        functions: number of synthetic functions (each contributes one or
            more traces plus duplicated tails).
        segments: structured segments per function.
    """
    superblocks = []
    for f in range(functions):
        cfg = generate_cfg(
            f"fn{f:03d}",
            seed=seed,
            segments=segments,
            mean_block_len=mean_block_len,
        )
        superblocks.extend(
            form_superblocks(cfg, min_prob=min_prob, tail_duplicate=tail_duplicate)
        )
    return Corpus(
        name=f"cfg(functions={functions},seed={seed})", superblocks=superblocks
    )
