"""Per-benchmark generation profiles for the synthetic SPECint95 corpus.

The paper's superblocks come from the IMPACT -> Elcor -> LEGO toolchain
over SPECint95 (6615 superblocks, up to 607 operations and 200 branches).
That toolchain and its inputs are unavailable, so we substitute a seeded
synthetic generator whose *structural statistics* match what the paper and
the superblock literature report for SPECint95-class integer code:

* mostly small regions (median ~15-25 ops, 2-4 exits) with a long tail;
* integer-ALU-dominated op mix with ~25-35% memory operations and almost
  no floating point (ijpeg being the exception with some float work);
* moderate dependence density (each op consumes 1-2 earlier values, biased
  toward recent producers);
* side exits that are usually weakly taken, with the fall-through exit
  carrying most of the probability mass — plus a minority of heavily-taken
  side exits (early loop exits);
* heavy-tailed execution frequencies (a few hot superblocks dominate the
  dynamic cycle count).

Each :class:`BenchmarkProfile` parameterizes those distributions per
SPECint95 program; the differences (block size, branchiness, memory share)
follow the programs' well-known characters rather than measured data —
DESIGN.md records this as a substitution.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchmarkProfile:
    """Structural parameters of one benchmark's synthetic superblocks.

    Attributes:
        name: SPECint95 program name.
        share: fraction of the corpus drawn from this benchmark.
        mean_block_ops: mean non-branch operations per basic block.
        mean_branches: mean number of exits per superblock (>= 1).
        max_branches: hard cap on exits.
        mem_frac / float_frac: probability that a generated operation is a
            memory / floating-point operation (remainder is integer ALU).
        consume_prob: probability that an op reads a second earlier value.
        cross_block_prob: probability that a consumed value comes from an
            earlier block instead of the current one.
        liveout_prob: probability that a block op is live-out at its own
            exit (i.e. gets an edge to its block's branch).
        side_exit_scale: mean taken-probability of a side exit.
        hot_side_exit_prob: probability a side exit is "hot" (heavily taken).
        freq_alpha: Pareto shape of the execution-frequency distribution
            (smaller = heavier tail).
    """

    name: str
    share: float
    mean_block_ops: float
    mean_branches: float
    max_branches: int
    mem_frac: float
    float_frac: float
    consume_prob: float
    cross_block_prob: float
    liveout_prob: float
    side_exit_scale: float
    hot_side_exit_prob: float
    freq_alpha: float

    def __post_init__(self) -> None:
        if not 0 < self.share <= 1:
            raise ValueError(f"{self.name}: share must be in (0, 1]")
        if self.mean_branches < 1:
            raise ValueError(f"{self.name}: superblocks need at least one exit")
        if self.mem_frac + self.float_frac >= 1:
            raise ValueError(f"{self.name}: op mix fractions exceed 1")


#: The eight SPECint95 programs, with shares roughly proportional to their
#: superblock counts in compiler studies (gcc dominates).
SPECINT95_PROFILES: tuple[BenchmarkProfile, ...] = (
    BenchmarkProfile(
        name="gcc", share=0.28, mean_block_ops=6.0, mean_branches=3.6,
        max_branches=24, mem_frac=0.30, float_frac=0.0, consume_prob=0.55,
        cross_block_prob=0.25, liveout_prob=0.65, side_exit_scale=0.10,
        hot_side_exit_prob=0.10, freq_alpha=1.1,
    ),
    BenchmarkProfile(
        name="go", share=0.14, mean_block_ops=7.5, mean_branches=3.2,
        max_branches=20, mem_frac=0.26, float_frac=0.0, consume_prob=0.60,
        cross_block_prob=0.22, liveout_prob=0.60, side_exit_scale=0.12,
        hot_side_exit_prob=0.12, freq_alpha=1.2,
    ),
    BenchmarkProfile(
        name="compress", share=0.06, mean_block_ops=5.0, mean_branches=2.4,
        max_branches=10, mem_frac=0.32, float_frac=0.0, consume_prob=0.60,
        cross_block_prob=0.30, liveout_prob=0.70, side_exit_scale=0.15,
        hot_side_exit_prob=0.15, freq_alpha=0.9,
    ),
    BenchmarkProfile(
        name="ijpeg", share=0.10, mean_block_ops=10.0, mean_branches=2.2,
        max_branches=12, mem_frac=0.28, float_frac=0.06, consume_prob=0.65,
        cross_block_prob=0.20, liveout_prob=0.55, side_exit_scale=0.08,
        hot_side_exit_prob=0.08, freq_alpha=1.0,
    ),
    BenchmarkProfile(
        name="li", share=0.08, mean_block_ops=4.5, mean_branches=3.8,
        max_branches=18, mem_frac=0.34, float_frac=0.0, consume_prob=0.50,
        cross_block_prob=0.28, liveout_prob=0.70, side_exit_scale=0.14,
        hot_side_exit_prob=0.14, freq_alpha=1.0,
    ),
    BenchmarkProfile(
        name="m88ksim", share=0.10, mean_block_ops=6.0, mean_branches=3.0,
        max_branches=16, mem_frac=0.28, float_frac=0.0, consume_prob=0.55,
        cross_block_prob=0.25, liveout_prob=0.65, side_exit_scale=0.11,
        hot_side_exit_prob=0.10, freq_alpha=1.1,
    ),
    BenchmarkProfile(
        name="perl", share=0.12, mean_block_ops=5.5, mean_branches=3.9,
        max_branches=22, mem_frac=0.32, float_frac=0.0, consume_prob=0.52,
        cross_block_prob=0.27, liveout_prob=0.68, side_exit_scale=0.12,
        hot_side_exit_prob=0.12, freq_alpha=1.1,
    ),
    BenchmarkProfile(
        name="vortex", share=0.12, mean_block_ops=8.5, mean_branches=3.4,
        max_branches=20, mem_frac=0.36, float_frac=0.0, consume_prob=0.58,
        cross_block_prob=0.24, liveout_prob=0.60, side_exit_scale=0.09,
        hot_side_exit_prob=0.08, freq_alpha=1.2,
    ),
)

_BY_NAME = {p.name: p for p in SPECINT95_PROFILES}


def profile_by_name(name: str) -> BenchmarkProfile:
    """Look up a SPECint95 profile by program name."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(
            f"unknown benchmark {name!r}; known benchmarks: {known}"
        ) from None
