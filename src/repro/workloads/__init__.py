"""Synthetic SPECint95-like workloads (the corpus substitution)."""

from repro.workloads.cfg_corpus import cfg_corpus
from repro.workloads.corpus import Corpus, specint95_corpus
from repro.workloads.generator import generate_superblock
from repro.workloads.profiles import (
    SPECINT95_PROFILES,
    BenchmarkProfile,
    profile_by_name,
)

__all__ = [
    "SPECINT95_PROFILES",
    "BenchmarkProfile",
    "Corpus",
    "cfg_corpus",
    "generate_superblock",
    "profile_by_name",
    "specint95_corpus",
]
