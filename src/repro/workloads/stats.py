"""Corpus characterization: the structural statistics that drive results.

Scheduling-paper evaluations hinge on workload structure; this module
computes the quantities that determine where each heuristic wins:

* size distribution (ops, exits) — the paper quotes "up to 607 operations
  and 200 branches";
* available ILP per superblock (`ops / critical path`) — when it exceeds
  the machine width, resources bind and SR-style heuristics shine;
* op-class mix — drives the specialized (FS) machines' contention;
* speculation opportunity — the fraction of ops that *can* move above at
  least one earlier exit (no dependence path from the exit).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.ir.operation import OpClass
from repro.ir.superblock import Superblock
from repro.workloads.corpus import Corpus


@dataclass(frozen=True)
class SuperblockShape:
    """Structural profile of one superblock."""

    name: str
    ops: int
    exits: int
    critical_path: int
    available_ilp: float
    mem_fraction: float
    float_fraction: float
    speculatable_fraction: float


def shape_of(sb: Superblock) -> SuperblockShape:
    """Compute the structural profile of one superblock."""
    graph = sb.graph
    n = graph.num_operations
    cp = graph.critical_path() + 1  # cycles, not edges
    classes = [op.op_class for op in sb.operations]
    mem = sum(1 for c in classes if c is OpClass.MEM)
    flt = sum(1 for c in classes if c is OpClass.FLOAT)

    # An op is speculatable if some earlier exit has no path to it (the op
    # may legally move above that exit).
    side_exits = sb.branches[:-1]
    speculatable = 0
    movable_pool = 0
    for op in sb.operations:
        if op.is_branch:
            continue
        earlier = [b for b in side_exits if b < op.index]
        if not earlier:
            continue
        movable_pool += 1
        if any(not graph.is_ancestor(b, op.index) for b in earlier):
            speculatable += 1
    return SuperblockShape(
        name=sb.name,
        ops=n,
        exits=sb.num_branches,
        critical_path=cp,
        available_ilp=n / cp if cp else 0.0,
        mem_fraction=mem / n,
        float_fraction=flt / n,
        speculatable_fraction=(
            speculatable / movable_pool if movable_pool else 0.0
        ),
    )


def characterize(corpus: Corpus) -> dict[str, float]:
    """Aggregate characterization of a corpus (means unless noted)."""
    shapes = [shape_of(sb) for sb in corpus]
    if not shapes:
        return {}
    return {
        "superblocks": len(shapes),
        "mean_ops": statistics.fmean(s.ops for s in shapes),
        "max_ops": max(s.ops for s in shapes),
        "mean_exits": statistics.fmean(s.exits for s in shapes),
        "max_exits": max(s.exits for s in shapes),
        "mean_critical_path": statistics.fmean(s.critical_path for s in shapes),
        "mean_available_ilp": statistics.fmean(s.available_ilp for s in shapes),
        "mem_fraction": statistics.fmean(s.mem_fraction for s in shapes),
        "float_fraction": statistics.fmean(s.float_fraction for s in shapes),
        "speculatable_fraction": statistics.fmean(
            s.speculatable_fraction for s in shapes
        ),
    }


def characterization_report(corpus: Corpus) -> str:
    """Human-readable characterization block."""
    stats = characterize(corpus)
    lines = [f"corpus characterization: {corpus.name}"]
    for key, value in stats.items():
        lines.append(f"  {key:24s} {value:10.3f}")
    return "\n".join(lines)
