"""Unit tests for repro.ir.superblock and the builder."""

import math

import pytest

from repro.ir.builder import SuperblockBuilder
from repro.ir.validate import SuperblockValidationError


class TestBuilder:
    def test_build_two_exit_superblock(self, two_exit_sb):
        sb = two_exit_sb
        assert sb.num_operations == 7
        assert sb.branches == (3, 6)
        assert math.isclose(sum(sb.weights.values()), 1.0)

    def test_control_edge_inserted_between_branches(self, two_exit_sb):
        sb = two_exit_sb
        assert sb.graph.has_edge(3, 6)
        assert sb.graph.edge_latency(3, 6) == 1

    def test_last_exit_defaults_to_remaining_probability(self):
        sb = (
            SuperblockBuilder("p")
            .op("add")
            .exit(0.2, preds=[0])
            .op("add")
            .last_exit(preds=[2])
        )
        assert math.isclose(sb.weights[sb.last_branch], 0.8)

    def test_explicit_latency_dict_preds(self):
        sb = (
            SuperblockBuilder("lat")
            .op("add")
            .op("add", preds={0: 5})
            .last_exit(preds=[1])
        )
        assert sb.graph.edge_latency(0, 1) == 5

    def test_branch_via_op_rejected(self):
        b = SuperblockBuilder("bad")
        with pytest.raises(ValueError, match="exit"):
            b.op("branch")

    def test_builder_single_use(self):
        b = SuperblockBuilder("once").op("add")
        b.last_exit(preds=[0])
        with pytest.raises(RuntimeError):
            b.build()

    def test_edge_method_chains(self):
        sb = (
            SuperblockBuilder("e")
            .op("add")
            .op("add")
            .edge(0, 1, 2)
            .last_exit(preds=[1])
        )
        assert sb.graph.edge_latency(0, 1) == 2


class TestSuperblockProperties:
    def test_weights_match_exit_probs(self, two_exit_sb):
        assert two_exit_sb.weights == {3: 0.3, 6: 0.7}

    def test_last_branch(self, two_exit_sb):
        assert two_exit_sb.last_branch == 6

    def test_branch_order(self, two_exit_sb):
        assert two_exit_sb.branch_order == {3: 0, 6: 1}

    def test_branch_latency(self, two_exit_sb):
        assert two_exit_sb.branch_latency == 1

    def test_home_blocks(self, two_exit_sb):
        # Ops 0-2 precede branch 3 (block 0); 4, 5 only precede the final
        # exit (block 1).
        assert two_exit_sb.home_blocks == (0, 0, 0, 0, 1, 1, 1)

    def test_cumulative_weight(self, two_exit_sb):
        assert math.isclose(two_exit_sb.cumulative_weight(3), 0.3)
        assert math.isclose(two_exit_sb.cumulative_weight(6), 1.0)

    def test_weighted_completion_time(self, two_exit_sb):
        # WCT = 0.3*(2+1) + 0.7*(3+1)
        wct = two_exit_sb.weighted_completion_time({3: 2, 6: 3})
        assert math.isclose(wct, 0.3 * 3 + 0.7 * 4)

    def test_single_exit_weights(self, single_exit_sb):
        assert single_exit_sb.weights == {3: 1.0}


class TestValidation:
    def test_probabilities_must_sum_to_one(self):
        b = SuperblockBuilder("bad").op("add").exit(0.5, preds=[0]).op("add")
        with pytest.raises(SuperblockValidationError, match="sum"):
            b.last_exit(prob=0.2, preds=[2])

    def test_last_op_must_be_final_exit(self):
        # Constructed through the builder this cannot happen, so build a
        # raw superblock to exercise the validator.
        from repro.ir.depgraph import DependenceGraph
        from repro.ir.operation import Operation, opcode
        from repro.ir.superblock import Superblock
        from repro.ir.validate import iter_violations

        g = DependenceGraph(
            [
                Operation(index=0, opcode=opcode("jump"), exit_prob=1.0),
                Operation(index=1, opcode=opcode("add")),
            ]
        )
        g.freeze()
        sb = Superblock(name="bad", graph=g)
        messages = list(iter_violations(sb))
        assert any("final exit" in m for m in messages)

    def test_missing_control_edge_detected(self):
        from repro.ir.depgraph import DependenceGraph
        from repro.ir.operation import Operation, opcode
        from repro.ir.superblock import Superblock
        from repro.ir.validate import iter_violations

        g = DependenceGraph(
            [
                Operation(index=0, opcode=opcode("branch"), exit_prob=0.5),
                Operation(index=1, opcode=opcode("jump"), exit_prob=0.5),
            ]
        )
        g.freeze()
        sb = Superblock(name="bad", graph=g)
        assert any(
            "control edge" in m for m in iter_violations(sb)
        )

    def test_empty_superblock_detected(self):
        from repro.ir.depgraph import DependenceGraph
        from repro.ir.superblock import Superblock
        from repro.ir.validate import iter_violations

        sb = Superblock(name="empty", graph=DependenceGraph().freeze())
        assert any("no operations" in m for m in iter_violations(sb))

    def test_negative_exec_freq_detected(self):
        from repro.ir.validate import iter_violations

        sb = (
            SuperblockBuilder("f", exec_freq=1.0)
            .op("add")
            .last_exit(preds=[0])
        )
        object.__setattr__(sb, "exec_freq", -1.0)
        assert any("frequency" in m for m in iter_violations(sb))
