"""Tests for the dynamic execution simulator."""

import random

import pytest

from repro.ir.examples import figure1, figure4
from repro.machine.machine import GP2
from repro.schedulers.base import schedule
from repro.sim import (
    expected_speculation_waste,
    run_once,
    simulate,
)


class TestRunOnce:
    def test_exit_cycle_accounting(self, two_exit_sb):
        s = schedule(two_exit_sb, GP2, "balance")
        rng = random.Random(1)
        result = run_once(two_exit_sb, GP2, s, rng)
        assert result.exit_branch in two_exit_sb.branches
        assert result.cycles == s.issue[result.exit_branch] + 1
        assert 0 <= result.ops_wasted <= result.ops_issued

    def test_final_exit_wastes_nothing(self, two_exit_sb):
        """When the fall-through exit is taken, every issued op was needed
        (everything precedes the final exit)."""
        s = schedule(two_exit_sb, GP2, "balance")
        rng = random.Random(2)
        for _ in range(50):
            result = run_once(two_exit_sb, GP2, s, rng)
            if result.exit_branch == two_exit_sb.last_branch:
                assert result.ops_wasted == 0
                return
        pytest.fail("final exit never sampled")

    def test_side_exit_counts_speculated_ops(self):
        """Figure 1: leaving at the side exit wastes the speculated chain
        work issued in the first cycles."""
        sb = figure1(side_prob=0.99)
        s = schedule(sb, GP2, "balance")
        rng = random.Random(3)
        for _ in range(50):
            result = run_once(sb, GP2, s, rng)
            if result.exit_branch == 3:
                assert result.ops_wasted > 0
                return
        pytest.fail("side exit never sampled at p=0.99")


class TestSimulate:
    def test_mean_converges_to_wct(self, two_exit_sb):
        """Law of large numbers: the simulated mean approaches the WCT."""
        s = schedule(two_exit_sb, GP2, "balance")
        stats = simulate(two_exit_sb, GP2, s, runs=20_000, seed=7)
        assert stats.relative_error < 0.02

    def test_convergence_on_paper_examples(self):
        for factory, heuristic in ((figure1, "sr"), (figure4, "balance")):
            sb = factory()
            s = schedule(sb, GP2, heuristic)
            stats = simulate(sb, GP2, s, runs=20_000, seed=11)
            assert stats.relative_error < 0.03, sb.name

    def test_exit_counts_match_profile(self):
        sb = figure1(side_prob=0.25)
        s = schedule(sb, GP2, "balance")
        stats = simulate(sb, GP2, s, runs=20_000, seed=5)
        frac = stats.exit_counts[3] / stats.runs
        assert frac == pytest.approx(0.25, abs=0.02)

    def test_deterministic_given_seed(self, two_exit_sb):
        s = schedule(two_exit_sb, GP2, "balance")
        a = simulate(two_exit_sb, GP2, s, runs=500, seed=9)
        b = simulate(two_exit_sb, GP2, s, runs=500, seed=9)
        assert a.mean_cycles == b.mean_cycles
        assert a.exit_counts == b.exit_counts

    def test_zero_runs_rejected(self, two_exit_sb):
        s = schedule(two_exit_sb, GP2, "balance")
        with pytest.raises(ValueError):
            simulate(two_exit_sb, GP2, s, runs=0)


class TestDeterministicParallelism:
    """The RNG substream per chunk makes jobs a pure throughput knob."""

    def test_parallel_equals_serial(self, two_exit_sb):
        # Enough runs for several chunks, plus a ragged tail.
        s = schedule(two_exit_sb, GP2, "balance")
        runs = 1300
        serial = simulate(two_exit_sb, GP2, s, runs=runs, seed=4, jobs=1)
        parallel = simulate(two_exit_sb, GP2, s, runs=runs, seed=4, jobs=2)
        assert serial.mean_cycles == parallel.mean_cycles
        assert serial.exit_counts == parallel.exit_counts
        assert serial.mean_waste_fraction == parallel.mean_waste_fraction

    def test_chunk_substreams_independent_of_total(self, two_exit_sb):
        # The first chunk's draws must not depend on how many chunks
        # follow: chunking is a property of the workload, not the run.
        from repro.sim.executor import CHUNK_RUNS, _chunk_stats

        s = schedule(two_exit_sb, GP2, "balance")
        one = _chunk_stats(two_exit_sb, GP2, s, seed=8, chunk=0, runs=CHUNK_RUNS)
        again = _chunk_stats(two_exit_sb, GP2, s, seed=8, chunk=0, runs=CHUNK_RUNS)
        assert one == again

    def test_different_seeds_differ(self, two_exit_sb):
        s = schedule(two_exit_sb, GP2, "balance")
        a = simulate(two_exit_sb, GP2, s, runs=2000, seed=1)
        b = simulate(two_exit_sb, GP2, s, runs=2000, seed=2)
        assert a.exit_counts != b.exit_counts


class TestExactMoments:
    def test_mean_is_the_wct(self, two_exit_sb):
        from repro.sim import exact_sim_moments

        s = schedule(two_exit_sb, GP2, "balance")
        mean, variance = exact_sim_moments(two_exit_sb, s)
        assert mean == pytest.approx(s.wct)
        assert variance >= 0.0

    def test_single_exit_has_zero_variance(self, single_exit_sb):
        from repro.sim import exact_sim_moments

        s = schedule(single_exit_sb, GP2, "balance")
        mean, variance = exact_sim_moments(single_exit_sb, s)
        assert mean == pytest.approx(s.wct)
        assert variance == pytest.approx(0.0)

    def test_monte_carlo_within_exact_ci(self):
        from repro.sim import exact_sim_moments

        sb = figure1(side_prob=0.3)
        s = schedule(sb, GP2, "balance")
        mean, variance = exact_sim_moments(sb, s)
        runs = 20_000
        stats = simulate(sb, GP2, s, runs=runs, seed=17)
        sigma = (variance / runs) ** 0.5
        assert abs(stats.mean_cycles - mean) <= 6 * sigma + 1e-9


class TestSpeculationWaste:
    def test_closed_form_matches_monte_carlo(self):
        sb = figure1(side_prob=0.3)
        s = schedule(sb, GP2, "balance")
        exact = expected_speculation_waste(sb, s)
        stats = simulate(sb, GP2, s, runs=20_000, seed=13)
        assert stats.mean_waste_fraction == pytest.approx(exact, abs=0.02)

    def test_sr_wastes_less_than_cp_on_fig1(self):
        """SR retires the side exit early, so early exits waste less of
        the speculated chain work than under CP."""
        sb = figure1(side_prob=0.5)
        sr = schedule(sb, GP2, "sr")
        cp = schedule(sb, GP2, "cp")
        assert expected_speculation_waste(sb, sr) <= expected_speculation_waste(
            sb, cp
        ) + 1e-9
