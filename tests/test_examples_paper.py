"""Tests pinning the paper's Figure 1-4 narratives to our reconstructions."""

import pytest

from repro.bounds.superblock_bounds import BoundSuite
from repro.ir.examples import PAPER_EXAMPLES, figure1, figure2, figure3, figure4
from repro.machine.machine import GP2
from repro.schedulers.base import schedule


class TestFigure1:
    """Section 2's motivating example."""

    def test_structure(self):
        sb = figure1()
        assert sb.num_operations == 17
        assert sb.branches == (3, 16)
        # Branch 16 has 16 predecessors (including the side branch).
        assert len(sb.graph.ancestors(16)) == 16
        # The longest dependence chain to 16 is 7 cycles.
        assert sb.graph.early_dc()[16] == 7

    def test_resource_bound_is_eight(self):
        res = BoundSuite(figure1(), GP2).compute()
        assert res.branch_bounds["RJ"][16] == 8

    def test_cp_delays_side_exit(self):
        s = schedule(figure1(), GP2, "cp")
        assert s.issue[3] >= 4  # "delayed by 4 cycles" in the paper

    def test_sr_is_optimal(self):
        s = schedule(figure1(), GP2, "sr")
        opt = schedule(figure1(), GP2, "optimal")
        assert s.wct == pytest.approx(opt.wct)
        assert (s.issue[3], s.issue[16]) == (2, 8)

    def test_gstar_selects_last_branch_as_critical(self):
        """With a weakly taken side exit, only the last branch is critical
        (rank 2/0.2 = 10 vs 8/1.0 = 8): G* degenerates to Critical Path,
        as in the paper's discussion of Figure 1."""
        from repro.schedulers.gstar import gstar_tiers

        tiers = gstar_tiers(figure1(side_prob=0.2), GP2)
        assert tiers[16] == 0  # first retirement tier contains everything
        assert all(t == 0 for t in tiers)


class TestFigure2:
    """Observation 1: compatible needs."""

    def test_branch_bounds(self):
        res = BoundSuite(figure2(), GP2).compute()
        assert res.branch_bounds["LC"] == {3: 2, 6: 3}

    def test_balance_finds_compatible_schedule(self):
        s = schedule(figure2(), GP2, "balance")
        assert s.issue[4] == 0  # the chain head issues immediately
        assert (s.issue[3], s.issue[6]) == (2, 3)

    def test_some_baseline_misses_it(self):
        """At least one baseline heuristic delays branch 6 (the paper's
        point that help-counting alone is insufficient)."""
        wcts = {
            name: schedule(figure2(), GP2, name).wct
            for name in ("cp", "sr", "dhasy")
        }
        opt = schedule(figure2(), GP2, "optimal").wct
        assert any(w > opt + 1e-9 for w in wcts.values())


class TestFigure3:
    """Observation 2: resource-aware distances."""

    def test_dependence_distance_is_four(self):
        sb = figure3()
        assert sb.graph.dist_to(9)[4] == 4

    def test_real_distance_is_five(self):
        suite = BoundSuite(figure3(), GP2)
        assert suite.early_rc[9] == 5
        assert suite.late_rc[9][4] == 0

    def test_balance_schedules_op4_first(self):
        s = schedule(figure3(), GP2, "balance")
        assert s.issue[4] == 0
        assert s.issue[9] == 5

    def test_dc_bound_variant_misses(self):
        """Without the Bound component the engine delays branch 9."""
        from repro.core.balance import balance_schedule
        from repro.core.config import HELP

        s = balance_schedule(figure3(), GP2, HELP)
        opt = schedule(figure3(), GP2, "optimal")
        assert s.wct > opt.wct


class TestFigure4:
    """Observation 3: branch tradeoffs depend on exit probability."""

    def test_individual_bounds(self):
        suite = BoundSuite(figure4(), GP2)
        assert suite.early_rc[6] == 3
        assert suite.early_rc[18] == 9

    def test_exits_conflict(self):
        res = BoundSuite(figure4(), GP2).compute()
        pb = res.pair_bounds[(6, 18)]
        assert not pb.conflict_free

    def test_tradeoff_curve_spans_regimes(self):
        res = BoundSuite(figure4(), GP2).compute()
        pb = res.pair_bounds[(6, 18)]
        xs = {p.x for p in pb.curve}
        ys = {p.y for p in pb.curve}
        assert len(xs) >= 2 and len(ys) >= 2

    @pytest.mark.parametrize(
        "prob,expected",
        [(0.2, (5, 9)), (0.4, (5, 9)), (0.6, (3, 11)), (0.8, (3, 11))],
    )
    def test_optimal_flips_with_probability(self, prob, expected):
        sb = figure4(prob)
        s = schedule(sb, GP2, "optimal")
        assert (s.issue[6], s.issue[18]) == expected

    @pytest.mark.parametrize("prob", [0.2, 0.4, 0.6, 0.8])
    def test_balance_matches_optimal_across_probabilities(self, prob):
        sb = figure4(prob)
        assert schedule(sb, GP2, "balance").wct == pytest.approx(
            schedule(sb, GP2, "optimal").wct
        )

    def test_pairwise_bound_is_tight_here(self):
        """The PW superblock bound equals the optimal WCT on Figure 4."""
        sb = figure4(0.3)
        res = BoundSuite(sb, GP2).compute()
        opt = schedule(sb, GP2, "optimal")
        assert res.tightest == pytest.approx(opt.wct)


class TestExamplesRegistry:
    def test_registry_contents(self):
        assert set(PAPER_EXAMPLES) == {"figure1", "figure2", "figure3", "figure4"}
        for _name, (sb, machine) in PAPER_EXAMPLES.items():
            assert machine.name == "GP2"
            assert sb.num_branches == 2
