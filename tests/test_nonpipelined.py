"""Tests for non-fully-pipelined (blocking) functional units."""

import pytest

from repro.bounds.superblock_bounds import BoundSuite
from repro.ir.builder import SuperblockBuilder
from repro.machine.machine import FS4, FS4_NP, MachineConfig, machine_by_name
from repro.machine.reservation import ReservationTable
from repro.schedulers.base import schedule
from repro.schedulers.schedule import ScheduleError, make_schedule, validate_schedule


def fdiv_pair_sb():
    """Two independent fdivs feeding the exit."""
    return (
        SuperblockBuilder("divs")
        .op("fdiv")
        .op("fdiv")
        .last_exit(preds=[0, 1])
    )


class TestMachineModel:
    def test_paper_machines_fully_pipelined(self):
        assert FS4.fully_pipelined
        assert FS4.occupancy_of(fdiv_pair_sb().op(0)) == 1

    def test_np_machine(self):
        assert not FS4_NP.fully_pipelined
        sb = fdiv_pair_sb()
        assert FS4_NP.occupancy_of(sb.op(0)) == 9
        assert FS4_NP.occupancy_of(sb.op(2)) == 1  # the branch

    def test_lookup_by_name(self):
        assert machine_by_name("fs4-np") is FS4_NP

    def test_invalid_occupancy_rejected(self):
        with pytest.raises(ValueError, match="occupancy"):
            MachineConfig(
                name="bad", units={"gp": 1}, occupancy={"fdiv": 0}
            )


class TestReservationWindows:
    def test_place_blocks_window(self):
        t = ReservationTable(FS4_NP)
        t.place(0, "float", occupancy=9)
        assert not t.can_place(4, "float")
        assert t.can_place(9, "float")

    def test_release_window(self):
        t = ReservationTable(FS4_NP)
        t.place(0, "float", occupancy=3)
        t.release(0, "float", occupancy=3)
        assert t.can_place(1, "float")

    def test_interleaved_units(self):
        two_div = MachineConfig(
            name="2div",
            units={"int": 1, "mem": 1, "float": 2, "branch": 1},
            occupancy={"fdiv": 9},
        )
        t = ReservationTable(two_div)
        t.place(0, "float", occupancy=9)
        t.place(1, "float", occupancy=9)  # second unit
        assert not t.can_place(5, "float", 1)
        assert t.can_place(9, "float", 1)

    def test_earliest_fit_with_occupancy(self):
        t = ReservationTable(FS4_NP)
        t.place(0, "float", occupancy=9)
        assert t.earliest_fit("float", 0, occupancy=2) == 9


class TestSchedulingWithBlockingUnits:
    @pytest.mark.parametrize("name", ["cp", "sr", "gstar", "dhasy", "help", "balance"])
    def test_divider_serializes(self, name):
        """Two fdivs on one blocking divider are >= 9 cycles apart."""
        sb = fdiv_pair_sb()
        s = schedule(sb, FS4_NP, name)
        validate_schedule(sb, FS4_NP, s)
        a, b = sorted(s.issue[v] for v in (0, 1))
        assert b - a >= 9

    def test_pipelined_machine_overlaps(self):
        sb = fdiv_pair_sb()
        s = schedule(sb, FS4, "balance")
        a, b = sorted(s.issue[v] for v in (0, 1))
        assert b - a <= 1

    def test_validator_rejects_window_overlap(self):
        sb = fdiv_pair_sb()
        with pytest.raises(ScheduleError, match="units"):
            make_schedule(sb, FS4_NP, "bad", {0: 0, 1: 2, 2: 12})

    def test_optimal_refuses_blocking_machines(self):
        with pytest.raises(ValueError, match="fully.*pipelined"):
            schedule(fdiv_pair_sb(), FS4_NP, "optimal")

    def test_corpus_schedules_remain_valid(self, tiny_corpus):
        for sb in tiny_corpus.superblocks[:6]:
            for name in ("cp", "balance"):
                s = schedule(sb, FS4_NP, name)
                validate_schedule(sb, FS4_NP, s)


class TestBoundsWithBlockingUnits:
    def test_rj_accounts_for_occupancy(self):
        """Two 9-cycle divider occupancies push the exit past cycle 10."""
        sb = fdiv_pair_sb()
        res_np = BoundSuite(sb, FS4_NP).compute()
        res_p = BoundSuite(sb, FS4).compute()
        assert res_np.wct["RJ"] > res_p.wct["RJ"]

    def test_bounds_stay_below_schedules(self, tiny_corpus):
        for sb in tiny_corpus.superblocks[:10]:
            bound = BoundSuite(sb, FS4_NP, include_triplewise=False).compute()
            for name in ("cp", "sr", "dhasy", "help", "balance"):
                s = schedule(sb, FS4_NP, name, validate=False)
                assert s.wct >= bound.tightest - 1e-9, (sb.name, name)

    def test_dominance_chain_holds(self, tiny_corpus):
        for sb in tiny_corpus.superblocks[:10]:
            res = BoundSuite(sb, FS4_NP).compute()
            assert res.wct["CP"] <= res.wct["RJ"] + 1e-9
            assert res.wct["RJ"] <= res.wct["LC"] + 1e-9
            assert res.wct["LC"] <= res.wct["PW"] + 1e-9
