"""Cross-module integration tests: the full pipeline on a small corpus."""

import pytest

from repro.bounds.superblock_bounds import BoundSuite
from repro.eval.sched_eval import evaluate_corpus, evaluate_superblock
from repro.eval.metrics import noprofile_weights
from repro.machine.machine import FS4, GP2, PAPER_MACHINES
from repro.schedulers.base import schedule
from repro.workloads.corpus import specint95_corpus

HEUR = ("sr", "cp", "gstar", "dhasy", "help", "balance")


class TestEvaluatePipeline:
    def test_evaluate_superblock_record(self, tiny_corpus):
        sb = tiny_corpus[0]
        r = evaluate_superblock(sb, FS4, HEUR)
        assert set(r.heuristic_wct) == set(HEUR)
        assert r.tightest_bound <= min(r.heuristic_wct.values()) + 1e-9
        assert set(r.bound_wct) == {"CP", "Hu", "RJ", "LC", "PW", "TW"}

    def test_noprofile_weights_change_schedules_not_bounds(self, tiny_corpus):
        sb = max(tiny_corpus, key=lambda s: s.num_branches)
        base = evaluate_superblock(sb, FS4, HEUR)
        nop = evaluate_superblock(
            sb, FS4, HEUR, scheduling_weights=noprofile_weights
        )
        assert nop.tightest_bound == pytest.approx(base.tightest_bound)
        # SR/CP ignore weights: identical results.
        assert nop.heuristic_wct["sr"] == pytest.approx(base.heuristic_wct["sr"])
        assert nop.heuristic_wct["cp"] == pytest.approx(base.heuristic_wct["cp"])

    def test_corpus_summary_consistency(self, tiny_corpus):
        summary = evaluate_corpus(tiny_corpus, FS4, HEUR)
        assert len(summary.results) == len(tiny_corpus)
        assert summary.machine == "FS4"
        for h in HEUR:
            assert summary.slowdown_percent(h) >= -1e-9

    def test_balance_among_the_best(self, tiny_corpus):
        """On a tiny sample Balance may tie or narrowly trail one heuristic,
        but it must stay well below the field's average slowdown (the
        corpus-scale win is asserted by the Table 3 benchmark)."""
        summary = evaluate_corpus(tiny_corpus, FS4, HEUR)
        slow = {h: summary.slowdown_percent(h) for h in HEUR}
        mean = sum(slow.values()) / len(slow)
        assert slow["balance"] <= mean
        assert slow["balance"] <= slow["help"] + 1e-9
        assert slow["balance"] < max(slow.values())


class TestWidthTrends:
    def test_optimality_grows_with_fs_width(self, small_corpus):
        """Headline shape: more units => more superblocks hit the bound."""
        from repro.machine.machine import FS8

        fracs = []
        for machine in (FS4, FS8):
            summary = evaluate_corpus(
                small_corpus, machine, ("balance",), include_triplewise=False
            )
            fracs.append(summary.optimal_fraction("balance"))
        assert fracs[1] >= fracs[0] - 0.05  # allow small-sample noise


class TestEndToEndSingleSuperblock:
    def test_bound_and_schedule_agree_on_machines(self, tiny_corpus):
        sb = tiny_corpus[1]
        for machine in PAPER_MACHINES:
            res = BoundSuite(sb, machine, include_triplewise=False).compute()
            s = schedule(sb, machine, "balance", validate=True)
            assert s.wct >= res.tightest - 1e-9

    def test_public_api_quickstart(self):
        """The README quickstart must keep working."""
        from repro import SuperblockBuilder, GP2, BoundSuite, schedule as sched

        sb = (
            SuperblockBuilder("demo")
            .op("add").op("add").op("add")
            .exit(0.3, preds=[0, 1, 2])
            .op("load").op("add", preds=[4])
            .last_exit(preds=[5])
        )
        bounds = BoundSuite(sb, GP2).compute()
        result = sched(sb, GP2, "balance")
        assert result.wct >= bounds.tightest - 1e-9
