"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.ir.builder import SuperblockBuilder
from repro.machine.machine import FS4, GP1, GP2, GP4, PAPER_MACHINES
from repro.workloads.corpus import Corpus, specint95_corpus


@pytest.fixture(scope="session")
def tiny_corpus() -> Corpus:
    """A small, fast corpus shared by integration-style tests."""
    return specint95_corpus(scale=24, seed=7, max_ops=40)


@pytest.fixture(scope="session")
def small_corpus() -> Corpus:
    """A slightly larger corpus for table-level tests."""
    return specint95_corpus(scale=48, seed=11, max_ops=60)


@pytest.fixture
def two_exit_sb():
    """Minimal 2-exit superblock: 3 ops -> side exit, chain -> final exit."""
    return (
        SuperblockBuilder("two_exit")
        .op("add")
        .op("add")
        .op("add")
        .exit(0.3, preds=[0, 1, 2])
        .op("add")
        .op("add", preds={4: 2})
        .last_exit(preds=[5])
    )


@pytest.fixture
def single_exit_sb():
    """Superblock with a single exit (degenerates to basic-block scheduling)."""
    return (
        SuperblockBuilder("single")
        .op("add")
        .op("load", preds=[0])
        .op("add", preds=[1])
        .last_exit(preds=[2])
    )


@pytest.fixture(params=PAPER_MACHINES, ids=lambda m: m.name)
def any_machine(request):
    return request.param


@pytest.fixture
def gp1():
    return GP1


@pytest.fixture
def gp2():
    return GP2


@pytest.fixture
def gp4():
    return GP4


@pytest.fixture
def fs4():
    return FS4
