"""Unit tests for the reversed-graph LateRC computation."""

from repro.bounds.langevin_cerny import early_rc
from repro.bounds.late_rc import late_rc_for_branch, reversed_subgraph
from repro.ir.examples import figure1, figure3
from repro.machine.machine import FS4, GP1, GP2


class TestReversedSubgraph:
    def test_reversal_structure(self, two_exit_sb):
        sb = two_exit_sb
        rev, remap = reversed_subgraph(sb.graph, 6)
        # All 7 ops precede (or are) the final exit.
        assert rev.num_operations == 7
        # The branch becomes operation 0 of the reversed graph.
        assert remap[6] == 0
        # Edge latencies are preserved: 4 -(2)-> 5 becomes 5' -(2)-> 4'.
        assert rev.edge_latency(remap[5], remap[4]) == 2

    def test_reversal_only_covers_ancestors(self):
        sb = figure1()
        rev, remap = reversed_subgraph(sb.graph, 3)
        # Branch 3's subgraph: ops 0, 1, 2, 3 only.
        assert rev.num_operations == 4
        assert set(remap) == {0, 1, 2, 3}

    def test_reverse_is_topological(self, two_exit_sb):
        rev, _ = reversed_subgraph(two_exit_sb.graph, 6)
        for src, dst, _lat in rev.edges():
            assert src < dst


class TestLateRC:
    def test_branch_anchors_its_own_late(self, two_exit_sb):
        sb = two_exit_sb
        rc = early_rc(sb.graph, GP2)
        late = late_rc_for_branch(sb.graph, GP2, 6, rc[6])
        assert late[6] == rc[6]

    def test_late_rc_no_looser_than_late_dc(self, tiny_corpus):
        """Resource awareness can only tighten the dependence lates."""
        for sb in tiny_corpus:
            for machine in (GP1, GP2, FS4):
                rc = early_rc(sb.graph, machine)
                for b in sb.branches:
                    late = late_rc_for_branch(sb.graph, machine, b, rc[b])
                    dist = sb.graph.dist_to(b)
                    for v, lv in late.items():
                        # Dependence late anchored at EarlyRC[b].
                        assert lv <= rc[b] - dist[v]

    def test_fig3_late_rc_detects_squeezed_chain(self):
        """Observation 2: branch 9 needs op 4 in cycle 0, not cycle 1."""
        sb = figure3()
        rc = early_rc(sb.graph, GP2)
        assert rc[9] == 5
        late = late_rc_for_branch(sb.graph, GP2, 9, rc[9])
        # Dependence-only: dist(4, 9) = 4 => late would be 5 - 4 = 1.
        # Resource-aware: the antichain {6,7,8} needs two cycles => 0.
        assert late[4] == 0

    def test_late_rc_nonnegative_for_roots_on_wide_machine(self):
        sb = figure1()
        rc = early_rc(sb.graph, GP2)
        late = late_rc_for_branch(sb.graph, GP2, 16, rc[16])
        assert all(lv >= 0 for lv in late.values())
