"""Execute every example script end to end (small parameters).

The examples are part of the public deliverable; these tests keep them
running against API changes.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExampleScripts:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", [], capsys)
        assert "lower bounds" in out
        assert "balance" in out
        assert "digraph" in out  # DOT export

    def test_paper_figures(self, capsys):
        out = run_example("paper_figures.py", [], capsys)
        assert "figure4" in out
        assert "Observation 3" in out
        assert "pairwise tradeoff curve" in out

    def test_compiler_pass(self, capsys):
        out = run_example("compiler_pass.py", ["GP2", "16"], capsys)
        assert "compile time" in out
        assert "speedup vs CP" in out

    def test_machine_design(self, capsys):
        out = run_example("machine_design.py", ["16"], capsys)
        assert "GP1" in out and "FS8" in out
        assert "at-bound" in out

    def test_bound_anatomy(self, capsys):
        out = run_example("bound_anatomy.py", ["li", "1", "GP2"], capsys)
        assert "per-branch issue-cycle bounds" in out
        assert "WCT lower bounds" in out

    def test_cfg_pipeline(self, capsys):
        out = run_example("cfg_pipeline.py", ["1", "4"], capsys)
        assert "traces" in out
        assert "module dynamic cycles" in out

    def test_speculation_cost(self, capsys):
        out = run_example("speculation_cost.py", ["12"], capsys)
        assert "waste%" in out
        assert "balance" in out
