"""Unit tests for repro.ir.depgraph."""

import pytest

from repro.ir.depgraph import DependenceGraph
from repro.ir.operation import Operation, opcode


def _ops(n: int, names=None) -> list[Operation]:
    return [
        Operation(index=i, opcode=opcode((names or {}).get(i, "add")))
        for i in range(n)
    ]


def diamond() -> DependenceGraph:
    """0 -> {1, 2} -> 3 with unit latencies."""
    g = DependenceGraph(_ops(4))
    g.add_edge(0, 1)
    g.add_edge(0, 2)
    g.add_edge(1, 3)
    g.add_edge(2, 3)
    return g


class TestConstruction:
    def test_add_operations_in_order(self):
        g = DependenceGraph()
        g.add_operation(Operation(index=0, opcode=opcode("add")))
        g.add_operation(Operation(index=1, opcode=opcode("add")))
        assert g.num_operations == 2

    def test_out_of_order_index_rejected(self):
        g = DependenceGraph()
        with pytest.raises(ValueError, match="program order"):
            g.add_operation(Operation(index=1, opcode=opcode("add")))

    def test_backward_edge_rejected(self):
        g = DependenceGraph(_ops(2))
        with pytest.raises(ValueError, match="not forward"):
            g.add_edge(1, 0)

    def test_self_edge_rejected(self):
        g = DependenceGraph(_ops(2))
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_default_edge_latency_is_producer_latency(self):
        g = DependenceGraph(_ops(2, names={0: "load"}))
        g.add_edge(0, 1)
        assert g.edge_latency(0, 1) == 2

    def test_duplicate_edge_keeps_max_latency(self):
        g = DependenceGraph(_ops(2))
        g.add_edge(0, 1, 1)
        g.add_edge(0, 1, 3)
        assert g.edge_latency(0, 1) == 3
        assert g.num_edges == 1
        g.add_edge(0, 1, 2)  # smaller: subsumed
        assert g.edge_latency(0, 1) == 3

    def test_freeze_blocks_mutation(self):
        g = DependenceGraph(_ops(2))
        g.freeze()
        with pytest.raises(RuntimeError, match="frozen"):
            g.add_edge(0, 1)
        with pytest.raises(RuntimeError):
            g.add_operation(Operation(index=2, opcode=opcode("add")))

    def test_negative_latency_rejected(self):
        g = DependenceGraph(_ops(2))
        with pytest.raises(ValueError):
            g.add_edge(0, 1, -2)


class TestStructure:
    def test_preds_succs(self):
        g = diamond()
        assert sorted(u for u, _ in g.preds(3)) == [1, 2]
        assert sorted(v for v, _ in g.succs(0)) == [1, 2]

    def test_roots_and_sinks(self):
        g = diamond()
        assert g.roots() == [0]
        assert g.sinks() == [3]

    def test_edges_iteration(self):
        g = diamond()
        assert sorted(g.edges()) == [(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1)]

    def test_ancestors_descendants(self):
        g = diamond()
        assert g.ancestors(3) == [0, 1, 2]
        assert g.descendants(0) == [1, 2, 3]
        assert g.ancestors(0) == []

    def test_is_ancestor(self):
        g = diamond()
        assert g.is_ancestor(0, 3)
        assert g.is_ancestor(1, 3)
        assert not g.is_ancestor(1, 2)
        assert not g.is_ancestor(3, 0)

    def test_subgraph_mask_includes_self(self):
        g = diamond()
        mask = g.subgraph_mask(3)
        assert mask == 0b1111


class TestTiming:
    def test_early_dc_unit_latencies(self):
        g = diamond()
        assert g.early_dc() == [0, 1, 1, 2]
        assert g.critical_path() == 2

    def test_early_dc_respects_latency(self):
        g = DependenceGraph(_ops(3, names={0: "load"}))
        g.add_edge(0, 1)  # latency 2
        g.add_edge(1, 2)
        assert g.early_dc() == [0, 2, 3]

    def test_dist_to_sink(self):
        g = diamond()
        assert g.dist_to(3) == [2, 1, 1, 0]

    def test_dist_to_unreachable_is_minus_one(self):
        g = DependenceGraph(_ops(3))
        g.add_edge(0, 2)
        assert g.dist_to(2)[1] == -1

    def test_late_dc(self):
        g = diamond()
        late = g.late_dc(3)
        assert late == [0, 1, 1, 2]

    def test_late_dc_none_outside_subgraph(self):
        g = DependenceGraph(_ops(3))
        g.add_edge(0, 2)
        assert g.late_dc(2)[1] is None

    def test_empty_graph_critical_path(self):
        assert DependenceGraph().critical_path() == 0


class TestBranches:
    def test_branch_listing(self):
        g = DependenceGraph(
            [
                Operation(index=0, opcode=opcode("add")),
                Operation(index=1, opcode=opcode("branch"), exit_prob=0.5),
                Operation(index=2, opcode=opcode("jump"), exit_prob=0.5),
            ]
        )
        assert g.branches() == [1, 2]
