"""End-to-end tests for the Balance scheduler."""

import pytest

from repro.bounds.superblock_bounds import BoundSuite
from repro.core.balance import balance_schedule
from repro.core.config import ABLATION_GRID, BALANCE, HELP, BalanceConfig
from repro.ir.examples import figure1, figure2, figure3, figure4
from repro.machine.machine import FS4, GP1, GP2, GP4
from repro.schedulers.base import schedule
from repro.schedulers.schedule import validate_schedule


class TestBalanceOnPaperExamples:
    def test_fig1_optimal(self):
        s = schedule(figure1(), GP2, "balance")
        assert (s.issue[3], s.issue[16]) == (2, 8)

    def test_fig2_optimal_observation1(self):
        """Balance schedules compatible needs: {0 or 1 or 2} + op 4."""
        s = schedule(figure2(), GP2, "balance")
        assert s.issue[4] == 0
        assert (s.issue[3], s.issue[6]) == (2, 3)

    def test_fig3_optimal_observation2(self):
        """Balance (RC bounds) beats Help (DC bounds) on Figure 3."""
        sb = figure3()
        balance = schedule(sb, GP2, "balance")
        help_s = schedule(sb, GP2, "help")
        assert balance.issue[4] == 0
        assert balance.issue[9] == 5
        assert balance.wct < help_s.wct

    @pytest.mark.parametrize("prob,expect", [(0.2, (5, 9)), (0.7, (3, 11))])
    def test_fig4_tradeoff_observation3(self, prob, expect):
        """Balance follows the pairwise tradeoff as P crosses 0.5."""
        sb = figure4(prob)
        s = schedule(sb, GP2, "balance")
        assert (s.issue[6], s.issue[18]) == expect


class TestBalanceOnCorpus:
    def test_valid_schedules_everywhere(self, tiny_corpus, any_machine):
        for sb in tiny_corpus.superblocks[:6]:
            s = schedule(sb, any_machine, "balance")
            validate_schedule(sb, any_machine, s)

    def test_never_beats_tightest_bound(self, tiny_corpus):
        for sb in tiny_corpus:
            suite = BoundSuite(sb, FS4)
            bound = suite.compute().tightest
            s = schedule(sb, FS4, "balance", suite=suite, validate=False)
            assert s.wct >= bound - 1e-9

    def test_balance_dominates_help_in_aggregate(self, small_corpus):
        """Table 3's headline: Balance beats Help (and the others)."""
        totals = {"balance": 0.0, "help": 0.0, "cp": 0.0, "sr": 0.0}
        for sb in small_corpus:
            for name in totals:
                totals[name] += schedule(sb, FS4, name, validate=False).wct
        assert totals["balance"] <= totals["help"] + 1e-9
        assert totals["balance"] <= totals["cp"] + 1e-9
        assert totals["balance"] <= totals["sr"] + 1e-9

    def test_reusing_suite_matches_fresh(self, tiny_corpus):
        sb = tiny_corpus[0]
        suite = BoundSuite(sb, GP2)
        a = schedule(sb, GP2, "balance", suite=suite)
        b = schedule(sb, GP2, "balance")
        assert a.issue == b.issue


class TestAblationConfigs:
    @pytest.mark.parametrize(
        "config", ABLATION_GRID, ids=lambda c: c.label()
    )
    def test_every_config_produces_valid_schedules(self, config, tiny_corpus):
        for sb in tiny_corpus.superblocks[:4]:
            s = balance_schedule(sb, GP2, config)
            validate_schedule(sb, GP2, s)

    def test_help_config_equals_help_scheduler(self, tiny_corpus):
        for sb in tiny_corpus.superblocks[:6]:
            a = balance_schedule(sb, FS4, HELP)
            b = schedule(sb, FS4, "help")
            assert a.issue == b.issue

    def test_per_cycle_update_weakly_worse(self, small_corpus):
        """Per-op updates are the paper's biggest win; per-cycle updating
        should not do better in aggregate."""
        per_op = per_cycle = 0.0
        cfg_cycle = BalanceConfig(update_per_op=False)
        for sb in small_corpus.superblocks[:24]:
            per_op += balance_schedule(sb, FS4, BALANCE, validate=False).wct
            per_cycle += balance_schedule(
                sb, FS4, cfg_cycle, validate=False
            ).wct
        assert per_op <= per_cycle + 1e-9

    def test_bound_component_helps_on_fig3(self):
        """Observation 2 materialized: RC bounds fix the Figure 3 miss."""
        sb = figure3()
        no_bound = balance_schedule(
            sb, GP2, BalanceConfig(use_rc_bounds=False, tradeoff=False)
        )
        with_bound = balance_schedule(
            sb, GP2, BalanceConfig(use_rc_bounds=True, tradeoff=False)
        )
        assert with_bound.wct <= no_bound.wct

    def test_heuristic_name_label(self):
        sb = figure2()
        s = balance_schedule(sb, GP2, BalanceConfig(update_per_op=False))
        assert s.heuristic == "HlpDel+Bound+Tradeoff+perCycle"
        s2 = balance_schedule(sb, GP2)
        assert s2.heuristic == "balance"
