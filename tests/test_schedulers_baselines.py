"""Tests for the baseline schedulers: CP, SR, G*, DHASY, Best, registry."""

import pytest

from repro.ir.examples import figure1, figure2
from repro.machine.machine import FS4, GP1, GP2, GP4
from repro.schedulers.base import get_scheduler, schedule, scheduler_names
from repro.schedulers.gstar import gstar_tiers
from repro.schedulers.schedule import validate_schedule


ALL_NAMES = ("cp", "sr", "gstar", "dhasy", "help", "balance", "best")


class TestRegistry:
    def test_all_paper_heuristics_registered(self):
        names = scheduler_names()
        for n in ALL_NAMES + ("optimal",):
            assert n in names

    def test_unknown_scheduler_raises(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            get_scheduler("wizard")

    def test_schedule_dispatch(self, two_exit_sb):
        s = schedule(two_exit_sb, GP2, "cp")
        assert s.heuristic == "cp"


class TestSchedulesAreValid:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_valid_on_corpus(self, name, tiny_corpus, any_machine):
        for sb in tiny_corpus.superblocks[:6]:
            s = get_scheduler(name)(sb, any_machine)
            validate_schedule(sb, any_machine, s)


class TestCharacterizations:
    def test_cp_biased_to_last_exit(self):
        """Figure 1: CP delays the side exit, SR does not (Section 2)."""
        sb = figure1()
        cp = schedule(sb, GP2, "cp")
        sr = schedule(sb, GP2, "sr")
        assert cp.issue[3] > sr.issue[3]
        assert sr.issue[3] == 2  # side exit as early as possible
        assert sr.issue[16] == 8  # final exit also at its bound

    def test_sr_weakest_on_wide_machines(self, small_corpus):
        """On GP4 CP should (weakly) beat SR in aggregate WCT."""
        cp_total = sr_total = 0.0
        for sb in small_corpus.superblocks[:24]:
            cp_total += schedule(sb, GP4, "cp", validate=False).wct
            sr_total += schedule(sb, GP4, "sr", validate=False).wct
        assert cp_total <= sr_total

    def test_cp_weakest_on_narrow_machines(self, small_corpus):
        """On GP1 SR should (weakly) beat CP in aggregate WCT."""
        cp_total = sr_total = 0.0
        for sb in small_corpus.superblocks[:24]:
            cp_total += schedule(sb, GP1, "cp", validate=False).wct
            sr_total += schedule(sb, GP1, "sr", validate=False).wct
        assert sr_total <= cp_total

    def test_dhasy_between_cp_and_sr_on_fig1(self):
        sb = figure1()
        dh = schedule(sb, GP2, "dhasy")
        assert 2 <= dh.issue[3] <= 5

    def test_gstar_matches_cp_on_fig1(self):
        """The paper: in Figure 1 only the last branch is critical, so G*
        produces the same schedule as Critical Path."""
        sb = figure1()
        assert schedule(sb, GP2, "gstar").wct <= schedule(sb, GP2, "cp").wct

    def test_gstar_tiers_cover_all_ops(self, two_exit_sb):
        tiers = gstar_tiers(two_exit_sb, GP2)
        assert len(tiers) == two_exit_sb.num_operations
        assert min(tiers) == 0

    def test_gstar_tier_respects_retirement(self):
        sb = figure2()
        tiers = gstar_tiers(sb, GP1)
        # Ops retired with the side exit never outrank it.
        assert tiers[3] <= tiers[6]


class TestBest:
    def test_best_envelope_never_worse_than_primaries(self, tiny_corpus):
        for sb in tiny_corpus.superblocks[:8]:
            best = schedule(sb, FS4, "best")
            for name in ("cp", "sr", "gstar", "dhasy", "help", "balance"):
                assert best.wct <= schedule(sb, FS4, name, validate=False).wct + 1e-9

    def test_best_reports_winner(self, two_exit_sb):
        best = schedule(two_exit_sb, GP2, "best")
        assert best.heuristic == "best"
        assert best.stats["candidates"] == 127
        assert "winner" in best.stats

    def test_best_without_primaries(self, two_exit_sb):
        best = schedule(two_exit_sb, GP2, "best", include_primaries=False)
        assert best.stats["candidates"] == 121
