"""Unit tests for the machine model (configs, resources, reservations)."""

import pytest

from repro.ir.operation import OpClass, Operation, opcode
from repro.machine.machine import (
    FS4,
    FS6,
    FS8,
    GP1,
    GP2,
    GP4,
    PAPER_MACHINES,
    MachineConfig,
    machine_by_name,
)
from repro.machine.reservation import ReservationTable
from repro.machine.resources import GENERAL_PURPOSE, ResourceVector


class TestPaperConfigs:
    def test_paper_machine_count(self):
        assert len(PAPER_MACHINES) == 6

    def test_gp_widths(self):
        assert GP1.width == 1
        assert GP2.width == 2
        assert GP4.width == 4

    def test_fs_mixes(self):
        """Section 6: FS4=(1,1,1,1), FS6=(2,2,1,1), FS8=(3,2,2,1)."""
        assert FS4.units == {"int": 1, "mem": 1, "float": 1, "branch": 1}
        assert FS6.units == {"int": 2, "mem": 2, "float": 1, "branch": 1}
        assert FS8.units == {"int": 3, "mem": 2, "float": 2, "branch": 1}
        assert FS4.width == 4
        assert FS6.width == 6
        assert FS8.width == 8

    def test_gp_maps_everything_to_one_pool(self):
        load = Operation(index=0, opcode=opcode("load"))
        br = Operation(index=1, opcode=opcode("branch"), exit_prob=1.0)
        assert GP2.resource_of(load) == GENERAL_PURPOSE
        assert GP2.resource_of(br) == GENERAL_PURPOSE

    def test_fs_maps_by_class(self):
        load = Operation(index=0, opcode=opcode("load"))
        fdiv = Operation(index=1, opcode=opcode("fdiv"))
        assert FS4.resource_of(load) == "mem"
        assert FS4.resource_of(fdiv) == "float"

    def test_machine_by_name(self):
        assert machine_by_name("fs6") is FS6
        assert machine_by_name("GP1") is GP1
        with pytest.raises(KeyError, match="unknown machine"):
            machine_by_name("VLIW9000")

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(name="bad", units={})
        with pytest.raises(ValueError):
            MachineConfig(name="bad", units={"int": 0})
        with pytest.raises(ValueError, match="map op classes"):
            MachineConfig(name="bad", units={"int": 2})  # no mem/float/branch

    def test_demand_of(self):
        ops = [
            Operation(index=0, opcode=opcode("add")),
            Operation(index=1, opcode=opcode("add")),
            Operation(index=2, opcode=opcode("load")),
        ]
        demand = FS4.demand_of(ops)
        assert demand.get("int") == 2
        assert demand.get("mem") == 1


class TestResourceVector:
    def test_fits_in(self):
        assert ResourceVector({"int": 2}).fits_in(ResourceVector({"int": 3}))
        assert not ResourceVector({"int": 4}).fits_in(ResourceVector({"int": 3}))
        assert ResourceVector().fits_in(ResourceVector())

    def test_of_classes(self):
        vec = ResourceVector.of_classes(["int", "int", "mem"])
        assert vec.get("int") == 2
        assert vec.total() == 3

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector({"int": -1})

    def test_copy_is_independent(self):
        a = ResourceVector({"int": 1})
        b = a.copy()
        b.add("int")
        assert a.get("int") == 1
        assert b.get("int") == 2

    def test_equality(self):
        assert ResourceVector({"int": 2}) == ResourceVector({"int": 2})
        assert ResourceVector({"int": 2}) != ResourceVector({"int": 1})


class TestReservationTable:
    def test_place_and_free(self):
        t = ReservationTable(GP2)
        assert t.free(0, GENERAL_PURPOSE) == 2
        t.place(0, GENERAL_PURPOSE)
        assert t.free(0, GENERAL_PURPOSE) == 1
        t.place(0, GENERAL_PURPOSE)
        assert not t.can_place(0, GENERAL_PURPOSE)

    def test_overplacement_raises(self):
        t = ReservationTable(GP1)
        t.place(0, GENERAL_PURPOSE)
        with pytest.raises(ValueError, match="no free"):
            t.place(0, GENERAL_PURPOSE)

    def test_release_undoes_place(self):
        t = ReservationTable(GP1)
        t.place(0, GENERAL_PURPOSE)
        t.release(0, GENERAL_PURPOSE)
        assert t.can_place(0, GENERAL_PURPOSE)
        with pytest.raises(ValueError):
            t.release(0, GENERAL_PURPOSE)

    def test_earliest_fit_skips_full_cycles(self):
        t = ReservationTable(GP1)
        t.place(0, GENERAL_PURPOSE)
        t.place(1, GENERAL_PURPOSE)
        assert t.earliest_fit(GENERAL_PURPOSE, 0) == 2

    def test_free_slots_window(self):
        t = ReservationTable(GP2)
        t.place(0, GENERAL_PURPOSE)
        # Cycles 0..2 on a 2-wide machine = 6 slots, 1 used.
        assert t.free_slots(GENERAL_PURPOSE, 0, 2) == 5
        assert t.free_slots(GENERAL_PURPOSE, 1, 2) == 4
        assert t.free_slots(GENERAL_PURPOSE, 2, 1) == 0  # empty window

    def test_free_slots_beyond_horizon(self):
        t = ReservationTable(FS4)
        assert t.free_slots("int", 0, 9) == 10

    def test_cycle_is_full(self):
        t = ReservationTable(GP1)
        assert not t.cycle_is_full(0)
        t.place(0, GENERAL_PURPOSE)
        assert t.cycle_is_full(0)

    def test_negative_cycle_rejected(self):
        t = ReservationTable(GP1)
        with pytest.raises(ValueError):
            t.used(-1, GENERAL_PURPOSE)

    def test_snapshot_free(self):
        t = ReservationTable(FS4)
        t.place(0, "int")
        snap = t.snapshot_free(0)
        assert snap == {"branch": 1, "float": 1, "int": 0, "mem": 1}
