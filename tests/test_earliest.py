"""Tests for the shared subgraph timing helpers (repro.bounds.earliest)."""

from repro.bounds.earliest import (
    deadlines_for_sink,
    dist_to_sink,
    earliest_with_release,
    subgraph_nodes,
)
from repro.ir.depgraph import DependenceGraph
from repro.ir.operation import Operation, opcode


def chain_graph():
    """0 -(2)-> 1 -> 2, plus a free op 3 feeding 2."""
    g = DependenceGraph(
        [Operation(index=i, opcode=opcode("add")) for i in range(4)]
    )
    g.add_edge(0, 1, 2)
    g.add_edge(1, 2, 1)
    # op 3 added after 2? indices must be forward: rebuild properly.
    return g


def diamond_graph():
    g = DependenceGraph(
        [Operation(index=i, opcode=opcode("add")) for i in range(4)]
    )
    g.add_edge(0, 1)
    g.add_edge(0, 2)
    g.add_edge(1, 3)
    g.add_edge(2, 3, 2)
    return g


class TestSubgraphNodes:
    def test_includes_sink_and_ancestors(self):
        g = diamond_graph()
        assert subgraph_nodes(g, 3) == [0, 1, 2, 3]
        assert subgraph_nodes(g, 1) == [0, 1]

    def test_topological_order(self):
        g = diamond_graph()
        nodes = subgraph_nodes(g, 3)
        positions = {v: i for i, v in enumerate(nodes)}
        for src, dst, _lat in g.edges():
            if src in positions and dst in positions:
                assert positions[src] < positions[dst]


class TestEarliestWithRelease:
    def test_plain_longest_path(self):
        g = diamond_graph()
        est = earliest_with_release(g, subgraph_nodes(g, 3), [0, 0, 0, 0])
        assert est == {0: 0, 1: 1, 2: 1, 3: 3}  # the lat-2 edge dominates

    def test_release_floors_propagate(self):
        g = diamond_graph()
        est = earliest_with_release(g, subgraph_nodes(g, 3), [0, 5, 0, 0])
        assert est[1] == 5
        assert est[3] == 6

    def test_release_dict_accepted(self):
        g = diamond_graph()
        est = earliest_with_release(
            g, subgraph_nodes(g, 3), {0: 1, 1: 0, 2: 0, 3: 0}
        )
        assert est[0] == 1
        assert est[3] == 4


class TestDistToSink:
    def test_longest_distances(self):
        g = diamond_graph()
        dist = dist_to_sink(g, 3, subgraph_nodes(g, 3))
        assert dist == {3: 0, 2: 2, 1: 1, 0: 3}

    def test_single_node(self):
        g = diamond_graph()
        assert dist_to_sink(g, 0, [0]) == {0: 0}


class TestDeadlines:
    def test_deadlines_from_distances(self):
        g = diamond_graph()
        nodes = subgraph_nodes(g, 3)
        dist = dist_to_sink(g, 3, nodes)
        late = deadlines_for_sink(3, dist)
        assert late == {3: 3, 2: 1, 1: 2, 0: 0}
