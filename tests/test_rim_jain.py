"""Unit tests for the Rim & Jain relaxation solver and slot allocator."""

import pytest

from repro.bounds.instrumentation import Counters
from repro.bounds.rim_jain import (
    SlotAllocator,
    rim_jain_sink_bound,
    solve_relaxation,
)
from repro.machine.machine import FS4, GP2
from repro.machine.resources import GENERAL_PURPOSE


class TestSlotAllocator:
    def test_allocates_in_order_when_free(self):
        a = SlotAllocator(units=2)
        assert a.allocate(0) == 0
        assert a.allocate(0) == 0
        assert a.allocate(0) == 1  # cycle 0 full

    def test_respects_release_time(self):
        a = SlotAllocator(units=1)
        assert a.allocate(5) == 5
        assert a.allocate(0) == 0

    def test_skip_pointers_jump_full_cycles(self):
        a = SlotAllocator(units=1)
        for expect in range(4):
            assert a.allocate(0) == expect

    def test_negative_release_clamped(self):
        a = SlotAllocator(units=1)
        assert a.allocate(-3) == 0

    def test_zero_units_rejected(self):
        with pytest.raises(ValueError):
            SlotAllocator(units=0)

    def test_used_in(self):
        a = SlotAllocator(units=2)
        a.allocate(0)
        assert a.used_in(0) == 1
        assert a.used_in(1) == 0


class TestRelaxation:
    def test_no_miss_when_capacity_sufficient(self):
        ops = [0, 1]
        early = {0: 0, 1: 0}
        late = {0: 1, 1: 1}
        rclass = {0: GENERAL_PURPOSE, 1: GENERAL_PURPOSE}
        miss, placements = solve_relaxation(ops, early, late, rclass, GP2)
        assert miss == 0
        assert placements == {0: 0, 1: 0}

    def test_deadline_miss_measured(self):
        # 4 unit ops, all due by cycle 1, on a 1-slot-per-cycle class.
        ops = list(range(4))
        early = dict.fromkeys(ops, 0)
        late = dict.fromkeys(ops, 1)
        rclass = dict.fromkeys(ops, "int")
        miss, placements = solve_relaxation(ops, early, late, rclass, FS4)
        assert miss == 2  # last op lands in cycle 3, deadline 1
        assert sorted(placements.values()) == [0, 1, 2, 3]

    def test_edf_order_breaks_ties_by_early_then_index(self):
        ops = [0, 1]
        early = {0: 1, 1: 0}
        late = {0: 2, 1: 2}
        rclass = dict.fromkeys(ops, "int")
        _miss, placements = solve_relaxation(ops, early, late, rclass, FS4)
        # op 1 (earlier release) is processed first.
        assert placements[1] == 0
        assert placements[0] == 1

    def test_multiple_resource_classes_independent(self):
        ops = [0, 1]
        early = {0: 0, 1: 0}
        late = {0: 0, 1: 0}
        rclass = {0: "int", 1: "mem"}
        miss, placements = solve_relaxation(ops, early, late, rclass, FS4)
        assert miss == 0
        assert placements == {0: 0, 1: 0}

    def test_counters_count_placements(self):
        counters = Counters()
        ops = [0, 1, 2]
        solve_relaxation(
            ops,
            dict.fromkeys(ops, 0),
            dict.fromkeys(ops, 9),
            dict.fromkeys(ops, "int"),
            FS4,
            counters,
            counter_prefix="t",
        )
        assert counters.get("t.place") == 3


class TestSinkBound:
    def test_bound_is_est_plus_miss(self):
        # Figure 1 flavour: 16 unit preds + sink on a 2-wide machine, all
        # deadlines = dependence lates that assume a 7-cycle chain.
        ops = list(range(17))
        early = dict.fromkeys(ops, 0)
        late = dict.fromkeys(ops, 7)
        late[16] = 7
        rclass = dict.fromkeys(ops, GENERAL_PURPOSE)
        result = rim_jain_sink_bound(ops, early, late, 7, rclass, GP2)
        # 17 ops / width 2 -> last lands at cycle 8, missing by 1.
        assert result.max_miss == 1
        assert result.bound == 8

    def test_bound_equals_est_when_resources_free(self):
        ops = [0]
        result = rim_jain_sink_bound(
            ops, {0: 3}, {0: 3}, 3, {0: "int"}, FS4
        )
        assert result.bound == 3
        assert result.max_miss == 0


class TestNonPipelinedPlacements:
    def test_multi_unit_class_reports_min_consistent_issue(self):
        """Two urgent unit ops fill cycle 0, pushing the occupancy-2
        op's piece 0 into cycle 1 — where piece 1 (release 1) also
        lands on the second unit. The issue-slot estimate must be
        min(1 - 0, 1 - 1) = 0, the earliest issue consistent with
        *every* placed piece, not piece 0's slot (1)."""
        from types import SimpleNamespace

        machine = SimpleNamespace(units_of=lambda name: 2)
        miss, placements = solve_relaxation(
            [0, 1, 2],
            {0: 0, 1: 0, 2: 0},
            {0: 0, 1: 0, 2: 5},
            {0: "blk", 1: "blk", 2: "blk"},
            machine,
            occupancy={2: 2},
        )
        assert miss == 0
        assert placements == {0: 0, 1: 0, 2: 0}

    def test_single_unit_class_reports_piece_zero_slot(self):
        """With one unit the pieces serialize, so piece 0's slot is the
        minimum and the estimate stays non-negative."""
        from types import SimpleNamespace

        machine = SimpleNamespace(units_of=lambda name: 1)
        miss, placements = solve_relaxation(
            [0, 1],
            {0: 0, 1: 0},
            {0: 0, 1: 4},
            {0: "blk", 1: "blk"},
            machine,
            occupancy={1: 3},
        )
        assert miss == 0
        # op 0 takes slot 0 (deadline first); op 1's pieces land 1,2,3.
        assert placements == {0: 0, 1: 1}
