"""Tests for the differential verification subsystem (repro.verify).

Includes the pinned minimal counterexamples for the bugs the fuzzer
flushed out while the subsystem was built (docs/verification.md tells the
story); they must stay here even if the fuzz corpus changes.
"""

import pytest

from repro.ir.serialize import superblock_from_dict
from repro.ir.validate import validate_superblock
from repro.machine.machine import GP1, GP2
from repro.schedulers.base import schedule as run_sched
from repro.schedulers.ilp import ilp_schedule
from repro.schedulers.optimal import optimal_schedule
from repro.schedulers.schedule import validate_schedule
from repro.verify import (
    FAMILIES,
    VerifyConfig,
    fuzz_cases,
    machine_from_dict,
    machine_to_dict,
    minimize_superblock,
    run_verify,
)
from repro.verify.oracles import check_bounds, check_sim, exact_wct
from repro.verify.runner import render_report


# The minimized fuzz case (seed 2) that exposed the unsound default ILP
# horizon: the WCT optimum issues the final jump at cycle 12, one past the
# best heuristic schedule's length, so a heuristic-length horizon excluded
# the true optimum and the "exact" reference reported an inflated WCT.
ILP_HORIZON_CASE = {
    "name": "fuzz022128870",
    "exec_freq": 1.0,
    "source": "",
    "operations": [
        {"opcode": "sub"},
        {"opcode": "fdiv"},
        {"opcode": "branch", "exit_prob": 0.438527},
        {"opcode": "branch", "exit_prob": 0.241929, "block": 1},
        {"opcode": "jump", "exit_prob": 0.319544, "block": 3},
    ],
    "edges": [[0, 1, 1], [1, 4, 9], [2, 3, 1], [3, 4, 1]],
}

# Same root cause on a blocking machine, where the ILP is the *only* exact
# reference (branch and bound rejects non-pipelined machines) — so the
# inflated optimum made every validated heuristic look "better than
# optimal".
ILP_HORIZON_BLOCKING_CASE = {
    "name": "fuzz487637280",
    "exec_freq": 1.0,
    "source": "",
    "operations": [
        {"opcode": "branch", "exit_prob": 0.595001},
        {"opcode": "mov", "block": 1},
        {"opcode": "branch", "exit_prob": 0.126524, "block": 1},
        {"opcode": "fdiv", "block": 2},
        {"opcode": "jump", "exit_prob": 0.278475, "block": 3},
    ],
    "edges": [[0, 2, 1], [1, 3, 1], [2, 4, 1], [3, 4, 9]],
}
ILP_HORIZON_BLOCKING_MACHINE = {
    "name": "GP1-Bfdiv2store2",
    "units": {"gp": 1},
    "occupancy": {"fdiv": 2, "store": 2},
}


class TestIlpHorizonRegression:
    def test_ilp_matches_branch_and_bound_on_pinned_case(self):
        sb = superblock_from_dict(ILP_HORIZON_CASE)
        ilp = ilp_schedule(sb, GP1)
        bnb = optimal_schedule(sb, GP1)
        assert ilp.wct == pytest.approx(bnb.wct)
        assert ilp.wct == pytest.approx(5.076457, abs=1e-6)

    def test_default_horizon_admits_the_longer_optimum(self):
        # The optimum needs 13 cycles; the buggy heuristic-length default
        # was 12. The serial bound must cover it.
        sb = superblock_from_dict(ILP_HORIZON_CASE)
        ilp = ilp_schedule(sb, GP1)
        assert ilp.stats["horizon"] >= 13
        assert max(ilp.issue.values()) == 12

    def test_no_heuristic_beats_ilp_on_pinned_blocking_case(self):
        sb = superblock_from_dict(ILP_HORIZON_BLOCKING_CASE)
        machine = machine_from_dict(ILP_HORIZON_BLOCKING_MACHINE)
        ilp = ilp_schedule(sb, machine)
        validate_schedule(sb, machine, ilp)
        for heuristic in ("sr", "gstar", "balance"):
            s = run_sched(sb, machine, heuristic)
            validate_schedule(sb, machine, s)
            assert ilp.wct <= s.wct + 1e-9, heuristic

    def test_explicit_short_horizon_still_respected(self):
        # An explicit horizon is the caller's contract; only the *default*
        # had to change.
        sb = superblock_from_dict(ILP_HORIZON_CASE)
        s = ilp_schedule(sb, GP1, horizon=20)
        assert s.stats["horizon"] == 20


class TestGenerators:
    def test_fuzz_cases_are_valid_and_deterministic(self):
        a = fuzz_cases(30, seed=5)
        b = fuzz_cases(30, seed=5)
        assert len(a) == 30
        for ca, cb in zip(a, b):
            validate_superblock(ca.sb)
            assert ca.sb.name == cb.sb.name
            assert ca.machine.name == cb.machine.name
            assert list(ca.sb.graph.edges()) == list(cb.sb.graph.edges())

    def test_fuzz_covers_the_corners(self):
        cases = fuzz_cases(120, seed=0)
        sbs = [c.sb for c in cases]
        assert any(
            sb.weights[b] == 0.0 for sb in sbs for b in sb.branches[:-1]
        ), "no zero-probability exit generated"
        assert any(sb.num_branches == 1 for sb in sbs)
        assert any(not c.machine.fully_pipelined for c in cases)
        assert any(c.machine.occupancy and "-B" in c.machine.name for c in cases)

    def test_machine_round_trip(self):
        cases = fuzz_cases(40, seed=3)
        for c in cases:
            m = machine_from_dict(machine_to_dict(c.machine))
            assert m.units == c.machine.units
            assert dict(m.occupancy) == dict(c.machine.occupancy)


class TestOracles:
    def test_exact_wct_agrees_with_bnb_on_pipelined(self):
        sb = superblock_from_dict(ILP_HORIZON_CASE)
        wct, findings = exact_wct(sb, GP1)
        assert findings == []
        assert wct == pytest.approx(optimal_schedule(sb, GP1).wct)

    def test_bounds_oracle_flags_an_unsound_bound(self):
        # Feed an artificially low "optimum": every bound above it must be
        # reported, proving the oracle actually bites.
        sb = superblock_from_dict(ILP_HORIZON_CASE)
        findings, _ = check_bounds(sb, GP1, opt_wct=0.5, feasible_wct=None)
        assert findings, "no bound exceeded an impossible optimum of 0.5"
        assert all(f.oracle == "bounds" for f in findings)

    def test_sim_oracle_flags_a_wrong_wct(self):
        sb = superblock_from_dict(ILP_HORIZON_CASE)
        s = run_sched(sb, GP1, "sr")
        wrong = s.replace(wct=s.wct + 2.0) if hasattr(s, "replace") else None
        if wrong is None:
            import dataclasses

            wrong = dataclasses.replace(s, wct=s.wct + 2.0)
        findings = check_sim(sb, GP1, wrong, runs=800, seed=1)
        assert findings, "sim oracle accepted a schedule with a wrong WCT"


class TestRunner:
    def test_quick_profile_is_clean(self):
        report = run_verify(VerifyConfig.quick())
        assert report.ok, render_report(report)
        assert report.cases == 25
        assert report.checked_exact > 0

    def test_family_restriction(self):
        cfg = VerifyConfig(fuzz=4, families=("legality",), sim_runs=100)
        report = run_verify(cfg)
        assert report.ok
        assert report.cases == 4

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown oracle"):
            VerifyConfig(families=("legality", "nope"))

    def test_families_constant_matches_config_default(self):
        assert VerifyConfig().families == FAMILIES

    def test_render_report_mentions_outcome(self):
        report = run_verify(VerifyConfig(fuzz=2, sim_runs=100))
        text = render_report(report)
        assert "2 cases" in text
        assert "no soundness violations" in text


class TestMinimize:
    def test_shrinks_while_predicate_holds(self):
        cases = fuzz_cases(20, seed=1, max_ops=14)
        sb = max((c.sb for c in cases), key=lambda s: s.num_operations)
        small = minimize_superblock(sb, lambda s: s.num_branches >= 1)
        validate_superblock(small)
        assert small.num_operations <= sb.num_operations
        # A single jump is the fixed point of "at least one branch".
        assert small.num_operations == 1

    def test_rejects_non_failing_seed(self):
        cases = fuzz_cases(1, seed=0)
        with pytest.raises(ValueError, match="predicate does not hold"):
            minimize_superblock(cases[0].sb, lambda s: False)

    def test_preserves_failure_specific_structure(self):
        cases = fuzz_cases(30, seed=2, max_ops=12)
        sb = next(c.sb for c in cases if c.sb.num_branches >= 3)
        small = minimize_superblock(sb, lambda s: s.num_branches >= 3)
        validate_superblock(small)
        assert small.num_branches == 3

    def test_minimized_blocks_still_exercise_the_oracles(self):
        # The shrunk pinned case must still round-trip through the full
        # oracle stack without spurious findings.
        for data, machine in (
            (ILP_HORIZON_CASE, GP1),
            (
                ILP_HORIZON_BLOCKING_CASE,
                machine_from_dict(ILP_HORIZON_BLOCKING_MACHINE),
            ),
        ):
            sb = superblock_from_dict(data)
            wct, findings = exact_wct(sb, machine)
            assert wct is not None
            assert findings == []
            bound_findings, _ = check_bounds(
                sb, machine, wct, feasible_wct=None
            )
            assert bound_findings == []


class TestCrossSchedulerSoundness:
    def test_every_bound_below_optimal_on_gp2_fuzz(self):
        for case in fuzz_cases(12, seed=9, allow_blocking=False):
            wct, findings = exact_wct(case.sb, GP2)
            assert findings == []
            if wct is None:
                continue
            bound_findings, _ = check_bounds(case.sb, GP2, wct, None)
            assert bound_findings == [], case.sb.name


class TestLedgerFamily:
    def test_ledger_family_listed(self):
        assert "ledger" in FAMILIES

    def test_ledger_oracle_passes_on_fuzz_corpus(self):
        """Acceptance: evaluation is bit-identical — results, counters,
        span inventories — with a run recorder installed or not, and the
        recorder captures a correct block row for every case."""
        report = run_verify(
            VerifyConfig(fuzz=8, seed=0, families=("ledger",))
        )
        assert report.cases == 8
        assert report.ok, render_report(report)

    def test_ledger_oracle_flags_nothing_on_blocking_machines(self):
        report = run_verify(
            VerifyConfig(
                fuzz=4, seed=3, families=("ledger",), allow_blocking=True,
            )
        )
        assert report.ok, render_report(report)
