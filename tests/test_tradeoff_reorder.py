"""Targeted tests for Section 5.4's branch-order reordering.

The swap path — where the pairwise bound blames a selected branch and the
delayed branch gets priority on retry — is driven here with synthetic
needs and pair bounds so each code path is exercised deterministically.
"""

from repro.bounds.pairwise import PairBound, TradeoffPoint
from repro.core.branch_select import select_with_tradeoffs
from repro.core.dynamic_bounds import BranchNeeds
from repro.ir.builder import SuperblockBuilder
from repro.machine.machine import GP2


def pair(i, j, x, y):
    return PairBound(
        i=i, j=j, x=x, y=y,
        curve=(TradeoffPoint(1, x, y),),
        conflict_free=False,
    )


class FakeState:
    """Minimal DynamicBounds stand-in with injectable needs."""

    def __init__(self, needs, rclass="gp"):
        self.needs = needs
        self._rclass = rclass

    def resource_class(self, _v):
        return self._rclass


def two_branch_sb(p=0.3):
    return (
        SuperblockBuilder("t")
        .op("add")
        .exit(p, preds=[0])
        .op("add")
        .last_exit(preds=[2])
    )


def needs(branch, early, each=(), one=None):
    return BranchNeeds(
        branch=branch,
        early=early,
        late={},
        need_each=frozenset(each),
        need_one={r: frozenset(s) for r, s in (one or {}).items()},
    )


class TestDelayedOk:
    def test_free_delay_detected(self):
        """The pair bound proves the delayed branch lands later anyway."""
        sb = two_branch_sb(0.3)
        b_side, b_final = sb.branches
        state = FakeState({
            b_side: needs(b_side, early=2, each={0}),
            b_final: needs(b_final, early=5, each={2}),
        })
        # Conflicting NeedEach on a 1-slot budget: one branch gets delayed.
        pair_bounds = {
            (b_side, b_final): pair(b_side, b_final, x=6, y=5)
        }
        sel = select_with_tradeoffs(
            sb, GP2, state, [b_side, b_final], {"gp": 1},
            lambda v: True, pair_bounds,
        )
        # The final branch (heavier, 0.7) is selected first; the side
        # branch is delayed — and the pair bound (side >= 6 > early+1)
        # marks the delay as free.
        assert b_final in sel.selected
        assert b_side in sel.delayed
        assert b_side in sel.delayed_ok
        assert sel.rank > 0

    def test_costly_delay_not_marked_ok(self):
        sb = two_branch_sb(0.3)
        b_side, b_final = sb.branches
        state = FakeState({
            b_side: needs(b_side, early=2, each={0}),
            b_final: needs(b_final, early=5, each={2}),
        })
        # Bound says the side exit could have issued at 2: delay costs.
        pair_bounds = {(b_side, b_final): pair(b_side, b_final, x=2, y=5)}
        sel = select_with_tradeoffs(
            sb, GP2, state, [b_side, b_final], {"gp": 1},
            lambda v: True, pair_bounds,
        )
        assert b_side in sel.delayed
        assert b_side not in sel.delayed_ok


class TestSwap:
    def test_blamed_selected_branch_is_swapped(self):
        """When the bound blames the (earlier-processed) heavy branch, the
        retry gives the light branch priority — and keeps the better
        ranked selection."""
        sb = two_branch_sb(0.45)
        b_side, b_final = sb.branches
        state = FakeState({
            b_side: needs(b_side, early=2, each={0}),
            b_final: needs(b_final, early=5, each={2}),
        })
        # The pair bound says the *final* branch ends up at >= 7 anyway
        # (its early+1 = 6 <= 7), while the side exit's bound equals its
        # early: delaying the side exit is costly, delaying the final
        # branch is free -> swap the order.
        pair_bounds = {(b_side, b_final): pair(b_side, b_final, x=2, y=7)}
        sel = select_with_tradeoffs(
            sb, GP2, state, [b_side, b_final], {"gp": 1},
            lambda v: True, pair_bounds, max_reorders=2,
        )
        assert b_side in sel.selected
        assert b_final in sel.delayed
        assert b_final in sel.delayed_ok

    def test_no_pair_bounds_no_retries(self):
        sb = two_branch_sb(0.45)
        b_side, b_final = sb.branches
        state = FakeState({
            b_side: needs(b_side, early=2, each={0}),
            b_final: needs(b_final, early=5, each={2}),
        })
        sel = select_with_tradeoffs(
            sb, GP2, state, [b_side, b_final], {"gp": 1},
            lambda v: True, None,
        )
        # Weight order: the final branch (0.55) wins, side delayed, no
        # delayedOK without bounds.
        assert b_final in sel.selected
        assert sel.delayed_ok == set()
