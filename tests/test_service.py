"""Scheduling service: HTTP contract, error hardening, load harness.

Pins the tentpole contracts of ``repro serve``:

* **Bit-identity** — HTTP batch responses match direct
  ``evaluate_corpus`` calls exactly (results *and* trip counters), cold
  and warm, and the warm response really comes from the cache.
* **Hardening** — every protocol error path (malformed JSON, unknown
  machine, oversize batch/body, truncated upload, wrong method/path)
  answers a structured JSON error carrying a stable ``code``, never a
  stack trace, and never kills the server: each error test re-checks
  ``/healthz`` afterwards.
* **Recovery** — a ``WorkerCrashError`` mid-batch is retried once on
  fresh workers and the request still succeeds.
* **Observability** — ``/metrics`` emits valid Prometheus text
  exposition, per-request Chrome traces validate, and every request
  lands a readable ledger record.
* **Load harness** — the zipf loadgen reports zero failures and a warm
  hit-rate on a self-hosted server, and its history record carries the
  throughput/latency/hit-rate metrics the trend machinery gates on.
"""

from __future__ import annotations

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.cache.store import ResultCache
from repro.eval.sched_eval import evaluate_corpus
from repro.ir.serialize import superblock_to_dict
from repro.obs import ledger
from repro.obs.export import validate_chrome_trace, validate_prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.perf.runner import WorkerCrashError
from repro.service import protocol
from repro.service.app import SchedulerService, ServiceConfig
from repro.service.loadgen import (
    LoadgenConfig,
    build_templates,
    percentile,
    run_loadgen,
    zipf_weights,
)
from repro.service.server import ServiceServer
from repro.workloads.corpus import specint95_corpus

HEURISTICS = ("dhasy", "balance")


@pytest.fixture(scope="module")
def corpus():
    return specint95_corpus(scale=8, seed=11, max_ops=16)


@pytest.fixture
def server(tmp_path):
    """An in-process server with a fresh cache and ledger per test."""
    config = ServiceConfig(
        port=0,
        jobs=1,
        cache_dir=str(tmp_path / "cache"),
        ledger_dir=str(tmp_path / "ledger"),
    )
    srv = ServiceServer(config)
    srv.start()
    yield srv
    srv.stop()


def post(url: str, body: dict | bytes, raw: bool = False):
    """POST a batch; returns (status, decoded JSON body) even on 4xx/5xx."""
    data = body if raw else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        f"{url}/v1/batch",
        data=data,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def get(url: str, path: str):
    with urllib.request.urlopen(f"{url}{path}", timeout=10) as response:
        return response.status, response.read()


def batch_body(corpus, blocks=1, kind="schedule", machine="GP2", **extra):
    body = {
        "kind": kind,
        "machine": machine,
        "blocks": [
            superblock_to_dict(sb) for sb in corpus.superblocks[:blocks]
        ],
    }
    if kind == "schedule":
        body["heuristics"] = list(HEURISTICS)
    body.update(extra)
    return body


def healthy(server) -> bool:
    status, raw = get(server.url, "/healthz")
    return status == 200 and json.loads(raw)["status"] == "ok"


def reference(corpus, blocks=1, machine="GP2", heuristics=HEURISTICS):
    """Direct-library results+counters, JSON-normalized like the wire."""
    from repro import cache as result_cache
    from repro.machine.machine import machine_by_name

    registry = MetricsRegistry()
    with result_cache.disabled():
        summary = evaluate_corpus(
            corpus.superblocks[:blocks],
            machine_by_name(machine),
            heuristics=heuristics,
            include_triplewise=False,
            metrics=registry,
        )
    return json.loads(json.dumps({
        "results": [protocol.result_payload(r) for r in summary.results],
        "counters": registry.as_dict()["counters"],
    }))


# ---------------------------------------------------------------------------
# Happy path: bit-identity cold and warm
# ---------------------------------------------------------------------------
def test_healthz(server):
    status, raw = get(server.url, "/healthz")
    body = json.loads(raw)
    assert status == 200
    assert body["status"] == "ok"
    assert body["requests"] == 0
    assert body["cache"] and body["ledger"]


def test_batch_matches_direct_library_call(server, corpus):
    ref = reference(corpus, blocks=2)
    status, payload = post(server.url, batch_body(corpus, blocks=2))
    assert status == 200
    assert payload["schema_version"] == protocol.PROTOCOL_VERSION
    assert payload["kind"] == "schedule"
    assert payload["machine"] == "GP2"
    assert payload["results"] == ref["results"]
    assert payload["counters"] == ref["counters"]
    assert payload["cache"]["misses"] > 0 and payload["cache"]["hits"] == 0


def test_warm_response_identical_and_cached(server, corpus):
    body = batch_body(corpus, blocks=2)
    _, cold = post(server.url, body)
    status, warm = post(server.url, body)
    assert status == 200
    assert warm["results"] == cold["results"]
    assert warm["counters"] == cold["counters"]
    assert warm["cache"]["hits"] + warm["cache"]["memory_hits"] > 0
    assert warm["cache"]["misses"] == 0


def test_bounds_kind(server, corpus):
    ref = reference(corpus, heuristics=())
    status, payload = post(server.url, batch_body(corpus, kind="bounds"))
    assert status == 200
    assert payload["kind"] == "bounds"
    assert payload["results"] == ref["results"]
    assert payload["counters"] == ref["counters"]
    # A bounds result carries no heuristic columns.
    assert payload["results"][0]["wct"] == {}


def test_machine_by_dict(server, corpus):
    from repro.machine.machine import GP2
    from repro.verify.generators import machine_to_dict

    body = batch_body(corpus, machine=machine_to_dict(GP2))
    status, payload = post(server.url, body)
    assert status == 200
    assert payload["results"] == reference(corpus)["results"]


def test_trace_opt_in(server, corpus):
    status, payload = post(server.url, batch_body(corpus, trace=True))
    assert status == 200
    assert validate_chrome_trace(payload["trace"]) == []
    names = {
        e["name"] for e in payload["trace"]["traceEvents"]
        if e.get("ph") == "X"
    }
    assert "service.batch" in names
    # Without the flag no trace rides along.
    _, untraced = post(server.url, batch_body(corpus))
    assert "trace" not in untraced


def test_every_request_lands_a_ledger_record(server, corpus, tmp_path):
    post(server.url, batch_body(corpus))
    post(server.url, batch_body(corpus, kind="bounds"))
    records = ledger.load_ledger(
        ledger.ledger_path(str(tmp_path / "ledger"))
    )
    assert len(records) == 2
    assert [r["command"] for r in records] == ["serve", "serve"]
    assert records[0]["args"]["kind"] == "schedule"
    assert records[1]["args"]["kind"] == "bounds"
    assert records[0]["blocks"], "per-block detail missing from the record"


# ---------------------------------------------------------------------------
# Error hardening: structured errors, no traceback, no server death
# ---------------------------------------------------------------------------
def assert_error(status, payload, want_status, want_code):
    assert status == want_status
    assert payload["error"]["code"] == want_code
    assert "Traceback" not in json.dumps(payload)


def test_malformed_json(server):
    status, payload = post(server.url, b"{not json", raw=True)
    assert_error(status, payload, 400, "bad-json")
    assert healthy(server)


def test_non_object_body(server):
    status, payload = post(server.url, b"[1, 2]", raw=True)
    assert_error(status, payload, 400, "bad-request")
    assert healthy(server)


def test_unknown_machine(server, corpus):
    status, payload = post(
        server.url, batch_body(corpus, machine="Z999")
    )
    assert_error(status, payload, 400, "unknown-machine")
    assert "Z999" in payload["error"]["message"]
    assert healthy(server)


def test_unknown_heuristic(server, corpus):
    status, payload = post(
        server.url, batch_body(corpus, heuristics=["nope"])
    )
    assert_error(status, payload, 400, "unknown-heuristic")
    assert healthy(server)


def test_unknown_field(server, corpus):
    status, payload = post(server.url, batch_body(corpus, bogus=1))
    assert_error(status, payload, 400, "unknown-field")
    assert "bogus" in payload["error"]["message"]
    assert healthy(server)


def test_bad_superblock_names_index(server, corpus):
    body = batch_body(corpus)
    body["blocks"].append({"name": "broken"})
    status, payload = post(server.url, body)
    assert_error(status, payload, 400, "bad-superblock")
    assert "blocks[1]" in payload["error"]["message"]
    assert healthy(server)


def test_oversize_batch(tmp_path, corpus):
    srv = ServiceServer(ServiceConfig(port=0, max_blocks=2))
    srv.start()
    try:
        status, payload = post(srv.url, batch_body(corpus, blocks=3))
        assert_error(status, payload, 413, "batch-too-large")
        assert healthy(srv)
    finally:
        srv.stop()


def test_oversize_body(tmp_path, corpus):
    srv = ServiceServer(ServiceConfig(port=0, max_body_bytes=256))
    srv.start()
    try:
        status, payload = post(srv.url, batch_body(corpus))
        assert_error(status, payload, 413, "body-too-large")
        assert healthy(srv)
    finally:
        srv.stop()


def test_client_disconnect_mid_request(server, corpus):
    """A peer that hangs up mid-upload must not disturb the server."""
    body = json.dumps(batch_body(corpus)).encode("utf-8")
    sock = socket.create_connection((server.host, server.port), timeout=10)
    try:
        sock.sendall(
            b"POST /v1/batch HTTP/1.1\r\n"
            b"Host: x\r\nContent-Type: application/json\r\n"
            b"Content-Length: %d\r\n\r\n" % len(body)
        )
        sock.sendall(body[: len(body) // 2])  # half the promised bytes
    finally:
        sock.close()
    assert healthy(server)
    status, raw = get(server.url, "/metrics")
    assert b"service_client_disconnects_total" in raw
    # And a well-formed follow-up request still works.
    status, payload = post(server.url, batch_body(corpus))
    assert status == 200


def test_get_unknown_path_and_post_to_get_endpoint(server, corpus):
    try:
        get(server.url, "/nope")
        raise AssertionError("expected 404")
    except urllib.error.HTTPError as exc:
        assert exc.code == 404
        assert json.loads(exc.read())["error"]["code"] == "not-found"
    try:
        get(server.url, "/v1/batch")
        raise AssertionError("expected 405")
    except urllib.error.HTTPError as exc:
        assert exc.code == 405
        assert (
            json.loads(exc.read())["error"]["code"] == "method-not-allowed"
        )
    assert healthy(server)


def test_internal_error_leaks_no_traceback(server, corpus, monkeypatch):
    def boom(self, request):
        raise RuntimeError("secret internal detail")

    monkeypatch.setattr(SchedulerService, "_evaluate", boom)
    status, payload = post(server.url, batch_body(corpus))
    assert_error(status, payload, 500, "internal")
    assert "secret" not in json.dumps(payload)
    assert healthy(server)


# ---------------------------------------------------------------------------
# Worker-crash recovery
# ---------------------------------------------------------------------------
def test_worker_crash_retried_once(server, corpus, monkeypatch):
    import repro.eval.sched_eval as sched_eval

    real = sched_eval.evaluate_corpus
    calls = {"n": 0}

    def flaky(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 1:
            raise WorkerCrashError("worker 0 died (simulated)")
        return real(*args, **kwargs)

    monkeypatch.setattr(sched_eval, "evaluate_corpus", flaky)
    status, payload = post(server.url, batch_body(corpus))
    assert status == 200
    assert calls["n"] == 2
    assert payload["results"] == reference(corpus)["results"]
    assert payload["counters"] == reference(corpus)["counters"]
    status, raw = get(server.url, "/metrics")
    assert b"service_worker_crash_retries_total" in raw


def test_worker_crash_twice_answers_503(server, corpus, monkeypatch):
    import repro.eval.sched_eval as sched_eval

    def always_crash(*args, **kwargs):
        raise WorkerCrashError("worker 0 died (simulated)")

    monkeypatch.setattr(sched_eval, "evaluate_corpus", always_crash)
    status, payload = post(server.url, batch_body(corpus))
    assert_error(status, payload, 503, "worker-crash")
    assert healthy(server)


# ---------------------------------------------------------------------------
# /metrics exposition
# ---------------------------------------------------------------------------
def test_metrics_exposition_is_valid(server, corpus):
    post(server.url, batch_body(corpus))
    status, raw = get(server.url, "/metrics")
    text = raw.decode("utf-8")
    assert status == 200
    assert validate_prometheus_text(text) == []
    assert "repro_service_requests_total" in text
    assert "repro_service_request_seconds_seconds_total" in text
    assert "repro_service_cache_hit_rate" in text


def test_validate_prometheus_text_rejects_garbage():
    assert validate_prometheus_text("") == ["no samples in exposition"]
    problems = validate_prometheus_text("not a metric line at all{{{\n")
    assert any("malformed sample" in p for p in problems)
    problems = validate_prometheus_text('x_total{name="x"} 1\n')
    assert any("no preceding TYPE" in p for p in problems)


# ---------------------------------------------------------------------------
# Protocol unit coverage
# ---------------------------------------------------------------------------
def test_parse_batch_request_defaults(corpus):
    data = {
        "machine": "GP2",
        "blocks": [superblock_to_dict(corpus.superblocks[0])],
    }
    request = protocol.parse_batch_request(data)
    assert request.kind == "schedule"
    assert request.heuristics == protocol.DEFAULT_HEURISTICS
    assert not request.include_triplewise and not request.trace


def test_parse_batch_request_rejects_empty_heuristics(corpus):
    data = {
        "machine": "GP2",
        "blocks": [superblock_to_dict(corpus.superblocks[0])],
        "heuristics": [],
    }
    with pytest.raises(protocol.ProtocolError) as err:
        protocol.parse_batch_request(data)
    assert err.value.code == "bad-heuristics"


def test_parse_batch_request_missing_machine(corpus):
    with pytest.raises(protocol.ProtocolError) as err:
        protocol.parse_batch_request({"blocks": []})
    assert err.value.code == "bad-request"


# ---------------------------------------------------------------------------
# Load harness
# ---------------------------------------------------------------------------
def test_zipf_weights_skew():
    weights = zipf_weights(5, 1.0)
    assert weights[0] == 1.0
    assert weights == sorted(weights, reverse=True)
    with pytest.raises(ValueError):
        zipf_weights(0, 1.0)


def test_percentile():
    values = [float(v) for v in range(1, 101)]
    assert percentile(values, 0.50) == 51.0
    assert percentile(values, 0.99) == 99.0
    assert percentile([], 0.5) == 0.0


def test_build_templates_deterministic():
    config = LoadgenConfig(templates=6, scale=8, max_ops=16, seed=5)
    one, two = build_templates(config), build_templates(config)
    assert one == two
    assert len(one) == 6
    kinds = {t["kind"] for t in one}
    assert kinds == {"schedule", "bounds"}


def test_loadgen_self_hosted_and_history(tmp_path):
    config = LoadgenConfig(
        requests=20,
        concurrency=2,
        zipf=1.3,
        templates=4,
        scale=8,
        max_ops=12,
        seed=7,
        cache_dir=str(tmp_path / "cache"),
    )
    report = run_loadgen(config)
    assert report.ok and report.failed == 0
    assert report.requests == 20
    assert report.hit_rate > 0, "zipf repeats must warm the cache"
    payload = report.history_payload()
    assert payload["loadgen_throughput"]["unit"] == "req/s"
    assert payload["loadgen_p99_latency"]["unit"] == "ms"
    assert payload["loadgen_hit_rate"]["value"] == round(
        report.hit_rate, 6
    )
    from repro.obs.trend import append_record, load_history, make_record

    history = tmp_path / "history.jsonl"
    append_record(make_record(payload, label="loadgen"), history)
    records = load_history(history)
    assert records[0]["label"] == "loadgen"
    assert "loadgen_p50_latency" in records[0]["metrics"]


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
def test_cli_loadgen(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "report.json"
    history = tmp_path / "history.jsonl"
    rc = main([
        "loadgen", "--requests", "12", "--concurrency", "2",
        "--templates", "4", "--scale", "8", "--max-ops", "12",
        "--zipf", "1.3", "--min-hit-rate", "0.01",
        "--out", str(out), "--history", str(history),
    ])
    assert rc == 0
    captured = capsys.readouterr().out
    assert "0 failed" in captured
    report = json.loads(out.read_text())
    assert report["failed"] == 0
    assert history.exists()


def test_cli_serve_rejects_taken_port(corpus):
    from repro.cli import main

    srv = ServiceServer(ServiceConfig(port=0))
    srv.start()
    try:
        rc = main([
            "serve", "--port", str(srv.port), "--no-cache", "--no-ledger",
        ])
        assert rc == 1
    finally:
        srv.stop()


def test_service_cache_on_disk_is_real(server, corpus, tmp_path):
    post(server.url, batch_body(corpus))
    cache = ResultCache(str(tmp_path / "cache"))
    assert cache.summary()["entries"] > 0
