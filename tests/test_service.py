"""Scheduling service: HTTP contract, error hardening, load harness.

Pins the tentpole contracts of ``repro serve``:

* **Bit-identity** — HTTP batch responses match direct
  ``evaluate_corpus`` calls exactly (results *and* trip counters), cold
  and warm, and the warm response really comes from the cache.
* **Hardening** — every protocol error path (malformed JSON, unknown
  machine, oversize batch/body, truncated upload, wrong method/path)
  answers a structured JSON error carrying a stable ``code``, never a
  stack trace, and never kills the server: each error test re-checks
  ``/healthz`` afterwards.
* **Recovery** — a ``WorkerCrashError`` mid-batch is retried once on
  fresh workers and the request still succeeds.
* **Observability** — ``/metrics`` emits valid Prometheus text
  exposition, per-request Chrome traces validate, and every request
  lands a readable ledger record.
* **Load harness** — the zipf loadgen reports zero failures and a warm
  hit-rate on a self-hosted server, and its history record carries the
  throughput/latency/hit-rate metrics the trend machinery gates on.
"""

from __future__ import annotations

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.cache.store import ResultCache
from repro.eval.sched_eval import evaluate_corpus
from repro.ir.serialize import superblock_to_dict
from repro.obs import ledger
from repro.obs.export import validate_chrome_trace, validate_prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.perf.runner import WorkerCrashError
from repro.service import protocol
from repro.service.app import SchedulerService, ServiceConfig
from repro.service.loadgen import (
    LoadgenConfig,
    build_templates,
    percentile,
    percentile_nearest,
    run_loadgen,
    zipf_weights,
)
from repro.service.server import ServiceServer
from repro.workloads.corpus import specint95_corpus

HEURISTICS = ("dhasy", "balance")


@pytest.fixture(scope="module")
def corpus():
    return specint95_corpus(scale=8, seed=11, max_ops=16)


@pytest.fixture
def server(tmp_path):
    """An in-process server with a fresh cache and ledger per test."""
    config = ServiceConfig(
        port=0,
        jobs=1,
        cache_dir=str(tmp_path / "cache"),
        ledger_dir=str(tmp_path / "ledger"),
    )
    srv = ServiceServer(config)
    srv.start()
    yield srv
    srv.stop()


def post_full(
    url: str,
    body: dict | bytes,
    raw: bool = False,
    request_id: str | None = None,
):
    """POST a batch; returns (status, JSON body, response headers)."""
    data = body if raw else json.dumps(body).encode("utf-8")
    headers = {"Content-Type": "application/json"}
    if request_id is not None:
        headers["X-Request-Id"] = request_id
    request = urllib.request.Request(
        f"{url}/v1/batch", data=data, headers=headers, method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


def post(url: str, body: dict | bytes, raw: bool = False):
    """POST a batch; returns (status, decoded JSON body) even on 4xx/5xx."""
    status, payload, _ = post_full(url, body, raw=raw)
    return status, payload


def get(url: str, path: str):
    with urllib.request.urlopen(f"{url}{path}", timeout=10) as response:
        return response.status, response.read()


def batch_body(corpus, blocks=1, kind="schedule", machine="GP2", **extra):
    body = {
        "kind": kind,
        "machine": machine,
        "blocks": [
            superblock_to_dict(sb) for sb in corpus.superblocks[:blocks]
        ],
    }
    if kind == "schedule":
        body["heuristics"] = list(HEURISTICS)
    body.update(extra)
    return body


def healthy(server) -> bool:
    status, raw = get(server.url, "/healthz")
    return status == 200 and json.loads(raw)["status"] == "ok"


def reference(corpus, blocks=1, machine="GP2", heuristics=HEURISTICS):
    """Direct-library results+counters, JSON-normalized like the wire."""
    from repro import cache as result_cache
    from repro.machine.machine import machine_by_name

    registry = MetricsRegistry()
    with result_cache.disabled():
        summary = evaluate_corpus(
            corpus.superblocks[:blocks],
            machine_by_name(machine),
            heuristics=heuristics,
            include_triplewise=False,
            metrics=registry,
        )
    return json.loads(json.dumps({
        "results": [protocol.result_payload(r) for r in summary.results],
        "counters": registry.as_dict()["counters"],
    }))


# ---------------------------------------------------------------------------
# Happy path: bit-identity cold and warm
# ---------------------------------------------------------------------------
def test_healthz(server):
    status, raw = get(server.url, "/healthz")
    body = json.loads(raw)
    assert status == 200
    assert body["status"] == "ok"
    assert body["requests"] == 0
    assert body["cache"] and body["ledger"]


def test_batch_matches_direct_library_call(server, corpus):
    ref = reference(corpus, blocks=2)
    status, payload = post(server.url, batch_body(corpus, blocks=2))
    assert status == 200
    assert payload["schema_version"] == protocol.PROTOCOL_VERSION
    assert payload["kind"] == "schedule"
    assert payload["machine"] == "GP2"
    assert payload["results"] == ref["results"]
    assert payload["counters"] == ref["counters"]
    assert payload["cache"]["misses"] > 0 and payload["cache"]["hits"] == 0


def test_warm_response_identical_and_cached(server, corpus):
    body = batch_body(corpus, blocks=2)
    _, cold = post(server.url, body)
    status, warm = post(server.url, body)
    assert status == 200
    assert warm["results"] == cold["results"]
    assert warm["counters"] == cold["counters"]
    assert warm["cache"]["hits"] + warm["cache"]["memory_hits"] > 0
    assert warm["cache"]["misses"] == 0


def test_bounds_kind(server, corpus):
    ref = reference(corpus, heuristics=())
    status, payload = post(server.url, batch_body(corpus, kind="bounds"))
    assert status == 200
    assert payload["kind"] == "bounds"
    assert payload["results"] == ref["results"]
    assert payload["counters"] == ref["counters"]
    # A bounds result carries no heuristic columns.
    assert payload["results"][0]["wct"] == {}


def test_machine_by_dict(server, corpus):
    from repro.machine.machine import GP2
    from repro.verify.generators import machine_to_dict

    body = batch_body(corpus, machine=machine_to_dict(GP2))
    status, payload = post(server.url, body)
    assert status == 200
    assert payload["results"] == reference(corpus)["results"]


def test_trace_opt_in(server, corpus):
    status, payload = post(server.url, batch_body(corpus, trace=True))
    assert status == 200
    assert validate_chrome_trace(payload["trace"]) == []
    names = {
        e["name"] for e in payload["trace"]["traceEvents"]
        if e.get("ph") == "X"
    }
    assert "service.batch" in names
    # Without the flag no trace rides along.
    _, untraced = post(server.url, batch_body(corpus))
    assert "trace" not in untraced


def test_every_request_lands_a_ledger_record(server, corpus, tmp_path):
    post(server.url, batch_body(corpus))
    post(server.url, batch_body(corpus, kind="bounds"))
    records = ledger.load_ledger(
        ledger.ledger_path(str(tmp_path / "ledger"))
    )
    assert len(records) == 2
    assert [r["command"] for r in records] == ["serve", "serve"]
    assert records[0]["args"]["kind"] == "schedule"
    assert records[1]["args"]["kind"] == "bounds"
    assert records[0]["blocks"], "per-block detail missing from the record"


# ---------------------------------------------------------------------------
# Error hardening: structured errors, no traceback, no server death
# ---------------------------------------------------------------------------
def assert_error(status, payload, want_status, want_code):
    assert status == want_status
    assert payload["error"]["code"] == want_code
    assert "Traceback" not in json.dumps(payload)


def test_malformed_json(server):
    status, payload = post(server.url, b"{not json", raw=True)
    assert_error(status, payload, 400, "bad-json")
    assert healthy(server)


def test_non_object_body(server):
    status, payload = post(server.url, b"[1, 2]", raw=True)
    assert_error(status, payload, 400, "bad-request")
    assert healthy(server)


def test_unknown_machine(server, corpus):
    status, payload = post(
        server.url, batch_body(corpus, machine="Z999")
    )
    assert_error(status, payload, 400, "unknown-machine")
    assert "Z999" in payload["error"]["message"]
    assert healthy(server)


def test_unknown_heuristic(server, corpus):
    status, payload = post(
        server.url, batch_body(corpus, heuristics=["nope"])
    )
    assert_error(status, payload, 400, "unknown-heuristic")
    assert healthy(server)


def test_unknown_field(server, corpus):
    status, payload = post(server.url, batch_body(corpus, bogus=1))
    assert_error(status, payload, 400, "unknown-field")
    assert "bogus" in payload["error"]["message"]
    assert healthy(server)


def test_bad_superblock_names_index(server, corpus):
    body = batch_body(corpus)
    body["blocks"].append({"name": "broken"})
    status, payload = post(server.url, body)
    assert_error(status, payload, 400, "bad-superblock")
    assert "blocks[1]" in payload["error"]["message"]
    assert healthy(server)


def test_oversize_batch(tmp_path, corpus):
    srv = ServiceServer(ServiceConfig(port=0, max_blocks=2))
    srv.start()
    try:
        status, payload = post(srv.url, batch_body(corpus, blocks=3))
        assert_error(status, payload, 413, "batch-too-large")
        assert healthy(srv)
    finally:
        srv.stop()


def test_oversize_body(tmp_path, corpus):
    srv = ServiceServer(ServiceConfig(port=0, max_body_bytes=256))
    srv.start()
    try:
        status, payload = post(srv.url, batch_body(corpus))
        assert_error(status, payload, 413, "body-too-large")
        assert healthy(srv)
    finally:
        srv.stop()


def test_client_disconnect_mid_request(server, corpus):
    """A peer that hangs up mid-upload must not disturb the server."""
    body = json.dumps(batch_body(corpus)).encode("utf-8")
    sock = socket.create_connection((server.host, server.port), timeout=10)
    try:
        sock.sendall(
            b"POST /v1/batch HTTP/1.1\r\n"
            b"Host: x\r\nContent-Type: application/json\r\n"
            b"Content-Length: %d\r\n\r\n" % len(body)
        )
        sock.sendall(body[: len(body) // 2])  # half the promised bytes
    finally:
        sock.close()
    assert healthy(server)
    status, raw = get(server.url, "/metrics")
    assert b"service_client_disconnects_total" in raw
    # And a well-formed follow-up request still works.
    status, payload = post(server.url, batch_body(corpus))
    assert status == 200


def test_get_unknown_path_and_post_to_get_endpoint(server, corpus):
    try:
        get(server.url, "/nope")
        raise AssertionError("expected 404")
    except urllib.error.HTTPError as exc:
        assert exc.code == 404
        assert json.loads(exc.read())["error"]["code"] == "not-found"
    try:
        get(server.url, "/v1/batch")
        raise AssertionError("expected 405")
    except urllib.error.HTTPError as exc:
        assert exc.code == 405
        assert (
            json.loads(exc.read())["error"]["code"] == "method-not-allowed"
        )
    assert healthy(server)


def test_internal_error_leaks_no_traceback(server, corpus, monkeypatch):
    def boom(self, request, rid):
        raise RuntimeError("secret internal detail")

    monkeypatch.setattr(SchedulerService, "_evaluate", boom)
    status, payload = post(server.url, batch_body(corpus))
    assert_error(status, payload, 500, "internal")
    assert "secret" not in json.dumps(payload)
    assert healthy(server)


# ---------------------------------------------------------------------------
# Worker-crash recovery
# ---------------------------------------------------------------------------
def test_worker_crash_retried_once(server, corpus, monkeypatch):
    import repro.eval.sched_eval as sched_eval

    real = sched_eval.evaluate_corpus
    calls = {"n": 0}

    def flaky(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 1:
            raise WorkerCrashError("worker 0 died (simulated)")
        return real(*args, **kwargs)

    monkeypatch.setattr(sched_eval, "evaluate_corpus", flaky)
    status, payload = post(server.url, batch_body(corpus))
    assert status == 200
    assert calls["n"] == 2
    assert payload["results"] == reference(corpus)["results"]
    assert payload["counters"] == reference(corpus)["counters"]
    status, raw = get(server.url, "/metrics")
    assert b"service_worker_crash_retries_total" in raw


def test_worker_crash_twice_answers_503(server, corpus, monkeypatch):
    import repro.eval.sched_eval as sched_eval

    def always_crash(*args, **kwargs):
        raise WorkerCrashError("worker 0 died (simulated)")

    monkeypatch.setattr(sched_eval, "evaluate_corpus", always_crash)
    status, payload = post(server.url, batch_body(corpus))
    assert_error(status, payload, 503, "worker-crash")
    assert healthy(server)


# ---------------------------------------------------------------------------
# /metrics exposition
# ---------------------------------------------------------------------------
def test_metrics_exposition_is_valid(server, corpus):
    post(server.url, batch_body(corpus))
    status, raw = get(server.url, "/metrics")
    text = raw.decode("utf-8")
    assert status == 200
    assert validate_prometheus_text(text) == []
    assert "repro_service_requests_total" in text
    assert "repro_service_request_seconds_seconds_total" in text
    assert "repro_service_cache_hit_rate" in text
    # Latency histograms: total plus the per-phase split.
    assert "repro_service_request_seconds_bucket" in text
    assert "repro_service_request_seconds_count" in text
    for phase in ("parse", "queue", "eval", "serialize"):
        assert f"repro_service_phase_{phase}_seconds_bucket" in text
    # SLO burn-rate gauges ride along at scrape time.
    assert "repro_slo_latency_target" in text
    assert "repro_slo_latency_burn_rate_5m" in text
    assert "repro_slo_availability_burn_rate_1h" in text


def test_validate_prometheus_text_rejects_garbage():
    assert validate_prometheus_text("") == ["no samples in exposition"]
    problems = validate_prometheus_text("not a metric line at all{{{\n")
    assert any("malformed sample" in p for p in problems)
    problems = validate_prometheus_text('x_total{name="x"} 1\n')
    assert any("no preceding TYPE" in p for p in problems)


# ---------------------------------------------------------------------------
# Request tracing: ids, Server-Timing, debug state, exemplars
# ---------------------------------------------------------------------------
def test_request_id_minted_and_echoed(server, corpus):
    status, payload, headers = post_full(server.url, batch_body(corpus))
    assert status == 200
    rid = payload["request_id"]
    assert rid.startswith("req-")
    assert headers["X-Request-Id"] == rid
    # Server-Timing: all four phases in the header and the payload block.
    timing = headers["Server-Timing"]
    for phase in ("parse", "queue", "eval", "serialize"):
        assert f"{phase};dur=" in timing
        assert phase in payload["server_timing"]
    assert payload["server_timing"]["eval"] >= 0.0


def test_client_request_id_honored_and_sanitized(server, corpus):
    status, payload, headers = post_full(
        server.url, batch_body(corpus), request_id="client-rid.7"
    )
    assert status == 200
    assert payload["request_id"] == "client-rid.7"
    assert headers["X-Request-Id"] == "client-rid.7"
    # Header junk cannot leak into logs/traces: unsafe chars become '-'.
    _, payload, headers = post_full(
        server.url, batch_body(corpus), request_id="a b/c"
    )
    assert payload["request_id"] == "a-b-c"
    assert headers["X-Request-Id"] == "a-b-c"


def test_request_id_echoed_on_error_paths(server):
    status, payload, headers = post_full(
        server.url, b"{not json", raw=True, request_id="err-rid-1"
    )
    assert status == 400
    assert payload["request_id"] == "err-rid-1"
    assert headers["X-Request-Id"] == "err-rid-1"
    # The per-phase block is a success-payload field only; the header
    # still reports what little happened.
    assert "server_timing" not in payload
    assert "parse;dur=" in headers["Server-Timing"]


def test_request_id_stamps_every_span(server, corpus):
    status, payload = post(server.url, batch_body(corpus, trace=True))
    assert status == 200
    rid = payload["request_id"]
    spans = [
        e for e in payload["trace"]["traceEvents"] if e.get("ph") == "X"
    ]
    assert spans
    assert all(e["args"].get("request_id") == rid for e in spans)


def test_request_id_reaches_worker_spans_under_jobs(corpus, monkeypatch):
    """The propagation contract under real parallelism: with --jobs 2 and
    the break-even gate off, worker-side spans merged back by the pool
    still carry the originating request id."""
    monkeypatch.setenv("REPRO_PAR_BREAK_EVEN", "0")
    srv = ServiceServer(ServiceConfig(port=0, jobs=2))
    srv.start()
    try:
        # Two copies of the block: single-unit batches plan serial.
        body = batch_body(corpus, trace=True)
        body["blocks"] = body["blocks"] * 2
        status, payload, _ = post_full(
            srv.url, body, request_id="worker-rid-1"
        )
        assert status == 200
        spans = [
            e for e in payload["trace"]["traceEvents"] if e.get("ph") == "X"
        ]
        worker_spans = [
            e for e in spans if e["args"].get("origin") == "worker"
        ]
        assert worker_spans, "expected parallel dispatch to worker units"
        assert all(
            e["args"].get("request_id") == "worker-rid-1" for e in spans
        )
    finally:
        srv.stop()


def test_debug_requests_rings(server, corpus):
    _, raw = get(server.url, "/debug/requests")
    empty = json.loads(raw)
    assert empty["in_flight"] == [] and empty["recent"] == []
    assert empty["slow_threshold_ms"] == 1000.0

    post_full(server.url, batch_body(corpus), request_id="dbg-1")
    post_full(server.url, b"{not json", raw=True, request_id="dbg-2")
    _, raw = get(server.url, "/debug/requests")
    state = json.loads(raw)
    assert state["in_flight"] == []
    # Newest first; error requests land in the ring too.
    assert [e["request_id"] for e in state["recent"]] == ["dbg-2", "dbg-1"]
    assert state["recent"][0]["status"] == 400
    assert state["recent"][1]["status"] == 200
    assert state["recent"][1]["kind"] == "schedule"
    for entry in state["recent"]:
        assert entry["elapsed_ms"] >= 0.0
        assert set(entry["phases_ms"]) == {
            "parse", "queue", "eval", "serialize",
        }
    # Nothing here was slower than the 1 s default threshold.
    assert state["slow"] == []


def test_slow_exemplar_capture_and_obs_slowest(tmp_path, corpus, capsys):
    """threshold 0 forces an exemplar for every request, retrievable via
    the ledger helpers and the ``repro obs slowest`` CLI."""
    from repro.cli import main

    ledger_dir = str(tmp_path / "ledger")
    srv = ServiceServer(
        ServiceConfig(
            port=0,
            ledger_dir=ledger_dir,
            slow_threshold_ms=0.0,
        )
    )
    srv.start()
    try:
        status, payload, _ = post_full(
            srv.url, batch_body(corpus), request_id="slow-rid-1"
        )
        assert status == 200
        _, raw = get(srv.url, "/metrics")
        assert b"repro_service_slow_requests_total" in raw
        _, raw = get(srv.url, "/debug/requests")
        assert json.loads(raw)["slow"][0]["request_id"] == "slow-rid-1"
    finally:
        srv.stop()

    records = ledger.load_ledger(ledger.ledger_path(ledger_dir))
    exemplars = ledger.slow_exemplars(records)
    assert len(exemplars) == 1
    exemplar = exemplars[0]["exemplar"]
    assert exemplar["request_id"] == "slow-rid-1"
    assert exemplar["threshold_ms"] == 0.0
    assert set(exemplar["phases_ms"]) == {"parse", "queue", "eval", "serialize"}
    # The ledger gives the service a tracer, so the exemplar carries a
    # full Chrome trace even though the client never asked for one.
    assert validate_chrome_trace(exemplar["trace"]) == []
    assert "slow-rid-1" in ledger.render_slowest(records)

    trace_out = tmp_path / "slow.json"
    rc = main([
        "obs", "slowest", "--ledger", ledger_dir,
        "--trace-out", str(trace_out),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "slow-rid-1" in out
    assert validate_chrome_trace(json.loads(trace_out.read_text())) == []


def test_obs_slo_replays_ledger(tmp_path, corpus, capsys):
    from repro.cli import main

    ledger_dir = str(tmp_path / "ledger")
    srv = ServiceServer(ServiceConfig(port=0, ledger_dir=ledger_dir))
    srv.start()
    try:
        for _ in range(3):
            assert post(srv.url, batch_body(corpus))[0] == 200
    finally:
        srv.stop()

    # An absurd 1 ms objective: every request blows the budget.
    rc = main([
        "obs", "slo", "--ledger", ledger_dir, "--latency-ms", "1",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "objective latency" in out
    assert "bad 3/3" in out
    assert "<-- burning" in out

    rc = main([
        "obs", "slo", "--ledger", ledger_dir, "--latency-ms", "1",
        "--json",
    ])
    assert rc == 0
    report = json.loads(capsys.readouterr().out)
    by_name = {o["name"]: o for o in report["objectives"]}
    assert by_name["latency"]["windows"]["5m"]["bad"] == 3
    # The ledger only records answered requests, so replayed
    # availability never burns.
    assert by_name["availability"]["windows"]["5m"]["bad"] == 0

    # --max-burn turns the report into a gate.
    rc = main([
        "obs", "slo", "--ledger", ledger_dir, "--latency-ms", "1",
        "--max-burn", "1.0",
    ])
    assert rc != 0


def test_health_metrics_debug_never_block_behind_eval(corpus, monkeypatch):
    """The read-only endpoints answer while a batch holds the eval lock."""
    import threading
    import time

    import repro.eval.sched_eval as sched_eval

    real = sched_eval.evaluate_corpus
    entered = threading.Event()

    def slow(*args, **kwargs):
        entered.set()
        time.sleep(1.5)
        return real(*args, **kwargs)

    monkeypatch.setattr(sched_eval, "evaluate_corpus", slow)
    srv = ServiceServer(ServiceConfig(port=0))
    srv.start()
    try:
        result: dict = {}

        def fire():
            result["status"] = post(srv.url, batch_body(corpus))[0]

        poster = threading.Thread(target=fire, daemon=True)
        poster.start()
        assert entered.wait(10), "batch never reached evaluation"
        # The batch now sleeps holding the eval lock; every read-only
        # endpoint must answer in a fraction of that 1.5 s hold.
        for path in ("/healthz", "/metrics", "/debug/requests"):
            t0 = time.perf_counter()
            status, _ = get(srv.url, path)
            elapsed = time.perf_counter() - t0
            assert status == 200
            assert elapsed < 0.75, (
                f"{path} took {elapsed:.3f}s behind a locked batch"
            )
        _, raw = get(srv.url, "/debug/requests")
        in_flight = json.loads(raw)["in_flight"]
        assert len(in_flight) == 1 and in_flight[0]["age_s"] >= 0.0
        poster.join(timeout=30)
        assert result["status"] == 200
    finally:
        srv.stop()


# ---------------------------------------------------------------------------
# Protocol unit coverage
# ---------------------------------------------------------------------------
def test_parse_batch_request_defaults(corpus):
    data = {
        "machine": "GP2",
        "blocks": [superblock_to_dict(corpus.superblocks[0])],
    }
    request = protocol.parse_batch_request(data)
    assert request.kind == "schedule"
    assert request.heuristics == protocol.DEFAULT_HEURISTICS
    assert not request.include_triplewise and not request.trace


def test_parse_batch_request_rejects_empty_heuristics(corpus):
    data = {
        "machine": "GP2",
        "blocks": [superblock_to_dict(corpus.superblocks[0])],
        "heuristics": [],
    }
    with pytest.raises(protocol.ProtocolError) as err:
        protocol.parse_batch_request(data)
    assert err.value.code == "bad-heuristics"


def test_parse_batch_request_missing_machine(corpus):
    with pytest.raises(protocol.ProtocolError) as err:
        protocol.parse_batch_request({"blocks": []})
    assert err.value.code == "bad-request"


# ---------------------------------------------------------------------------
# Load harness
# ---------------------------------------------------------------------------
def test_zipf_weights_skew():
    weights = zipf_weights(5, 1.0)
    assert weights[0] == 1.0
    assert weights == sorted(weights, reverse=True)
    with pytest.raises(ValueError):
        zipf_weights(0, 1.0)


def test_percentile_interpolates():
    values = [float(v) for v in range(1, 101)]
    assert percentile(values, 0.50) == pytest.approx(50.5)
    assert percentile(values, 0.99) == pytest.approx(99.01)
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 1.0) == 100.0
    assert percentile([], 0.5) == 0.0
    assert percentile([7.0], 0.99) == 7.0


def test_percentile_nearest_rank_saturated_at_small_n():
    """The regression the interpolated estimator fixes: nearest-rank p99
    collapses to the sample *maximum* for any run under ~50 samples."""
    values = [float(v) for v in range(1, 21)]  # n=20
    assert percentile_nearest(values, 0.99) == 20.0  # == max(values)
    assert percentile(values, 0.99) == pytest.approx(19.81)
    assert percentile(values, 0.99) < max(values)


def test_build_templates_deterministic():
    config = LoadgenConfig(templates=6, scale=8, max_ops=16, seed=5)
    one, two = build_templates(config), build_templates(config)
    assert one == two
    assert len(one) == 6
    kinds = {t["kind"] for t in one}
    assert kinds == {"schedule", "bounds"}


def test_loadgen_self_hosted_and_history(tmp_path):
    config = LoadgenConfig(
        requests=20,
        concurrency=2,
        zipf=1.3,
        templates=4,
        scale=8,
        max_ops=12,
        seed=7,
        cache_dir=str(tmp_path / "cache"),
    )
    report = run_loadgen(config)
    assert report.ok and report.failed == 0
    assert report.requests == 20
    assert report.samples == 20, "every answered request records a latency"
    assert "(n=20)" in report.render()
    assert report.as_dict()["samples"] == 20
    assert report.hit_rate > 0, "zipf repeats must warm the cache"
    payload = report.history_payload()
    assert payload["loadgen_throughput"]["unit"] == "req/s"
    assert payload["loadgen_p99_latency"]["unit"] == "ms"
    assert payload["loadgen_hit_rate"]["value"] == round(
        report.hit_rate, 6
    )
    from repro.obs.trend import append_record, load_history, make_record

    history = tmp_path / "history.jsonl"
    append_record(make_record(payload, label="loadgen"), history)
    records = load_history(history)
    assert records[0]["label"] == "loadgen"
    assert "loadgen_p50_latency" in records[0]["metrics"]


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
def test_cli_loadgen(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "report.json"
    history = tmp_path / "history.jsonl"
    rc = main([
        "loadgen", "--requests", "12", "--concurrency", "2",
        "--templates", "4", "--scale", "8", "--max-ops", "12",
        "--zipf", "1.3", "--min-hit-rate", "0.01",
        "--out", str(out), "--history", str(history),
    ])
    assert rc == 0
    captured = capsys.readouterr().out
    assert "0 failed" in captured
    report = json.loads(out.read_text())
    assert report["failed"] == 0
    assert history.exists()


def test_cli_serve_rejects_taken_port(corpus):
    from repro.cli import main

    srv = ServiceServer(ServiceConfig(port=0))
    srv.start()
    try:
        rc = main([
            "serve", "--port", str(srv.port), "--no-cache", "--no-ledger",
        ])
        assert rc == 1
    finally:
        srv.stop()


def test_service_cache_on_disk_is_real(server, corpus, tmp_path):
    post(server.url, batch_body(corpus))
    cache = ResultCache(str(tmp_path / "cache"))
    assert cache.summary()["entries"] > 0
