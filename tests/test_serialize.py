"""Unit tests for superblock JSON serialization and DOT export."""

import json

from repro.ir.dot import to_dot
from repro.ir.examples import figure1, figure2, figure3, figure4
from repro.ir.serialize import (
    dumps,
    loads,
    superblock_from_dict,
    superblock_to_dict,
)


class TestRoundTrip:
    def test_round_trip_preserves_structure(self, two_exit_sb):
        sb2 = loads(dumps(two_exit_sb))
        assert sb2.name == two_exit_sb.name
        assert sb2.num_operations == two_exit_sb.num_operations
        assert sorted(sb2.graph.edges()) == sorted(two_exit_sb.graph.edges())
        assert sb2.weights == two_exit_sb.weights

    def test_round_trip_all_paper_examples(self):
        for factory in (figure1, figure2, figure3, figure4):
            sb = factory()
            sb2 = loads(dumps(sb))
            assert sorted(sb2.graph.edges()) == sorted(sb.graph.edges())
            assert [op.opcode.name for op in sb2.operations] == [
                op.opcode.name for op in sb.operations
            ]

    def test_exec_freq_and_source_preserved(self, two_exit_sb):
        data = superblock_to_dict(two_exit_sb)
        data["exec_freq"] = 42.5
        data["source"] = "synthetic:test"
        sb2 = superblock_from_dict(data)
        assert sb2.exec_freq == 42.5
        assert sb2.source == "synthetic:test"

    def test_dict_format_is_stable(self, two_exit_sb):
        data = superblock_to_dict(two_exit_sb)
        assert set(data) == {"name", "exec_freq", "source", "operations", "edges"}
        assert data["operations"][3]["opcode"] == "branch"
        assert data["operations"][3]["exit_prob"] == 0.3

    def test_json_is_valid(self, two_exit_sb):
        json.loads(dumps(two_exit_sb, indent=2))


class TestDot:
    def test_dot_contains_all_nodes_and_edges(self, two_exit_sb):
        dot = to_dot(two_exit_sb)
        assert dot.startswith("digraph")
        for op in two_exit_sb.operations:
            assert f"n{op.index} [" in dot
        assert dot.count("->") == two_exit_sb.graph.num_edges

    def test_dot_labels_branches_with_probability(self, two_exit_sb):
        dot = to_dot(two_exit_sb)
        assert "p=0.3" in dot

    def test_dot_labels_non_unit_latencies(self, two_exit_sb):
        dot = to_dot(two_exit_sb)
        assert '[label="2"]' in dot  # the 4 -(lat 2)-> 5 edge

    def test_dot_custom_title(self, two_exit_sb):
        assert 'label="Custom";' in to_dot(two_exit_sb, title="Custom")
