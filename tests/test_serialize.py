"""Unit tests for superblock JSON serialization and DOT export."""

import json

from repro.ir.builder import SuperblockBuilder
from repro.ir.dot import to_dot
from repro.ir.examples import figure1, figure2, figure3, figure4
from repro.ir.serialize import (
    dumps,
    dumps_schedule,
    loads,
    loads_schedule,
    superblock_from_dict,
    superblock_to_dict,
)


class TestRoundTrip:
    def test_round_trip_preserves_structure(self, two_exit_sb):
        sb2 = loads(dumps(two_exit_sb))
        assert sb2.name == two_exit_sb.name
        assert sb2.num_operations == two_exit_sb.num_operations
        assert sorted(sb2.graph.edges()) == sorted(two_exit_sb.graph.edges())
        assert sb2.weights == two_exit_sb.weights

    def test_round_trip_all_paper_examples(self):
        for factory in (figure1, figure2, figure3, figure4):
            sb = factory()
            sb2 = loads(dumps(sb))
            assert sorted(sb2.graph.edges()) == sorted(sb.graph.edges())
            assert [op.opcode.name for op in sb2.operations] == [
                op.opcode.name for op in sb.operations
            ]

    def test_exec_freq_and_source_preserved(self, two_exit_sb):
        data = superblock_to_dict(two_exit_sb)
        data["exec_freq"] = 42.5
        data["source"] = "synthetic:test"
        sb2 = superblock_from_dict(data)
        assert sb2.exec_freq == 42.5
        assert sb2.source == "synthetic:test"

    def test_dict_format_is_stable(self, two_exit_sb):
        data = superblock_to_dict(two_exit_sb)
        assert set(data) == {"name", "exec_freq", "source", "operations", "edges"}
        assert data["operations"][3]["opcode"] == "branch"
        assert data["operations"][3]["exit_prob"] == 0.3

    def test_json_is_valid(self, two_exit_sb):
        json.loads(dumps(two_exit_sb, indent=2))

    def test_reserialization_is_bit_identical(self, two_exit_sb):
        text = dumps(two_exit_sb)
        assert dumps(loads(text)) == text

    def test_empty_block_round_trip(self):
        # A side exit directly followed by another exit: block 1 holds no
        # computation at all.
        sb = (
            SuperblockBuilder("empty_block")
            .op("add")
            .exit(0.4, preds=[0])
            .exit(0.3)
            .op("add")
            .last_exit(preds=[3])
        )
        sb2 = loads(dumps(sb))
        assert sb2.num_branches == 3
        assert sorted(sb2.graph.edges()) == sorted(sb.graph.edges())
        assert dumps(sb2) == dumps(sb)

    def test_zero_probability_exit_round_trip(self):
        sb = (
            SuperblockBuilder("zero_prob")
            .op("add")
            .exit(0.0, preds=[0])
            .op("add")
            .last_exit(preds=[2])
        )
        sb2 = loads(dumps(sb))
        assert sb2.weights[1] == 0.0
        assert sb2.weights[sb2.last_branch] == 1.0


class TestScheduleRoundTrip:
    def _schedule(self, sb, machine):
        from repro.schedulers.base import schedule as run_sched

        return run_sched(sb, machine, "balance")

    def test_round_trip_preserves_everything(self, two_exit_sb, gp2):
        s = self._schedule(two_exit_sb, gp2)
        s2 = loads_schedule(dumps_schedule(s))
        assert s2.superblock == s.superblock
        assert s2.machine == s.machine
        assert s2.heuristic == s.heuristic
        assert s2.issue == s.issue
        assert s2.wct == s.wct
        assert s2.stats == s.stats

    def test_round_tripped_schedule_still_validates(self, two_exit_sb, gp2):
        from repro.schedulers.schedule import validate_schedule

        s2 = loads_schedule(dumps_schedule(self._schedule(two_exit_sb, gp2)))
        validate_schedule(two_exit_sb, gp2, s2)

    def test_reserialization_is_bit_identical(self, two_exit_sb, gp2):
        text = dumps_schedule(self._schedule(two_exit_sb, gp2))
        assert dumps_schedule(loads_schedule(text)) == text

    def test_non_default_machine_round_trip(self, single_exit_sb):
        from repro.machine.machine import FS4_NP

        s = self._schedule(single_exit_sb, FS4_NP)
        s2 = loads_schedule(dumps_schedule(s))
        assert s2.machine == "FS4-NP"
        assert s2.issue == s.issue

    def test_issue_keys_are_ints_after_round_trip(self, two_exit_sb, gp2):
        # JSON would happily turn dict keys into strings; the pair-list
        # encoding must restore exact int->int maps.
        s2 = loads_schedule(dumps_schedule(self._schedule(two_exit_sb, gp2)))
        assert all(
            isinstance(v, int) and isinstance(t, int)
            for v, t in s2.issue.items()
        )


class TestDot:
    def test_dot_contains_all_nodes_and_edges(self, two_exit_sb):
        dot = to_dot(two_exit_sb)
        assert dot.startswith("digraph")
        for op in two_exit_sb.operations:
            assert f"n{op.index} [" in dot
        assert dot.count("->") == two_exit_sb.graph.num_edges

    def test_dot_labels_branches_with_probability(self, two_exit_sb):
        dot = to_dot(two_exit_sb)
        assert "p=0.3" in dot

    def test_dot_labels_non_unit_latencies(self, two_exit_sb):
        dot = to_dot(two_exit_sb)
        assert '[label="2"]' in dot  # the 4 -(lat 2)-> 5 edge

    def test_dot_custom_title(self, two_exit_sb):
        assert 'label="Custom";' in to_dot(two_exit_sb, title="Custom")
