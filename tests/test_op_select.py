"""Tests for the Speculative-Hedge-style operation scoring."""

from repro.core.dynamic_bounds import BranchNeeds
from repro.core.op_select import pick_operation, score_operation


def needs(branch, each=(), one=None, late=None):
    return BranchNeeds(
        branch=branch,
        early=0,
        late=late or {},
        need_each=frozenset(each),
        need_one={r: frozenset(s) for r, s in (one or {}).items()},
    )


class TestScoring:
    def test_helped_branches_sum_probabilities(self):
        n = {
            10: needs(10, each={0}),
            20: needs(20, one={"gp": {0, 1}}),
        }
        w = {10: 0.3, 20: 0.7}
        score = score_operation(0, "gp", n, w, help_delay=False)
        assert score[0] == 1.0  # helps both
        assert score[1] == 2

    def test_delay_penalty_applied(self):
        """HlpDel: wasting a zero-empty-slot class costs the branch weight."""
        n = {20: needs(20, one={"gp": {5}})}
        w = {20: 0.7}
        with_delay = score_operation(0, "gp", n, w, help_delay=True)
        without = score_operation(0, "gp", n, w, help_delay=False)
        assert with_delay[0] == -0.7
        assert without[0] == 0.0

    def test_other_class_neutral(self):
        """An op of a different class never wastes the critical slots."""
        n = {20: needs(20, one={"mem": {5}})}
        w = {20: 0.7}
        score = score_operation(0, "int", n, w, help_delay=True)
        assert score[0] == 0.0

    def test_late_tiebreak(self):
        n = {
            10: needs(10, one={"gp": {0, 1}}, late={0: 3, 1: 1}),
        }
        w = {10: 0.5}
        s0 = score_operation(0, "gp", n, w, help_delay=True)
        s1 = score_operation(1, "gp", n, w, help_delay=True)
        assert s1 > s0  # same help, smaller late time wins


class TestPick:
    def test_picks_highest_score(self):
        n = {
            10: needs(10, each={2}),
            20: needs(20, one={"gp": {1, 2}}),
        }
        w = {10: 0.4, 20: 0.6}
        v = pick_operation([0, 1, 2], lambda u: "gp", n, w, help_delay=True)
        assert v == 2  # helps both branches

    def test_ties_break_by_program_order(self):
        n = {10: needs(10, one={"gp": {1, 2}})}
        w = {10: 1.0}
        v = pick_operation([2, 1], lambda u: "gp", n, w, help_delay=False)
        assert v == 1

    def test_single_candidate(self):
        v = pick_operation([7], lambda u: "gp", {}, {}, help_delay=True)
        assert v == 7
