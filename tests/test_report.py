"""Tests for the one-shot markdown evaluation report."""

import pytest

from repro.eval.report import full_report
from repro.workloads.corpus import specint95_corpus


@pytest.fixture(scope="module")
def report_text():
    corpus = specint95_corpus(scale=10, seed=21, max_ops=18)
    return full_report(corpus, include_triplewise=False, include_costs=False)


class TestFullReport:
    def test_contains_all_sections(self, report_text):
        for section in (
            "# Evaluation report",
            "Table 1",
            "Table 3",
            "Table 4",
            "Table 5",
            "Table 7",
            "Figure 8",
            "Figures 1-4",
            "## Headline",
        ):
            assert section in report_text

    def test_costs_skipped_when_disabled(self, report_text):
        assert "Table 2" not in report_text
        assert "Table 6" not in report_text

    def test_headline_ranks_heuristics(self, report_text):
        headline = report_text.split("## Headline")[1]
        assert "balance" in headline
        assert "%" in headline

    def test_costs_included_when_enabled(self):
        corpus = specint95_corpus(scale=8, seed=22, max_ops=12)
        text = full_report(
            corpus, include_triplewise=False, include_costs=True
        )
        assert "Table 2" in text and "Table 6" in text
